"""Tests for the ASCII bar and comparison charts."""

import pytest

from repro.viz import bar_chart, comparison_chart


class TestBarChart:
    def test_basic_structure(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, title="demo", unit="s")
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 3
        assert "s" in lines[1]

    def test_bar_lengths_proportional(self):
        chart = bar_chart({"half": 1.0, "full": 2.0}, width=40)
        half_line, full_line = chart.splitlines()
        assert half_line.count("#") * 2 == full_line.count("#")

    def test_reference_annotation(self):
        chart = bar_chart({"base": 4.0, "fast": 2.0}, reference="base")
        assert "(reference)" in chart
        assert "0.50x base" in chart

    def test_zero_value_renders_empty_bar(self):
        chart = bar_chart({"zero": 0.0, "one": 1.0})
        zero_line = chart.splitlines()[0]
        assert "#" not in zero_line

    def test_all_zero_does_not_crash(self):
        assert "|" in bar_chart({"a": 0.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"bad": -1.0})


class TestComparisonChart:
    def test_pairs_rendered(self):
        chart = comparison_chart({"x": 1.0}, {"x": 1.1})
        assert "sim" in chart and "paper" in chart and "legend" in chart
        assert chart.count("|") == 4

    def test_only_common_labels(self):
        chart = comparison_chart({"x": 1.0, "only_sim": 5.0}, {"x": 1.0})
        assert "only_sim" not in chart

    def test_no_common_labels_rejected(self):
        with pytest.raises(ValueError):
            comparison_chart({"a": 1.0}, {"b": 1.0})

    def test_bars_scale_together(self):
        chart = comparison_chart({"x": 2.0}, {"x": 1.0}, width=30)
        lines = chart.splitlines()
        assert lines[0].count("#") == 30
        assert lines[1].count("=") == 15
