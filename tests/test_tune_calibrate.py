"""Calibration fits from synthetic ``/metrics`` windows.

The round-trip property at the heart of it: build a snapshot pair from
*known* per-stage (setup, unit) costs and a known traffic mix, fit a
:class:`~repro.tune.calibrate.CalibratedWorkstation` from it, and check
the fitted model reproduces the stage costs and the service times they
imply.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TuneError
from repro.serve.batcher import BatchPolicy
from repro.tune.calibrate import (
    FITTED_STAGES,
    CalibratedWorkstation,
    ObservedMix,
    StageCost,
    delta_counter,
    fit_stage_means,
    probe_stage_curves,
)


def make_snapshot(*, uptime=10.0, requests=320, batch=4, stack=None,
                  stage_costs=None, latency_ms=None, cache_hits=0,
                  n_panels=80, precision="double"):
    """A ``/metrics`` document for *requests* identical requests.

    Every request rode a batch of size *batch*; traced stage spans are
    the full batch span (``setup + batch * unit``), shared verbatim by
    each rider — exactly how the serving tracer aggregates them.
    """
    stack = batch if stack is None else stack
    costs = stage_costs or {
        "assembly": StageCost(setup=0.0, unit=0.002),
        "solve": StageCost(setup=0.004, unit=0.001),
        "postprocess": StageCost(setup=0.0, unit=0.0005),
        "serialize": StageCost(setup=0.0, unit=0.0002),
    }
    stages = {}
    for stage in FITTED_STAGES:
        cost = costs.get(stage, StageCost(setup=0.0, unit=0.0))
        anchor = stack if stage == "solve" else batch
        span_ms = 1e3 * cost.batch_seconds(anchor)
        stages[stage] = {"count": requests, "sum_ms": requests * span_ms}
    if latency_ms is None:
        latency_ms = sum(
            1e3 * costs[stage].batch_seconds(stack if stage == "solve" else batch)
            for stage in costs
        )
    flushes = max(1, requests // batch)
    return {
        "uptime_seconds": uptime,
        "requests": {"admitted": requests + cache_hits,
                     "completed": requests + cache_hits},
        "cache": {"hits": cache_hits},
        "batching": {
            "batch_size_histogram": {str(batch): flushes},
            "stack_size_histogram": {str(stack): flushes},
        },
        "workload": {
            "n_panels_histogram": {str(n_panels): requests},
            "precision_histogram": {precision: requests},
        },
        "latency_hist_ms": {"count": requests + cache_hits,
                            "sum_ms": requests * latency_ms},
        "stages_hist_ms": stages,
    }


class TestWindowReduction:
    def test_delta_counter_absolute_and_windowed(self):
        snap = make_snapshot(requests=100)
        assert delta_counter(snap, None, "requests", "completed") == 100
        later = make_snapshot(requests=150)
        assert delta_counter(later, snap, "requests", "completed") == 50

    def test_delta_counter_missing_path_is_zero(self):
        assert delta_counter({}, None, "no", "such", "path") == 0.0

    def test_fit_stage_means_recovers_mix(self):
        snap = make_snapshot(requests=200, batch=4, n_panels=120)
        means = fit_stage_means(snap)
        assert means.mix.arrival_rate == pytest.approx(20.0)
        assert means.mix.mean_batch == pytest.approx(4.0)
        assert means.mix.n_panels == 120
        assert means.mix.precision == "double"
        assert means.mix.traced == 200

    def test_fit_refuses_thin_window(self):
        snap = make_snapshot(requests=5)
        with pytest.raises(TuneError, match="traced solve spans"):
            fit_stage_means(snap, min_samples=16)

    def test_measured_latency_excludes_cache_hits(self):
        # 100 solved requests at 40ms; 100 cache hits contribute zero
        # latency mass but inflate the count.
        snap = make_snapshot(requests=100, latency_ms=40.0, cache_hits=100)
        means = fit_stage_means(snap)
        assert means.mix.measured_latency_ms == pytest.approx(40.0)
        assert means.mix.cache_hit_fraction == pytest.approx(0.5)

    def test_request_weighted_mean_batch(self):
        # 10 flushes of 1 and 10 flushes of 8: most *requests* rode the
        # big batches, so the request-weighted mean is well above the
        # flush-weighted 4.5.
        snap = make_snapshot(requests=90)
        snap["batching"]["batch_size_histogram"] = {"1": 10, "8": 10}
        means = fit_stage_means(snap)
        expected = (1 * 1 * 10 + 8 * 8 * 10) / (1 * 10 + 8 * 10)
        assert means.mix.mean_batch == pytest.approx(expected)


class TestStageCost:
    def test_rejects_negative_and_non_finite(self):
        with pytest.raises(TuneError):
            StageCost(setup=-0.001, unit=0.0)
        with pytest.raises(TuneError):
            StageCost(setup=0.0, unit=float("nan"))
        with pytest.raises(TuneError):
            StageCost(setup=float("inf"), unit=0.0)

    def test_batch_seconds_and_scaled(self):
        cost = StageCost(setup=0.004, unit=0.001)
        assert cost.batch_seconds(8) == pytest.approx(0.012)
        doubled = cost.scaled(2.0)
        assert doubled.setup == pytest.approx(0.008)
        assert doubled.unit == pytest.approx(0.002)


class TestLittlesLaw:
    def test_concurrency_from_window(self):
        snap = make_snapshot(requests=1000, uptime=10.0, latency_ms=50.0)
        mix = fit_stage_means(snap).mix
        # 100 req/s at 50ms in flight: ~5 requests resident.
        assert mix.concurrency == pytest.approx(5.0)

    def test_concurrency_zero_without_latency(self):
        mix = ObservedMix(window_seconds=1.0, admitted=0.0, completed=0.0,
                          arrival_rate=0.0, cache_hit_fraction=0.0,
                          mean_batch=1.0, mean_stack=1.0, traced=0.0,
                          n_panels=80, precision="double",
                          measured_latency_ms=None)
        assert mix.concurrency == 0.0

    def test_backlog_floors_the_simulated_batch(self):
        """A standing queue lets the batcher form big flushes even with
        max_wait=0 — the arrival-rate fixed point alone can't see it."""
        costs = {"assembly": StageCost(setup=0.0, unit=0.002),
                 "solve": StageCost(setup=0.006, unit=0.001),
                 "postprocess": StageCost(setup=0.0, unit=0.0005),
                 "serialize": StageCost(setup=0.0, unit=0.0002)}
        # Saturated window: measured latency far above per-request cost.
        snap = make_snapshot(requests=1000, uptime=10.0, batch=1,
                             stage_costs=costs, latency_ms=60.0)
        calibrated = CalibratedWorkstation.fit(
            snap, probe=costs, min_samples=16)
        assert calibrated.mix.concurrency == pytest.approx(6.0)
        saturated = calibrated.simulate(BatchPolicy(max_batch=16, max_wait=0.0))
        assert saturated.batch_size == pytest.approx(6.0)
        # Latency is bounded below by Little's law, not the bare service.
        assert saturated.latency_seconds >= (
            calibrated.mix.concurrency / saturated.throughput_rps) - 1e-9
        # The policy cap still binds.
        capped = calibrated.simulate(BatchPolicy(max_batch=2, max_wait=0.0))
        assert capped.batch_size == pytest.approx(2.0)

    def test_light_load_is_unchanged_by_the_floor(self):
        snap = make_snapshot(requests=100, uptime=100.0, batch=1,
                             latency_ms=8.0)
        calibrated = CalibratedWorkstation.fit(snap, min_samples=16)
        assert calibrated.mix.concurrency < 0.1
        prediction = calibrated.simulate(BatchPolicy(max_batch=16, max_wait=0.0))
        assert prediction.batch_size == pytest.approx(1.0)


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        setup_ms=st.floats(min_value=0.5, max_value=20.0),
        unit_ms=st.floats(min_value=0.2, max_value=10.0),
        batch=st.integers(min_value=1, max_value=32),
    )
    def test_probe_anchored_fit_recovers_stage_costs(self, setup_ms,
                                                     unit_ms, batch):
        """Snapshot built from known costs + exact probe curves → the
        fitted model reproduces service times at every batch size."""
        truth = {
            "assembly": StageCost(setup=0.0, unit=unit_ms / 1e3),
            "solve": StageCost(setup=setup_ms / 1e3, unit=unit_ms / 1e3),
            "postprocess": StageCost(setup=0.0, unit=0.0005),
            "serialize": StageCost(setup=0.0, unit=0.0002),
        }
        snap = make_snapshot(requests=640, batch=batch, stage_costs=truth)
        calibrated = CalibratedWorkstation.fit(snap, probe=truth,
                                               min_samples=16)
        assert calibrated.source == "live+probe"
        for probe_batch in (1, batch, 2 * batch):
            expected = sum(cost.batch_seconds(probe_batch)
                           for cost in truth.values())
            fitted = calibrated.service_seconds(probe_batch)
            assert fitted == pytest.approx(expected, rel=1e-6)

    def test_live_only_fit_hits_the_operating_point(self):
        snap = make_snapshot(requests=320, batch=4)
        calibrated = CalibratedWorkstation.fit(snap, min_samples=16)
        assert calibrated.source == "live"
        # Zero setup: the whole mean is marginal, so the model is exact
        # at the observed batch size (and blind to batching gains).
        per_request = calibrated.service_seconds(4) / 4
        assert calibrated.service_seconds(8) / 8 == pytest.approx(per_request)

    def test_probe_rescaled_to_live_level(self):
        truth = {
            "assembly": StageCost(setup=0.0, unit=0.002),
            "solve": StageCost(setup=0.004, unit=0.001),
            "postprocess": StageCost(setup=0.0, unit=0.0005),
            "serialize": StageCost(setup=0.0, unit=0.0002),
        }
        snap = make_snapshot(requests=320, batch=4, stage_costs=truth)
        # Probe curves with the right *shape* but half the level (a
        # probe on an idle machine races ahead of loaded reality).
        half = {stage: cost.scaled(0.5) for stage, cost in truth.items()}
        calibrated = CalibratedWorkstation.fit(snap, probe=half,
                                               min_samples=16)
        expected = sum(cost.batch_seconds(4) for cost in truth.values())
        assert calibrated.service_seconds(4) == pytest.approx(expected,
                                                              rel=1e-6)


class TestValidate:
    def test_within_tolerance_band_is_symmetric(self):
        snap = make_snapshot(requests=100, uptime=100.0, latency_ms=10.0)
        calibrated = CalibratedWorkstation.fit(snap, min_samples=16)
        report = calibrated.validate(BatchPolicy(max_batch=1, max_wait=0.0),
                                     tolerance=0.5)
        assert report.ratio is not None
        assert report.within_tolerance == (
            1.0 / 1.5 <= report.ratio <= 1.5)

    def test_saturated_window_validates_via_littles_law(self):
        """Under a standing queue the measured latency is queue-dominated;
        the Little's-law bound keeps the prediction in band anyway."""
        snap = make_snapshot(requests=1000, uptime=10.0, batch=1,
                             latency_ms=60.0)
        calibrated = CalibratedWorkstation.fit(snap, min_samples=16)
        report = calibrated.validate(BatchPolicy(max_batch=1, max_wait=0.0),
                                     tolerance=1.0)
        assert report.within_tolerance


class TestProbe:
    def test_probe_measures_real_curves(self):
        curves = probe_stage_curves(n_panels=40, sizes=(1, 4), repeats=1)
        assert set(curves) <= set(FITTED_STAGES)
        assert "solve" in curves and "assembly" in curves
        for cost in curves.values():
            assert math.isfinite(cost.setup) and cost.setup >= 0.0
            assert math.isfinite(cost.unit) and cost.unit >= 0.0
        # Larger batches can't be predicted cheaper than smaller ones.
        total_1 = sum(c.batch_seconds(1) for c in curves.values())
        total_4 = sum(c.batch_seconds(4) for c in curves.values())
        assert total_4 >= total_1


class TestPaperBridge:
    def test_as_workstation_runs_the_paper_tuner(self):
        snap = make_snapshot(requests=320, batch=4, n_panels=100)
        calibrated = CalibratedWorkstation.fit(snap, min_samples=16)
        station = calibrated.as_workstation()
        from repro.pipeline.autotune import tune_slices
        from repro.pipeline.workload import Workload

        result = tune_slices(Workload(batch=256, n=100, precision="double"),
                             station)
        assert result.best_wall_time > 0.0
