"""Tests for the alternative selection operators."""

import math

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optimize.selection import (
    SelectionMethod,
    measure_selection_pressure,
    rank_select,
    roulette_select,
)

FITNESSES = [10.0, 50.0, 30.0, -math.inf, 20.0]


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestRoulette:
    def test_never_picks_infeasible(self, rng):
        for _ in range(300):
            assert roulette_select(rng, FITNESSES) != 3

    def test_prefers_fitter(self, rng):
        picks = np.array([roulette_select(rng, FITNESSES) for _ in range(3000)])
        counts = np.bincount(picks, minlength=5)
        assert counts[1] > counts[0]  # 50 beats 10
        assert counts[1] > counts[4]  # 50 beats 20

    def test_uniform_when_equal(self, rng):
        picks = [roulette_select(rng, [5.0, 5.0, 5.0]) for _ in range(900)]
        counts = np.bincount(picks, minlength=3)
        assert counts.min() > 200

    def test_all_infeasible_raises(self, rng):
        with pytest.raises(OptimizationError):
            roulette_select(rng, [-math.inf, -math.inf])


class TestRank:
    def test_never_picks_infeasible(self, rng):
        for _ in range(300):
            assert rank_select(rng, FITNESSES) != 3

    def test_scaling_invariance(self, rng):
        """Rank selection ignores the fitness magnitudes entirely."""
        base = [1.0, 2.0, 3.0, 4.0]
        scaled = [1.0, 2.0, 3.0, 4000.0]
        picks_base = np.bincount(
            [rank_select(np.random.default_rng(9), base) for _ in range(1)]
        )
        # Statistical check on distributions with a common seed stream:
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        same = [rank_select(rng_a, base) == rank_select(rng_b, scaled)
                for _ in range(500)]
        assert all(same)

    def test_pressure_bounds(self, rng):
        with pytest.raises(OptimizationError):
            rank_select(rng, [1.0, 2.0], pressure=1.0)
        with pytest.raises(OptimizationError):
            rank_select(rng, [1.0, 2.0], pressure=2.5)

    def test_single_feasible(self, rng):
        assert rank_select(rng, [-math.inf, 7.0]) == 1

    def test_higher_pressure_favours_best(self):
        def best_rate(pressure):
            rng = np.random.default_rng(11)
            picks = [rank_select(rng, [1.0, 2.0, 3.0, 4.0], pressure=pressure)
                     for _ in range(2000)]
            return np.mean(np.array(picks) == 3)

        assert best_rate(2.0) > best_rate(1.2)


class TestSelectionMethod:
    def test_selector_dispatch(self, rng):
        for method in SelectionMethod:
            selector = method.selector()
            index = selector(rng, FITNESSES)
            assert 0 <= index < len(FITNESSES)
            assert index != 3  # infeasible never chosen

    def test_pressure_ordering(self):
        """Tournament (k=3) is the greediest of the three defaults."""
        stats = {
            method: measure_selection_pressure(method, FITNESSES, trials=3000)
            for method in SelectionMethod
        }
        assert all(s.feasible_only for s in stats.values())
        assert (stats[SelectionMethod.TOURNAMENT].best_probability
                > stats[SelectionMethod.RANK].best_probability)
        assert (stats[SelectionMethod.RANK].best_probability
                >= stats[SelectionMethod.ROULETTE].best_probability * 0.8)

    def test_every_method_beats_uniform(self):
        uniform = 1.0 / 4  # four feasible individuals
        for method in SelectionMethod:
            stats = measure_selection_pressure(method, FITNESSES, trials=3000)
            assert stats.best_probability > uniform


class TestGAIntegration:
    """The selection strategies plug into the GA loop unchanged."""

    @pytest.mark.parametrize("selection", ["tournament", "roulette", "rank"])
    def test_ga_runs_with_each_method(self, selection):
        from repro.optimize import (FitnessEvaluator, GAConfig, GenomeLayout,
                                    GeneticOptimizer)

        evaluator = FitnessEvaluator(layout=GenomeLayout(n_upper=5, n_lower=5),
                                     n_panels=60, reynolds=4e5)
        config = GAConfig(population_size=10, generations=3,
                          selection=selection)
        history = GeneticOptimizer(evaluator=evaluator, config=config).run(
            np.random.default_rng(8)
        )
        trace = history.best_fitness_trace()
        assert trace[-1] >= trace[0]

    def test_unknown_selection_rejected(self):
        from repro.optimize import GAConfig

        with pytest.raises(OptimizationError, match="unknown selection"):
            GAConfig(selection="lottery")
