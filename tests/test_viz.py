"""Tests for the ASCII and SVG visualization helpers."""

import numpy as np
import pytest

from repro.geometry import naca
from repro.hardware import paper_workstation
from repro.pipeline import Workload, build_trace, hybrid, simulate
from repro.viz import airfoil_svg, gantt_svg, plot_airfoil, plot_points, plot_series


class TestAsciiPlots:
    def test_plot_points_dimensions(self):
        points = np.random.default_rng(0).uniform(size=(50, 2))
        art = plot_points(points, width=40, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert all(len(line) <= 40 for line in lines)

    def test_plot_points_marker(self):
        art = plot_points(np.array([[0.0, 0.0], [1.0, 1.0]]), marker="x")
        assert "x" in art

    def test_connect_draws_line(self):
        art = plot_points(np.array([[0.0, 0.0], [1.0, 0.0]]), connect=True,
                          width=40, height=5)
        # A connected horizontal segment paints many cells.
        assert art.count("*") > 10

    def test_plot_airfoil_title(self, naca2412):
        art = plot_airfoil(naca2412)
        assert art.startswith("NACA 2412")

    def test_plot_airfoil_control_points(self):
        art = plot_airfoil(naca("2412", 10), show_control_points=True)
        assert "o" in art

    def test_plot_series_footer(self):
        art = plot_series([0, 1, 2], [5, 3, 4], title="demo")
        assert art.startswith("demo")
        assert "x: [0, 2]" in art


class TestSvg:
    def test_airfoil_svg_valid_document(self, naca2412):
        svg = airfoil_svg([naca2412])
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "path" in svg

    def test_airfoil_svg_stacks_multiple(self, naca2412, naca0012):
        svg = airfoil_svg([naca2412, naca0012])
        assert svg.count("<path") == 2
        assert "NACA 2412" in svg and "NACA 0012" in svg

    def test_airfoil_svg_control_points(self):
        svg = airfoil_svg([naca("0012", 10)], show_control_points=True)
        assert svg.count("<circle") == 10

    def test_gantt_svg_structure(self):
        station = paper_workstation(sockets=2, accelerator="phi",
                                    precision="single")
        timeline = simulate(hybrid(Workload.paper_reference("single"),
                                   station, 4))
        svg = gantt_svg(build_trace(timeline))
        assert svg.startswith("<svg")
        assert "accel" in svg and "link" in svg and "cpu" in svg
        # Legend mentions all three kinds.
        for kind in ("assemble", "transfer", "solve"):
            assert kind in svg

    def test_gantt_svg_bar_count(self):
        station = paper_workstation(sockets=2, accelerator="k80-half",
                                    precision="single")
        timeline = simulate(hybrid(Workload.paper_reference("single"),
                                   station, 3))
        svg = gantt_svg(build_trace(timeline))
        # 3 slices x (assemble + copy + host mgmt + solve) bars + legend swatches.
        assert svg.count("<rect") >= 12


class TestFlowSvg:
    def test_streamline_figure(self, naca2412):
        from repro.panel import solve_airfoil, trace_streamlines
        from repro.viz import flow_svg

        solution = solve_airfoil(naca2412, 5.0)
        lines = trace_streamlines(solution, n_lines=4, step=0.08, n_steps=30)
        svg = flow_svg(naca2412, lines)
        assert svg.startswith("<svg")
        # One path per streamline plus the filled outline.
        assert svg.count("<path") == 5
        assert "streamlines" in svg
