"""Tests for the process-parallel execution backend.

Covers the shard protocol maths, byte-identity of responses across
backends (including a hypothesis property test), crash containment
(a SIGKILLed worker fails only its own shard and the pool re-forms),
graceful degradation to inline execution, and the service-level
integration (metrics section, end-to-end equality, mid-batch crash).
"""

import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import (
    AnalyzeRequest,
    canonical_json,
    evaluate_requests,
    serialize_analysis,
    solve_request_systems,
)
from repro.errors import ExecutionBackendError, GeometryError, ServeError
from repro.parallel import (
    BACKEND_ENV,
    InlineBackend,
    ProcessBackend,
    close_default_backend,
    default_backend,
    make_backend,
    resolve_backend,
)
from repro.parallel.protocol import (
    MODE_PARENT,
    MODE_WORKER,
    anchor_stamps,
    expand_kutta_row,
    merge_envelope,
    plan_layout,
    plan_shards,
)
from repro.serve import AnalysisService


def requests_mixed():
    """A batch with mixed sizes, precisions, and one bad geometry."""
    return [
        AnalyzeRequest(airfoil="2412", alpha_degrees=0.0, n_panels=80),
        AnalyzeRequest(airfoil="2412", alpha_degrees=4.0, n_panels=80),
        AnalyzeRequest(airfoil="0012", alpha_degrees=2.0, n_panels=60,
                       precision="single", reynolds=None),
        AnalyzeRequest(airfoil="99zz", alpha_degrees=0.0, n_panels=60),
        AnalyzeRequest(airfoil="4412", alpha_degrees=1.0, n_panels=80,
                       reynolds=5e5),
    ]


def serialized(requests, outcomes):
    out = []
    for request, outcome in zip(requests, outcomes):
        if isinstance(outcome, BaseException):
            out.append((type(outcome).__name__, str(outcome)))
        else:
            out.append(canonical_json(serialize_analysis(request, outcome)))
    return out


@pytest.fixture(scope="module")
def worker_backend():
    backend = make_backend("process", n_procs=2)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def parent_backend():
    backend = make_backend("process", n_procs=2, solve_in_worker=False)
    yield backend
    backend.close()


class TestShardPlanning:
    def test_balanced_contiguous_cover(self):
        bounds = plan_shards(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_never_empty_shards(self):
        assert plan_shards(2, 4) == [(0, 1), (1, 2)]
        assert plan_shards(1, 4) == [(0, 1)]

    def test_single_shard(self):
        assert plan_shards(5, 1) == [(0, 5)]

    def test_layout_is_aligned_and_sized(self):
        requests = [
            AnalyzeRequest(airfoil="0012", n_panels=50),
            AnalyzeRequest(airfoil="0012", n_panels=33, precision="single"),
            AnalyzeRequest(airfoil="0012", n_panels=64),
        ]
        for mode in (MODE_WORKER, MODE_PARENT):
            offsets, total = plan_layout(requests, mode)
            assert all(offset % 8 == 0 for offset in offsets)
            assert offsets[0] == 0 and total > offsets[-1]
        worker_offsets, _ = plan_layout(requests, MODE_WORKER)
        # Worker mode ships (n+1) float64 per request.
        assert worker_offsets[1] - worker_offsets[0] == 51 * 8
        parent_offsets, _ = plan_layout(requests, MODE_PARENT)
        # Parent mode ships the (n, n) matrix plus n rhs values in the
        # request's own precision, rounded up to 8-byte alignment.
        assert parent_offsets[1] - parent_offsets[0] == (50 * 50 + 50) * 8

    def test_expand_kutta_row_matches_panel_system(self):
        from repro.panel.assembly import assemble

        request = AnalyzeRequest(airfoil="2412", alpha_degrees=3.0,
                                 n_panels=40)
        system = assemble(request.build_airfoil(), request.freestream(),
                          dtype=request.precision.dtype)
        unknowns = np.linalg.solve(system.matrix, system.rhs)
        gamma_ref, constant_ref = system.expand_solution(unknowns)
        gamma, constant = expand_kutta_row(unknowns)
        np.testing.assert_array_equal(gamma, np.asarray(gamma_ref))
        assert constant == constant_ref

    def test_anchor_and_envelope(self):
        stamps = [("assembly", 0.1, 0.4, 3), ("solve", 0.4, 0.5, 3)]
        anchored = anchor_stamps(stamps, elapsed=0.5, received_at=100.0)
        assert anchored[0] == ("assembly", 99.6, 99.9, 3)
        assert anchored[1] == ("solve", 99.9, 100.0, 3)
        assert merge_envelope([(1.0, 2.0), (1.5, 3.0)]) == (1.0, 3.0)
        assert merge_envelope([]) is None


class TestBackendResolution:
    def test_unknown_name_rejected(self):
        with pytest.raises(ServeError, match="unknown execution backend"):
            make_backend("bogus")

    def test_strings_rejected_by_resolve(self):
        with pytest.raises(ServeError, match="make_backend"):
            resolve_backend("process")

    def test_instance_passes_through(self):
        backend = InlineBackend()
        assert resolve_backend(backend) is backend

    def test_default_backend_follows_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        close_default_backend()
        try:
            assert isinstance(default_backend(), InlineBackend)
            monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
            monkeypatch.setenv("REPRO_EXEC_PROCS", "2")
            backend = default_backend()
            assert isinstance(backend, ProcessBackend)
            assert backend.n_procs == 2
            assert default_backend() is backend  # cached
        finally:
            close_default_backend()

    def test_invalid_procs_rejected(self):
        with pytest.raises(ServeError, match="n_procs"):
            ProcessBackend(n_procs=0)


class TestByteIdentity:
    def test_worker_mode_matches_inline(self, worker_backend):
        requests = requests_mixed()
        baseline = serialized(requests, evaluate_requests(requests))
        outcomes = evaluate_requests(requests, backend=worker_backend)
        assert serialized(requests, outcomes) == baseline
        assert isinstance(outcomes[3], GeometryError)

    def test_parent_mode_matches_inline(self, parent_backend):
        requests = requests_mixed()
        baseline = serialized(requests, evaluate_requests(requests))
        assert serialized(
            requests, evaluate_requests(requests, backend=parent_backend)
        ) == baseline

    def test_single_request_single_shard(self, worker_backend):
        request = AnalyzeRequest(airfoil="2412", alpha_degrees=2.0,
                                 n_panels=70)
        baseline = serialized([request], evaluate_requests([request]))
        assert serialized(
            [request], evaluate_requests([request], backend=worker_backend)
        ) == baseline

    def test_empty_batch(self, worker_backend):
        assert worker_backend.solve([]) == []

    def test_gamma_bits_match_exactly(self, worker_backend):
        """Not just serialized equality: the float64 circulation rows
        coming back through shared memory are bit-for-bit the inline
        backend's (float32 widening is exact; no arithmetic differs)."""
        requests = [
            AnalyzeRequest(airfoil="2412", alpha_degrees=a, n_panels=64,
                           precision=precision, reynolds=None)
            for a in (0.0, 3.0) for precision in ("single", "double")
        ]
        inline = solve_request_systems(requests)
        sharded = worker_backend.solve(requests)
        for ours, theirs in zip(inline, sharded):
            lhs = np.asarray(ours.gamma, dtype=np.float64)
            rhs = np.asarray(theirs.gamma, dtype=np.float64)
            assert lhs.tobytes() == rhs.tobytes()
            assert ours.constant == theirs.constant

    def test_stage_hook_emits_shard_and_envelope_spans(self, worker_backend):
        requests = requests_mixed()
        stamps = []
        worker_backend.solve(
            requests, stage_hook=lambda *args: stamps.append(args)
        )
        stages = [stamp[0] for stamp in stamps]
        assert stages.count("assembly") == 1  # the envelope
        assert stages.count("solve") == 1
        assert stages.count("assembly_shard") == 2  # one per worker
        by_name = {}
        for stage, start, end, _count in stamps:
            assert end >= start
            by_name.setdefault(stage, []).append((start, end))
        envelope = by_name["assembly"][0]
        for start, end in by_name["assembly_shard"]:
            assert envelope[0] <= start and end <= envelope[1]

    @given(alpha=st.floats(-5.0, 8.0, allow_nan=False),
           n_panels=st.sampled_from([40, 56]),
           precision=st.sampled_from(["single", "double"]),
           reynolds=st.sampled_from([None, 5e5]),
           batchmates=st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_responses_identical_across_backends(
            self, shared_process_backend, alpha, n_panels, precision,
            reynolds, batchmates):
        """For any request (and any shard split its batchmates force),
        the /analyze response bytes are identical across backends."""
        requests = [AnalyzeRequest(airfoil="2412", alpha_degrees=alpha,
                                   n_panels=n_panels, precision=precision,
                                   reynolds=reynolds)]
        requests += [
            AnalyzeRequest(airfoil="0012", alpha_degrees=float(index),
                           n_panels=48, reynolds=None)
            for index in range(batchmates)
        ]
        baseline = serialized(requests, evaluate_requests(requests))
        assert serialized(
            requests,
            evaluate_requests(requests, backend=shared_process_backend),
        ) == baseline


@pytest.fixture(scope="module")
def shared_process_backend():
    backend = make_backend("process", n_procs=2)
    yield backend
    backend.close()


class TestCrashContainment:
    def test_sigkill_fails_only_that_shard(self):
        requests = requests_mixed()
        backend = make_backend("process", n_procs=2)
        try:
            killed = []

            def kill_first_shard(shard_index, worker):
                if shard_index == 0:
                    killed.append(worker.process.pid)
                    os.kill(worker.process.pid, signal.SIGKILL)

            backend._after_dispatch = kill_first_shard
            outcomes = backend.solve(requests)
            backend._after_dispatch = None
            assert killed
            bounds = plan_shards(len(requests), 2)
            start, stop = bounds[0]
            for index, outcome in enumerate(outcomes):
                if start <= index < stop:
                    assert isinstance(outcome, ExecutionBackendError)
                    assert "batchmates are unaffected" in str(outcome)
                else:
                    assert not isinstance(outcome, ExecutionBackendError)
            stats = backend.stats()
            assert stats["worker_crashes"] == 1
            assert stats["worker_restarts"] == 1
            assert stats["alive_workers"] == 2  # the pool re-formed
            assert not stats["broken"]
            # And the re-formed pool solves the next batch correctly.
            baseline = serialized(requests, evaluate_requests(requests))
            assert serialized(
                requests, evaluate_requests(requests, backend=backend)
            ) == baseline
        finally:
            backend.close()

    def test_crashed_shard_error_is_a_serve_error(self):
        # The serving path re-raises failures as fresh clones built
        # from .args; the error must survive that round trip.
        error = ExecutionBackendError("worker process crashed")
        clone = type(error)(*error.args)
        assert isinstance(clone, ServeError)
        assert str(clone) == str(error)

    def test_start_failure_degrades_to_inline(self, monkeypatch):
        def refuse_to_spawn(self, index):
            raise OSError("no forks today")

        monkeypatch.setattr(ProcessBackend, "_spawn_worker", refuse_to_spawn)
        backend = ProcessBackend(n_procs=2)
        try:
            stats = backend.stats()
            assert stats["broken"] and stats["start_failures"] >= 1
            requests = requests_mixed()
            baseline = serialized(requests, evaluate_requests(requests))
            outcomes = evaluate_requests(requests, backend=backend)
            assert serialized(requests, outcomes) == baseline
            assert backend.stats()["inline_fallbacks"] >= 1
        finally:
            backend.close()

    def test_close_is_idempotent_and_falls_back_inline(self):
        backend = make_backend("process", n_procs=2)
        backend.close()
        backend.close()
        requests = requests_mixed()[:2]
        baseline = serialized(requests, evaluate_requests(requests))
        outcomes = evaluate_requests(requests, backend=backend)
        assert serialized(requests, outcomes) == baseline
        assert backend.stats()["inline_fallbacks"] >= 1
        assert backend.stats()["alive_workers"] == 0


class TestServiceIntegration:
    def test_process_backend_service_matches_inline(self):
        payloads = [{"airfoil": "2412", "alpha": float(a), "n_panels": 90}
                    for a in range(4)]
        with AnalysisService(exec_backend="inline", cache_size=0) as service:
            baseline = [canonical_json(service.analyze(p)) for p in payloads]
        with AnalysisService(exec_backend="process", exec_procs=2,
                             cache_size=0) as service:
            got = [canonical_json(service.analyze(p)) for p in payloads]
            snapshot = service.metrics_snapshot()
        assert got == baseline
        section = snapshot["exec_backend"]
        assert section["name"] == "process" and section["procs"] == 2
        assert section["sharded_requests"] >= len(payloads)

    def test_metrics_snapshot_always_has_backend_section(self, monkeypatch):
        # The section must be present for the env-configured default
        # backend too, whichever one the environment selects.
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        try:
            with AnalysisService() as service:
                section = service.metrics_snapshot()["exec_backend"]
            assert section["name"] == "inline"
        finally:
            close_default_backend()

    def test_prometheus_renders_backend_counters(self):
        from repro.obs.prometheus import render_prometheus

        with AnalysisService(exec_backend="process", exec_procs=2) as service:
            service.analyze({"airfoil": "0012", "n_panels": 60,
                             "reynolds": 0})
            text = render_prometheus(service.metrics_snapshot())
        assert "# TYPE repro_exec_backend_worker_crashes counter" in text
        assert "repro_exec_backend_procs 2" in text

    def test_borrowed_backend_is_not_closed_by_service(self):
        backend = make_backend("process", n_procs=2)
        try:
            with AnalysisService(exec_backend=backend, cache_size=0) as service:
                service.analyze({"airfoil": "2412", "n_panels": 60,
                                 "reynolds": 0})
            assert backend.stats()["alive_workers"] == 2  # still ours
        finally:
            backend.close()

    def test_mid_batch_worker_crash_spares_batchmates(self):
        """SIGKILL one of two shard workers mid-batch: exactly that
        shard's requests fail with a ServeError, the rest complete, the
        failure lands in /metrics, and the pool re-forms."""
        backend = make_backend("process", n_procs=2)
        try:
            def kill_first_shard(shard_index, worker):
                if shard_index == 0:
                    os.kill(worker.process.pid, signal.SIGKILL)

            with AnalysisService(exec_backend=backend, cache_size=0,
                                 n_workers=1, max_batch=8,
                                 max_wait=0.5) as service:
                payloads = [{"airfoil": "2412", "alpha": float(a),
                             "n_panels": 120, "reynolds": 0}
                            for a in range(8)]
                backend._after_dispatch = kill_first_shard
                pendings = [service.submit(p) for p in payloads]
                failures, successes = 0, 0
                for pending in pendings:
                    try:
                        response = pending.result(timeout=60.0)
                    except ServeError as error:
                        assert "batchmates are unaffected" in str(error)
                        failures += 1
                    else:
                        assert response["airfoil"].startswith("NACA")
                        successes += 1
                backend._after_dispatch = None
                assert failures == 4 and successes == 4
                counters = service.metrics_snapshot()["requests"]
                assert counters["failed"] == 4
                assert counters["completed"] == 4
                # The pool re-formed: the next request solves sharded.
                again = service.analyze({"airfoil": "0012", "n_panels": 64,
                                         "reynolds": 0})
                assert again["cl"] == pytest.approx(0.0, abs=1e-9)
                assert backend.stats()["alive_workers"] == 2
        finally:
            backend._after_dispatch = None
            backend.close()

    def test_env_selected_backend_reaches_evaluate_requests(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
        monkeypatch.setenv("REPRO_EXEC_PROCS", "2")
        close_default_backend()
        try:
            requests = requests_mixed()[:2]
            monkeypatch.delenv("REPRO_EXEC_BACKEND")
            monkeypatch.delenv("REPRO_EXEC_PROCS")
            close_default_backend()
            baseline = serialized(requests, evaluate_requests(requests))
            monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
            monkeypatch.setenv("REPRO_EXEC_PROCS", "2")
            assert serialized(requests, evaluate_requests(requests)) == baseline
            assert isinstance(default_backend(), ProcessBackend)
        finally:
            close_default_backend()
