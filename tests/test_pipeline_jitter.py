"""Tests for stochastic (jittered) schedule simulation."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.hardware import paper_workstation
from repro.pipeline import Workload, cpu_only, evaluate, hybrid, simulate


@pytest.fixture(scope="module")
def setup():
    workload = Workload.paper_reference("double")
    station = paper_workstation(sockets=2, accelerator="k80-half",
                                precision="double")
    schedule = hybrid(workload, station, 10)
    return workload, station, schedule


class TestJitteredSimulation:
    def test_zero_jitter_is_exact_default(self, setup):
        _, _, schedule = setup
        assert simulate(schedule).makespan == simulate(
            schedule, jitter=0.0
        ).makespan

    def test_negative_jitter_rejected(self, setup):
        _, _, schedule = setup
        with pytest.raises(ScheduleError):
            simulate(schedule, jitter=-0.1)

    def test_reproducible_with_seed(self, setup):
        _, _, schedule = setup
        first = simulate(schedule, jitter=0.05,
                         rng=np.random.default_rng(1)).makespan
        second = simulate(schedule, jitter=0.05,
                          rng=np.random.default_rng(1)).makespan
        assert first == second

    def test_jitter_centres_on_exact_value(self, setup):
        """Mean-one noise: the average makespan stays near the exact one
        (slightly above — max operations are convex)."""
        _, _, schedule = setup
        exact = simulate(schedule).makespan
        rng = np.random.default_rng(3)
        samples = [simulate(schedule, jitter=0.05, rng=rng).makespan
                   for _ in range(60)]
        assert np.mean(samples) == pytest.approx(exact, rel=0.03)
        assert np.mean(samples) >= exact * 0.99

    def test_spread_grows_with_jitter(self, setup):
        _, _, schedule = setup
        rng = np.random.default_rng(4)
        narrow = np.std([simulate(schedule, jitter=0.02, rng=rng).makespan
                         for _ in range(40)])
        wide = np.std([simulate(schedule, jitter=0.10, rng=rng).makespan
                       for _ in range(40)])
        assert wide > 2.0 * narrow

    def test_dependencies_still_respected(self, setup):
        _, _, schedule = setup
        timeline = simulate(schedule, jitter=0.2,
                            rng=np.random.default_rng(5))
        for record in timeline.records:
            for dep in record.task.dependencies:
                assert record.start >= timeline.records[dep].end - 1e-12

    def test_conclusions_survive_measurement_noise(self, setup):
        """Under 5 % per-task noise (a generous bound for the paper's
        timing runs), the hybrid beats the baseline in every trial and
        the speedup stays in Table 3's neighbourhood."""
        workload, station, schedule = setup
        host = paper_workstation(sockets=2, precision="double")
        rng = np.random.default_rng(6)
        speedups = []
        for _ in range(40):
            base = simulate(cpu_only(workload, host.cpu), jitter=0.05,
                            rng=rng).makespan
            wall = simulate(schedule, jitter=0.05, rng=rng).makespan
            speedups.append(base / wall)
        speedups = np.array(speedups)
        assert np.all(speedups > 2.0)
        assert 2.7 < np.median(speedups) < 3.4
