"""Keep-alive transport tests for :class:`ServeClient`.

These run against a scripted raw-socket stub rather than the real
server, because the failure mode under test — the server silently
dropping a pooled connection *between* requests — needs byte-level
control over when the socket closes.  A polite ``Connection: close``
header is handled transparently inside ``http.client``; only an abrupt
close exercises the client's reconnect-and-replay path.
"""

import socket
import threading

import pytest

from repro.errors import ServeError
from repro.serve.client import ServeClient


def _read_request(connection):
    """Read one HTTP request head (the client sends no bodies here)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = connection.recv(4096)
        if not chunk:
            return None
        data += chunk
    return data


_RESPONSE = (b"HTTP/1.1 200 OK\r\n"
             b"Content-Type: application/json\r\n"
             b"Content-Length: 16\r\n"
             b"\r\n"
             b'{"status": "ok"}')


class ScriptedServer:
    """A stub HTTP server whose per-connection behavior is scripted.

    Each script entry governs one accepted connection, in order:

    * ``("serve", n)`` — answer *n* requests with keep-alive 200s, then
      close the socket abruptly (no ``Connection: close`` header, no
      FIN-before-response courtesy).
    * ``("slam",)`` — read the request, then close without responding.

    Connections beyond the script are slammed, so a test that expects
    two connections fails loudly if the client opens a third.
    """

    def __init__(self, script):
        self.script = list(script)
        self.accepted = 0
        self._closing = False
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(5.0)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        try:
            while True:
                connection, _address = self._listener.accept()
                if self._closing:
                    connection.close()
                    return
                behavior = (self.script.pop(0) if self.script
                            else ("slam",))
                self.accepted += 1
                with connection:
                    if behavior[0] == "serve":
                        for _ in range(behavior[1]):
                            if _read_request(connection) is None:
                                break
                            connection.sendall(_RESPONSE)
                    else:  # slam
                        _read_request(connection)
        except OSError:
            return  # listener closed: shutdown

    def close(self):
        # Closing a listener does not wake a thread blocked in accept();
        # a throwaway connection does.
        self._closing = True
        try:
            with socket.create_connection(("127.0.0.1", self.port),
                                          timeout=1.0):
                pass
        except OSError:
            pass
        self._listener.close()
        self._thread.join(timeout=5.0)


@pytest.fixture
def client_for():
    opened = []

    def build(script):
        server = ScriptedServer(script)
        client = ServeClient(host="127.0.0.1", port=server.port,
                             timeout=5.0, retries=0)
        opened.append((server, client))
        return server, client

    yield build
    for server, client in opened:
        client.close()
        server.close()


class TestConnectionReuse:
    def test_sequential_requests_share_one_connection(self, client_for):
        server, client = client_for([("serve", 3)])
        for _ in range(3):
            assert client.healthz() == {"status": "ok"}
        assert server.accepted == 1
        assert client.reconnects == 0

    def test_close_discards_pool_then_reconnects(self, client_for):
        server, client = client_for([("serve", 1), ("serve", 1)])
        client.healthz()
        client.close()
        assert client.healthz() == {"status": "ok"}
        assert server.accepted == 2
        # The post-close connection is tracked again, so a second
        # close() can actually reach it.
        assert len(client._connections) == 1
        # A deliberate close is not a server-side drop.
        assert client.reconnects == 0


class TestStaleConnectionRecovery:
    def test_abrupt_server_close_is_replayed_once(self, client_for):
        """The regression: the server drops the pooled connection
        between requests; the next call transparently reconnects and
        succeeds, and the client counts the event."""
        server, client = client_for([("serve", 1), ("serve", 1)])
        client.healthz()
        # The stub closed the socket after the first exchange.  The
        # next request hits the stale pooled connection first.
        assert client.healthz() == {"status": "ok"}
        assert client.reconnects == 1
        assert server.accepted == 2

    def test_second_drop_surfaces_as_serve_error(self, client_for):
        server, client = client_for([("serve", 1), ("slam",)])
        client.healthz()
        with pytest.raises(ServeError, match="dropped twice"):
            client.healthz()
        assert client.reconnects == 1
        assert server.accepted == 2

    def test_fresh_connection_failure_is_not_retried(self, client_for):
        """A slam on the *first* request of a fresh connection replays
        once (indistinguishable from a stale drop) and then surfaces —
        never a third connection."""
        server, client = client_for([("slam",), ("slam",)])
        with pytest.raises(ServeError, match="dropped twice"):
            client.healthz()
        assert server.accepted == 2
