"""Trace-context propagation and cross-clock span stitching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.obs.context import (MAX_SPAN_ID_LENGTH, TRACE_HEADER,
                               TraceContext, anchor_remote_spans,
                               maybe_parse_trace_header, new_span_id,
                               new_trace_context, parse_trace_header,
                               validate_span_id)
from repro.obs.trace import Span


class TestSpanIds:
    def test_new_span_ids_are_short_unique_hex(self):
        first, second = new_span_id(), new_span_id()
        assert first != second
        assert len(first) == 16
        int(first, 16)

    @pytest.mark.parametrize("bad", [
        "", "A" * 8, "g" * 8, "a" * (MAX_SPAN_ID_LENGTH + 1), 42, None,
        "ab cd", "ab;cd",
    ])
    def test_validate_rejects_non_hex(self, bad):
        with pytest.raises(ServeError):
            validate_span_id(bad)

    def test_validate_accepts_full_uuid_hex(self):
        value = "0123456789abcdef" * 2
        assert validate_span_id(value) == value


class TestTraceContext:
    def test_header_round_trips(self):
        context = new_trace_context("trace-1", sampled=True)
        parsed = parse_trace_header(context.header_value())
        assert parsed == context

    def test_unsampled_round_trips(self):
        context = new_trace_context(sampled=False)
        assert context.header_value().endswith(";0")
        assert parse_trace_header(context.header_value()).sampled is False

    def test_child_keeps_trace_and_sampling_reparents(self):
        context = new_trace_context("trace-2", sampled=False)
        child = context.child()
        assert child.trace_id == context.trace_id
        assert child.sampled is context.sampled
        assert child.parent_span_id != context.parent_span_id

    def test_maybe_parse_passes_none_through(self):
        assert maybe_parse_trace_header(None) is None

    @pytest.mark.parametrize("bad", [
        "",                       # no fields at all
        "only-trace-id",          # one field
        "a;b",                    # two fields
        "a;b;1;extra",            # four fields
        "a;b;2",                  # flag out of alphabet
        "a;b;true",               # flag must be literal 0/1
        "bad id;abcd;1",          # trace id fails request-id rules
        "trace;NOTHEX;1",         # span id fails hex rules
        "trace;;1",               # empty span id
        42,                       # not a string
    ])
    def test_hostile_headers_rejected(self, bad):
        with pytest.raises(ServeError):
            parse_trace_header(bad)

    def test_separator_cannot_appear_in_valid_ids(self):
        # The ';' separator is excluded from the request-ID alphabet,
        # so a validated trace id can never forge extra fields.
        with pytest.raises(ServeError):
            parse_trace_header("tr;ace;abcd;1")

    def test_header_name_is_stable_wire_contract(self):
        assert TRACE_HEADER == "X-Repro-Trace"


def _spans(*triples):
    return [Span(name=name, start=start, end=end, parent=0 if i else None)
            for i, (name, start, end) in enumerate(triples)]


class TestAnchorRemoteSpans:
    def test_plain_offset_when_clocks_agree(self):
        # Remote did 1s of work inside a 1.5s caller window: the whole
        # tree lands flush against recv_end, offset intact.
        remote = _spans(("request", 100.0, 101.0), ("solve", 100.2, 100.7))
        anchored = anchor_remote_spans(remote, 10.0, 11.5)
        assert anchored[0].start == pytest.approx(10.5)
        assert anchored[0].end == pytest.approx(11.5)
        assert anchored[1].start == pytest.approx(10.7)
        assert anchored[1].duration == pytest.approx(0.5)

    def test_compression_when_remote_exceeds_window(self):
        # Remote measured 2s but the caller only saw 1s: compress 2x.
        remote = _spans(("request", 50.0, 52.0), ("solve", 50.5, 51.5))
        anchored = anchor_remote_spans(remote, 20.0, 21.0)
        assert anchored[0].start == pytest.approx(20.0)
        assert anchored[0].end == pytest.approx(21.0)
        assert anchored[1].start == pytest.approx(20.25)
        assert anchored[1].end == pytest.approx(20.75)

    def test_open_spans_close_at_remote_root_end(self):
        remote = [Span(name="request", start=0.0, end=4.0),
                  Span(name="solve", start=1.0, end=None, parent=0)]
        anchored = anchor_remote_spans(remote, 100.0, 104.0)
        assert anchored[1].end == anchored[0].end

    def test_parents_survive_by_index(self):
        remote = _spans(("request", 0.0, 1.0), ("assembly", 0.1, 0.4),
                        ("solve", 0.4, 0.9))
        anchored = anchor_remote_spans(remote, 0.0, 1.0)
        assert [span.parent for span in anchored] == [None, 0, 0]
        assert [span.name for span in anchored] == ["request", "assembly",
                                                    "solve"]

    def test_inverted_bounds_raise(self):
        with pytest.raises(ServeError, match="inverted"):
            anchor_remote_spans(_spans(("request", 0.0, 1.0)), 5.0, 4.0)

    def test_empty_input_is_empty_output(self):
        assert anchor_remote_spans([], 0.0, 1.0) == []

    @settings(max_examples=200, deadline=None)
    @given(
        window=st.floats(min_value=1e-3, max_value=1e3),
        send_start=st.floats(min_value=-1e6, max_value=1e6),
        remote_start=st.floats(min_value=-1e6, max_value=1e6),
        # Child offsets/durations as fractions of the remote elapsed
        # time, so children always sit inside their root.
        children=st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=1.0),
                      st.floats(min_value=0.0, max_value=1.0)),
            max_size=6),
        elapsed=st.floats(min_value=0.0, max_value=1e4),
    )
    def test_containment_and_monotonicity_under_any_skew(
            self, window, send_start, remote_start, children, elapsed):
        """Stitched spans always land inside the proxy bounds and keep
        their relative order, whatever the remote clock did."""
        recv_end = send_start + window
        remote = [Span(name="request", start=remote_start,
                       end=remote_start + elapsed)]
        for offset_frac, length_frac in children:
            start = remote_start + offset_frac * elapsed
            end = min(start + length_frac * elapsed, remote_start + elapsed)
            remote.append(Span(name="stage", start=start, end=end, parent=0))
        anchored = anchor_remote_spans(remote, send_start, recv_end)
        for span in anchored:
            assert send_start <= span.start <= recv_end
            assert send_start <= span.end <= recv_end
            assert span.end >= span.start  # monotone within a span
        # Relative order of starts is preserved (positive affine map).
        original = [span.start for span in remote]
        mapped = [span.start for span in anchored]
        for i in range(len(original)):
            for j in range(len(original)):
                if original[i] < original[j]:
                    assert mapped[i] <= mapped[j]

    def test_context_header_is_ascii_safe_for_http(self):
        context = new_trace_context()
        value = context.header_value()
        assert value.isascii()
        assert "\n" not in value and "\r" not in value
