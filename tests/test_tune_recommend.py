"""Grid sweeps, ranking semantics, and cluster weight recommendations."""

import pytest

from repro.errors import TuneError
from repro.serve.batcher import MAX_BATCH_CEILING, BatchPolicy
from repro.tune.calibrate import CalibratedWorkstation, StageCost
from repro.tune.recommend import (
    CandidateConfig,
    TuneRecommendation,
    recommend_policy,
    recommend_weights,
)

from tests.test_tune_calibrate import make_snapshot

BATCHING_COSTS = {
    "assembly": StageCost(setup=0.0, unit=0.002),
    "solve": StageCost(setup=0.006, unit=0.001),
    "postprocess": StageCost(setup=0.002, unit=0.0005),
    "serialize": StageCost(setup=0.0, unit=0.0002),
}


def saturated_model():
    """A calibrated model of a saturated max_batch=1 server where the
    per-flush setup makes batching genuinely profitable."""
    snap = make_snapshot(requests=1000, uptime=10.0, batch=1,
                         stage_costs=BATCHING_COSTS, latency_ms=60.0)
    return CalibratedWorkstation.fit(snap, probe=BATCHING_COSTS,
                                     min_samples=16)


class TestGridValidation:
    def test_empty_batch_grid(self):
        with pytest.raises(TuneError, match="empty grid"):
            recommend_policy(saturated_model(),
                             BatchPolicy(max_batch=1, max_wait=0.0),
                             batch_grid=())

    def test_non_integer_batch(self):
        with pytest.raises(TuneError, match="positive integers"):
            recommend_policy(saturated_model(),
                             BatchPolicy(max_batch=1, max_wait=0.0),
                             batch_grid=(1, 2.5))

    def test_batch_grid_beyond_ceiling(self):
        with pytest.raises(TuneError, match="ceiling"):
            recommend_policy(saturated_model(),
                             BatchPolicy(max_batch=1, max_wait=0.0),
                             batch_grid=(MAX_BATCH_CEILING + 1,))

    def test_negative_wait(self):
        with pytest.raises(TuneError, match="milliseconds"):
            recommend_policy(saturated_model(),
                             BatchPolicy(max_batch=1, max_wait=0.0),
                             wait_grid_ms=(-1.0,))

    def test_empty_wait_grid(self):
        with pytest.raises(TuneError, match="empty grid"):
            recommend_policy(saturated_model(),
                             BatchPolicy(max_batch=1, max_wait=0.0),
                             wait_grid_ms=())


class TestRecommendPolicy:
    def test_saturated_server_gets_a_batched_recommendation(self):
        recommendation = recommend_policy(
            saturated_model(), BatchPolicy(max_batch=1, max_wait=0.0))
        assert recommendation.best.max_batch > 1
        assert recommendation.predicted_improvement > 0.10
        assert recommendation.predicted_delta_ms < 0.0

    def test_feasible_candidates_rank_before_infeasible(self):
        recommendation = recommend_policy(
            saturated_model(), BatchPolicy(max_batch=1, max_wait=0.0))
        feasibility = [prediction.feasible
                       for _config, prediction in recommendation.sweep]
        first_infeasible = (feasibility.index(False)
                            if False in feasibility else len(feasibility))
        assert all(feasibility[:first_infeasible])
        assert not any(feasibility[first_infeasible:])

    def test_sweep_is_sorted_by_predicted_latency_among_feasible(self):
        recommendation = recommend_policy(
            saturated_model(), BatchPolicy(max_batch=1, max_wait=0.0))
        feasible = [prediction.latency_seconds
                    for _config, prediction in recommendation.sweep
                    if prediction.feasible]
        assert feasible == sorted(feasible)

    def test_light_load_keeps_small_batches(self):
        snap = make_snapshot(requests=100, uptime=100.0, batch=1,
                             stage_costs=BATCHING_COSTS, latency_ms=12.0)
        calibrated = CalibratedWorkstation.fit(snap, probe=BATCHING_COSTS,
                                               min_samples=16)
        recommendation = recommend_policy(
            calibrated, BatchPolicy(max_batch=1, max_wait=0.0))
        # 1 req/s against ~10ms service: batching buys nothing.
        assert recommendation.predicted_improvement < 0.10


class TestImprovementSemantics:
    def _prediction(self, *, feasible, latency, throughput):
        from repro.tune.calibrate import ServingPrediction

        return ServingPrediction(
            policy=BatchPolicy(max_batch=1, max_wait=0.0), exec_procs=1,
            batch_size=1.0, service_seconds=latency,
            latency_seconds=latency, throughput_rps=throughput,
            feasible=feasible, utilization=0.5 if feasible else 2.0)

    def _recommendation(self, now, best):
        config = CandidateConfig(max_batch=1, max_wait=0.0)
        return TuneRecommendation(current=config, current_prediction=now,
                                  best=config, best_prediction=best,
                                  sweep=[(config, best)])

    def test_feasible_to_feasible_is_latency_delta(self):
        now = self._prediction(feasible=True, latency=0.040, throughput=25)
        best = self._prediction(feasible=True, latency=0.030, throughput=33)
        assert self._recommendation(now, best).predicted_improvement == (
            pytest.approx(0.25))

    def test_escaping_saturation_is_full_improvement(self):
        now = self._prediction(feasible=False, latency=0.010, throughput=100)
        best = self._prediction(feasible=True, latency=0.030, throughput=300)
        assert self._recommendation(now, best).predicted_improvement == 1.0

    def test_both_infeasible_compares_capacity(self):
        now = self._prediction(feasible=False, latency=0.010, throughput=100)
        best = self._prediction(feasible=False, latency=0.050, throughput=250)
        assert self._recommendation(now, best).predicted_improvement == (
            pytest.approx(0.6))

    def test_no_gain_is_zero_not_negative(self):
        now = self._prediction(feasible=False, latency=0.010, throughput=100)
        best = self._prediction(feasible=False, latency=0.010, throughput=80)
        assert self._recommendation(now, best).predicted_improvement == 0.0


class TestRecommendWeights:
    def test_weights_proportional_to_service_rate(self):
        recommendation = recommend_weights({
            "fast": {"completed": 300.0, "latency_sum_ms": 3000.0},
            "slow": {"completed": 100.0, "latency_sum_ms": 3000.0},
        })
        assert recommendation.weights["fast"] == pytest.approx(0.75)
        assert recommendation.weights["slow"] == pytest.approx(0.25)
        assert recommendation.shift == pytest.approx(0.25)

    def test_idle_replica_keeps_uniform_share(self):
        recommendation = recommend_weights({
            "a": {"completed": 200.0, "latency_sum_ms": 2000.0},
            "b": {"completed": 0.0, "latency_sum_ms": 0.0},
        })
        # No evidence about b: it gets the mean of the observed rates,
        # i.e. an even split rather than starvation.
        assert recommendation.weights["b"] == pytest.approx(0.5)
        assert recommendation.rates["b"] == 0.0

    def test_empty_windows_raise(self):
        with pytest.raises(TuneError, match="no replica windows"):
            recommend_weights({})

    def test_weights_sum_to_one(self):
        recommendation = recommend_weights({
            "a": {"completed": 10.0, "latency_sum_ms": 500.0},
            "b": {"completed": 20.0, "latency_sum_ms": 500.0},
            "c": {"completed": 30.0, "latency_sum_ms": 500.0},
        })
        assert sum(recommendation.weights.values()) == pytest.approx(1.0)
