"""End-to-end tests: the HTTP front end on an ephemeral port."""

import json
import threading
import time
import urllib.request

import pytest

from repro.core.api import AnalyzeRequest, canonical_json, serialize_analysis
from repro.errors import DeadlineExceededError, ServeError
from repro.serve import AnalysisService, ServeClient, start_server
from repro.serve.http import AnalysisHTTPServer


@pytest.fixture
def served():
    """A live service + server on an ephemeral port, torn down cleanly."""
    service = AnalysisService(max_batch=32, max_wait=0.05, cache_size=128,
                              n_workers=2, queue_limit=128)
    server = start_server(service)
    client = ServeClient(port=server.port)
    client.wait_until_ready()
    yield service, server, client
    # Close the keep-alive pool first: each pooled connection pins one
    # server handler thread, and those must exit for a clean teardown.
    client.close()
    server.stop()
    assert service.close(timeout=10.0)


class TestEndpoints:
    def test_healthz(self, served):
        _, _, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert "queue_depth" in health

    def test_analyze_roundtrip_is_canonical(self, served):
        _, _, client = served
        raw = client.analyze_raw("2412", 4.0, n_panels=100, reynolds=1e6)
        request = AnalyzeRequest(airfoil="2412", alpha_degrees=4.0,
                                 reynolds=1e6, n_panels=100)
        assert raw == canonical_json(serialize_analysis(request, request.run()))
        record = json.loads(raw)
        assert 0.6 < record["cl"] < 0.9

    def test_analyze_batch_preserves_order_and_isolates_errors(self, served):
        _, _, client = served
        results = client.analyze_batch([
            {"airfoil": "0012", "alpha_degrees": 0.0, "n_panels": 60,
             "reynolds": 0},
            {"airfoil": "99", "n_panels": 60},  # invalid NACA code
            {"airfoil": "2412", "alpha_degrees": 4.0, "n_panels": 60,
             "reynolds": 0},
        ])
        assert len(results) == 3
        assert abs(results[0]["cl"]) < 1e-6
        assert "error" in results[1] and results[1]["type"]
        assert results[2]["cl"] > 0.5

    def test_metrics_document_shape(self, served):
        _, _, client = served
        client.analyze("0012", 0.0, n_panels=60, reynolds=None)
        metrics = client.metrics()
        assert metrics["requests"]["admitted"] >= 1
        assert metrics["batching"]["batched_solves"] >= 1
        assert set(metrics["latency_ms"]) == {"count", "mean", "p50", "p90",
                                              "p99", "max"}
        assert metrics["cache"]["capacity"] == 128

    def test_bad_json_is_400(self, served):
        _, server, _ = served
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/analyze", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_invalid_request_is_serve_error(self, served):
        _, _, client = served
        with pytest.raises(ServeError, match="unknown request fields"):
            client.analyze({"airfoil": "2412", "bogus": 1})

    def test_unknown_path_is_404(self, served):
        _, server, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/nope", timeout=10)
        assert excinfo.value.code == 404


class TestServerLifecycle:
    def test_stop_before_start_returns_promptly(self):
        """Regression: stop() before start_background() called
        BaseServer.shutdown(), which waits on an event only
        serve_forever() sets — hanging forever.  It must just close the
        socket and return."""
        service = AnalysisService(max_batch=2, max_wait=0.0, cache_size=8,
                                  n_workers=1, queue_limit=8)
        server = AnalysisHTTPServer(("127.0.0.1", 0), service)
        start = time.monotonic()
        server.stop(timeout=1.0)
        assert time.monotonic() - start < 5.0
        assert service.close(timeout=5.0)

    def test_stop_is_idempotent_after_running(self, served):
        _, server, _ = served
        server.stop()
        server.stop()  # second call: no thread left, must not hang


class TestDeadlines:
    def test_expired_deadline_is_504_and_batchmates_succeed(self, served):
        """The acceptance scenario: a request whose deadline expires in
        the queue is dropped at batch collection — counted in /metrics,
        answered 504 — while the batchmates it was submitted with are
        answered normally."""
        service, _, client = served
        results = client.analyze_batch([
            {"airfoil": "0012", "alpha_degrees": 0.0, "n_panels": 60,
             "reynolds": 0},
            {"airfoil": "0012", "alpha_degrees": 1.0, "n_panels": 60,
             "reynolds": 0, "deadline_ms": 1e-3},  # expires while queued
            {"airfoil": "2412", "alpha_degrees": 4.0, "n_panels": 60,
             "reynolds": 0},
        ])
        assert len(results) == 3
        assert abs(results[0]["cl"]) < 1e-6
        assert results[1]["type"] == "DeadlineExceededError"
        assert "deadline" in results[1]["error"]
        assert results[2]["cl"] > 0.5
        metrics = client.metrics()
        assert metrics["requests"]["expired"] >= 1
        assert metrics["requests"]["completed"] >= 2
        # The expired request never reached a solve: only live systems
        # are accounted by the solver counters.
        assert service.metrics.batched_solves >= 1

    def test_single_expired_request_maps_to_504(self, served):
        _, _, client = served
        with pytest.raises(DeadlineExceededError, match="deadline"):
            client.analyze("2412", 4.0, n_panels=60, reynolds=None,
                           deadline_ms=1e-3)

    def test_deadline_header_is_honoured(self, served):
        _, server, _ = served
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/analyze",
            data=b'{"airfoil": "2412", "alpha": 4.0, "reynolds": 0, "n_panels": 60}',
            headers={"Content-Type": "application/json",
                     "X-Repro-Deadline-Ms": "0.001"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 504
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["type"] == "DeadlineExceededError"

    def test_generous_deadline_succeeds(self, served):
        _, _, client = served
        record = client.analyze("2412", 4.0, n_panels=60, reynolds=None,
                                deadline_ms=30_000.0)
        assert record["cl"] > 0.5

    def test_invalid_deadline_header_is_400(self, served):
        _, server, _ = served
        for value in ("not-a-number", "-5", "0"):
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/analyze",
                data=b'{"airfoil": "0012", "reynolds": 0, "n_panels": 60}',
                headers={"Content-Type": "application/json",
                         "X-Repro-Deadline-Ms": value},
                method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_deadline_field_does_not_perturb_canonical_record(self, served):
        """deadline_ms is transport metadata: the response bytes must
        stay identical to the CLI's --json output for the same input."""
        _, _, client = served
        raw = client.analyze_raw(
            {"airfoil": "2412", "alpha_degrees": 4.0, "reynolds": 1e6,
             "n_panels": 100, "deadline_ms": 60_000.0})
        request = AnalyzeRequest(airfoil="2412", alpha_degrees=4.0,
                                 reynolds=1e6, n_panels=100)
        assert raw == canonical_json(serialize_analysis(request, request.run()))


class TestConcurrentBatching:
    def test_32_identical_requests_batch_and_hit_cache(self):
        """The acceptance scenario: 32 concurrent identical requests
        produce at least one batched solve, a nonzero cache hit rate,
        and a graceful shutdown with no stray threads."""
        baseline_threads = threading.active_count()
        service = AnalysisService(max_batch=32, max_wait=0.05, cache_size=64,
                                  n_workers=2, queue_limit=64)
        server = start_server(service)
        client = ServeClient(port=server.port)
        client.wait_until_ready()

        barrier = threading.Barrier(32)
        records, errors = [None] * 32, []

        def call(index):
            try:
                barrier.wait(10.0)
                records[index] = client.analyze("2412", 4.0, n_panels=60,
                                                reynolds=5e5)
            except Exception as error:  # surface failures in the test body
                errors.append(error)

        threads = [threading.Thread(target=call, args=(index,))
                   for index in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert all(record == records[0] for record in records)
        assert 0.6 < records[0]["cl"] < 0.9

        metrics = client.metrics()
        assert metrics["requests"]["completed"] == 32
        assert metrics["batching"]["batched_solves"] >= 1
        assert metrics["cache"]["hits"] > 0
        assert metrics["cache"]["hit_rate"] > 0.0
        # Identical requests coalesce: far fewer systems solved than served.
        assert metrics["batching"]["solved_systems"] < 32

        # The client's keep-alive pool pins one server handler thread
        # per connection; closing it is what lets the server quiesce.
        client.close()
        server.stop()
        assert service.close(timeout=10.0)
        deadline = time.monotonic() + 10.0
        while (threading.active_count() > baseline_threads
               and time.monotonic() < deadline):
            time.sleep(0.02)
        assert threading.active_count() == baseline_threads

    def test_repeat_after_quiesce_is_a_fast_cache_hit(self, served):
        service, _, client = served
        first = client.analyze("0012", 2.0, n_panels=60, reynolds=None)
        second = client.analyze("0012", 2.0, n_panels=60, reynolds=None)
        assert first == second
        assert service.cache.hits >= 1
