"""Tests for the constrained genetic optimization."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.geometry import naca
from repro.optimize import (
    ConstrainedEvaluator,
    DesignConstraints,
    FitnessEvaluator,
    GAConfig,
    GenomeLayout,
    GeneticOptimizer,
)


@pytest.fixture(scope="module")
def layout():
    return GenomeLayout(n_upper=5, n_lower=5)


@pytest.fixture(scope="module")
def base(layout):
    return FitnessEvaluator(layout=layout, n_panels=60, reynolds=4e5)


THICK_GENOME = np.array([0.06, 0.09, 0.09, 0.07, 0.04,
                         -0.04, -0.05, -0.05, -0.04, -0.02])
# Feasible for the base evaluator but only ~0.07 thick.
THIN_GENOME = np.array([0.04, 0.05, 0.05, 0.04, 0.025,
                        -0.015, -0.02, -0.02, -0.015, -0.01])


class TestDesignConstraints:
    def test_satisfied_section_has_zero_violation(self, naca2412):
        constraints = DesignConstraints(min_thickness=0.10)
        assert constraints.total_violation(naca2412) == 0.0

    def test_thickness_violation_magnitude(self, naca2412):
        constraints = DesignConstraints(min_thickness=0.20)
        violation = constraints.violations(naca2412)["thickness"]
        assert violation == pytest.approx(0.20 - naca2412.max_thickness,
                                          abs=1e-3)

    def test_camber_constraint(self):
        constraints = DesignConstraints(min_thickness=None, max_camber=0.01)
        cambered = naca("4412", 120)
        symmetric = naca("0012", 120)
        assert constraints.total_violation(cambered) > 0.0
        assert constraints.total_violation(symmetric) == pytest.approx(0.0, abs=1e-4)

    def test_area_constraint(self, naca2412):
        constraints = DesignConstraints(min_thickness=None, min_area=1.0)
        assert constraints.total_violation(naca2412) > 0.5

    def test_moment_constraint_needs_cm(self, naca2412):
        constraints = DesignConstraints(min_thickness=None,
                                        max_nose_down_moment=0.02)
        # Without a cm value the moment constraint is not evaluated.
        assert "moment" not in constraints.violations(naca2412)
        assert constraints.violations(naca2412, cm=-0.06)["moment"] == pytest.approx(0.04)

    def test_disabled_constraints_ignore_everything(self, naca2412):
        constraints = DesignConstraints(min_thickness=None)
        assert constraints.total_violation(naca2412) == 0.0


class TestConstrainedEvaluator:
    def test_thick_candidate_unpenalized(self, base):
        constrained = ConstrainedEvaluator(
            base=base, constraints=DesignConstraints(min_thickness=0.08)
        )
        raw = base.evaluate(THICK_GENOME)
        wrapped = constrained.evaluate(THICK_GENOME)
        assert wrapped.fitness == pytest.approx(raw.fitness)

    def test_thin_candidate_penalized(self, base):
        constrained = ConstrainedEvaluator(
            base=base, constraints=DesignConstraints(min_thickness=0.10)
        )
        raw = base.evaluate(THIN_GENOME)
        wrapped = constrained.evaluate(THIN_GENOME)
        assert raw.feasible
        assert wrapped.fitness < 0.8 * raw.fitness
        assert "constraint violation" in wrapped.failure

    def test_penalty_monotone_in_violation(self, base):
        loose = ConstrainedEvaluator(
            base=base, constraints=DesignConstraints(min_thickness=0.09)
        )
        tight = ConstrainedEvaluator(
            base=base, constraints=DesignConstraints(min_thickness=0.14)
        )
        assert tight.evaluate(THIN_GENOME).fitness < loose.evaluate(
            THIN_GENOME
        ).fitness

    def test_infeasible_passthrough(self, base):
        constrained = ConstrainedEvaluator(base=base)
        crossed = np.concatenate([np.full(5, 0.02), np.full(5, 0.03)])
        record = constrained.evaluate(crossed)
        assert not record.feasible

    def test_invalid_penalty_scale(self, base):
        with pytest.raises(OptimizationError):
            ConstrainedEvaluator(base=base, penalty_scale=0.0)

    def test_ga_respects_camber_constraint(self, base, layout):
        """L/D maximization loves camber; capping it steers the GA to a
        visibly straighter champion at a lower (penalized-free) score."""
        config = GAConfig(population_size=16, generations=5)
        cap = DesignConstraints(min_thickness=None, max_camber=0.02)
        unconstrained = GeneticOptimizer(evaluator=base, config=config).run(
            np.random.default_rng(4)
        )
        constrained_eval = ConstrainedEvaluator(base=base, constraints=cap)
        constrained = GeneticOptimizer(
            evaluator=constrained_eval, config=config
        ).run(np.random.default_rng(4))

        def champion_violation(history):
            parametrization = layout.to_parametrization(history.champion.genome)
            return cap.total_violation(parametrization.to_airfoil(60))

        assert champion_violation(unconstrained) > 0.01  # camber-hungry
        assert champion_violation(constrained) < champion_violation(unconstrained)
        # Constraints cost performance: the capped champion cannot beat
        # the unconstrained one.
        assert constrained.champion.fitness <= unconstrained.champion.fitness
