"""Regression tests for the tuner/metrics seams the autotuner consumes.

Each test class pins one of the PR's satellite bugfixes:

* ``tune_slices``/``tune_distribution`` grid validation (silent skips,
  duplicates, out-of-range candidates),
* honest ``Optional[int]`` annotations and degenerate-timeline
  ``ScheduleError``s in the pipeline metrics,
* ``serve.metrics.percentile`` boundary semantics.

All were demonstrated failing against the pre-fix code.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.hardware import paper_workstation
from repro.pipeline import Workload, tune_distribution, tune_slices
from repro.pipeline.metrics import HybridMetrics, lower_bound_gap
from repro.serve.metrics import percentile


@pytest.fixture(scope="module")
def workload():
    return Workload(batch=64, n=200, precision="single")


@pytest.fixture(scope="module")
def gpu_station():
    return paper_workstation(sockets=2, accelerator="k80-half", precision="single")


@pytest.fixture(scope="module")
def dual_station():
    return paper_workstation(sockets=2, accelerator="k80-dual", precision="single")


class TestSliceGridValidation:
    def test_all_candidates_exceed_batch_names_grid_and_batch(
            self, workload, gpu_station):
        # Pre-fix: every candidate was skipped silently and the sweep
        # surfaced as a confusing "no feasible slice counts" error.
        with pytest.raises(ScheduleError, match=r"128.*256.*exceeds.*64"):
            tune_slices(workload, gpu_station, candidates=(128, 256))

    def test_duplicates_and_unsorted_grids_are_normalized(
            self, workload, gpu_station):
        # Pre-fix: duplicates were re-simulated and the sweep kept the
        # caller's ordering.
        result = tune_slices(workload, gpu_station,
                             candidates=(10, 5, 5, 1, 10))
        assert [p for p, _ in result.sweep] == [1.0, 5.0, 10.0]

    @pytest.mark.parametrize("bad", [0, -3, 2.5])
    def test_rejects_non_positive_or_fractional_slice_counts(
            self, workload, gpu_station, bad):
        with pytest.raises(ScheduleError, match="positive integers"):
            tune_slices(workload, gpu_station, candidates=(4, bad))

    def test_empty_grid_raises(self, workload, gpu_station):
        with pytest.raises(ScheduleError, match="empty grid"):
            tune_slices(workload, gpu_station, candidates=())

    def test_infeasible_candidates_still_skipped_when_some_fit(
            self, workload, gpu_station):
        result = tune_slices(workload, gpu_station, candidates=(8, 128))
        assert [p for p, _ in result.sweep] == [8.0]


class TestDistributionGridValidation:
    @pytest.mark.parametrize("bad", [0.0, -0.2, 1.5])
    def test_rejects_out_of_range_distributions(
            self, workload, dual_station, bad):
        with pytest.raises(ScheduleError, match=r"\(0, 1\]"):
            tune_distribution(workload, dual_station, candidates=(0.5, bad))

    def test_duplicates_and_unsorted_grids_are_normalized(
            self, workload, dual_station):
        result = tune_distribution(workload, dual_station,
                                   candidates=(0.8, 0.6, 0.6, 0.7))
        assert [p for p, _ in result.sweep] == [0.6, 0.7, 0.8]

    def test_empty_grid_raises(self, workload, dual_station):
        with pytest.raises(ScheduleError, match="empty grid"):
            tune_distribution(workload, dual_station, candidates=())


class TestHonestAnnotationsAndDegenerateMetrics:
    def test_stages_annotations_are_optional(self):
        from repro.pipeline import autotune, schedules, theory
        # Pre-fix these read ``stages: int = None``.
        assert schedules.hybrid.__annotations__["stages"] == "Optional[int]"
        assert theory.predict_hybrid.__annotations__["stages"] == "Optional[int]"
        assert autotune.tune_slices.__annotations__["stages"] == "Optional[int]"

    def _degenerate(self, **overrides):
        fields = dict(name="degenerate", wall_time=0.0, assembly_busy=0.0,
                      assembly_exposed=0.0, solve_busy=0.0, overhead=0.0,
                      baseline_wall_time=1.0)
        fields.update(overrides)
        return HybridMetrics(**fields)

    def test_speedup_zero_wall_time_raises_schedule_error(self):
        # Pre-fix: ZeroDivisionError.
        with pytest.raises(ScheduleError, match="degenerate wall time"):
            self._degenerate().speedup

    def test_speedup_without_baseline_is_still_none(self):
        assert self._degenerate(baseline_wall_time=None).speedup is None

    def test_lower_bound_gap_zero_solve_busy_raises_schedule_error(self):
        # Pre-fix: silently returned math.inf.
        with pytest.raises(ScheduleError, match="degenerate solve busy"):
            lower_bound_gap(self._degenerate(wall_time=1.0))


class TestPercentileBoundaries:
    def test_zero_fraction_is_true_min(self):
        assert percentile([1.0, 2.0, 9.0], 0.0) == 1.0

    def test_one_fraction_is_true_max(self):
        assert percentile([1.0, 2.0, 9.0], 1.0) == 9.0

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2.0, -1.0, math.nan])
    def test_out_of_range_fraction_raises_value_error(self, bad):
        # Pre-fix: clamped silently to the min/max rank.
        with pytest.raises(ValueError, match="fraction"):
            percentile([1.0, 2.0, 3.0], bad)

    def test_empty_window_is_none_even_at_boundaries(self):
        assert percentile([], 0.0) is None
        assert percentile([], 1.0) is None

    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1),
        f1=st.floats(min_value=0.0, max_value=1.0),
        f2=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone_and_always_an_element(self, values, f1, f2):
        window = sorted(values)
        low, high = sorted((f1, f2))
        p_low, p_high = percentile(window, low), percentile(window, high)
        assert p_low in window and p_high in window
        assert p_low <= p_high
