"""End-to-end tests of the jobs HTTP API, the CLI, and crash recovery."""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ServeError
from repro.jobs import JobState
from repro.serve import AnalysisService, ServeClient, start_server

SPEC = {"seed": 7, "checkpoint_every": 2,
        "ga": {"population_size": 10, "generations": 4, "keep_best": 2},
        "fitness": {"n_panels": 60}}


def reference_history():
    from repro.jobs import JobSpec, history_to_dict
    from repro.optimize import GeneticOptimizer

    spec = JobSpec.from_dict(SPEC)
    history = GeneticOptimizer(
        evaluator=spec.fitness_evaluator(), config=spec.ga_config(),
    ).run(np.random.default_rng(spec.seed))
    return history_to_dict(history)


@pytest.fixture
def served_jobs(tmp_path):
    """A live service with the jobs subsystem enabled."""
    service = AnalysisService(max_batch=32, max_wait=0.02, n_workers=2,
                              jobs_dir=str(tmp_path / "jobs"), job_slots=1)
    server = start_server(service)
    client = ServeClient(port=server.port)
    client.wait_until_ready()
    yield service, server, client
    client.close()
    server.stop()
    assert service.close(timeout=30.0)


class TestJobsEndpoints:
    def test_submit_watch_fetch_lifecycle(self, served_jobs):
        _, _, client = served_jobs
        record = client.submit_job(SPEC)
        assert record["state"] == JobState.PENDING
        assert record["id"].startswith("job-")
        assert record["spec"]["seed"] == 7
        final = client.wait_job(record["id"], timeout=120.0)
        assert final["state"] == JobState.DONE
        assert final["generations_done"] == 4
        champion = final["result"]["champion"]
        assert champion["fitness"] > 0
        assert len(champion["genome"]) == 12  # default layout: 6 + 6
        # The job's history equals the uninterrupted serial GA run.
        assert json.dumps(final["result"]["history"], sort_keys=True) == \
            json.dumps(reference_history(), sort_keys=True)

    def test_events_stream_pagination(self, served_jobs):
        _, _, client = served_jobs
        record = client.submit_job(SPEC)
        client.wait_job(record["id"], timeout=120.0)
        page = client.job_events(record["id"])
        assert [event["seq"] for event in page["events"]] == [1, 2, 3, 4]
        assert [event["generation"] for event in page["events"]] == [0, 1, 2, 3]
        assert page["next_since"] == 4
        assert page["state"] == JobState.DONE
        rest = client.job_events(record["id"], since=3)
        assert [event["seq"] for event in rest["events"]] == [4]
        empty = client.job_events(record["id"], since=4)
        assert empty["events"] == [] and empty["next_since"] == 4

    def test_list_omits_results(self, served_jobs):
        _, _, client = served_jobs
        record = client.submit_job(SPEC)
        client.wait_job(record["id"], timeout=120.0)
        listing = client.jobs()
        assert len(listing) == 1
        assert listing[0]["id"] == record["id"]
        assert "result" not in listing[0]

    def test_cancel_endpoint(self, served_jobs):
        _, _, client = served_jobs
        spec = dict(SPEC, ga=dict(SPEC["ga"], generations=50))
        record = client.submit_job(spec)
        cancelled = client.cancel_job(record["id"])
        assert cancelled["cancel_requested"]
        final = client.wait_job(record["id"], timeout=120.0)
        assert final["state"] == JobState.CANCELLED

    def test_unknown_job_is_404(self, served_jobs):
        _, _, client = served_jobs
        with pytest.raises(ServeError, match="404"):
            client.job("job-missing")
        with pytest.raises(ServeError, match="404"):
            client.job_events("job-missing")
        with pytest.raises(ServeError, match="404"):
            client.cancel_job("job-missing")

    def test_invalid_spec_is_400(self, served_jobs):
        _, _, client = served_jobs
        with pytest.raises(ServeError, match="400"):
            client.submit_job({"seed": 0, "bogus": True})
        with pytest.raises(ServeError, match="400"):
            client.submit_job({"seed": -3})

    def test_bad_since_is_400(self, served_jobs):
        _, _, client = served_jobs
        record = client.submit_job(SPEC)
        with pytest.raises(ServeError, match="400"):
            client._get(f"/jobs/{record['id']}/events?since=soon")
        client.wait_job(record["id"], timeout=120.0)

    def test_jobs_disabled_is_404(self):
        service = AnalysisService(n_workers=1)
        server = start_server(service)
        try:
            client = ServeClient(port=server.port)
            client.wait_until_ready()
            with pytest.raises(ServeError, match="jobs are not enabled"):
                client.jobs()
            with pytest.raises(ServeError, match="jobs are not enabled"):
                client.submit_job(SPEC)
        finally:
            server.stop()
            service.close()

    def test_request_id_echoed(self, served_jobs):
        _, _, client = served_jobs
        record = client.submit_job(SPEC, request_id="jobs-test-1")
        assert client.last_request_id == "jobs-test-1"
        client.wait_job(record["id"], timeout=120.0)


class TestJobsObservability:
    def test_metrics_and_prometheus(self, served_jobs):
        _, _, client = served_jobs
        record = client.submit_job(SPEC)
        client.wait_job(record["id"], timeout=120.0)
        jobs = client.metrics()["jobs"]
        assert jobs["submitted"] == 1
        assert jobs["done"] == 1
        assert jobs["generations_completed"] == 4
        assert jobs["checkpoints"] == 1  # cadence 2, no checkpoint at the end
        assert jobs["states"][JobState.DONE] == 1
        assert jobs["slots"] == 1
        prometheus = client.metrics_prometheus()
        assert "repro_jobs_done 1" in prometheus
        assert "repro_jobs_generations_completed 4" in prometheus
        assert 'repro_jobs_states_DONE 1' in prometheus

    def test_generation_stage_in_live_walo(self, served_jobs):
        _, _, client = served_jobs
        record = client.submit_job(SPEC)
        client.wait_job(record["id"], timeout=120.0)
        stages = client.metrics()["stages"]
        assert stages["generation_seconds"] > 0.0


class TestJobsCLI:
    def test_submit_watch_status_list_cancel(self, served_jobs, capsys):
        _, server, _ = served_jobs
        port = str(server.port)
        assert main(["jobs", "submit", "--port", port, "--seed", "3",
                     "--generations", "2", "--population", "8",
                     "--watch"]) == 0
        out = capsys.readouterr().out
        assert "submitted job-" in out
        assert "gen 1:" in out and "gen 2:" in out
        assert "DONE: best fitness" in out
        job_id = re.search(r"submitted (job-\w+)", out).group(1)

        assert main(["jobs", "status", "--port", port, job_id]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == JobState.DONE
        assert status["spec"]["ga"]["generations"] == 2

        assert main(["jobs", "list", "--port", port]) == 0
        assert job_id in capsys.readouterr().out

        assert main(["jobs", "cancel", "--port", port, job_id]) == 0
        assert "DONE" in capsys.readouterr().out  # terminal: no-op

    def test_spec_file_with_flag_overrides(self, served_jobs, tmp_path,
                                           capsys):
        _, server, _ = served_jobs
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC), encoding="utf-8")
        assert main(["jobs", "submit", "--port", str(server.port),
                     "--spec", f"@{spec_path}", "--generations", "1"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["seed"] == 7  # from the file
        assert record["spec"]["ga"]["generations"] == 1  # flag wins
        ServeClient(port=server.port).wait_job(record["id"], timeout=120.0)

    def test_invalid_inline_spec_is_an_error(self, served_jobs, capsys):
        _, server, _ = served_jobs
        assert main(["jobs", "submit", "--port", str(server.port),
                     "--spec", "{not json"]) == 1
        assert "not valid JSON" in capsys.readouterr().err


class TestCrashRecovery:
    """SIGKILL a serve process mid-job; a restart on the same jobs dir
    must resume from the checkpoint and produce the identical history."""

    def start_server_process(self, jobs_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop("REPRO_EXEC_BACKEND", None)  # keep the kill window simple
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs-dir", str(jobs_dir), "--log-format", "off",
             "--workers", "1"],
            stdout=subprocess.PIPE, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        banner = proc.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        assert match, f"no port in banner: {banner!r}"
        return proc, int(match.group(1))

    def test_sigkill_resume_produces_identical_history(self, tmp_path):
        jobs_dir = tmp_path / "jobs"
        proc, port = self.start_server_process(jobs_dir)
        try:
            client = ServeClient(port=port)
            client.wait_until_ready(timeout=30.0)
            record = client.submit_job(SPEC)
            # Wait until at least one checkpoint exists (cadence 2 ->
            # written after generation 2 of 4), then kill -9.
            checkpoint = jobs_dir / "checkpoints" / f"{record['id']}.json"
            deadline = time.monotonic() + 120.0
            while not checkpoint.exists():
                assert time.monotonic() < deadline, "checkpoint never appeared"
                time.sleep(0.02)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        proc, port = self.start_server_process(jobs_dir)
        try:
            client = ServeClient(port=port)
            client.wait_until_ready(timeout=30.0)
            final = client.wait_job(record["id"], timeout=120.0)
            assert final["state"] == JobState.DONE
            assert final["resumes"] == 1
            assert json.dumps(final["result"]["history"], sort_keys=True) == \
                json.dumps(reference_history(), sort_keys=True)
            assert client.metrics()["jobs"]["resumed"] == 1
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=30)


class TestServiceLifecycle:
    def test_close_checkpoints_running_job(self, tmp_path):
        """Service close() stops the runner gracefully: the in-flight
        job stays RUNNING on disk with a checkpoint, ready to resume."""
        from repro.jobs import JobSpec, JobStore

        jobs_dir = str(tmp_path / "jobs")
        service = AnalysisService(n_workers=1, jobs_dir=jobs_dir, job_slots=1)
        spec = dict(SPEC, ga=dict(SPEC["ga"], generations=200,
                                  population_size=16))
        record = service.jobs.submit(JobSpec.from_dict(spec))
        store = service.jobs.store
        deadline = time.monotonic() + 120.0
        while store.get(record.id).generations_done < 2:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert service.close(timeout=30.0)
        reopened = JobStore(jobs_dir)
        persisted = reopened.get(record.id)
        assert persisted.state == JobState.RUNNING
        assert reopened.load_checkpoint(record.id) is not None
        reopened.close()
