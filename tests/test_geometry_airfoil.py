"""Tests for repro.geometry.airfoil and sampling."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    Airfoil,
    cosine_spacing,
    half_cosine_spacing,
    naca,
    spacing,
    uniform_spacing,
)


class TestSampling:
    def test_uniform_endpoints(self):
        x = uniform_spacing(11)
        assert x[0] == 0.0 and x[-1] == 1.0
        assert np.diff(x) == pytest.approx(np.full(10, 0.1))

    def test_cosine_endpoints_and_clustering(self):
        x = cosine_spacing(51)
        assert x[0] == pytest.approx(0.0)
        assert x[-1] == pytest.approx(1.0)
        steps = np.diff(x)
        assert steps[0] < steps[len(steps) // 2]  # clustered at LE
        assert steps[-1] < steps[len(steps) // 2]  # clustered at TE

    def test_half_cosine_clusters_leading_edge_only(self):
        x = half_cosine_spacing(51)
        steps = np.diff(x)
        assert steps[0] < steps[-1]

    def test_spacing_dispatch(self):
        assert spacing("uniform", 5) == pytest.approx(uniform_spacing(5))
        with pytest.raises(GeometryError, match="unknown spacing"):
            spacing("exponential", 5)

    def test_too_few_points(self):
        with pytest.raises(GeometryError):
            cosine_spacing(1)

    def test_monotonic(self):
        for kind in ("uniform", "cosine", "half-cosine"):
            assert np.all(np.diff(spacing(kind, 33)) > 0)


class TestAirfoilConstruction:
    def test_requires_closed(self):
        open_loop = [[1, 0], [0.5, 0.1], [0, 0], [0.5, -0.1]]
        with pytest.raises(GeometryError, match="closed"):
            Airfoil(points=np.array(open_loop, dtype=float))

    def test_requires_ccw(self):
        cw = np.array([[1, 0], [0.5, -0.1], [0, 0], [0.5, 0.1], [1, 0]], dtype=float)
        with pytest.raises(GeometryError, match="counter-clockwise"):
            Airfoil(points=cw)

    def test_from_points_reverses_cw(self):
        cw = np.array([[1, 0], [0.5, -0.1], [0, 0], [0.5, 0.1], [1, 0]], dtype=float)
        foil = Airfoil.from_points(cw)
        assert foil.n_panels == 4

    def test_from_points_closes_open_input(self):
        open_ccw = np.array([[1, 0], [0.5, 0.1], [0, 0], [0.5, -0.1]], dtype=float)
        foil = Airfoil.from_points(open_ccw)
        assert np.allclose(foil.points[0], foil.points[-1])

    def test_from_points_drops_duplicates(self):
        loop = np.array(
            [[1, 0], [0.5, 0.1], [0.5, 0.1], [0, 0], [0.5, -0.1], [1, 0]],
            dtype=float,
        )
        assert Airfoil.from_points(loop).n_panels == 4

    def test_too_few_panels(self):
        with pytest.raises(GeometryError, match="at least 3 panels"):
            Airfoil.from_points(np.array([[1, 0], [0, 0.5]], dtype=float))

    def test_points_immutable(self, naca2412):
        with pytest.raises((ValueError, RuntimeError)):
            naca2412.points[0, 0] = 5.0

    def test_from_surfaces_roundtrip(self, naca2412):
        upper, lower = naca2412.surfaces()
        rebuilt = Airfoil.from_surfaces(upper, lower, name="rebuilt")
        assert rebuilt.chord == pytest.approx(naca2412.chord, rel=1e-6)
        assert rebuilt.area == pytest.approx(naca2412.area, rel=1e-3)

    def test_from_surfaces_mismatched_le_raises(self):
        upper = np.array([[0, 0], [0.5, 0.1], [1, 0]], dtype=float)
        lower = np.array([[0.1, 0], [0.5, -0.1], [1, 0]], dtype=float)
        with pytest.raises(GeometryError, match="leading edge"):
            Airfoil.from_surfaces(upper, lower)


class TestAirfoilQuantities:
    def test_panel_count(self, naca2412):
        assert naca2412.n_panels == 160

    def test_panel_vectors_sum_to_zero(self, naca2412):
        # A closed loop's panel vectors telescope to zero.
        assert naca2412.panel_vectors.sum(axis=0) == pytest.approx([0.0, 0.0], abs=1e-12)

    def test_lengths_positive(self, naca2412):
        assert np.all(naca2412.panel_lengths > 0)

    def test_control_points_are_midpoints(self, naca2412):
        expected = 0.5 * (naca2412.points[:-1] + naca2412.points[1:])
        assert naca2412.control_points == pytest.approx(expected)

    def test_tangents_unit(self, naca2412):
        assert np.linalg.norm(naca2412.tangents, axis=1) == pytest.approx(
            np.ones(naca2412.n_panels)
        )

    def test_normals_outward(self, naca2412):
        # Outward normals point away from the centroid on average.
        offsets = naca2412.control_points - naca2412.points[:-1].mean(axis=0)
        alignment = np.einsum("ij,ij->i", offsets, naca2412.normals)
        assert np.mean(alignment > 0) > 0.95

    def test_normals_orthogonal_to_tangents(self, naca2412):
        dots = np.einsum("ij,ij->i", naca2412.normals, naca2412.tangents)
        assert dots == pytest.approx(np.zeros(naca2412.n_panels), abs=1e-12)

    def test_chord_unit(self, naca2412):
        assert naca2412.chord == pytest.approx(1.0, abs=2e-3)

    def test_trailing_edge_at_origin_convention(self, naca2412):
        assert naca2412.trailing_edge == pytest.approx([1.0, 0.0], abs=1e-6)

    def test_leading_edge_near_origin(self, naca2412):
        assert naca2412.leading_edge == pytest.approx([0.0, 0.0], abs=0.02)

    def test_max_thickness_naca(self, naca2412):
        assert naca2412.max_thickness == pytest.approx(0.12, abs=0.01)

    def test_area_positive_and_sane(self, naca2412):
        assert 0.05 < naca2412.area < 0.12

    def test_perimeter_exceeds_twice_chord(self, naca2412):
        assert naca2412.perimeter > 2.0 * naca2412.chord

    def test_with_name(self, naca2412):
        renamed = naca2412.with_name("renamed")
        assert renamed.name == "renamed"
        assert renamed.n_panels == naca2412.n_panels

    def test_astype(self, naca2412):
        single = naca2412.astype(np.float32)
        assert single.points.dtype == np.float32

    def test_surfaces_sorted_by_x(self, naca2412):
        upper, lower = naca2412.surfaces()
        assert np.all(np.diff(upper[:, 0]) >= 0)
        assert np.all(np.diff(lower[:, 0]) >= 0)
        assert upper[:, 1].max() > 0
        assert lower[:, 1].min() < 0
