"""Tests for the Xfoil-format polar I/O."""

import io

import pytest

from repro.errors import ViscousError
from repro.geometry import naca
from repro.viscous import compute_polar, polar_to_string, read_polar, write_polar
from repro.viscous.polar import Polar, PolarPoint


@pytest.fixture(scope="module")
def polar():
    return compute_polar(naca("2412", 100), [-2, 0, 2, 4], reynolds=1e6)


class TestWrite:
    def test_header_fields(self, polar):
        text = polar_to_string(polar)
        assert "Calculated polar for: NACA 2412" in text
        assert "Re =     1.000000 e 6" in text
        assert "alpha" in text and "CD" in text

    def test_row_count(self, polar):
        data_lines = [line for line in polar_to_string(polar).splitlines()
                      if line.strip() and line.lstrip()[0] in "-0123456789"
                      and "." in line]
        assert len(data_lines) == len(polar.points)

    def test_file_destination(self, polar, tmp_path):
        path = tmp_path / "naca2412.pol"
        write_polar(polar, str(path))
        assert path.exists()

    def test_separated_row_marker(self):
        polar = Polar(airfoil_name="x", reynolds=5e5, points=[
            PolarPoint(alpha_degrees=0.0, cl=0.5, cd=None, cm=-0.05,
                       separated=True),
        ])
        assert "9.99999" in polar_to_string(polar)


class TestRoundTrip:
    def test_values_preserved(self, polar):
        back = read_polar(io.StringIO(polar_to_string(polar)))
        assert back.airfoil_name == polar.airfoil_name
        assert back.reynolds == pytest.approx(polar.reynolds)
        assert len(back.points) == len(polar.points)
        for original, parsed in zip(polar.points, back.points):
            assert parsed.alpha_degrees == pytest.approx(
                original.alpha_degrees, abs=1e-3
            )
            assert parsed.cl == pytest.approx(original.cl, abs=1e-4)
            assert parsed.cd == pytest.approx(original.cd, abs=1e-5)
            assert parsed.cm == pytest.approx(original.cm, abs=1e-4)

    def test_separated_rows_round_trip(self):
        polar = Polar(airfoil_name="x", reynolds=5e5, points=[
            PolarPoint(alpha_degrees=0.0, cl=0.5, cd=0.01, cm=-0.05,
                       separated=False),
            PolarPoint(alpha_degrees=12.0, cl=1.2, cd=None, cm=-0.02,
                       separated=True),
        ])
        back = read_polar(io.StringIO(polar_to_string(polar)))
        assert back.points[0].cd == pytest.approx(0.01)
        assert back.points[1].cd is None
        assert back.points[1].separated

    def test_file_round_trip(self, polar, tmp_path):
        path = tmp_path / "p.pol"
        write_polar(polar, str(path))
        back = read_polar(str(path))
        assert back.airfoil_name == polar.airfoil_name


class TestRead:
    def test_empty_file_rejected(self):
        with pytest.raises(ViscousError, match="no data rows"):
            read_polar(io.StringIO("just a header\n"))

    def test_foreign_xfoil_file(self):
        """A hand-written snippet in genuine Xfoil layout parses."""
        text = (
            " Calculated polar for: AG25\n"
            " Mach =   0.000     Re =     0.250 e 6     Ncrit =   9.000\n"
            "   alpha    CL        CD       CDp       CM\n"
            "  ------ -------- --------- --------- --------\n"
            "  -1.000  -0.0561   0.01014   0.00434  -0.0441\n"
            "   0.000   0.0582   0.00968   0.00391  -0.0445\n"
        )
        polar = read_polar(io.StringIO(text))
        assert polar.airfoil_name == "AG25"
        assert polar.reynolds == pytest.approx(2.5e5)
        assert polar.points[1].cl == pytest.approx(0.0582)
