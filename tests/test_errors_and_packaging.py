"""Tests for the exception hierarchy and package-level surface."""

import pytest

import repro
from repro.errors import (
    CalibrationError,
    ExperimentError,
    GeometryError,
    HardwareModelError,
    LinalgError,
    OptimizationError,
    OverloadedError,
    PanelMethodError,
    ReproError,
    ScheduleError,
    ServeError,
    ViscousError,
)

ALL_ERRORS = (
    CalibrationError,
    ExperimentError,
    GeometryError,
    HardwareModelError,
    LinalgError,
    OptimizationError,
    OverloadedError,
    PanelMethodError,
    ScheduleError,
    ServeError,
    ViscousError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize("error", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        assert issubclass(error, Exception)

    def test_catching_base_catches_all(self):
        for error in ALL_ERRORS:
            with pytest.raises(ReproError):
                raise error("boom")

    def test_errors_are_distinct(self):
        assert len(set(ALL_ERRORS)) == len(ALL_ERRORS)

    def test_overloaded_is_a_serve_error(self):
        assert issubclass(OverloadedError, ServeError)

    def test_library_raises_its_own_errors(self):
        from repro.geometry import naca

        with pytest.raises(ReproError):
            naca("99", 100)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_api_exports(self):
        for name in ("analyze", "optimize", "simulate_hybrid",
                     "AirfoilAnalysis", "HybridExperiment", "Precision"):
            assert hasattr(repro, name)
            assert name in repro.__all__

    @pytest.mark.parametrize("module", [
        "repro.geometry", "repro.linalg", "repro.panel", "repro.viscous",
        "repro.optimize", "repro.hardware", "repro.pipeline",
        "repro.experiments", "repro.validation", "repro.viz",
        "repro.serve",
    ])
    def test_subpackage_all_resolves(self, module):
        """Every name in __all__ is actually importable."""
        import importlib

        imported = importlib.import_module(module)
        for name in imported.__all__:
            assert hasattr(imported, name), f"{module}.{name} missing"

    def test_report_command(self, capsys):
        """The CLI 'report' command emits the EXPERIMENTS.md preamble."""
        from repro.cli import main

        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# EXPERIMENTS")
        assert "Table 3" in out and "headline" in out.lower()
