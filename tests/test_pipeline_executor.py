"""Tests for the functional hybrid-pipeline executor."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.geometry import naca
from repro.hardware import paper_workstation
from repro.panel import Closure, Freestream, PanelSolver
from repro.pipeline import Workload, execute_hybrid, hybrid, simulate


@pytest.fixture(scope="module")
def foils():
    return [naca(code, 60) for code in
            ("2412", "0012", "4412", "2212", "4312", "0010")] * 2


@pytest.fixture(scope="module")
def station():
    return paper_workstation(sockets=2, accelerator="k80-half",
                             precision="double")


class TestFunctionalExecution:
    def test_physics_matches_direct_solver(self, foils, station):
        fs = Freestream.from_degrees(3.0)
        result = execute_hybrid(foils, station, 4, freestream=fs)
        direct = PanelSolver().solve_batch(foils, fs)
        assert result.lift_coefficients() == pytest.approx(
            [s.lift_coefficient for s in direct], abs=1e-12
        )

    def test_order_preserved(self, foils, station):
        result = execute_hybrid(foils, station, 5)
        for foil, solution in zip(foils, result.solutions):
            assert solution.airfoil is foil

    def test_timeline_matches_duration_only_schedule(self, foils, station):
        result = execute_hybrid(foils, station, 4)
        workload = Workload(batch=len(foils), n=60, precision="double")
        reference = simulate(hybrid(workload, station, 4)).makespan
        assert result.wall_time == pytest.approx(reference, abs=1e-12)

    def test_slicing_invariance_of_physics(self, foils, station):
        one = execute_hybrid(foils, station, 1)
        many = execute_hybrid(foils, station, 6)
        assert one.lift_coefficients() == pytest.approx(
            many.lift_coefficients(), abs=1e-12
        )

    def test_single_precision_device(self, foils):
        station = paper_workstation(sockets=2, accelerator="phi",
                                    precision="single")
        result = execute_hybrid(foils, station, 3)
        double = execute_hybrid(
            foils,
            paper_workstation(sockets=2, accelerator="phi", precision="double"),
            3,
        )
        difference = np.max(np.abs(
            result.lift_coefficients() - double.lift_coefficients()
        ))
        assert 0.0 < difference < 5e-3

    def test_zero_circulation_closure(self, station):
        from repro.validation import cylinder_airfoil

        cylinders = [cylinder_airfoil(60) for _ in range(3)]
        result = execute_hybrid(cylinders, station, 2,
                                closure=Closure.ZERO_CIRCULATION)
        assert result.lift_coefficients() == pytest.approx(
            np.zeros(3), abs=1e-9
        )

    def test_metrics_populated(self, foils, station):
        result = execute_hybrid(foils, station, 4)
        assert result.metrics.wall_time > 0
        assert result.metrics.solve_busy > 0
        assert result.metrics.overhead == pytest.approx(
            result.metrics.wall_time - result.metrics.solve_busy
        )

    def test_requires_airfoils(self, station):
        with pytest.raises(ScheduleError, match="at least one"):
            execute_hybrid([], station, 1)

    def test_requires_accelerator(self, foils):
        cpu_only_station = paper_workstation(sockets=2, precision="double")
        with pytest.raises(ScheduleError, match="accelerator"):
            execute_hybrid(foils, cpu_only_station, 2)

    def test_mismatched_panel_counts(self, station):
        mixed = [naca("2412", 60), naca("0012", 80)]
        with pytest.raises(ScheduleError, match="panel count"):
            execute_hybrid(mixed, station, 1)
