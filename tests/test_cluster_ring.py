"""Property tests for the consistent-hash ring."""

import pytest

from repro.cluster.ring import DEFAULT_VNODES, HashRing, _point
from repro.errors import ClusterError


def keys(n):
    return [f"cache-key-{index}" for index in range(n)]


class TestConstruction:
    def test_nodes_sorted_and_len(self):
        ring = HashRing(["b:2", "a:1", "c:3"])
        assert ring.nodes == ["a:1", "b:2", "c:3"]
        assert len(ring) == 3
        assert "a:1" in ring and "d:4" not in ring

    def test_duplicate_node_rejected(self):
        ring = HashRing(["a:1"])
        with pytest.raises(ClusterError, match="already contains"):
            ring.add("a:1")

    def test_empty_name_rejected(self):
        with pytest.raises(ClusterError, match="non-empty"):
            HashRing([""])

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ClusterError, match="vnodes"):
            HashRing(["a:1"], vnodes=0)

    def test_remove_unknown_rejected(self):
        with pytest.raises(ClusterError, match="does not contain"):
            HashRing(["a:1"]).remove("b:2")

    def test_empty_ring_lookup_rejected(self):
        with pytest.raises(ClusterError, match="empty"):
            HashRing().lookup("anything")


class TestDeterminism:
    def test_same_membership_same_ring(self):
        """Two independently built rings agree on every key — the
        property that lets any router process compute placements."""
        one = HashRing(["a:1", "b:2", "c:3"])
        two = HashRing(["c:3", "a:1", "b:2"])  # insertion order differs
        for key in keys(500):
            assert one.lookup(key) == two.lookup(key)
            assert one.preference(key) == two.preference(key)

    def test_point_is_stable(self):
        assert _point("x") == _point("x")
        assert _point("x") != _point("y")


class TestBalance:
    def test_ownership_is_roughly_uniform(self):
        """With default vnodes, no replica owns more than ~2x its fair
        share over a large key population."""
        nodes = [f"10.0.0.{index}:8000" for index in range(5)]
        ring = HashRing(nodes, vnodes=DEFAULT_VNODES)
        counts = ring.ownership(keys(5000))
        fair = 5000 / len(nodes)
        assert set(counts) == set(nodes)
        for node, count in counts.items():
            assert 0.5 * fair < count < 2.0 * fair, (node, count)

    def test_more_vnodes_tightens_spread(self):
        nodes = ["a:1", "b:2", "c:3", "d:4"]
        population = keys(4000)

        def spread(vnodes):
            counts = HashRing(nodes, vnodes=vnodes).ownership(population)
            return max(counts.values()) - min(counts.values())

        assert spread(128) < spread(2)


class TestMinimalMovement:
    def test_removal_only_moves_the_removed_nodes_keys(self):
        """The consistent-hashing contract: removing one node reassigns
        exactly the keys it owned; every other key stays put."""
        nodes = ["a:1", "b:2", "c:3", "d:4"]
        ring = HashRing(nodes)
        population = keys(2000)
        before = {key: ring.lookup(key) for key in population}
        ring.remove("b:2")
        for key in population:
            after = ring.lookup(key)
            if before[key] == "b:2":
                assert after != "b:2"
            else:
                assert after == before[key], key

    def test_addition_only_steals_keys_for_the_new_node(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        population = keys(2000)
        before = {key: ring.lookup(key) for key in population}
        ring.add("d:4")
        moved = 0
        for key in population:
            after = ring.lookup(key)
            if after != before[key]:
                assert after == "d:4", key
                moved += 1
        # The new node takes roughly its fair share (1/4), not nothing
        # and not everything.
        assert 0.05 * len(population) < moved < 0.5 * len(population)

    def test_preference_matches_removal_inheritance(self):
        """preference()[1] is exactly where a key lands if its owner is
        removed — failover order IS the minimal-movement order."""
        ring = HashRing(["a:1", "b:2", "c:3", "d:4"])
        for key in keys(300):
            owner, heir = ring.preference(key, 2)
            shrunk = HashRing(["a:1", "b:2", "c:3", "d:4"])
            shrunk.remove(owner)
            assert shrunk.lookup(key) == heir


class TestPreference:
    def test_preference_is_distinct_and_complete(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        order = ring.preference("some-key")
        assert sorted(order) == ["a:1", "b:2", "c:3"]
        assert order[0] == ring.lookup("some-key")

    def test_preference_n_truncates(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        assert len(ring.preference("k", 2)) == 2
        assert len(ring.preference("k", 99)) == 3

    def test_preference_zero_rejected(self):
        with pytest.raises(ClusterError, match="preference size"):
            HashRing(["a:1"]).preference("k", 0)
