"""Tests for the panel solver and solution post-processing."""

import numpy as np
import pytest

from repro.geometry import naca, pitch
from repro.panel import Closure, Freestream, PanelSolver, solve_airfoil
from repro.precision import Precision


class TestSolverBasics:
    def test_boundary_condition_satisfied(self, solved_2412):
        assert solved_2412.boundary_residual() < 1e-10

    def test_kutta_condition_held(self, solved_2412):
        assert solved_2412.gamma[0] == pytest.approx(-solved_2412.gamma[-1])

    def test_gamma_immutable(self, solved_2412):
        with pytest.raises((ValueError, RuntimeError)):
            solved_2412.gamma[0] = 1.0

    def test_precision_spellings(self):
        solver = PanelSolver.with_precision("sp")
        assert solver.precision is Precision.SINGLE

    def test_single_precision_close_to_double(self, naca2412):
        fs = Freestream.from_degrees(4.0)
        double = PanelSolver(precision="double").solve(naca2412, fs)
        single = PanelSolver(precision="single").solve(naca2412, fs)
        assert single.lift_coefficient == pytest.approx(
            double.lift_coefficient, abs=2e-3
        )

    def test_convenience_wrapper(self, naca2412):
        sol = solve_airfoil(naca2412, 4.0)
        assert sol.freestream.alpha_degrees == pytest.approx(4.0)

    def test_batch_matches_individual(self):
        foils = [naca("2412", 60), naca("0012", 60), naca("4412", 60)]
        fs = Freestream.from_degrees(3.0)
        solver = PanelSolver()
        batch = solver.solve_batch(foils, fs)
        for foil, solution in zip(foils, batch):
            single = solver.solve(foil, fs)
            assert solution.lift_coefficient == pytest.approx(
                single.lift_coefficient, abs=1e-10
            )


class TestAerodynamics:
    def test_positive_lift_for_cambered_at_zero_alpha(self):
        sol = solve_airfoil(naca("2412", 160), 0.0)
        assert 0.2 < sol.lift_coefficient < 0.32

    def test_zero_lift_for_symmetric_at_zero_alpha(self, naca0012):
        sol = solve_airfoil(naca0012, 0.0)
        assert abs(sol.lift_coefficient) < 1e-6

    def test_lift_increases_with_alpha(self, naca0012):
        lifts = [solve_airfoil(naca0012, a).lift_coefficient for a in (0, 2, 4, 6)]
        assert np.all(np.diff(lifts) > 0)

    def test_lift_slope_near_two_pi(self, naca0012):
        cl2 = solve_airfoil(naca0012, 2.0).lift_coefficient
        cl0 = solve_airfoil(naca0012, 0.0).lift_coefficient
        slope = (cl2 - cl0) / np.radians(2.0)
        # Thickness raises the slope a few percent above 2 pi.
        assert 2 * np.pi * 0.98 < slope < 2 * np.pi * 1.15

    def test_kutta_joukowski_matches_pressure_integral(self, solved_2412):
        assert solved_2412.lift_coefficient == pytest.approx(
            solved_2412.lift_coefficient_pressure, abs=5e-3
        )

    def test_dalembert_zero_pressure_drag(self, solved_2412):
        assert abs(solved_2412.pressure_drag_coefficient) < 2e-3

    def test_moment_sign_for_cambered(self, solved_2412):
        # Positive camber -> nose-down (negative) quarter-chord moment.
        assert -0.12 < solved_2412.moment_coefficient() < -0.02

    def test_moment_about_other_point_differs(self, solved_2412):
        le = solved_2412.moment_coefficient(reference=(0.0, 0.0))
        c4 = solved_2412.moment_coefficient()
        assert le != pytest.approx(c4, abs=1e-3)

    def test_moment_transfer_theorem(self, solved_2412):
        """cm(LE) = cm(c/4) - 0.25 * (force_y) in unit-chord coordinates."""
        le = solved_2412.moment_coefficient(reference=(0.0, 0.0))
        c4 = solved_2412.moment_coefficient(reference=(0.25, 0.0))
        force_y = solved_2412.force_coefficient_vector[1]
        assert le == pytest.approx(c4 - 0.25 * force_y, abs=1e-10)

    def test_stagnation_pressure_bound(self, solved_2412):
        cp = solved_2412.pressure_coefficients
        assert cp.max() <= 1.0 + 1e-9
        assert cp.max() > 0.97  # a stagnation point exists

    def test_suction_peak_on_upper_surface(self, solved_2412):
        cp = solved_2412.pressure_coefficients
        peak_panel = int(np.argmin(cp))
        assert solved_2412.airfoil.control_points[peak_panel, 1] > 0

    def test_alpha_symmetry_of_symmetric_section(self, naca0012):
        plus = solve_airfoil(naca0012, 5.0).lift_coefficient
        minus = solve_airfoil(naca0012, -5.0).lift_coefficient
        assert plus == pytest.approx(-minus, abs=1e-6)

    def test_rotation_invariance(self, naca2412):
        """Pitching the geometry = changing the angle of attack."""
        direct = solve_airfoil(naca2412, 5.0).lift_coefficient
        pitched = solve_airfoil(pitch(naca2412, np.radians(5.0)), 0.0).lift_coefficient
        assert pitched == pytest.approx(direct, abs=5e-3)

    def test_speed_invariance_of_coefficients(self, naca2412):
        slow = PanelSolver().solve(naca2412, Freestream.from_degrees(4.0, speed=1.0))
        fast = PanelSolver().solve(naca2412, Freestream.from_degrees(4.0, speed=7.0))
        assert slow.lift_coefficient == pytest.approx(fast.lift_coefficient, rel=1e-9)
        assert slow.pressure_coefficients == pytest.approx(
            fast.pressure_coefficients, abs=1e-9
        )


class TestFieldEvaluation:
    def test_far_field_approaches_freestream(self, solved_2412):
        velocity = solved_2412.velocity_at([[150.0, 90.0]])[0]
        assert velocity == pytest.approx(solved_2412.freestream.velocity, abs=1e-3)

    def test_interior_is_stagnant(self, solved_2412):
        interior = solved_2412.velocity_at([[0.5, 0.0]])[0]
        assert np.linalg.norm(interior) < 0.05

    def test_velocity_is_stream_gradient(self, solved_2412):
        point = np.array([0.6, 0.7])
        h = 1e-6
        v = solved_2412.velocity_at([point])[0]
        dy = (solved_2412.stream_function_at([point + [0, h]])
              - solved_2412.stream_function_at([point - [0, h]]))[0] / (2 * h)
        dx = (solved_2412.stream_function_at([point + [h, 0]])
              - solved_2412.stream_function_at([point - [h, 0]]))[0] / (2 * h)
        assert v == pytest.approx([dy, -dx], abs=1e-7)

    def test_surface_tangential_speed_matches_gamma(self, solved_2412):
        foil = solved_2412.airfoil
        just_outside = foil.control_points + 1e-6 * foil.normals
        velocity = solved_2412.velocity_at(just_outside)
        tangential = np.einsum("ij,ij->i", velocity, foil.tangents)
        # Exterior tangential velocity equals -gamma (clockwise-positive
        # strengths); skip the trailing-edge panels where the finite-core
        # offset trick is least accurate.
        interior_panels = slice(5, -5)
        assert tangential[interior_panels] == pytest.approx(
            -solved_2412.gamma[interior_panels], abs=0.05
        )
