"""Tests for the island-model parallel GA and its hardware mapping."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optimize import (
    FitnessEvaluator,
    GAConfig,
    GenomeLayout,
    GeneticOptimizer,
    IslandConfig,
    IslandOptimizer,
    island_epoch_schedule,
    time_ga_run,
    time_island_run,
)
from repro.hardware import paper_workstation
from repro.pipeline import TaskKind, simulate


@pytest.fixture(scope="module")
def evaluator():
    return FitnessEvaluator(layout=GenomeLayout(n_upper=5, n_lower=5),
                            n_panels=60, reynolds=4e5)


@pytest.fixture(scope="module")
def island_result(evaluator):
    config = GAConfig(population_size=12, generations=6, elitism=2)
    optimizer = IslandOptimizer(
        evaluator, config,
        IslandConfig(n_islands=3, migration_interval=2, n_migrants=2),
    )
    return optimizer.run(np.random.default_rng(5))


class TestIslandConfig:
    def test_validation(self):
        with pytest.raises(OptimizationError):
            IslandConfig(n_islands=1)
        with pytest.raises(OptimizationError):
            IslandConfig(migration_interval=0)
        with pytest.raises(OptimizationError):
            IslandConfig(n_migrants=0)

    def test_elitism_floor_enforced(self, evaluator):
        config = GAConfig(population_size=12, generations=4, elitism=1)
        with pytest.raises(OptimizationError, match="elitism"):
            IslandOptimizer(evaluator, config,
                            IslandConfig(n_islands=2, n_migrants=2))


class TestRunFrom:
    def test_chains_with_offset(self, evaluator):
        from repro.optimize.history import OptimizationHistory

        config = GAConfig(population_size=10, generations=2)
        optimizer = GeneticOptimizer(evaluator=evaluator, config=config)
        rng = np.random.default_rng(2)
        population = [evaluator.layout.random_genome(rng) for _ in range(10)]
        history = OptimizationHistory()
        population = optimizer.run_from(population, rng, history=history)
        optimizer.run_from(population, rng, history=history,
                           generation_offset=2)
        assert [g.index for g in history.generations] == [0, 1, 2, 3]

    def test_population_size_checked(self, evaluator):
        config = GAConfig(population_size=10, generations=1)
        optimizer = GeneticOptimizer(evaluator=evaluator, config=config)
        with pytest.raises(OptimizationError, match="population"):
            optimizer.run_from([np.zeros(10)], np.random.default_rng(0))


class TestIslandEvolution:
    def test_all_islands_record_every_generation(self, island_result):
        for history in island_result.histories:
            assert [g.index for g in history.generations] == list(range(6))

    def test_champion_is_global_best(self, island_result):
        best = max(island_result.best_per_island())
        assert island_result.champion.fitness == pytest.approx(best)

    def test_islands_improve(self, island_result):
        for history in island_result.histories:
            trace = history.best_fitness_trace()
            assert trace[-1] >= trace[0]

    def test_migration_spreads_quality(self, evaluator):
        """With migration, the worst island ends closer to the best
        than isolated islands do (same seeds, same budget)."""
        config = GAConfig(population_size=12, generations=6, elitism=2)
        migrating = IslandOptimizer(
            evaluator, config,
            IslandConfig(n_islands=3, migration_interval=2, n_migrants=2),
        ).run(np.random.default_rng(9))
        isolated = IslandOptimizer(
            evaluator, config,
            IslandConfig(n_islands=3, migration_interval=6, n_migrants=2),
        ).run(np.random.default_rng(9))

        def spread(result):
            best = result.best_per_island()
            return (max(best) - min(best)) / max(best)

        assert spread(migrating) <= spread(isolated) + 0.05


class TestHardwareMapping:
    def test_schedule_structure(self):
        station = paper_workstation(sockets=2, accelerator="k80-dual",
                                    precision="double")
        schedule = island_epoch_schedule(100, 3, station, 2, n_panels=100)
        resources = set(schedule.resources)
        assert "accel0" in resources and "accel1" in resources
        solves = [t for t in schedule.tasks if t.kind is TaskKind.SOLVE]
        assert sum(t.batch for t in solves) == 2 * 3 * 100

    def test_generations_serialized_within_island(self):
        """Generation g+1's first assembly waits for generation g."""
        station = paper_workstation(sockets=2, accelerator="k80-dual",
                                    precision="double")
        schedule = island_epoch_schedule(100, 2, station, 2, n_panels=100)
        timeline = simulate(schedule)
        per_island = {}
        for record in timeline.records:
            task = record.task
            if task.kind is TaskKind.ASSEMBLE:
                per_island.setdefault(task.resource, []).append(record)
        for records in per_island.values():
            # Half the assemblies belong to generation 2; the earliest
            # of them must start after some solve finished.
            later_half = records[len(records) // 2:]
            first_solve_end = min(
                r.end for r in timeline.records
                if r.task.kind is TaskKind.SOLVE
            )
            assert later_half[0].start >= first_solve_end - 1e-12

    def test_solve_bound_mapping_is_no_faster(self):
        """Honest result: at the paper's workload the host solve is the
        bottleneck, so spreading islands over both K80 halves cannot
        beat the single-GPU single-population pipeline."""
        islands = time_island_run(population_per_island=200, generations=10,
                                  accelerator="k80-dual", precision="double")
        single = time_ga_run(population=400, generations=10,
                             accelerator="k80-half",
                             precision="double").total_seconds
        assert islands == pytest.approx(single, rel=0.25)
        assert islands > 0.9 * single

    def test_uneven_islands_balance_heterogeneous_devices(self):
        """Sizing islands by device speed beats equal sizes on the
        GPU+Phi pair."""
        equal = time_island_run(population_per_island=[200, 200],
                                generations=10, precision="double")
        balanced = time_island_run(population_per_island=[310, 90],
                                   generations=10, precision="double")
        assert balanced < equal

    def test_island_size_count_checked(self):
        station = paper_workstation(sockets=2, accelerator="k80-dual",
                                    precision="double")
        with pytest.raises(OptimizationError, match="island sizes"):
            island_epoch_schedule([100, 100, 100], 2, station, 2)

    def test_needs_accelerators(self):
        station = paper_workstation(sockets=2, precision="double")
        with pytest.raises(OptimizationError):
            island_epoch_schedule(100, 2, station, 2)
