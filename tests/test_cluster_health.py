"""Unit tests for the replica health state machine."""

import threading
import time

import pytest

from repro.cluster.health import DOWN, DRAINING, UP, HealthManager
from repro.errors import ClusterError


class FlakyProbe:
    """A scriptable probe: healthy unless the replica is in the set."""

    def __init__(self):
        self.down = set()
        self.calls = []

    def __call__(self, name):
        self.calls.append(name)
        if name in self.down:
            raise ConnectionRefusedError(f"{name} is down")
        return True


@pytest.fixture
def probe():
    return FlakyProbe()


class TestStateMachine:
    def test_starts_up_and_stays_up(self, probe):
        manager = HealthManager(["a", "b"], probe, down_after=2)
        assert manager.states() == {"a": UP, "b": UP}
        manager.check_now()
        assert manager.routable() == ["a", "b"]

    def test_down_requires_consecutive_failures(self, probe):
        manager = HealthManager(["a"], probe, down_after=3)
        probe.down.add("a")
        manager.check_now()
        manager.check_now()
        assert manager.state("a") == UP  # 2 of 3 failures: still up
        manager.check_now()
        assert manager.state("a") == DOWN
        assert manager.routable() == []

    def test_success_resets_the_failure_streak(self, probe):
        manager = HealthManager(["a"], probe, down_after=3)
        probe.down.add("a")
        manager.check_now()
        manager.check_now()
        probe.down.discard("a")
        manager.check_now()  # streak broken
        probe.down.add("a")
        manager.check_now()
        manager.check_now()
        assert manager.state("a") == UP  # needs 3 consecutive again

    def test_recovery_after_up_after_successes(self, probe):
        manager = HealthManager(["a"], probe, down_after=1, up_after=2)
        probe.down.add("a")
        manager.check_now()
        assert manager.state("a") == DOWN
        probe.down.discard("a")
        manager.check_now()
        assert manager.state("a") == DOWN  # 1 of 2 successes
        manager.check_now()
        assert manager.state("a") == UP

    def test_transitions_invoke_callback(self, probe):
        changes = []
        manager = HealthManager(
            ["a", "b"], probe, down_after=1,
            on_change=lambda *event: changes.append(event))
        probe.down.add("a")
        manager.check_now()
        probe.down.discard("a")
        manager.check_now()
        assert changes == [("a", UP, DOWN), ("a", DOWN, UP)]

    def test_raising_callback_is_counted_not_fatal(self, probe):
        def explode(*_event):
            raise RuntimeError("boom")

        manager = HealthManager(["a"], probe, down_after=1,
                                on_change=explode)
        probe.down.add("a")
        manager.check_now()
        assert manager.state("a") == DOWN
        assert manager.callback_errors == 1


class TestDraining:
    def test_draining_excludes_from_routable(self, probe):
        manager = HealthManager(["a", "b"], probe)
        assert manager.set_draining("a") == DRAINING
        assert manager.state("a") == DRAINING
        assert manager.routable() == ["b"]
        assert manager.set_draining("a", False) == UP
        assert manager.routable() == ["a", "b"]

    def test_down_wins_over_draining(self, probe):
        manager = HealthManager(["a"], probe, down_after=1)
        manager.set_draining("a")
        probe.down.add("a")
        manager.check_now()
        assert manager.state("a") == DOWN

    def test_draining_toggle_notifies(self, probe):
        changes = []
        manager = HealthManager(["a"], probe,
                                on_change=lambda *event: changes.append(event))
        manager.set_draining("a")
        manager.set_draining("a")  # idempotent: no second event
        assert changes == [("a", UP, DRAINING)]


class TestValidation:
    def test_needs_replicas(self, probe):
        with pytest.raises(ClusterError, match="at least one"):
            HealthManager([], probe)

    def test_rejects_duplicates(self, probe):
        with pytest.raises(ClusterError, match="duplicate"):
            HealthManager(["a", "a"], probe)

    def test_rejects_bad_thresholds(self, probe):
        with pytest.raises(ClusterError):
            HealthManager(["a"], probe, down_after=0)
        with pytest.raises(ClusterError):
            HealthManager(["a"], probe, interval=0.0)
        with pytest.raises(ClusterError):
            HealthManager(["a"], probe, jitter=1.5)

    def test_unknown_replica_rejected(self, probe):
        manager = HealthManager(["a"], probe)
        with pytest.raises(ClusterError, match="unknown replica"):
            manager.state("zzz")


class TestSnapshot:
    def test_snapshot_counts_probes(self, probe):
        manager = HealthManager(["a"], probe, down_after=1)
        manager.check_now()
        probe.down.add("a")
        manager.check_now()
        snapshot = manager.snapshot()["a"]
        assert snapshot["probes"] == 2
        assert snapshot["probe_failures"] == 1
        assert snapshot["state"] == DOWN


class TestPoller:
    def test_background_poller_detects_death(self, probe):
        """The async path: a replica failing under the poller goes DOWN
        within a few intervals without any explicit check_now."""
        events = []
        manager = HealthManager(
            ["a"], probe, interval=0.02, down_after=2,
            on_change=lambda *event: events.append(event))
        manager.start()
        try:
            probe.down.add("a")
            deadline = time.monotonic() + 5.0
            while manager.state("a") != DOWN and time.monotonic() < deadline:
                time.sleep(0.01)
            assert manager.state("a") == DOWN
            assert ("a", UP, DOWN) in events
        finally:
            assert manager.close()

    def test_double_start_rejected(self, probe):
        manager = HealthManager(["a"], probe, interval=0.05)
        manager.start()
        try:
            with pytest.raises(ClusterError, match="already started"):
                manager.start()
        finally:
            assert manager.close()

    def test_close_is_idempotent_and_joins(self, probe):
        baseline = threading.active_count()
        manager = HealthManager(["a"], probe, interval=0.05)
        manager.start()
        assert manager.close()
        assert manager.close()
        deadline = time.monotonic() + 2.0
        while threading.active_count() > baseline and time.monotonic() < deadline:
            time.sleep(0.01)
        assert threading.active_count() == baseline
