"""Property-based tests for geometry invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry import Airfoil, BSplineAirfoil, naca4, rotate, scale, translate
from repro.geometry import points as pt
from repro.geometry.bspline import basis_functions, open_uniform_knots


def naca_designations():
    return st.tuples(
        st.integers(0, 6), st.sampled_from([0, 2, 3, 4, 5, 6]),
        st.integers(6, 24),
    ).map(lambda t: f"{t[0]}{t[1] if t[0] else 0}{t[2]:02d}")


class TestNacaInvariants:
    @given(designation=naca_designations(), n_half=st.integers(10, 60))
    @settings(max_examples=40, deadline=None)
    def test_generated_airfoil_is_valid(self, designation, n_half):
        foil = naca4(designation, 2 * n_half)
        assert foil.n_panels == 2 * n_half
        assert foil.area > 0
        assert foil.chord == pytest.approx(1.0, abs=0.01)
        assert not pt.is_clockwise(foil.points)

    @given(designation=naca_designations())
    @settings(max_examples=30, deadline=None)
    def test_thickness_matches_designation(self, designation):
        foil = naca4(designation, 200)
        expected = int(designation[2:]) / 100.0
        assert foil.max_thickness == pytest.approx(expected, abs=0.015)

    @given(designation=naca_designations())
    @settings(max_examples=30, deadline=None)
    def test_perimeter_bounds(self, designation):
        """2c < perimeter < 2c + 2 * pi * t (crude isoperimetric bounds)."""
        foil = naca4(designation, 160)
        assert 2.0 < foil.perimeter < 2.0 + 2 * np.pi * foil.max_thickness + 0.2


class TestTransformInvariants:
    @given(
        angle=st.floats(-np.pi, np.pi),
        dx=st.floats(-5, 5), dy=st.floats(-5, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_rigid_motion_preserves_area_and_perimeter(self, angle, dx, dy):
        foil = naca4("2412", 60)
        moved = Airfoil.from_points(
            translate(rotate(foil.points, angle), (dx, dy))
        )
        assert moved.area == pytest.approx(foil.area, rel=1e-9)
        assert moved.perimeter == pytest.approx(foil.perimeter, rel=1e-9)

    @given(factor=st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_scales_area_quadratically(self, factor):
        foil = naca4("0012", 60)
        scaled = Airfoil.from_points(scale(foil.points, factor))
        assert scaled.area == pytest.approx(foil.area * factor**2, rel=1e-9)


class TestBSplineInvariants:
    @given(
        n_control=st.integers(5, 12),
        degree=st.integers(2, 4),
        t=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_basis_partition_of_unity(self, n_control, degree, t):
        assume(n_control > degree)
        knots = open_uniform_knots(n_control, degree)
        basis = basis_functions(knots, degree, np.array([t]))
        assert basis.sum() == pytest.approx(1.0, abs=1e-10)
        assert np.all(basis >= -1e-12)

    @given(
        upper=st.lists(st.floats(0.02, 0.15), min_size=4, max_size=8),
        lower=st.lists(st.floats(-0.12, -0.02), min_size=4, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_separated_surfaces_always_feasible(self, upper, lower):
        """Upper heights > 0 > lower heights implies positive thickness."""
        parametrization = BSplineAirfoil(
            upper_heights=np.array(upper), lower_heights=np.array(lower)
        )
        assert parametrization.is_feasible()
        foil = parametrization.to_airfoil(60)
        assert foil.area > 0

    @given(
        upper=st.lists(st.floats(0.03, 0.15), min_size=4, max_size=6),
        lower=st.lists(st.floats(-0.1, -0.03), min_size=4, max_size=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_airfoil_interpolates_pinned_edges(self, upper, lower):
        foil = BSplineAirfoil(
            upper_heights=np.array(upper), lower_heights=np.array(lower)
        ).to_airfoil(40)
        assert foil.trailing_edge == pytest.approx([1.0, 0.0], abs=1e-9)
