"""Tests of the Falkner-Skan solver and Thwaites' fits against it."""

import numpy as np
import pytest

from repro.errors import ViscousError
from repro.viscous import (
    BLASIUS_WALL_SHEAR,
    SEPARATION_M,
    blasius,
    solve_falkner_skan,
    stagnation,
    thwaites_h,
    thwaites_l,
)


class TestClassicalValues:
    """Check against the tabulated similarity constants."""

    def test_blasius_wall_shear(self):
        assert blasius().wall_shear == pytest.approx(BLASIUS_WALL_SHEAR, abs=2e-5)

    def test_blasius_momentum_thickness(self):
        assert blasius().momentum_thickness == pytest.approx(0.6641, abs=2e-3)

    def test_blasius_displacement_thickness(self):
        assert blasius().displacement_thickness == pytest.approx(1.7208, abs=5e-3)

    def test_blasius_shape_factor(self):
        assert blasius().shape_factor == pytest.approx(2.591, abs=0.01)

    def test_hiemenz_wall_shear(self):
        assert stagnation().wall_shear == pytest.approx(1.23259, abs=1e-4)

    def test_hiemenz_shape_factor(self):
        assert stagnation().shape_factor == pytest.approx(2.216, abs=0.01)

    def test_near_separation_shear_vanishes(self):
        near = solve_falkner_skan(-0.0900)
        assert near.wall_shear < 0.03

    def test_near_separation_shape_factor(self):
        near = solve_falkner_skan(-0.0900)
        assert 3.4 < near.shape_factor < 4.2

    def test_separated_m_rejected(self):
        with pytest.raises(ViscousError, match="no attached"):
            solve_falkner_skan(SEPARATION_M - 0.01)


class TestProfileProperties:
    @pytest.mark.parametrize("m", [-0.05, 0.0, 0.2, 1.0])
    def test_profile_monotone_and_bounded(self, m):
        solution = solve_falkner_skan(m)
        assert np.all(solution.f_prime >= -1e-9)
        assert np.all(solution.f_prime <= 1.0 + 1e-9)
        assert solution.f_prime[-1] == pytest.approx(1.0, abs=1e-3)

    def test_favourable_gradient_thins_layer(self):
        assert (stagnation().momentum_thickness
                < blasius().momentum_thickness)

    def test_adverse_gradient_thickens_layer(self):
        adverse = solve_falkner_skan(-0.06)
        assert adverse.momentum_thickness > blasius().momentum_thickness

    def test_shape_factor_decreases_with_m(self):
        shape_factors = [solve_falkner_skan(m).shape_factor
                         for m in (-0.06, 0.0, 0.3, 1.0)]
        assert all(b < a for a, b in zip(shape_factors, shape_factors[1:]))

    def test_cf_scaling(self):
        solution = blasius()
        assert solution.cf(1e6) == pytest.approx(0.664 / np.sqrt(1e6), rel=1e-3)
        with pytest.raises(ViscousError):
            solution.cf(0.0)


class TestThwaitesAgainstExact:
    """Thwaites' correlations are a fit to exactly these profiles."""

    @pytest.mark.parametrize("m", [-0.05, 0.0, 0.1, 0.3, 1.0])
    def test_shape_factor_fit(self, m):
        exact = solve_falkner_skan(m)
        fitted = float(thwaites_h(exact.thwaites_lambda))
        assert fitted == pytest.approx(exact.shape_factor, rel=0.06)

    @pytest.mark.parametrize("m", [-0.05, 0.0, 0.1, 0.3, 1.0])
    def test_shear_fit(self, m):
        exact = solve_falkner_skan(m)
        fitted = float(thwaites_l(exact.thwaites_lambda))
        assert fitted == pytest.approx(exact.thwaites_l, rel=0.11)

    def test_fit_degrades_gracefully_toward_separation(self):
        """Near separation the one-parameter fit underestimates H, but
        stays within ~15 % — the known accuracy limit of Thwaites."""
        exact = solve_falkner_skan(-0.085)
        fitted = float(thwaites_h(exact.thwaites_lambda))
        assert fitted == pytest.approx(exact.shape_factor, rel=0.16)

    def test_lambda_sign_tracks_gradient(self):
        assert solve_falkner_skan(0.3).thwaites_lambda > 0
        assert solve_falkner_skan(-0.05).thwaites_lambda < 0
        assert abs(blasius().thwaites_lambda) < 1e-12
