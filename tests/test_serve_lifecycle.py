"""Request-lifecycle tests: deadlines, cancellation, and client retry.

The serving path treats deadlines as first-class: expired work is shed
at batch-collection time (before it costs an assembly+LU solve), a
detached submitter's work is dropped the same way, and the client can
retry shed (503) requests with capped exponential backoff and jitter.
"""

import threading
import time

import pytest

from repro.core.api import (
    AnalyzeRequest,
    extract_deadline_ms,
    validate_deadline_ms,
)
from repro.errors import DeadlineExceededError, OverloadedError, ServeError
from repro.serve import AnalysisService, ServeClient
from repro.serve.service import _Job


# ----------------------------------------------------------------------
# Wire-format helpers
# ----------------------------------------------------------------------

class TestDeadlineWireFormat:
    def test_extract_pops_the_field_without_mutating(self):
        payload = {"airfoil": "2412", "deadline_ms": 250.0}
        stripped, deadline = extract_deadline_ms(payload)
        assert deadline == 250.0
        assert "deadline_ms" not in stripped
        assert payload["deadline_ms"] == 250.0  # original untouched

    def test_extract_without_field_is_a_passthrough(self):
        payload = {"airfoil": "2412"}
        stripped, deadline = extract_deadline_ms(payload)
        assert deadline is None and stripped is payload

    def test_extract_null_means_no_deadline(self):
        stripped, deadline = extract_deadline_ms(
            {"airfoil": "2412", "deadline_ms": None})
        assert deadline is None and "deadline_ms" not in stripped

    def test_non_dict_payloads_pass_through(self):
        assert extract_deadline_ms("nope") == ("nope", None)

    @pytest.mark.parametrize("value", [0, -1.0, float("inf"), float("nan"),
                                       "soon", [250]])
    def test_invalid_budgets_rejected(self, value):
        with pytest.raises(ServeError, match="deadline_ms"):
            validate_deadline_ms(value)

    def test_deadline_is_not_an_analyze_request_field(self):
        """The deadline is transport metadata; AnalyzeRequest must keep
        rejecting it so it can never leak into cache keys or records."""
        with pytest.raises(ServeError, match="unknown request fields"):
            AnalyzeRequest.from_dict({"airfoil": "2412", "deadline_ms": 50.0})


# ----------------------------------------------------------------------
# Service-level deadlines
# ----------------------------------------------------------------------

class TestServiceDeadlines:
    def test_expired_request_is_dropped_not_solved(self):
        service = AnalysisService(max_batch=4, max_wait=0.0, cache_size=8,
                                  n_workers=1, queue_limit=16)
        with service:
            with pytest.raises(DeadlineExceededError):
                service.analyze({"airfoil": "2412", "alpha_degrees": 4.0,
                                 "reynolds": None, "n_panels": 60},
                                timeout=10.0, deadline_ms=1e-3)
            snapshot = service.metrics_snapshot()
        assert snapshot["requests"]["expired"] == 1
        assert snapshot["requests"]["in_flight"] == 0
        # Dropped at collection: the solver never saw it.
        assert snapshot["batching"]["batched_solves"] == 0

    def test_payload_field_sets_the_deadline(self):
        with AnalysisService(max_batch=4, max_wait=0.0, cache_size=8,
                             n_workers=1, queue_limit=16) as service:
            with pytest.raises(DeadlineExceededError):
                service.analyze({"airfoil": "2412", "reynolds": None,
                                 "n_panels": 60, "deadline_ms": 1e-3},
                                timeout=10.0)

    def test_explicit_argument_beats_payload_field(self):
        with AnalysisService(max_batch=4, max_wait=0.0, cache_size=8,
                             n_workers=1, queue_limit=16) as service:
            record = service.analyze(
                {"airfoil": "0012", "reynolds": None, "n_panels": 60,
                 "deadline_ms": 1e-3},  # would expire ...
                timeout=10.0, deadline_ms=30_000.0)  # ... but arg wins
        assert abs(record["cl"]) < 1e-6

    def test_default_deadline_applies_and_is_validated(self):
        with pytest.raises(ServeError, match="deadline_ms"):
            AnalysisService(default_deadline_ms=-1.0)
        service = AnalysisService(max_batch=4, max_wait=0.0, cache_size=8,
                                  n_workers=1, queue_limit=16,
                                  default_deadline_ms=1e-3)
        with service:
            with pytest.raises(DeadlineExceededError):
                service.analyze({"airfoil": "2412", "reynolds": None,
                                 "n_panels": 60}, timeout=10.0)

    def test_generous_deadline_does_not_interfere(self):
        with AnalysisService(max_batch=4, max_wait=0.0, cache_size=8,
                             n_workers=1, queue_limit=16) as service:
            record = service.analyze({"airfoil": "2412", "alpha_degrees": 4.0,
                                      "reynolds": None, "n_panels": 60},
                                     timeout=10.0, deadline_ms=30_000.0)
        assert record["cl"] > 0.5

    def test_cache_hit_beats_the_deadline(self):
        """A cached answer resolves at admission, before any queueing,
        so even a microscopic deadline is met."""
        with AnalysisService(max_batch=4, max_wait=0.0, cache_size=8,
                             n_workers=1, queue_limit=16) as service:
            request = {"airfoil": "0012", "reynolds": None, "n_panels": 60}
            warm = service.analyze(dict(request), timeout=10.0)
            hit = service.analyze(dict(request), timeout=10.0,
                                  deadline_ms=1e-3)
        assert hit == warm


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------

class _GatedService(AnalysisService):
    """An AnalysisService whose worker parks at the start of each batch
    until the test opens the gate — making queue-time races deterministic."""

    def __init__(self, **kwargs):
        self.gate = threading.Event()
        super().__init__(**kwargs)

    def _process_batch(self, jobs):
        assert self.gate.wait(10.0)
        super()._process_batch(jobs)


class TestCancellation:
    def test_cancelled_request_is_dropped_at_collection(self):
        service = _GatedService(max_batch=1, max_wait=0.0, cache_size=8,
                                n_workers=1, queue_limit=16)
        try:
            # First submission occupies the (gated) worker, so the second
            # is still queued when its submitter walks away.
            blocker = service.submit({"airfoil": "0012", "reynolds": None,
                                      "n_panels": 60})
            victim = service.submit({"airfoil": "2412", "alpha_degrees": 4.0,
                                     "reynolds": None, "n_panels": 60})
            assert victim.cancel() is True
            service.gate.set()
            assert abs(blocker.result(timeout=10.0)["cl"]) < 1e-6
            with pytest.raises(ServeError, match="cancelled"):
                victim.result(timeout=1.0)
            deadline = time.monotonic() + 5.0
            while (service.metrics_snapshot()["requests"]["cancelled"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            snapshot = service.metrics_snapshot()
            assert snapshot["requests"]["cancelled"] == 1
            assert snapshot["requests"]["in_flight"] == 0
            # The cancelled request was dropped before solving: only the
            # blocker's system went through the solver.
            assert snapshot["batching"]["solved_systems"] == 1
        finally:
            service.gate.set()
            assert service.close(timeout=10.0)

    def test_wait_timeout_detaches_the_waiter(self):
        """analyze() that gives up waiting cancels its pending result,
        so the worker later drops the job instead of solving for
        nobody."""
        service = _GatedService(max_batch=4, max_wait=0.0, cache_size=8,
                                n_workers=1, queue_limit=16)
        try:
            with pytest.raises(ServeError, match="timed out"):
                service.analyze({"airfoil": "2412", "reynolds": None,
                                 "n_panels": 60}, timeout=0.05)
            service.gate.set()
            deadline = time.monotonic() + 5.0
            while (service.metrics_snapshot()["requests"]["in_flight"] > 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            snapshot = service.metrics_snapshot()
            assert snapshot["requests"]["cancelled"] == 1
            assert snapshot["requests"]["completed"] == 0
        finally:
            service.gate.set()
            assert service.close(timeout=10.0)


# ----------------------------------------------------------------------
# Drop accounting via the pool predicate
# ----------------------------------------------------------------------

class TestDropPredicate:
    def test_expired_job_fails_with_deadline_error(self):
        service = AnalysisService(max_batch=4, max_wait=0.0, cache_size=8,
                                  n_workers=1, queue_limit=16)
        with service:
            now = time.monotonic()
            job = _Job(request=AnalyzeRequest(airfoil="0012", reynolds=None,
                                              n_panels=60),
                       key="k", pending=_FreshPending(), enqueued=now,
                       deadline=now - 1.0, deadline_ms=5.0)
            assert service._drop_dead(job) is True
            with pytest.raises(DeadlineExceededError, match="5 ms"):
                job.pending.result(timeout=0.1)
            live = _Job(request=job.request, key="k",
                        pending=_FreshPending(), enqueued=now,
                        deadline=now + 60.0, deadline_ms=60_000.0)
            assert service._drop_dead(live) is False
            no_deadline = _Job(request=job.request, key="k",
                               pending=_FreshPending(), enqueued=now)
            assert service._drop_dead(no_deadline) is False


def _FreshPending():
    from repro.serve.workers import PendingResult
    return PendingResult()


# ----------------------------------------------------------------------
# Client retry with backoff + jitter
# ----------------------------------------------------------------------

class TestClientRetry:
    def _client_with_script(self, outcomes, retries=3):
        """A client whose transport replays *outcomes* (exception
        instances are raised, anything else returned) and records the
        backoff sleeps instead of actually sleeping."""
        client = ServeClient(port=1, retries=retries, backoff_base=0.1,
                             backoff_cap=0.4)
        calls = {"attempts": 0, "sleeps": []}
        script = list(outcomes)

        def fake_request(request):
            calls["attempts"] += 1
            outcome = script.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._request = fake_request
        client._sleep = calls["sleeps"].append
        client._uniform = lambda low, high: high  # deterministic jitter
        return client, calls

    def test_retries_shed_requests_until_success(self):
        client, calls = self._client_with_script([
            OverloadedError("shed"), OverloadedError("shed"),
            '{"cl": 1.0}',
        ])
        assert client.analyze("2412", 4.0) == {"cl": 1.0}
        assert calls["attempts"] == 3
        # Capped exponential growth: base, then 2x.
        assert calls["sleeps"] == [0.1, 0.2]

    def test_backoff_is_capped(self):
        client, calls = self._client_with_script(
            [OverloadedError("shed")] * 4 + ['{"results": []}'], retries=4)
        client.analyze_batch([])
        assert calls["sleeps"] == [0.1, 0.2, 0.4, 0.4]

    def test_jitter_samples_the_full_range(self):
        client, calls = self._client_with_script(
            [OverloadedError("shed"), '{"results": []}'])
        client._uniform = lambda low, high: low  # worst-case jitter draw
        client.analyze_batch([])
        assert calls["sleeps"] == [0.0]

    def test_exhausted_retries_raise_overloaded(self):
        client, calls = self._client_with_script(
            [OverloadedError("shed")] * 3, retries=2)
        with pytest.raises(OverloadedError):
            client.analyze("2412", 4.0)
        assert calls["attempts"] == 3

    def test_no_retry_on_other_errors(self):
        client, calls = self._client_with_script(
            [DeadlineExceededError("too late")])
        with pytest.raises(DeadlineExceededError):
            client.analyze("2412", 4.0)
        assert calls["attempts"] == 1 and calls["sleeps"] == []

    def test_retries_disabled_by_default(self):
        client, calls = self._client_with_script([OverloadedError("shed")],
                                                 retries=0)
        with pytest.raises(OverloadedError):
            client.analyze("2412", 4.0)
        assert calls["attempts"] == 1

    def test_constructor_validation(self):
        with pytest.raises(ServeError):
            ServeClient(retries=-1)
        with pytest.raises(ServeError):
            ServeClient(backoff_base=-0.1)


class TestClientDeadlineHeader:
    def test_deadline_ms_sets_the_header(self):
        client = ServeClient(port=1)
        seen = {}

        def fake_request(request):
            seen["headers"] = dict(request.headers)
            return '{"results": []}'

        client._request = fake_request
        client.analyze_batch([], deadline_ms=250.0)
        assert float(seen["headers"]["X-repro-deadline-ms"]) == 250.0

    def test_no_header_without_deadline(self):
        client = ServeClient(port=1)
        seen = {}

        def fake_request(request):
            seen["headers"] = dict(request.headers)
            return '{"results": []}'

        client._request = fake_request
        client.analyze_batch([])
        assert "X-repro-deadline-ms" not in seen["headers"]


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------

class TestCLILifecycleFlags:
    def test_serve_parser_accepts_default_deadline(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["serve", "--default-deadline-ms", "250"])
        assert arguments.default_deadline_ms == 250.0

    def test_analyze_timeout_success(self, capsys):
        from repro.cli import main

        assert main(["analyze", "0012", "--reynolds", "0", "--panels", "60",
                     "--timeout", "60"]) == 0
        assert "cl" in capsys.readouterr().out

    def test_analyze_timeout_exceeded_exits_nonzero(self, capsys):
        from repro.cli import main

        assert main(["analyze", "2412", "--alpha", "4", "--panels", "200",
                     "--timeout", "1e-9"]) == 1
        assert "--timeout" in capsys.readouterr().err

    def test_analyze_timeout_must_be_positive(self, capsys):
        from repro.cli import main

        assert main(["analyze", "0012", "--reynolds", "0", "--panels", "60",
                     "--timeout", "0"]) == 1
        assert "positive" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Assembly-kernel selection through the service
# ----------------------------------------------------------------------

class TestAssemblyKernelSelection:
    PAYLOAD = {"airfoil": "2412", "alpha_degrees": 4.0, "reynolds": None,
               "n_panels": 60}

    def _analyze(self, kernel, payload=None):
        with AnalysisService(max_batch=4, max_wait=0.0, cache_size=8,
                             n_workers=1, queue_limit=16,
                             assembly_kernel=kernel) as service:
            result = service.analyze(dict(payload or self.PAYLOAD),
                                     timeout=30.0)
            snapshot = service.metrics_snapshot()
        return result, snapshot

    def test_kernel_resolved_and_reported_in_metrics(self, monkeypatch):
        from repro.panel import KERNEL_ENV

        monkeypatch.delenv(KERNEL_ENV, raising=False)
        _, snapshot = self._analyze("reference")
        assert snapshot["assembly_kernel"] == "reference"
        _, default_snapshot = self._analyze(None)
        assert default_snapshot["assembly_kernel"] == "fused"

    def test_env_default_resolved_at_construction(self, monkeypatch):
        from repro.panel import KERNEL_ENV

        monkeypatch.setenv(KERNEL_ENV, "reference")
        service = AnalysisService(max_batch=4, max_wait=0.0, cache_size=8,
                                  n_workers=1, queue_limit=16)
        assert service.assembly_kernel == "reference"

    def test_fused_and_reference_serve_identical_results(self):
        fused, _ = self._analyze("fused")
        reference, _ = self._analyze("reference")
        assert fused == reference

    def test_single_precision_end_to_end(self):
        payload = dict(self.PAYLOAD, precision="single")
        fused, _ = self._analyze("fused", payload)
        reference, _ = self._analyze("reference", payload)
        assert fused == reference
        double, _ = self._analyze("fused")
        assert fused["cl"] == pytest.approx(double["cl"], rel=1e-4)
        assert fused["cl"] != double["cl"]

    def test_unknown_kernel_rejected_at_construction(self):
        from repro.errors import PanelMethodError

        with pytest.raises(PanelMethodError, match="unknown assembly kernel"):
            AnalysisService(assembly_kernel="warp")
