"""Tests for edge-velocity extraction, Thwaites, and Head integration."""

import numpy as np
import pytest

from repro.errors import ViscousError
from repro.geometry import naca
from repro.panel import solve_airfoil
from repro.viscous import (
    SurfaceDistribution,
    solve_head,
    solve_thwaites,
    stagnation_panel_index,
    surface_distributions,
)


def flat_plate_surface(n=400, length=1.0, speed=1.0):
    """A constant-edge-velocity surface (Blasius flat plate)."""
    s = np.linspace(1e-4, length, n)
    return SurfaceDistribution(
        name="plate",
        s=s,
        velocity=np.full(n, speed),
        panel_indices=np.arange(n),
    )


class TestEdgeVelocity:
    def test_stagnation_near_leading_edge(self, solved_2412):
        k = stagnation_panel_index(solved_2412)
        le = solved_2412.airfoil.leading_edge_index
        assert abs(k - le) <= 6

    def test_stagnation_moves_down_with_alpha(self, naca2412):
        low = stagnation_panel_index(solve_airfoil(naca2412, 2.0))
        high = stagnation_panel_index(solve_airfoil(naca2412, 8.0))
        # Higher alpha moves stagnation to the lower surface: larger index.
        assert high >= low

    def test_no_sign_change_raises(self, solved_2412):
        import dataclasses

        fake = dataclasses.replace(
            solved_2412, gamma=np.abs(solved_2412.gamma) + 0.1
        )
        with pytest.raises(ViscousError, match="stagnation"):
            stagnation_panel_index(fake)

    def test_surfaces_cover_all_panels(self, solved_2412):
        upper, lower = surface_distributions(solved_2412)
        total = len(upper.panel_indices) + len(lower.panel_indices)
        # A handful of stagnation-region panels may be dropped.
        assert total >= solved_2412.airfoil.n_panels - 4

    def test_arc_lengths_increase(self, solved_2412):
        upper, lower = surface_distributions(solved_2412)
        assert np.all(np.diff(upper.s) > 0)
        assert np.all(np.diff(lower.s) > 0)

    def test_velocities_positive(self, solved_2412):
        upper, lower = surface_distributions(solved_2412)
        assert np.all(upper.velocity > 0)
        assert np.all(lower.velocity > 0)

    def test_upper_surface_faster_at_positive_alpha(self, solved_2412):
        upper, lower = surface_distributions(solved_2412)
        assert upper.velocity.max() > lower.velocity.max()

    def test_lengths_near_half_perimeter(self, solved_2412):
        upper, lower = surface_distributions(solved_2412)
        perimeter = solved_2412.airfoil.perimeter
        assert upper.length + lower.length == pytest.approx(perimeter, rel=0.05)


class TestThwaites:
    def test_blasius_momentum_thickness(self):
        """Flat plate: theta = 0.671 x / sqrt(Re_x) (Thwaites: 0.671)."""
        nu = 1e-6
        result = solve_thwaites(flat_plate_surface(), nu)
        x = result.surface.s[-1]
        expected = 0.671 * x / np.sqrt(x / nu)
        assert result.theta[-1] == pytest.approx(expected, rel=0.02)

    def test_blasius_shape_factor(self):
        result = solve_thwaites(flat_plate_surface(), 1e-6)
        assert result.shape_factor[-1] == pytest.approx(2.61, abs=0.05)

    def test_blasius_cf(self):
        """cf = 0.664 / sqrt(Re_x) for laminar flat plate."""
        nu = 1e-6
        result = solve_thwaites(flat_plate_surface(), nu)
        x = result.surface.s[-1]
        assert result.cf[-1] == pytest.approx(0.664 / np.sqrt(x / nu), rel=0.05)

    def test_theta_grows_monotonically_on_plate(self):
        result = solve_thwaites(flat_plate_surface(), 1e-6)
        assert np.all(np.diff(result.theta) > 0)

    def test_no_separation_on_plate(self):
        result = solve_thwaites(flat_plate_surface(), 1e-6)
        assert result.separation_index is None
        assert not result.separated

    def test_transition_detected_at_high_re(self):
        # Re = 1e7 flat plate transitions well before x = 1.
        result = solve_thwaites(flat_plate_surface(), 1e-7)
        assert result.transition_index is not None

    def test_no_transition_at_low_re(self):
        result = solve_thwaites(flat_plate_surface(), 1e-4)
        assert result.transition_index is None

    def test_decelerating_flow_separates(self):
        """Howarth flow U = 1 - s separates near s ~ 0.12."""
        s = np.linspace(1e-4, 0.3, 500)
        surface = SurfaceDistribution(
            name="howarth", s=s, velocity=1.0 - s, panel_indices=np.arange(500)
        )
        result = solve_thwaites(surface, 1e-6)
        assert result.separation_index is not None
        separation_s = s[result.separation_index]
        assert 0.08 < separation_s < 0.16

    def test_accelerating_flow_does_not_separate(self):
        s = np.linspace(1e-4, 1.0, 300)
        surface = SurfaceDistribution(
            name="accel", s=s, velocity=1.0 + s, panel_indices=np.arange(300)
        )
        assert solve_thwaites(surface, 1e-6).separation_index is None

    def test_bad_viscosity(self):
        with pytest.raises(ViscousError):
            solve_thwaites(flat_plate_surface(), -1.0)

    def test_airfoil_surface_runs_clean(self, solved_2412):
        upper, _ = surface_distributions(solved_2412)
        result = solve_thwaites(upper, 1e-6)
        assert np.all(np.isfinite(result.theta))
        assert np.all(result.theta >= 0)


class TestHead:
    def test_turbulent_plate_momentum_growth(self):
        """Turbulent flat plate: theta/x ~ 0.036 Re_x^(-1/5)."""
        nu = 1e-7  # Re = 1e7
        plate = flat_plate_surface(800)
        result = solve_head(plate, nu, start_index=2, theta_start=1e-5)
        x = plate.s[-1]
        expected = 0.036 * x * (x / nu) ** (-0.2)
        assert result.trailing_theta == pytest.approx(expected, rel=0.35)

    def test_shape_factor_stays_turbulent_range(self):
        result = solve_head(flat_plate_surface(500), 1e-7, start_index=2,
                            theta_start=1e-5)
        assert np.all(result.shape_factor > 1.1)
        assert np.all(result.shape_factor < 2.0)

    def test_no_separation_on_plate(self):
        result = solve_head(flat_plate_surface(500), 1e-7, start_index=2,
                            theta_start=1e-5)
        assert not result.separated

    def test_adverse_gradient_raises_h(self):
        s = np.linspace(1e-3, 1.0, 600)
        adverse = SurfaceDistribution(
            name="adverse", s=s, velocity=1.0 - 0.6 * s,
            panel_indices=np.arange(600),
        )
        flat = solve_head(flat_plate_surface(600), 1e-6, start_index=2,
                          theta_start=1e-4)
        stressed = solve_head(adverse, 1e-6, start_index=2, theta_start=1e-4)
        assert stressed.trailing_shape_factor > flat.trailing_shape_factor

    def test_invalid_start_index(self):
        with pytest.raises(ViscousError):
            solve_head(flat_plate_surface(50), 1e-6, start_index=49,
                       theta_start=1e-4)

    def test_invalid_theta(self):
        with pytest.raises(ViscousError):
            solve_head(flat_plate_surface(50), 1e-6, start_index=2,
                       theta_start=0.0)
