"""Tests for Squire-Young drag, the viscous driver, and polars."""

import numpy as np
import pytest

from repro.errors import ViscousError
from repro.geometry import naca
from repro.panel import solve_airfoil
from repro.validation import DRAG_REFERENCES
from repro.viscous import analyze_viscous, compute_polar, squire_young_drag


class TestSquireYoung:
    def test_formula_value(self):
        # theta = 0.001, U_TE = 0.9, H = 1.5: cd = 2*0.001*0.9^3.25
        expected = 2 * 0.001 * 0.9 ** ((1.5 + 5.0) / 2.0)
        assert squire_young_drag(0.001, 0.9, 1.5) == pytest.approx(expected)

    def test_scales_with_theta(self):
        assert squire_young_drag(0.002, 1.0, 1.5) == pytest.approx(
            2 * squire_young_drag(0.001, 1.0, 1.5)
        )

    def test_chord_normalization(self):
        assert squire_young_drag(0.001, 1.0, 1.5, chord=2.0) == pytest.approx(
            0.5 * squire_young_drag(0.001, 1.0, 1.5, chord=1.0)
        )

    def test_negative_theta_rejected(self):
        with pytest.raises(ViscousError):
            squire_young_drag(-1e-4, 1.0, 1.5)

    def test_bad_velocity_rejected(self):
        with pytest.raises(ViscousError):
            squire_young_drag(1e-4, 0.0, 1.5)


class TestViscousDriver:
    def test_drag_positive(self, solved_2412):
        analysis = analyze_viscous(solved_2412, 1e6)
        assert analysis.drag_coefficient > 0

    def test_drag_in_published_band(self):
        for reference in DRAG_REFERENCES:
            solution = solve_airfoil(
                naca(reference.designation, 160), reference.alpha_degrees
            )
            analysis = analyze_viscous(solution, reference.reynolds)
            assert reference.contains(analysis.drag_coefficient), (
                f"{reference.designation} at {reference.alpha_degrees} deg: "
                f"cd = {analysis.drag_coefficient:.5f} outside "
                f"[{reference.cd_low}, {reference.cd_high}]"
            )

    def test_drag_decreases_with_reynolds_laminar(self, solved_2412):
        low = analyze_viscous(solved_2412, 1e5, use_head=False)
        high = analyze_viscous(solved_2412, 1e6, use_head=False)
        assert high.drag_coefficient < low.drag_coefficient

    def test_turbulent_drag_exceeds_laminar(self, solved_2412):
        laminar = analyze_viscous(solved_2412, 2e6, use_head=False)
        turbulent = analyze_viscous(solved_2412, 2e6, use_head=True)
        assert turbulent.drag_coefficient > laminar.drag_coefficient

    def test_lift_unchanged_by_viscous_pass(self, solved_2412):
        analysis = analyze_viscous(solved_2412, 1e6)
        assert analysis.lift_coefficient == solved_2412.lift_coefficient

    def test_lift_to_drag(self, solved_2412):
        analysis = analyze_viscous(solved_2412, 1e6)
        assert analysis.lift_to_drag == pytest.approx(
            analysis.lift_coefficient / analysis.drag_coefficient
        )

    def test_transition_detected_at_high_re(self, solved_2412):
        analysis = analyze_viscous(solved_2412, 5e6)
        assert analysis.upper.transition_s is not None
        assert analysis.upper.transition_s < 0.5

    def test_transition_moves_forward_with_re(self, solved_2412):
        low = analyze_viscous(solved_2412, 1e6)
        high = analyze_viscous(solved_2412, 8e6)
        if low.upper.transition_s and high.upper.transition_s:
            assert high.upper.transition_s <= low.upper.transition_s

    def test_bad_reynolds(self, solved_2412):
        with pytest.raises(ViscousError):
            analyze_viscous(solved_2412, -1.0)

    def test_symmetric_section_symmetric_drag(self, naca0012):
        solution = solve_airfoil(naca0012, 0.0)
        analysis = analyze_viscous(solution, 1e6)
        assert analysis.upper.drag_coefficient == pytest.approx(
            analysis.lower.drag_coefficient, rel=0.05
        )


class TestPolar:
    @pytest.fixture(scope="class")
    def polar(self):
        return compute_polar(naca("2412", 120), [-4, 0, 4], reynolds=1e6)

    def test_row_count(self, polar):
        assert len(polar.points) == 3

    def test_lift_monotonic(self, polar):
        assert np.all(np.diff(polar.lift_coefficients()) > 0)

    def test_lift_slope(self, polar):
        slope = polar.lift_slope_per_radian()
        assert 5.8 < slope < 7.5

    def test_drag_values_present(self, polar):
        drags = polar.drag_coefficients()
        assert np.all(np.isfinite(drags))
        assert np.all(drags[np.isfinite(drags)] > 0)

    def test_best_lift_to_drag(self, polar):
        best = polar.best_lift_to_drag()
        others = [p.lift_to_drag for p in polar.points if p.lift_to_drag]
        assert best.lift_to_drag == max(others)

    def test_alphas_preserved(self, polar):
        assert polar.alphas() == pytest.approx([-4.0, 0.0, 4.0])
