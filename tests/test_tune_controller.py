"""The autotune control loops, driven by fake services and routers."""

import copy
import threading

import pytest

from repro.errors import TuneError
from repro.serve.batcher import BatchPolicy
from repro.tune.calibrate import StageCost
from repro.tune.controller import (
    MODE_ENV,
    AutotuneConfig,
    AutotuneController,
    ClusterAutotuner,
    resolve_mode,
)

from tests.test_tune_calibrate import make_snapshot

BATCHING_COSTS = {
    "assembly": StageCost(setup=0.0, unit=0.002),
    "solve": StageCost(setup=0.006, unit=0.001),
    "postprocess": StageCost(setup=0.002, unit=0.0005),
    "serialize": StageCost(setup=0.0, unit=0.0002),
}


class FakeBackend:
    def stats(self):
        return {"procs": 1}


class FakeLogger:
    def __init__(self):
        self.events = []

    def event(self, name, **fields):
        self.events.append((name, fields))


class FakeService:
    """Just enough of AnalysisService for the controller to drive."""

    def __init__(self, snapshots, *,
                 policy=BatchPolicy(max_batch=1, max_wait=0.0)):
        self._snapshots = list(snapshots)
        self.policy = policy
        self.n_workers = 1
        self.draining = False
        self.execution_backend = FakeBackend()
        self.assembly_kernel = None
        self.logger = FakeLogger()
        self.applied = []
        self.autotuner = None

    def metrics_snapshot(self):
        snap = (self._snapshots.pop(0) if len(self._snapshots) > 1
                else self._snapshots[0])
        snap = copy.deepcopy(snap)
        # The real service embeds the autotuner's own section — the
        # historical deadlock: snapshot() under the controller's lock.
        if self.autotuner is not None:
            snap["autotune"] = self.autotuner.snapshot()
        return snap

    def apply_policy(self, policy):
        self.applied.append(policy)
        self.policy = policy


def saturated_snapshots(count=4):
    """Successive cumulative snapshots of a saturated max_batch=1 server."""
    shots = []
    for step in range(1, count + 1):
        shots.append(make_snapshot(requests=1000 * step, uptime=10.0 * step,
                                   batch=1, stage_costs=BATCHING_COSTS,
                                   latency_ms=60.0))
    return shots


def controller_for(service, *, mode="apply", probe=True, monkeypatch=None,
                   **overrides):
    config = AutotuneConfig(mode=mode, interval=1000.0, probe=probe,
                            **overrides)
    if probe and monkeypatch is not None:
        monkeypatch.setattr("repro.tune.controller.probe_stage_curves",
                            lambda **kwargs: dict(BATCHING_COSTS))
    return AutotuneController(service, config, start_thread=False)


class TestModeAndConfig:
    def test_resolve_mode_explicit_and_env(self, monkeypatch):
        assert resolve_mode("apply") == "apply"
        assert resolve_mode(" Advise ") == "advise"
        monkeypatch.setenv(MODE_ENV, "apply")
        assert resolve_mode(None) == "apply"
        monkeypatch.delenv(MODE_ENV)
        assert resolve_mode(None) == "off"

    def test_resolve_mode_rejects_junk(self):
        with pytest.raises(TuneError, match="autotune mode"):
            resolve_mode("aggressive")

    def test_config_validation(self):
        with pytest.raises(TuneError, match="advise"):
            AutotuneConfig(mode="off")
        with pytest.raises(TuneError, match="interval"):
            AutotuneConfig(interval=0.0)
        with pytest.raises(TuneError, match="min_improvement"):
            AutotuneConfig(min_improvement=1.0)
        with pytest.raises(TuneError, match="tolerance"):
            AutotuneConfig(tolerance=0.0)


class TestServeController:
    def test_insufficient_traffic_holds(self):
        service = FakeService([make_snapshot(requests=4)])
        controller = controller_for(service, probe=False)
        decision = controller.run_cycle()
        assert decision["action"] == "held"
        assert decision["reason"] == "insufficient-traffic"
        assert service.applied == []

    def test_advise_never_mutates(self, monkeypatch):
        service = FakeService(saturated_snapshots())
        controller = controller_for(service, mode="advise",
                                    monkeypatch=monkeypatch)
        before = (service.policy.max_batch, service.policy.max_wait)
        for _ in range(3):
            controller.run_cycle()
        assert service.applied == []
        assert (service.policy.max_batch, service.policy.max_wait) == before
        assert controller.journal()[-1]["action"] in ("advised", "held")
        assert any(entry["action"] == "advised"
                   for entry in controller.journal())

    def test_apply_swaps_policy_and_journals(self, monkeypatch):
        service = FakeService(saturated_snapshots())
        controller = controller_for(service, monkeypatch=monkeypatch)
        decision = controller.run_cycle()
        assert decision["action"] == "applied"
        assert service.policy.max_batch > 1
        assert decision["old"]["max_batch"] == 1
        assert decision["new"]["max_batch"] == service.policy.max_batch
        assert decision["predicted_improvement"] >= 0.10
        assert any(name == "autotune" for name, _fields in
                   service.logger.events)

    def test_realized_delta_fills_from_next_window(self, monkeypatch):
        service = FakeService(saturated_snapshots())
        controller = controller_for(service, monkeypatch=monkeypatch)
        first = controller.run_cycle()
        assert first["action"] == "applied"
        assert first["realized_improvement"] is None
        controller.run_cycle()
        applied = controller.journal()[0]
        assert applied["realized_throughput_gain"] is not None
        assert "throughput_after_rps" in applied["realized"]

    def test_below_threshold_holds(self, monkeypatch):
        # 1 req/s against ~10ms of work: batching predicts nothing.
        light = [make_snapshot(requests=100 * step, uptime=100.0 * step,
                               batch=1, stage_costs=BATCHING_COSTS,
                               latency_ms=12.0)
                 for step in range(1, 4)]
        service = FakeService(light)
        controller = controller_for(service, monkeypatch=monkeypatch)
        decision = controller.run_cycle()
        assert (decision["action"], decision["reason"]) == (
            "held", "below-threshold")
        assert service.applied == []

    def test_draining_service_is_never_retuned(self, monkeypatch):
        service = FakeService(saturated_snapshots())
        service.draining = True
        controller = controller_for(service, monkeypatch=monkeypatch)
        decision = controller.run_cycle()
        assert (decision["action"], decision["reason"]) == ("held", "draining")
        assert service.applied == []

    def test_run_cycle_survives_recursive_snapshot(self, monkeypatch):
        """Regression: the service's metrics_snapshot embeds the
        controller's own snapshot(); with a non-reentrant lock the first
        cycle deadlocked forever."""
        service = FakeService(saturated_snapshots())
        controller = controller_for(service, monkeypatch=monkeypatch)
        service.autotuner = controller
        finished = threading.Event()

        def cycle():
            controller.run_cycle()
            finished.set()

        worker = threading.Thread(target=cycle, daemon=True)
        worker.start()
        assert finished.wait(timeout=10.0), (
            "run_cycle deadlocked against metrics_snapshot")

    def test_cycle_error_lands_in_counters(self):
        service = FakeService([make_snapshot(requests=100)])
        controller = controller_for(service, probe=False)
        controller._record_cycle_error(RuntimeError("boom"))
        section = controller.snapshot()
        assert section["cycle_errors"] == 1
        assert "boom" in section["last_error"]

    def test_snapshot_and_debug_document_shape(self, monkeypatch):
        service = FakeService(saturated_snapshots())
        controller = controller_for(service, monkeypatch=monkeypatch)
        controller.run_cycle()
        section = controller.snapshot()
        assert section["mode"] == "apply"
        assert section["cycles"] == 1
        assert section["last_action"] == "applied"
        document = controller.debug_document()
        assert document["calibration"]["source"] == "live+probe"
        assert document["recommendation"]["best"]["max_batch"] > 1
        assert document["journal"]
        assert document["paper"] is not None
        table = controller.render_table()
        assert "best" in table and "predicted improvement" in table

    def test_probe_runs_once_per_mix(self, monkeypatch):
        calls = []

        def fake_probe(**kwargs):
            calls.append(kwargs)
            return dict(BATCHING_COSTS)

        monkeypatch.setattr("repro.tune.controller.probe_stage_curves",
                            fake_probe)
        service = FakeService(saturated_snapshots())
        controller = controller_for(service)
        controller.run_cycle()
        controller.run_cycle()
        assert len(calls) == 1

    def test_close_is_idempotent(self):
        service = FakeService([make_snapshot(requests=100)])
        controller = controller_for(service, probe=False)
        controller.close()
        controller.close()


class FakeReplicaClient:
    def __init__(self, snapshots):
        self._snapshots = list(snapshots)

    def metrics(self):
        return copy.deepcopy(self._snapshots.pop(0)
                             if len(self._snapshots) > 1
                             else self._snapshots[0])


class FakeReplica:
    def __init__(self, snapshots):
        self.client = FakeReplicaClient(snapshots)


class FakeRouter:
    def __init__(self, replica_snapshots):
        self.replicas = {name: FakeReplica(shots)
                         for name, shots in replica_snapshots.items()}
        self._weights = {name: 1.0 / len(self.replicas)
                         for name in self.replicas}
        self.logger = FakeLogger()
        self.applied = []

    def current_weights(self):
        return dict(self._weights)

    def apply_weights(self, weights):
        self.applied.append(dict(weights))
        self._weights = dict(weights)


def replica_shot(completed, latency_sum_ms):
    return {"requests": {"completed": completed},
            "latency_hist_ms": {"sum_ms": latency_sum_ms,
                                "count": completed}}


class TestClusterAutotuner:
    def _router(self):
        # "fast" serves 3x the rate of "slow" over the same busy time.
        return FakeRouter({
            "fast": [replica_shot(0, 0.0), replica_shot(300, 3000.0),
                     replica_shot(600, 6000.0)],
            "slow": [replica_shot(0, 0.0), replica_shot(100, 3000.0),
                     replica_shot(200, 6000.0)],
        })

    def _tuner(self, router, mode="apply"):
        config = AutotuneConfig(mode=mode, interval=1000.0,
                                min_improvement=0.10)
        return ClusterAutotuner(router, config, start_thread=False)

    def test_first_cycle_has_no_window(self):
        router = self._router()
        tuner = self._tuner(router)
        decision = tuner.run_cycle()
        assert (decision["action"], decision["reason"]) == (
            "held", "insufficient-traffic")

    def test_apply_reweights_toward_fast_replica(self):
        router = self._router()
        tuner = self._tuner(router)
        tuner.run_cycle()
        decision = tuner.run_cycle()
        assert decision["action"] == "applied"
        assert router.applied
        weights = router.current_weights()
        assert weights["fast"] == pytest.approx(0.75)
        assert weights["slow"] == pytest.approx(0.25)

    def test_advise_never_moves_traffic(self):
        router = self._router()
        tuner = self._tuner(router, mode="advise")
        tuner.run_cycle()
        decision = tuner.run_cycle()
        assert decision["action"] == "advised"
        assert router.applied == []
        assert router.current_weights()["fast"] == pytest.approx(0.5)

    def test_small_shift_holds(self):
        router = FakeRouter({
            "a": [replica_shot(0, 0.0), replica_shot(210, 2000.0)],
            "b": [replica_shot(0, 0.0), replica_shot(200, 2000.0)],
        })
        tuner = self._tuner(router)
        tuner.run_cycle()
        decision = tuner.run_cycle()
        assert (decision["action"], decision["reason"]) == (
            "held", "below-threshold")
        assert router.applied == []

    def test_snapshot_shape(self):
        router = self._router()
        tuner = self._tuner(router)
        tuner.run_cycle()
        tuner.run_cycle()
        section = tuner.snapshot()
        assert section["cycles"] == 2
        assert section["applies"] == 1
        document = tuner.debug_document()
        assert document["weights"]["fast"] == pytest.approx(0.75)
        assert document["journal"]
