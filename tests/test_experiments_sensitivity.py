"""Tests for the calibration sensitivity analysis."""

import pytest

from repro.experiments.sensitivity import (
    DEFAULT_FACTORS,
    FITTED_PARAMETERS,
    run_sensitivity,
)


@pytest.fixture(scope="module")
def rows():
    return run_sensitivity(factors=(0.5, 1.0, 2.0))


class TestSensitivity:
    def test_full_grid_covered(self, rows):
        assert len(rows) == len(FITTED_PARAMETERS) * 3

    def test_conclusions_robust_to_2x(self, rows):
        """Every qualitative conclusion survives halving or doubling any
        fitted parameter (GPU-vs-Phi ordering with a 5 % tolerance: at
        half the link bandwidth the two are a near-tie) — the
        reproduction does not hinge on the fits."""
        for row in rows:
            assert row.conclusions_hold, (
                f"{row.parameter} x{row.factor}: gpu {row.gpu_speedup:.2f}, "
                f"phi {row.phi_speedup:.2f}, s*={row.gpu_optimal_slices}"
            )

    def test_bandwidth_is_the_load_bearing_fit(self, rows):
        """The strict GPU > Phi ordering flips only under halved link
        bandwidth — documenting which fit the conclusion leans on."""
        for row in rows:
            strictly_ordered = row.gpu_speedup > row.phi_speedup
            if row.parameter == "link_bandwidth" and row.factor == 0.5:
                assert not strictly_ordered  # near-tie, Phi nose ahead
                assert row.gpu_speedup == pytest.approx(row.phi_speedup,
                                                        rel=0.05)
            else:
                assert strictly_ordered

    def test_unperturbed_rows_agree_with_tables(self, rows):
        nominal = [row for row in rows if row.factor == 1.0]
        for row in nominal:
            assert row.gpu_speedup == pytest.approx(3.11, abs=0.15)

    def test_faster_link_raises_speedup(self, rows):
        by_factor = {
            row.factor: row.gpu_speedup
            for row in rows if row.parameter == "link_bandwidth"
        }
        assert by_factor[2.0] >= by_factor[0.5]

    def test_host_overhead_monotone(self, rows):
        """Doubling the per-offload host cost never *raises* a speedup
        (the autotuner absorbs most of it by coarsening the slicing)."""
        gpu, phi = {}, {}
        for row in rows:
            if row.parameter == "host_overhead_per_call":
                gpu[row.factor] = row.gpu_speedup
                phi[row.factor] = row.phi_speedup
        assert gpu[0.5] >= gpu[2.0]
        assert phi[0.5] >= phi[2.0] - 1e-9

    def test_slice_optimum_moves_with_setup_cost(self, rows):
        """Cheaper per-call setup -> finer optimal slicing (s* ~ 1/sqrt(c))."""
        by_factor = {
            row.factor: row.gpu_optimal_slices
            for row in rows if row.parameter == "solve_call_setup"
        }
        assert by_factor[0.5] >= by_factor[2.0]
