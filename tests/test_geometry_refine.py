"""Tests for curvature-adaptive repaneling."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import naca, repanel, outline_curvature
from repro.panel import solve_airfoil
from repro.validation import cylinder_airfoil


class TestCurvature:
    def test_cylinder_curvature_constant(self):
        cylinder = cylinder_airfoil(120, radius=2.0)
        curvature = outline_curvature(cylinder)
        assert curvature == pytest.approx(np.full(120, 0.5), rel=1e-3)

    def test_radius_scaling(self):
        small = outline_curvature(cylinder_airfoil(100, radius=1.0)).mean()
        large = outline_curvature(cylinder_airfoil(100, radius=4.0)).mean()
        assert small == pytest.approx(4.0 * large, rel=1e-6)

    def test_nose_is_curved(self, naca2412):
        curvature = outline_curvature(naca2412)
        le = naca2412.leading_edge_index
        mid_upper = le // 2
        assert curvature[le] > 10 * curvature[mid_upper]


class TestRepanel:
    def test_preserves_shape(self, naca2412):
        resampled = repanel(naca2412, 200, curvature_weight=3.0)
        assert resampled.area == pytest.approx(naca2412.area, rel=5e-3)
        assert resampled.chord == pytest.approx(naca2412.chord, rel=1e-3)
        assert resampled.n_panels == 200

    def test_preserves_trailing_edge(self, naca2412):
        resampled = repanel(naca2412, 80)
        assert resampled.trailing_edge == pytest.approx(
            naca2412.trailing_edge, abs=1e-12
        )

    def test_default_panel_count(self, naca2412):
        assert repanel(naca2412).n_panels == naca2412.n_panels

    def test_zero_weight_gives_uniform_arcs(self, naca2412):
        resampled = repanel(naca2412, 64, curvature_weight=0.0)
        lengths = resampled.panel_lengths
        assert lengths.max() / lengths.min() < 1.2

    def test_weight_concentrates_at_curved_regions(self, naca2412):
        resampled = repanel(naca2412, 64, curvature_weight=4.0)
        lengths = resampled.panel_lengths
        le = resampled.leading_edge_index
        nose_lengths = lengths[le - 3:le + 3]
        # Panels shrink at the nose...
        assert nose_lengths.mean() < 0.65 * lengths.mean()
        # ... and shrink hardest at the sharp trailing-edge corner, the
        # highest-curvature feature of the closed outline.
        assert lengths[0] < 0.35 * lengths.mean()
        assert lengths[-1] < 0.35 * lengths.mean()

    def test_improves_solution_convergence(self):
        """The headline claim: same budget, better answer."""
        uniform = naca("2412", 60, spacing_kind="uniform")
        adaptive = repanel(uniform, 60, curvature_weight=3.0)
        reference = solve_airfoil(naca("2412", 400), 4.0).lift_coefficient
        error_uniform = abs(
            solve_airfoil(uniform, 4.0).lift_coefficient - reference
        )
        error_adaptive = abs(
            solve_airfoil(adaptive, 4.0).lift_coefficient - reference
        )
        assert error_adaptive < 0.5 * error_uniform

    def test_invalid_arguments(self, naca2412):
        with pytest.raises(GeometryError):
            repanel(naca2412, 2)
        with pytest.raises(GeometryError):
            repanel(naca2412, 64, curvature_weight=-1.0)
