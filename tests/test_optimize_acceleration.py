"""Tests for the GA-on-accelerator timing model."""

import pytest

from repro.errors import ScheduleError
from repro.optimize import ga_speedup, time_ga_run


class TestTimeGARun:
    def test_generation_count(self):
        result = time_ga_run(population=400, generations=10,
                             accelerator="k80-half")
        assert len(result.per_generation_seconds) == 10
        assert result.total_seconds > sum(result.per_generation_seconds)

    def test_matches_paper_batch_on_cpu(self):
        """10 generations of 400 = the 4000-candidate reference batch;
        on the CPU (no pipeline) the totals agree up to per-call setup."""
        result = time_ga_run(population=400, generations=10,
                             accelerator="none", precision="double")
        # Paper 2x CPU dp baseline: 7.20 s for the flat batch.
        assert result.total_seconds == pytest.approx(7.25, abs=0.4)

    def test_accelerator_helps(self):
        cpu = time_ga_run(accelerator="none")
        gpu = time_ga_run(accelerator="k80-half")
        assert gpu.total_seconds < cpu.total_seconds

    def test_generation_sync_costs_speedup(self):
        """Per-generation batches amortize the pipeline fill worse than
        one flat batch: the end-to-end GA speedup is below the flat
        Table 3 speedup (a prediction beyond the paper's tables)."""
        speedup = ga_speedup("k80-half", population=400, generations=10,
                             precision="double")
        assert 1.5 < speedup < 3.1  # flat-batch value is ~3.1

    def test_bigger_population_recovers_speedup(self):
        small = ga_speedup("k80-half", population=200, generations=20)
        large = ga_speedup("k80-half", population=2000, generations=2)
        assert large > small

    def test_dual_gpu_best(self):
        gpu = ga_speedup("k80-half", population=1000, generations=4)
        dual = ga_speedup("k80-dual", population=1000, generations=4)
        assert dual > gpu

    def test_invalid_population(self):
        with pytest.raises(ScheduleError):
            time_ga_run(population=0)

    def test_configuration_label(self):
        result = time_ga_run(accelerator="phi", sockets=1)
        assert "Phi" in result.configuration
