"""Tests for repro.precision."""

import numpy as np
import pytest

from repro.precision import DOUBLE, SINGLE, Precision, as_dtype, tolerance_for


class TestParse:
    def test_identity(self):
        assert Precision.parse(SINGLE) is SINGLE
        assert Precision.parse(DOUBLE) is DOUBLE

    @pytest.mark.parametrize("spelling", ["single", "sp", "float32", "f4", "32", "SP"])
    def test_single_spellings(self, spelling):
        assert Precision.parse(spelling) is SINGLE

    @pytest.mark.parametrize("spelling", ["double", "dp", "float64", "f8", "64"])
    def test_double_spellings(self, spelling):
        assert Precision.parse(spelling) is DOUBLE

    def test_numpy_dtypes(self):
        assert Precision.parse(np.float32) is SINGLE
        assert Precision.parse(np.dtype(np.float64)) is DOUBLE

    def test_unknown_string_raises(self):
        with pytest.raises(ValueError, match="unknown precision"):
            Precision.parse("half")

    def test_unsupported_dtype_raises(self):
        with pytest.raises(ValueError, match="unsupported dtype"):
            Precision.parse(np.int32)


class TestProperties:
    def test_dtypes(self):
        assert SINGLE.dtype == np.float32
        assert DOUBLE.dtype == np.float64

    def test_itemsize(self):
        assert SINGLE.itemsize == 4
        assert DOUBLE.itemsize == 8

    def test_eps_ordering(self):
        assert SINGLE.eps > DOUBLE.eps
        assert DOUBLE.eps == pytest.approx(2.220446049250313e-16)

    def test_short_names(self):
        assert SINGLE.short_name == "sp"
        assert DOUBLE.short_name == "dp"

    def test_str(self):
        assert str(SINGLE) == "single"
        assert str(DOUBLE) == "double"


class TestHelpers:
    def test_as_dtype(self):
        assert as_dtype("sp") == np.float32

    def test_tolerance_scales_with_eps(self):
        assert tolerance_for("sp") / tolerance_for("dp") == pytest.approx(
            SINGLE.eps / DOUBLE.eps
        )

    def test_tolerance_factor(self):
        assert tolerance_for("dp", factor=1.0) == DOUBLE.eps
