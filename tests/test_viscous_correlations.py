"""Tests for the boundary-layer closure correlations."""

import numpy as np
import pytest

from repro.errors import ViscousError
from repro.viscous import (
    LAMBDA_SEPARATION,
    head_entrainment,
    head_h1,
    head_h_from_h1,
    ludwieg_tillmann_cf,
    michel_transition_re_theta,
    thwaites_h,
    thwaites_l,
)


class TestThwaitesCorrelations:
    def test_flat_plate_values(self):
        # lambda = 0: l = 0.22, H = 2.61 (Blasius-like).
        assert thwaites_l(0.0) == pytest.approx(0.22)
        assert thwaites_h(0.0) == pytest.approx(2.61)

    def test_shear_vanishes_at_separation(self):
        assert thwaites_l(LAMBDA_SEPARATION) == pytest.approx(0.0, abs=0.02)

    def test_shape_factor_rises_toward_separation(self):
        lam = np.linspace(-0.088, 0.1, 50)
        h = thwaites_h(lam)
        assert np.all(np.diff(h) < 0)  # H decreases with lambda
        assert thwaites_h(-0.088) > 3.2

    def test_favourable_gradient_thins_profile(self):
        assert thwaites_h(0.1) < thwaites_h(0.0)

    def test_clipping_outside_range(self):
        assert thwaites_h(-5.0) == thwaites_h(LAMBDA_SEPARATION)
        assert thwaites_l(5.0) == thwaites_l(0.25)

    def test_vectorized(self):
        lam = np.array([-0.05, 0.0, 0.05])
        assert thwaites_l(lam).shape == (3,)


class TestTurbulentCorrelations:
    def test_ludwieg_tillmann_magnitude(self):
        # Flat-plate-ish turbulent layer: H = 1.4, Re_theta = 1000.
        cf = ludwieg_tillmann_cf(1.4, 1000.0)
        assert 0.002 < cf < 0.005

    def test_cf_decreases_with_re(self):
        assert ludwieg_tillmann_cf(1.4, 1e5) < ludwieg_tillmann_cf(1.4, 1e3)

    def test_cf_decreases_with_h(self):
        assert ludwieg_tillmann_cf(2.2, 1e4) < ludwieg_tillmann_cf(1.3, 1e4)

    def test_nonpositive_re_rejected(self):
        with pytest.raises(ViscousError):
            ludwieg_tillmann_cf(1.4, 0.0)

    def test_h1_h_inverse_roundtrip(self):
        h_values = np.linspace(1.2, 2.4, 25)
        recovered = head_h_from_h1(head_h1(h_values))
        assert recovered == pytest.approx(h_values, abs=0.02)

    def test_h1_decreases_with_h_below_16(self):
        h = np.linspace(1.15, 1.6, 20)
        assert np.all(np.diff(head_h1(h)) < 0)

    def test_entrainment_positive_and_decreasing(self):
        h1 = np.linspace(3.5, 10.0, 20)
        f = head_entrainment(h1)
        assert np.all(f > 0)
        assert np.all(np.diff(f) < 0)


class TestMichel:
    def test_critical_re_theta_magnitude(self):
        # At Re_x = 1e6 the Michel threshold is near Re_theta ~ 680-700.
        value = michel_transition_re_theta(1e6)
        assert 600 < value < 800

    def test_increases_with_re_x(self):
        assert michel_transition_re_theta(1e7) > michel_transition_re_theta(1e5)

    def test_small_re_guard(self):
        assert np.isfinite(michel_transition_re_theta(0.0))
