"""Latency histograms with exemplars, SLO burn rates, and their
Prometheus exposition (including the data-driven quantile mapping)."""

import json

import pytest

from repro.errors import ServeError
from repro.obs.histogram import (DEFAULT_BUCKET_BOUNDS_MS, INF_LE,
                                 LatencyHistogram, StageHistograms,
                                 format_le, is_histogram_snapshot,
                                 merge_histogram_snapshots)
from repro.obs.prometheus import quantile_label, render_prometheus
from repro.obs.slo import (BUCKET_SECONDS, DEFAULT_WINDOWS, SLOTracker,
                           is_slo_snapshot, merge_slo_snapshots)
from tests.test_obs import parse_prometheus


class ManualClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# Latency histograms
# ----------------------------------------------------------------------

class TestLatencyHistogram:
    def test_default_ladder_doubles_per_rung(self):
        for earlier, later in zip(DEFAULT_BUCKET_BOUNDS_MS,
                                  DEFAULT_BUCKET_BOUNDS_MS[1:]):
            assert later == pytest.approx(2 * earlier)

    def test_counts_are_cumulative_le(self):
        histogram = LatencyHistogram((1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0, 5000.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        counts = {bucket["le"]: bucket["count"]
                  for bucket in snapshot["buckets"]}
        assert counts == {"1": 1, "10": 3, "100": 4, INF_LE: 5}
        assert snapshot["count"] == 5
        assert snapshot["sum_ms"] == pytest.approx(5060.5)

    def test_exemplar_keeps_latest_trace_per_bucket(self):
        clock = ManualClock()
        histogram = LatencyHistogram((1.0, 10.0), clock=clock)
        histogram.observe(5.0, "trace-old")
        clock.advance(1.0)
        histogram.observe(6.0, "trace-new")
        histogram.observe(0.5)  # no trace id: exemplar stays absent
        snapshot = histogram.snapshot()
        by_le = {bucket["le"]: bucket for bucket in snapshot["buckets"]}
        assert by_le["10"]["exemplar"]["trace_id"] == "trace-new"
        assert by_le["10"]["exemplar"]["value_ms"] == pytest.approx(6.0)
        assert "exemplar" not in by_le["1"]

    def test_negative_and_non_finite_clamp_to_zero(self):
        histogram = LatencyHistogram((1.0,))
        histogram.observe(-5.0)
        histogram.observe(float("nan"))
        histogram.observe(float("inf"))
        snapshot = histogram.snapshot()
        assert snapshot["buckets"][0]["count"] == 3
        assert snapshot["sum_ms"] == 0.0

    @pytest.mark.parametrize("bounds", [(), (1.0, 1.0), (2.0, 1.0),
                                        (1.0, float("inf"))])
    def test_bad_bounds_rejected(self, bounds):
        with pytest.raises(ServeError):
            LatencyHistogram(bounds)

    def test_format_le_is_canonical(self):
        assert format_le(0.25) == "0.25"
        assert format_le(16.0) == "16"
        assert format_le(float("inf")) == INF_LE

    def test_snapshot_shape_detector(self):
        assert is_histogram_snapshot(LatencyHistogram((1.0,)).snapshot())
        assert not is_histogram_snapshot({"buckets": "nope"})
        assert not is_histogram_snapshot({"count": 3})
        assert not is_histogram_snapshot(None)

    def test_merge_sums_counts_and_keeps_newer_exemplar(self):
        older, newer = ManualClock(10.0), ManualClock(20.0)
        left = LatencyHistogram((1.0, 10.0), clock=older)
        right = LatencyHistogram((1.0, 10.0), clock=newer)
        left.observe(5.0, "trace-left")
        right.observe(5.0, "trace-right")
        right.observe(0.5)
        merged = left.snapshot()
        merge_histogram_snapshots(merged, right.snapshot())
        by_le = {bucket["le"]: bucket for bucket in merged["buckets"]}
        assert by_le["1"]["count"] == 1
        assert by_le["10"]["count"] == 3  # cumulative: 1 + 2
        assert by_le["10"]["exemplar"]["trace_id"] == "trace-right"
        assert merged["count"] == 3

    def test_merge_rejects_mismatched_ladders(self):
        left = LatencyHistogram((1.0, 10.0)).snapshot()
        right = LatencyHistogram((1.0, 100.0)).snapshot()
        with pytest.raises(ServeError, match="bucket bounds"):
            merge_histogram_snapshots(left, right)

    def test_merge_into_empty_target_copies(self):
        source = LatencyHistogram((1.0,))
        source.observe(0.5, "trace-a")
        target = {}
        merge_histogram_snapshots(target, source.snapshot())
        assert target["count"] == 1

    def test_stage_histograms_create_lazily_and_sort(self):
        stages = StageHistograms((1.0, 10.0))
        stages.observe("solve", 5.0, "trace-s")
        stages.observe("assembly", 0.5)
        snapshot = stages.snapshot()
        assert list(snapshot) == ["assembly", "solve"]
        assert snapshot["solve"]["count"] == 1


# ----------------------------------------------------------------------
# SLO burn rates
# ----------------------------------------------------------------------

class TestSLOTracker:
    def test_burn_rate_is_error_rate_over_budget(self):
        clock = ManualClock()
        tracker = SLOTracker(latency_ms=100.0, target=0.9, clock=clock)
        for _ in range(9):
            tracker.record(True, 50.0)
        tracker.record(False)
        snapshot = tracker.snapshot()
        window = snapshot["windows"]["5m"]["availability"]
        assert window["good"] == 9 and window["bad"] == 1
        assert window["error_rate"] == pytest.approx(0.1)
        # 10% errors against a 10% budget: burning at exactly 1x.
        assert window["burn_rate"] == pytest.approx(1.0)

    def test_slow_success_misses_latency_but_not_availability(self):
        tracker = SLOTracker(latency_ms=100.0, target=0.99,
                             clock=ManualClock())
        tracker.record(True, 500.0)
        snapshot = tracker.snapshot()
        assert snapshot["availability_bad"] == 0
        assert snapshot["latency_bad"] == 1

    def test_unmeasured_success_counts_as_latency_miss(self):
        tracker = SLOTracker(clock=ManualClock())
        tracker.record(True, None)
        assert tracker.snapshot()["latency_bad"] == 1

    def test_short_window_forgets_old_errors_totals_do_not(self):
        clock = ManualClock()
        tracker = SLOTracker(target=0.99, windows=(300, 3600), clock=clock)
        tracker.record(False)
        clock.advance(600.0)  # past the 5m window, inside the 1h window
        tracker.record(True, 1.0)
        snapshot = tracker.snapshot()
        assert snapshot["windows"]["5m"]["availability"]["bad"] == 0
        assert snapshot["windows"]["1h"]["availability"]["bad"] == 1
        assert snapshot["availability_bad"] == 1

    def test_cells_prune_past_longest_window(self):
        clock = ManualClock()
        tracker = SLOTracker(windows=(300,), clock=clock)
        tracker.record(True, 1.0)
        clock.advance(10 * 300.0)
        tracker.record(True, 1.0)
        assert len(tracker._cells) == 1

    @pytest.mark.parametrize("kwargs", [
        {"latency_ms": 0.0}, {"latency_ms": -1.0},
        {"target": 0.0}, {"target": 1.0}, {"target": 1.5},
        {"windows": ()}, {"windows": (0,)}, {"windows": (600, 300)},
        {"windows": (300, 300)},
    ])
    def test_bad_objectives_rejected(self, kwargs):
        with pytest.raises(ServeError):
            SLOTracker(**kwargs)

    def test_default_windows_are_the_multiwindow_setup(self):
        assert DEFAULT_WINDOWS == (300, 1800, 3600, 21600)
        assert BUCKET_SECONDS == 10.0

    def test_snapshot_shape_detector(self):
        assert is_slo_snapshot(SLOTracker(clock=ManualClock()).snapshot())
        assert not is_slo_snapshot({"windows": {}})
        assert not is_slo_snapshot(None)

    def test_merge_sums_counts_recomputes_rates_keeps_stricter(self):
        lenient = SLOTracker(latency_ms=500.0, target=0.9,
                             clock=ManualClock())
        strict = SLOTracker(latency_ms=100.0, target=0.99,
                            clock=ManualClock())
        lenient.record(False)
        strict.record(True, 50.0)
        merged = lenient.snapshot()
        merge_slo_snapshots(merged, strict.snapshot())
        assert merged["objectives"] == {"latency_ms": 100.0, "target": 0.99}
        window = merged["windows"]["5m"]["availability"]
        assert (window["good"], window["bad"]) == (1, 1)
        assert window["error_rate"] == pytest.approx(0.5)
        # Recomputed against the merged (stricter) 1% budget.
        assert window["burn_rate"] == pytest.approx(50.0)

    def test_merge_into_empty_target_copies(self):
        source = SLOTracker(clock=ManualClock())
        source.record(True, 1.0)
        target = {}
        merge_slo_snapshots(target, source.snapshot())
        assert target["availability_good"] == 1


# ----------------------------------------------------------------------
# Prometheus exposition: quantile mapping + histogram families
# ----------------------------------------------------------------------

class TestQuantileMapping:
    @pytest.mark.parametrize("stat,label", [
        ("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99"),
        ("p999", "0.999"), ("p10", "0.1"), ("p9999", "0.9999"),
    ])
    def test_pxx_keys_map_data_driven(self, stat, label):
        assert quantile_label(stat) == label

    @pytest.mark.parametrize("stat", ["count", "mean", "max", "min", "sum"])
    def test_plain_stats_are_not_quantiles(self, stat):
        assert quantile_label(stat) is None

    @pytest.mark.parametrize("stat", ["p5", "p", "p12345", "pabc"])
    def test_unmappable_p_keys_raise_instead_of_vanishing(self, stat):
        with pytest.raises(ServeError, match="quantile"):
            quantile_label(stat)

    def test_new_quantile_key_round_trips_through_exposition(self):
        # Regression for the hardcoded-quantile bug: a latency block
        # carrying p95 (not in the old hardcoded set) must appear in
        # the scrape rather than silently vanish.
        text = render_prometheus(
            {"latency_ms": {"count": 4, "p50": 1.0, "p95": 2.0, "p99": 3.0}})
        samples, _, _ = parse_prometheus(text)
        assert samples[("repro_latency_ms", 'quantile="0.95"')] == 2.0

    def test_malformed_quantile_key_fails_the_render(self):
        with pytest.raises(ServeError, match="quantile"):
            render_prometheus({"latency_ms": {"p5": 1.0}})


class TestHistogramExposition:
    def _scrape(self):
        histogram = LatencyHistogram((1.0, 10.0), clock=ManualClock())
        histogram.observe(5.0, "trace-slow")
        histogram.observe(0.5)
        return render_prometheus({"latency_hist_ms": histogram.snapshot()})

    def test_bucket_family_with_le_labels_and_inf(self):
        samples, types, _ = parse_prometheus(self._scrape())
        assert types["repro_latency_hist_ms_bucket"] == "histogram"
        assert samples[("repro_latency_hist_ms_bucket", 'le="1"')] == 1
        assert samples[("repro_latency_hist_ms_bucket", 'le="10"')] == 2
        assert samples[("repro_latency_hist_ms_bucket", 'le="+Inf"')] == 2
        assert samples[("repro_latency_hist_ms_count", "")] == 2
        assert samples[("repro_latency_hist_ms_sum", "")] == 5.5

    def test_exemplar_rides_the_bucket_line(self):
        _, _, exemplars = parse_prometheus(self._scrape())
        exemplar = exemplars[("repro_latency_hist_ms_bucket", 'le="10"')]
        assert exemplar == '{trace_id="trace-slow"} 5'

    def test_slo_snapshot_renders_with_burn_rate_gauges(self):
        tracker = SLOTracker(target=0.9, clock=ManualClock())
        tracker.record(False)
        text = render_prometheus({"slo": tracker.snapshot()})
        samples, types, _ = parse_prometheus(text)
        assert types["repro_slo_availability_bad"] == "counter"
        assert samples[("repro_slo_availability_bad", "")] == 1
        key = ("repro_slo_windows_5m_availability_burn_rate", "")
        assert samples[key] == pytest.approx(10.0)

    def test_document_round_trips_through_json(self):
        # The same snapshot must be renderable from its JSON form (the
        # cluster aggregator works on JSON documents, not objects).
        histogram = LatencyHistogram((1.0,))
        histogram.observe(0.5, "trace-x")
        document = json.loads(json.dumps(
            {"latency_hist_ms": histogram.snapshot()}))
        samples, _, _ = parse_prometheus(render_prometheus(document))
        assert samples[("repro_latency_hist_ms_bucket", 'le="1"')] == 1
