"""End-to-end cluster test: real processes, real sockets, real kills.

Three ``repro serve`` subprocesses sit behind one ``repro cluster
route`` subprocess.  The tests drive the router's public HTTP API only
(plus direct replica ``/metrics`` reads to observe locality) and cover
the three cluster guarantees: cache-affine routing, request failover,
and job migration with byte-identical resumed history after SIGKILL.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.errors import OverloadedError, ServeError
from repro.jobs import JobState
from repro.serve import ServeClient

SPEC = {"seed": 7, "checkpoint_every": 2,
        "ga": {"population_size": 24, "generations": 10, "keep_best": 2},
        "fitness": {"n_panels": 200}}

_BANNER_PORT = re.compile(r"http://127\.0\.0\.1:(\d+)")
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def reference_history(spec):
    from repro.jobs import JobSpec, history_to_dict
    from repro.optimize import GeneticOptimizer

    parsed = JobSpec.from_dict(spec)
    history = GeneticOptimizer(
        evaluator=parsed.fitness_evaluator(), config=parsed.ga_config(),
    ).run(np.random.default_rng(parsed.seed))
    return history_to_dict(history)


def _spawn(argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_EXEC_BACKEND", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"] + argv,
        stdout=subprocess.PIPE, text=True, env=env, cwd=_REPO_ROOT,
    )
    banner = proc.stdout.readline()
    match = _BANNER_PORT.search(banner)
    if not match:
        proc.kill()
        proc.wait(timeout=30)
        raise AssertionError(f"no port in banner: {banner!r}")
    return proc, int(match.group(1))


def _reap(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=30)


class Topology:
    """Three serve replicas behind one router, all real processes."""

    def __init__(self, tmp_path):
        self.procs, self.ports, self.jobs_dirs = [], [], []
        replica_flags = []
        try:
            for index in range(3):
                jobs_dir = tmp_path / f"jobs-{index}"
                proc, port = _spawn(
                    ["serve", "--port", "0", "--jobs-dir", str(jobs_dir),
                     "--workers", "1", "--log-format", "off"])
                self.procs.append(proc)
                self.ports.append(port)
                self.jobs_dirs.append(jobs_dir)
                replica_flags += ["--replica",
                                  f"127.0.0.1:{port}={jobs_dir}"]
            self.router_proc, self.router_port = _spawn(
                ["cluster", "route", "--port", "0",
                 "--state-dir", str(tmp_path / "router-state"),
                 "--health-interval-ms", "100", "--down-after", "2",
                 *replica_flags])
            self.procs.append(self.router_proc)
        except BaseException:
            self.close()
            raise
        self.client = ServeClient(port=self.router_port, timeout=30.0)
        self.client.wait_until_ready(timeout=30.0)
        self.names = [f"127.0.0.1:{port}" for port in self.ports]

    def replica_client(self, index):
        return ServeClient(port=self.ports[index], timeout=10.0)

    def sigkill(self, index):
        os.kill(self.procs[index].pid, signal.SIGKILL)
        self.procs[index].wait(timeout=30)

    def router_metrics(self):
        return self.client.metrics()

    def close(self):
        if getattr(self, "client", None) is not None:
            self.client.close()
        for proc in self.procs:
            _reap(proc)


@pytest.fixture
def topology(tmp_path):
    built = Topology(tmp_path)
    yield built
    built.close()


def payload(alpha):
    return {"airfoil": "2412", "alpha_degrees": float(alpha),
            "reynolds": 0, "n_panels": 60}


class TestClusterEndToEnd:
    def test_cache_locality_and_failover(self, topology):
        # --- Locality: repeats of one payload hit exactly one replica's
        # cache; the others never see the key.
        for _ in range(4):
            topology.client.analyze("2412", 3.0, n_panels=60)
        hits = []
        for index in range(3):
            with topology.replica_client(index) as replica:
                hits.append(replica.metrics()["cache"]["hits"])
        assert sorted(hits) == [0, 0, 3], hits

        # --- Failover: SIGKILL one replica; a sweep of fresh payloads
        # (some of which hashed to the dead node) all still answer.
        topology.sigkill(0)
        for alpha in np.linspace(-4.0, 4.0, 12):
            record = topology.client.analyze("2412", float(alpha),
                                             n_panels=60)
            assert "cl" in record
        router = topology.router_metrics()["router"]
        assert router["routed"] >= 16
        assert router["exhausted"] == 0

    def test_sigkill_migrates_job_with_identical_history(self, topology):
        record = topology.client.submit_job(SPEC)
        home = record["replica"]
        index = topology.names.index(home)
        checkpoint = (topology.jobs_dirs[index] / "checkpoints"
                      / f"{record['id']}.json")
        deadline = time.monotonic() + 120.0
        while not checkpoint.exists():
            assert time.monotonic() < deadline, "checkpoint never appeared"
            time.sleep(0.02)
        topology.sigkill(index)

        # The router notices the death, stages the checkpoint on a
        # survivor, resubmits, and the job runs to DONE there.
        final = None
        while final is None or final["state"] not in JobState.TERMINAL:
            assert time.monotonic() < deadline, "job never finished"
            time.sleep(0.1)
            try:
                final = topology.client.job(record["id"])
            except (OverloadedError, ServeError):
                final = None  # mid-migration window
        assert final["state"] == JobState.DONE
        assert final["replica"] != home
        assert json.dumps(final["result"]["history"], sort_keys=True) == \
            json.dumps(reference_history(SPEC), sort_keys=True)

        router = topology.router_metrics()["router"]
        assert router["jobs_migrated"] == 1
        assert router["checkpoints_staged"] == 1
        # The survivor resumed mid-run rather than recomputing: it ran
        # fewer generations than the spec asks for in total.
        survivor = topology.names.index(final["replica"])
        with topology.replica_client(survivor) as replica:
            generations = replica.metrics()["jobs"]["generations_completed"]
        assert 0 < generations < SPEC["ga"]["generations"]
