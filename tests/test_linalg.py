"""Tests for the from-scratch LU kernels against numpy.linalg."""

import numpy as np
import pytest

from repro.errors import LinalgError
from repro.linalg import (
    batched_flops,
    batched_lu_factor,
    batched_lu_solve,
    batched_solve,
    condition_estimate_1norm,
    factor_flops,
    frobenius_norm,
    infinity_norm,
    lu_factor,
    lu_solve,
    one_norm,
    relative_residual,
    solve,
    solve_flops,
    solve_lower,
    solve_lower_unit,
    solve_upper,
)


def random_spd_free_matrix(rng, n):
    """A well-conditioned random matrix (diagonally dominated)."""
    matrix = rng.standard_normal((n, n))
    matrix += n * np.eye(n)
    return matrix


class TestLUFactor:
    def test_reconstruction(self, rng):
        a = rng.standard_normal((12, 12))
        factors = lu_factor(a)
        reconstructed = factors.lower() @ factors.upper()
        permuted = factors.permutation_matrix() @ a
        assert reconstructed == pytest.approx(permuted, abs=1e-12)

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = solve(a, np.array([2.0, 3.0]))
        assert x == pytest.approx([3.0, 2.0])

    def test_singular_raises(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(LinalgError, match="singular"):
            lu_factor(a)

    def test_non_square_raises(self):
        with pytest.raises(LinalgError, match="square"):
            lu_factor(np.ones((2, 3)))

    def test_determinant(self, rng):
        a = random_spd_free_matrix(rng, 8)
        assert lu_factor(a).determinant() == pytest.approx(
            np.linalg.det(a), rel=1e-9
        )

    def test_integer_input_promoted(self):
        x = solve(np.array([[2, 0], [0, 4]]), np.array([2, 8]))
        assert x == pytest.approx([1.0, 2.0])

    def test_overwrite_mutates_input(self, rng):
        a = random_spd_free_matrix(rng, 5)
        original = a.copy()
        lu_factor(a, overwrite=True)
        assert not np.allclose(a, original)


class TestLUSolve:
    def test_matches_numpy(self, rng):
        a = random_spd_free_matrix(rng, 20)
        b = rng.standard_normal(20)
        assert solve(a, b) == pytest.approx(np.linalg.solve(a, b), abs=1e-10)

    def test_multiple_rhs(self, rng):
        a = random_spd_free_matrix(rng, 10)
        b = rng.standard_normal((10, 3))
        assert solve(a, b) == pytest.approx(np.linalg.solve(a, b), abs=1e-10)

    def test_rhs_shape_mismatch(self, rng):
        factors = lu_factor(random_spd_free_matrix(rng, 4))
        with pytest.raises(LinalgError, match="rhs"):
            lu_solve(factors, np.ones(5))

    def test_residual_near_machine_epsilon(self, rng):
        a = random_spd_free_matrix(rng, 30)
        b = rng.standard_normal(30)
        x = solve(a, b)
        assert relative_residual(a, x, b) < 1e-14


class TestTriangular:
    def test_lower_unit(self, rng):
        lower = np.tril(rng.standard_normal((8, 8)), -1) + np.eye(8)
        b = rng.standard_normal((8, 2))
        assert solve_lower_unit(lower, b) == pytest.approx(
            np.linalg.solve(lower, b), abs=1e-12
        )

    def test_upper(self, rng):
        upper = np.triu(rng.standard_normal((8, 8))) + 8 * np.eye(8)
        b = rng.standard_normal((8, 2))
        assert solve_upper(upper, b) == pytest.approx(
            np.linalg.solve(np.triu(upper), b), abs=1e-12
        )

    def test_lower_general(self, rng):
        lower = np.tril(rng.standard_normal((8, 8))) + 8 * np.eye(8)
        b = rng.standard_normal(8)
        assert solve_lower(lower, b) == pytest.approx(
            np.linalg.solve(np.tril(lower), b), abs=1e-12
        )

    def test_zero_diagonal_raises(self):
        upper = np.triu(np.ones((3, 3)))
        upper[1, 1] = 0.0
        with pytest.raises(LinalgError, match="zero diagonal"):
            solve_upper(upper, np.ones(3))


class TestBatched:
    def test_matches_numpy_per_matrix(self, rng):
        matrices = rng.standard_normal((7, 15, 15)) + 15 * np.eye(15)
        rhs = rng.standard_normal((7, 15))
        result = batched_solve(matrices, rhs)
        expected = np.stack([
            np.linalg.solve(matrix, vector)
            for matrix, vector in zip(matrices, rhs)
        ])
        assert result == pytest.approx(expected, abs=1e-10)

    def test_matches_single_matrix_path(self, rng):
        a = random_spd_free_matrix(rng, 9)
        b = rng.standard_normal(9)
        batched = batched_solve(a[None], b[None])[0]
        assert batched == pytest.approx(solve(a, b), abs=1e-12)

    def test_multiple_rhs(self, rng):
        matrices = rng.standard_normal((3, 6, 6)) + 6 * np.eye(6)
        rhs = rng.standard_normal((3, 6, 4))
        result = batched_solve(matrices, rhs)
        for index in range(3):
            assert result[index] == pytest.approx(
                np.linalg.solve(matrices[index], rhs[index]), abs=1e-10
            )

    def test_pivoting_in_batch(self):
        matrices = np.array([
            [[0.0, 1.0], [1.0, 0.0]],
            [[2.0, 0.0], [0.0, 2.0]],
        ])
        rhs = np.array([[1.0, 2.0], [2.0, 4.0]])
        result = batched_solve(matrices, rhs)
        assert result == pytest.approx(np.array([[2.0, 1.0], [1.0, 2.0]]))

    def test_singular_member_identified(self, rng):
        matrices = rng.standard_normal((3, 4, 4)) + 4 * np.eye(4)
        matrices[1] = 0.0
        with pytest.raises(LinalgError, match="matrix 1"):
            batched_lu_factor(matrices)

    def test_bad_shapes(self):
        with pytest.raises(LinalgError, match="stack"):
            batched_lu_factor(np.ones((3, 4, 5)))

    def test_rhs_mismatch(self, rng):
        factors = batched_lu_factor(rng.standard_normal((2, 3, 3)) + 3 * np.eye(3))
        with pytest.raises(LinalgError, match="rhs shape"):
            batched_lu_solve(factors, np.ones((2, 4)))

    def test_single_precision_supported(self, rng):
        matrices = (rng.standard_normal((4, 10, 10)) + 10 * np.eye(10)).astype(np.float32)
        rhs = rng.standard_normal((4, 10)).astype(np.float32)
        result = batched_solve(matrices, rhs)
        assert result.dtype == np.float32
        expected = np.stack([
            np.linalg.solve(m.astype(np.float64), v.astype(np.float64))
            for m, v in zip(matrices, rhs)
        ])
        assert result == pytest.approx(expected, abs=1e-3)

    def test_mixed_precision_rhs_rejected(self, rng):
        # Regression: a float64 RHS against float32 factors used to be
        # silently cast, absorbing exactly the precision mismatch the
        # dtype-grouped assembly path exists to surface.
        matrices = (rng.standard_normal((2, 5, 5)) + 5 * np.eye(5)).astype(np.float32)
        factors = batched_lu_factor(matrices)
        with pytest.raises(LinalgError, match="does not match LU dtype"):
            batched_lu_solve(factors, rng.standard_normal((2, 5)))

    def test_mixed_precision_rhs_rejected_other_direction(self, rng):
        matrices = rng.standard_normal((2, 5, 5)) + 5 * np.eye(5)
        factors = batched_lu_factor(matrices)
        with pytest.raises(LinalgError, match="float32 does not match"):
            batched_lu_solve(
                factors, rng.standard_normal((2, 5)).astype(np.float32)
            )

    def test_integer_matrices_still_promote(self):
        matrices = np.array([[[2, 0], [0, 2]], [[3, 0], [0, 3]]])
        factors = batched_lu_factor(matrices)
        assert factors.lu.dtype == np.float64

    def test_integer_rhs_still_promotes_to_factor_dtype(self, rng):
        for dtype in (np.float32, np.float64):
            matrices = (rng.standard_normal((2, 3, 3))
                        + 3 * np.eye(3)).astype(dtype)
            factors = batched_lu_factor(matrices)
            result = batched_lu_solve(factors, np.ones((2, 3), dtype=np.int64))
            assert result.dtype == dtype


class TestFlopCounts:
    def test_factor_leading_order(self):
        assert factor_flops(200) == (2 * 200**3) // 3

    def test_solve_count(self):
        assert solve_flops(100, 2) == 2 * 100 * 100 * 2

    def test_batched_total(self):
        assert batched_flops(10, 50) == 10 * (factor_flops(50) + solve_flops(50))


class TestNormsAndCondition:
    def test_one_norm(self):
        a = np.array([[1.0, -2.0], [3.0, 4.0]])
        assert one_norm(a) == 6.0

    def test_infinity_norm(self):
        a = np.array([[1.0, -2.0], [3.0, 4.0]])
        assert infinity_norm(a) == 7.0

    def test_frobenius(self):
        assert frobenius_norm(np.array([[3.0, 4.0]])) == pytest.approx(5.0)

    def test_condition_identity(self):
        assert condition_estimate_1norm(np.eye(6)) == pytest.approx(1.0)

    def test_condition_tracks_numpy(self, rng):
        a = random_spd_free_matrix(rng, 12)
        estimate = condition_estimate_1norm(a)
        exact = np.linalg.cond(a, 1)
        assert 0.1 * exact <= estimate <= 1.5 * exact

    def test_condition_singular_is_inf(self):
        assert condition_estimate_1norm(np.zeros((3, 3))) == np.inf
