"""Tests for the closed-form pipeline model vs. the event engine."""

import pytest

from repro.errors import ScheduleError
from repro.hardware import paper_workstation
from repro.pipeline import (
    Workload,
    hybrid,
    optimal_slice_count,
    predict_hybrid,
    predict_wall_time,
    simulate,
    stage_times,
    tune_slices,
)


@pytest.fixture(scope="module")
def stations():
    return {
        (accel, precision): paper_workstation(
            sockets=2, accelerator=accel, precision=precision
        )
        for accel in ("k80-half", "phi")
        for precision in ("single", "double")
    }


class TestClosedFormExactness:
    @pytest.mark.parametrize("accel", ["k80-half", "phi"])
    @pytest.mark.parametrize("precision", ["single", "double"])
    @pytest.mark.parametrize("n_slices", [1, 4, 8, 10, 20, 40])
    def test_matches_event_engine_exactly(self, stations, accel, precision,
                                          n_slices):
        """For uniform slices the formula IS the schedule."""
        workstation = stations[(accel, precision)]
        workload = Workload.paper_reference(precision)
        simulated = simulate(hybrid(workload, workstation, n_slices)).makespan
        predicted = predict_hybrid(workload, workstation, n_slices)
        assert predicted == pytest.approx(simulated, abs=1e-9)

    def test_other_workload_sizes(self, stations):
        workstation = stations[("k80-half", "double")]
        for batch, n, n_slices in ((1000, 100, 8), (2000, 400, 5), (600, 50, 3)):
            workload = Workload(batch=batch, n=n, precision="double")
            simulated = simulate(hybrid(workload, workstation, n_slices)).makespan
            predicted = predict_hybrid(workload, workstation, n_slices)
            assert predicted == pytest.approx(simulated, abs=1e-9)

    def test_non_uniform_slices_rejected(self, stations):
        workstation = stations[("k80-half", "double")]
        workload = Workload(batch=1000, n=200, precision="double")
        with pytest.raises(ScheduleError, match="uniform"):
            stage_times(workload, workstation, 7)

    def test_invalid_stage_count(self, stations):
        workstation = stations[("k80-half", "double")]
        times = stage_times(Workload.paper_reference("double"), workstation, 10)
        with pytest.raises(ScheduleError):
            predict_wall_time(times, stages=5)


class TestClosedFormStructure:
    def test_solve_bound_regime_flat_in_slices(self, stations):
        """Once solve-bound, more slices only add per-slice costs."""
        workstation = stations[("k80-half", "double")]
        workload = Workload.paper_reference("double")
        w20 = predict_hybrid(workload, workstation, 20)
        w40 = predict_hybrid(workload, workstation, 40)
        assert w40 > w20  # penalty side of the U-curve

    def test_three_stages_never_slower_than_two(self, stations):
        """Overlapping the copy can only help (same per-slice costs)."""
        workstation = stations[("phi", "double")]
        workload = Workload.paper_reference("double")
        times = stage_times(workload, workstation, 10)
        assert predict_wall_time(times, stages=3) <= predict_wall_time(
            times, stages=2
        )

    def test_host_time_includes_management(self, stations):
        times = stage_times(Workload.paper_reference("double"),
                            stations[("phi", "double")], 10)
        assert times.host == pytest.approx(times.management + times.solve)
        assert times.management > 0


class TestOptimalSliceCount:
    @pytest.mark.parametrize("accel", ["k80-half", "phi"])
    @pytest.mark.parametrize("precision", ["single", "double"])
    def test_tracks_autotuner(self, stations, accel, precision):
        workstation = stations[(accel, precision)]
        workload = Workload.paper_reference(precision)
        closed_form = optimal_slice_count(workload, workstation)
        tuned = tune_slices(workload, workstation).best_parameter
        assert 0.5 * tuned <= closed_form <= 2.0 * tuned

    def test_in_papers_band(self, stations):
        """The paper: 10-20 slices near-optimal in most circumstances."""
        for (accel, precision), workstation in stations.items():
            workload = Workload.paper_reference(precision)
            assert 5 <= optimal_slice_count(workload, workstation) <= 32

    def test_scales_with_work(self, stations):
        """More work amortizes per-slice costs: s* grows with the batch."""
        workstation = stations[("k80-half", "double")]
        small = optimal_slice_count(
            Workload(batch=500, n=200, precision="double"), workstation
        )
        large = optimal_slice_count(
            Workload(batch=20000, n=200, precision="double"), workstation
        )
        assert large > small
