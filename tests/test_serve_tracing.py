"""End-to-end tests for serving-path observability: tracing, the live
W/A/L/O reduction, /debug/trace, Prometheus exposition, request-ID
propagation, structured logs, and the byte-identity guarantee."""

import io
import json
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.obs.ids import REQUEST_ID_HEADER
from repro.obs.logging import StructuredLogger
from repro.obs.trace import Trace
from repro.serve import AnalysisService, ServeClient, Tracer, start_server
from repro.serve.metrics import ServiceMetrics
from repro.serve.tracing import render_recent

from tests.test_obs import parse_prometheus

REQUEST = {"airfoil": "2412", "alpha_degrees": 4.0, "reynolds": 0,
           "n_panels": 60}


@pytest.fixture
def service():
    svc = AnalysisService(max_batch=16, max_wait=0.005, cache_size=64,
                          n_workers=1, queue_limit=64)
    yield svc
    assert svc.close(timeout=10.0)


@pytest.fixture
def served():
    svc = AnalysisService(max_batch=16, max_wait=0.005, cache_size=64,
                          n_workers=1, queue_limit=64)
    server = start_server(svc)
    client = ServeClient(port=server.port)
    client.wait_until_ready()
    yield svc, server, client
    client.close()
    server.stop()
    assert svc.close(timeout=10.0)


# ----------------------------------------------------------------------
# Tracer mechanics: sampling and the ring
# ----------------------------------------------------------------------

class TestTracer:
    def test_stride_sampling_is_deterministic(self):
        tracer = Tracer(sample_rate=0.25, ring_size=16)
        pattern = [tracer.start(f"r{i}") is not None for i in range(8)]
        # Every fourth request traced, same positions on every run.
        assert pattern == [False, False, False, True] * 2

    def test_rate_one_traces_everything_rate_zero_nothing(self):
        assert all(Tracer(sample_rate=1.0).start(f"r{i}") for i in range(4))
        tracer = Tracer(sample_rate=0.0)
        assert all(tracer.start(f"r{i}") is None for i in range(4))

    def test_invalid_rates_and_ring_rejected(self):
        with pytest.raises(ServeError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ServeError):
            Tracer(sample_rate=-0.1)
        with pytest.raises(ServeError):
            Tracer(ring_size=-1)

    def test_ring_evicts_oldest_and_counts_evictions(self):
        tracer = Tracer(ring_size=2)
        for index in range(5):
            tracer.finish(Trace(f"r{index}"))
        recent = tracer.recent()
        assert [trace.trace_id for trace in recent] == ["r3", "r4"]
        snapshot = tracer.stages_snapshot()
        assert snapshot["ring"] == {"capacity": 2, "size": 2, "evicted": 3}
        assert snapshot["traced"] == 5

    def test_recent_slices_newest_without_reordering(self):
        tracer = Tracer(ring_size=8)
        for index in range(4):
            tracer.finish(Trace(f"r{index}"))
        assert [t.trace_id for t in tracer.recent(2)] == ["r2", "r3"]
        assert tracer.recent(0) == []

    def test_aggregate_maintains_overhead_identity(self):
        tracer = Tracer()
        trace = Trace("r0")
        trace.add_stage("solve", trace.root.start, trace.root.start + 0.25)
        tracer.finish(trace)
        snapshot = tracer.stages_snapshot()
        assert snapshot["overhead_seconds"] == pytest.approx(
            snapshot["wall_seconds"] - snapshot["solve_seconds"])

    def test_render_recent_empty_is_a_hint_not_a_crash(self):
        assert "no completed traces" in render_recent([])


# ----------------------------------------------------------------------
# Live service: span nesting, W/A/L/O, logs
# ----------------------------------------------------------------------

class TestServiceTracing:
    def test_stages_reduce_to_walo_with_identity(self, service):
        service.analyze(REQUEST)
        stages = service.metrics_snapshot()["stages"]
        assert stages["traced"] >= 1
        assert stages["solve_seconds"] > 0.0
        assert stages["assembly_seconds"] > 0.0
        assert stages["overhead_seconds"] == pytest.approx(
            stages["wall_seconds"] - stages["solve_seconds"])
        # The solve is part of the wall: L <= W.
        assert stages["solve_seconds"] <= stages["wall_seconds"]

    def test_trace_records_every_serving_stage(self, service):
        service.analyze(REQUEST, request_id="full-path")
        trace = service.recent_traces(1)[0]
        names = {span.name for span in trace.spans}
        assert {"request", "queue_wait", "batch_collect", "cache_lookup",
                "assembly", "solve", "serialize"} <= names
        assert trace.trace_id == "full-path"
        assert trace.outcome == "completed"
        assert trace.annotations["batch_size"] >= 1
        assert trace.annotations["cache_hit"] is False

    def test_cache_hit_trace_is_marked_and_cheap(self, service):
        service.analyze(REQUEST)
        service.analyze(REQUEST, request_id="hit-1")
        trace = service.recent_traces(1)[0]
        assert trace.trace_id == "hit-1"
        assert trace.annotations["cache_hit"] is True
        assert not any(span.name == "solve" for span in trace.spans)

    def test_gantt_renders_after_traffic(self, service):
        service.analyze(REQUEST, request_id="gantt-req")
        chart = service.render_trace()
        assert "gantt-req" in chart
        assert "legend:" in chart and "s = solve" in chart

    def test_unsampled_service_changes_nothing_but_traces(self):
        traced = AnalysisService(n_workers=1, trace_sample=1.0)
        dark = AnalysisService(n_workers=1, trace_sample=0.0)
        try:
            body_traced = traced.analyze_json(REQUEST)
            body_dark = dark.analyze_json(REQUEST)
            assert body_traced == body_dark
            assert traced.recent_traces()
            assert not dark.recent_traces()
            assert dark.metrics_snapshot()["stages"]["traced"] == 0
        finally:
            assert traced.close() and dark.close()

    def test_walo_breakdown_labels_requests(self, service):
        service.analyze(REQUEST, request_id="walo-1")
        rows = service.walo_breakdown(1)
        assert rows[0]["request_id"] == "walo-1"
        assert rows[0]["outcome"] == "completed"
        assert rows[0]["overhead_seconds"] == pytest.approx(
            rows[0]["wall_seconds"] - rows[0]["solve_seconds"])

    def test_one_log_line_per_completion(self):
        stream = io.StringIO()
        service = AnalysisService(n_workers=1,
                                  logger=StructuredLogger("json", stream))
        try:
            service.analyze(REQUEST, request_id="logged-1")
        finally:
            assert service.close()
        lines = [json.loads(line) for line in
                 stream.getvalue().strip().splitlines()]
        completions = [record for record in lines
                       if record["event"] == "request"]
        assert len(completions) == 1
        record = completions[0]
        assert record["request_id"] == "logged-1"
        assert record["outcome"] == "completed"
        assert record["cache_hit"] is False
        assert record["latency_ms"] > 0.0
        assert "solve" in record["stages_ms"]

    def test_invalid_request_id_rejected_before_admission(self, service):
        with pytest.raises(ServeError, match="request id"):
            service.analyze(REQUEST, request_id="bad id\n")
        assert service.metrics_snapshot()["requests"]["admitted"] == 0


# ----------------------------------------------------------------------
# HTTP: request-ID propagation, /debug/trace, Prometheus
# ----------------------------------------------------------------------

class TestHTTPObservability:
    def test_request_id_roundtrip_client_to_service_to_header(self, served):
        service, _, client = served
        client.analyze(REQUEST, request_id="e2e-42")
        assert client.last_request_id == "e2e-42"
        assert service.recent_traces(1)[0].trace_id == "e2e-42"

    def test_request_id_generated_when_absent(self, served):
        _, _, client = served
        client.analyze(REQUEST)
        assert client.last_request_id and len(client.last_request_id) == 32

    def test_error_responses_echo_the_id(self, served):
        _, server, _ = served
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/analyze",
            data=json.dumps({"airfoil": "99", "n_panels": 60}).encode(),
            headers={"Content-Type": "application/json",
                     REQUEST_ID_HEADER: "err-7"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.headers.get(REQUEST_ID_HEADER) == "err-7"
        body = json.loads(excinfo.value.read().decode())
        assert body["request_id"] == "err-7"

    def test_hostile_request_id_is_a_400(self, served):
        _, server, _ = served
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/analyze",
            data=json.dumps(REQUEST).encode(),
            headers={"Content-Type": "application/json",
                     REQUEST_ID_HEADER: "x" * 200},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_batch_wrapper_carries_one_id(self, served):
        _, server, _ = served
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/analyze_batch",
            data=json.dumps({"requests": [REQUEST]}).encode(),
            headers={"Content-Type": "application/json",
                     REQUEST_ID_HEADER: "batch-1"},
            method="POST")
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers.get(REQUEST_ID_HEADER) == "batch-1"
            body = json.loads(response.read().decode())
        assert body["request_id"] == "batch-1"
        assert body["results"][0]["cl"] > 0.5

    def test_debug_trace_gantt_nonempty_after_traffic(self, served):
        _, _, client = served
        client.analyze(REQUEST, request_id="seen-in-gantt")
        chart = client.debug_trace()
        assert "seen-in-ga" in chart  # row label uses the shortened ID
        assert "legend:" in chart

    def test_debug_trace_json_exposes_span_trees(self, served):
        _, _, client = served
        client.analyze(REQUEST, request_id="json-trace")
        document = client.debug_trace(n=4, fmt="json")
        traces = document["traces"]
        assert traces[-1]["trace_id"] == "json-trace"
        walo = traces[-1]["walo"]
        assert walo["overhead_seconds"] == pytest.approx(
            walo["wall_seconds"] - walo["solve_seconds"])

    def test_prometheus_formats_parse_without_duplicates(self, served):
        _, server, client = served
        client.analyze(REQUEST)
        text = client.metrics_prometheus()
        samples, types, _ = parse_prometheus(text)
        assert samples[("repro_requests_completed", "")] >= 1
        assert ("repro_stages_solve_seconds", "") in samples
        assert types["repro_requests_completed"] == "counter"
        # The query-parameter spelling serves the identical document
        # modulo freshly-sampled gauges.
        with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics?format=prometheus",
                timeout=10) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            alt, _, _ = parse_prometheus(response.read().decode())
        assert set(samples) == set(alt)

    def test_metrics_json_remains_the_default(self, served):
        _, _, client = served
        snapshot = client.metrics()
        assert "stages" in snapshot and "requests" in snapshot


# ----------------------------------------------------------------------
# Snapshot affordances and accounting drift
# ----------------------------------------------------------------------

class TestSnapshotAffordances:
    def test_seq_uptime_and_p90(self, service):
        service.analyze(REQUEST)
        first = service.metrics_snapshot()
        second = service.metrics_snapshot()
        assert second["snapshot_seq"] == first["snapshot_seq"] + 1
        assert second["uptime_seconds"] >= first["uptime_seconds"] >= 0.0
        assert second["started_at"] == first["started_at"] > 0
        assert first["latency_ms"]["p90"] is not None
        assert (first["latency_ms"]["p50"] <= first["latency_ms"]["p90"]
                <= first["latency_ms"]["p99"])

    def test_accounting_drift_surfaces_negative_in_flight(self):
        metrics = ServiceMetrics()
        metrics.record_completed(0.01)  # completed without ever admitting
        snapshot = metrics.snapshot()
        requests = snapshot["requests"]
        assert requests["in_flight"] == 0  # still clamped
        assert requests["accounting_drift"] == 1
        assert requests["accounting_drift_worst"] == 1
        healthy = ServiceMetrics()
        healthy.record_admitted()
        assert healthy.snapshot()["requests"]["accounting_drift"] == 0


# ----------------------------------------------------------------------
# Property: tracing never changes response bytes
# ----------------------------------------------------------------------

class TestByteIdentity:
    @settings(max_examples=8, deadline=None)
    @given(alpha=st.sampled_from([-2.0, 0.0, 1.5, 4.0, 8.0]),
           airfoil=st.sampled_from(["0012", "2412", "4415"]),
           sample=st.sampled_from([0.0, 0.5, 1.0]))
    def test_sampled_tracing_preserves_response_bytes(self, alpha, airfoil,
                                                      sample):
        request = {"airfoil": airfoil, "alpha_degrees": alpha,
                   "reynolds": 0, "n_panels": 50}
        traced = AnalysisService(n_workers=1, trace_sample=sample,
                                 cache_size=0)
        untraced = AnalysisService(n_workers=1, trace_sample=0.0,
                                   cache_size=0)
        try:
            assert (traced.analyze_json(request)
                    == untraced.analyze_json(request))
        finally:
            assert traced.close() and untraced.close()
