"""Tests of the panel method against the analytic validation substrate.

This file plays the role of the paper's Xfoil comparison: every check
here compares the library's output to an independent closed-form (or
published) result.
"""

import numpy as np
import pytest

from repro.geometry import naca
from repro.panel import Closure, Freestream, PanelSolver, solve_airfoil
from repro.validation import (
    INVISCID_LIFT_REFERENCES,
    MOMENT_REFERENCES,
    CylinderFlow,
    JoukowskiAirfoil,
    control_point_angles,
    cylinder_airfoil,
    lift_coefficient as thin_cl,
    naca4_parameters,
    quarter_chord_moment,
    zero_lift_alpha,
)


class TestCylinder:
    @pytest.fixture(scope="class")
    def solution(self):
        return solve_airfoil(cylinder_airfoil(160), 0.0,
                             closure=Closure.ZERO_CIRCULATION)

    def test_surface_speed_matches_2_v_sin_theta(self, solution):
        theta = control_point_angles(solution.airfoil)
        exact = CylinderFlow().surface_speed(theta)
        assert solution.surface_speeds == pytest.approx(exact, abs=5e-3)

    def test_zero_lift(self, solution):
        assert abs(solution.lift_coefficient) < 1e-10

    def test_pressure_extremes(self, solution):
        cp = solution.pressure_coefficients
        assert cp.max() == pytest.approx(1.0, abs=0.01)  # stagnation
        assert cp.min() == pytest.approx(-3.0, abs=0.05)  # 1 - 4 sin^2

    def test_field_velocity_matches_doublet(self, solution):
        flow = CylinderFlow()
        points = np.array([[1.9, 0.3], [0.0, -1.6], [-1.4, 1.4]])
        assert solution.velocity_at(points) == pytest.approx(
            flow.velocity(points), abs=2e-3
        )

    def test_alpha_rotates_solution(self):
        rotated = solve_airfoil(cylinder_airfoil(160), 30.0,
                                closure=Closure.ZERO_CIRCULATION)
        theta = control_point_angles(rotated.airfoil)
        exact = CylinderFlow(alpha=np.radians(30.0)).surface_speed(theta)
        assert rotated.surface_speeds == pytest.approx(exact, abs=5e-3)

    def test_convergence_with_resolution(self):
        errors = []
        for n in (40, 80, 160):
            sol = solve_airfoil(cylinder_airfoil(n), 0.0,
                                closure=Closure.ZERO_CIRCULATION)
            theta = control_point_angles(sol.airfoil)
            exact = CylinderFlow().surface_speed(theta)
            errors.append(np.max(np.abs(sol.surface_speeds - exact)))
        assert errors[2] < errors[1] < errors[0]


class TestJoukowski:
    @pytest.mark.parametrize("thickness,camber", [
        (0.08, 0.05), (0.10, 0.0), (0.05, 0.08), (0.12, 0.03),
    ])
    @pytest.mark.parametrize("alpha", [0.0, 4.0])
    def test_exact_lift(self, thickness, camber, alpha):
        section = JoukowskiAirfoil(thickness, camber)
        solution = solve_airfoil(section.airfoil(300), alpha)
        exact = section.exact_lift_coefficient(np.radians(alpha))
        assert solution.lift_coefficient == pytest.approx(exact, abs=6e-3)

    def test_zero_lift_angle(self):
        section = JoukowskiAirfoil(0.08, 0.05)
        alpha0 = np.degrees(section.zero_lift_alpha())
        solution = solve_airfoil(section.airfoil(300), alpha0)
        assert abs(solution.lift_coefficient) < 0.01

    def test_symmetric_section_zero_lift_at_zero_alpha(self):
        section = JoukowskiAirfoil(0.10, 0.0)
        solution = solve_airfoil(section.airfoil(200), 0.0)
        assert abs(solution.lift_coefficient) < 1e-6

    def test_panel_convergence_to_exact(self):
        section = JoukowskiAirfoil(0.08, 0.05)
        exact = section.exact_lift_coefficient(np.radians(4.0))
        errors = []
        for n in (50, 100, 200):
            sol = solve_airfoil(section.airfoil(n), 4.0)
            errors.append(abs(sol.lift_coefficient - exact))
        assert errors[2] < errors[0]


class TestThinAirfoilTheory:
    def test_naca_zero_lift_angles(self):
        """alpha_L0 of the 2412 is about -2.07 degrees."""
        camber, position = naca4_parameters("2412")
        assert np.degrees(zero_lift_alpha(camber, position)) == pytest.approx(
            -2.07, abs=0.05
        )

    def test_panel_zero_lift_matches_theory(self):
        camber, position = naca4_parameters("2412")
        alpha0 = np.degrees(zero_lift_alpha(camber, position))
        solution = solve_airfoil(naca("2412", 200), alpha0)
        assert abs(solution.lift_coefficient) < 0.03

    def test_thin_cl_slope(self):
        assert thin_cl(np.radians(1.0)) == pytest.approx(
            2 * np.pi * np.radians(1.0)
        )

    def test_quarter_chord_moment_2412(self):
        camber, position = naca4_parameters("2412")
        assert quarter_chord_moment(camber, position) == pytest.approx(
            -0.053, abs=0.005
        )

    def test_panel_moment_matches_theory(self, solved_2412):
        camber, position = naca4_parameters("2412")
        theory = quarter_chord_moment(camber, position)
        assert solved_2412.moment_coefficient() == pytest.approx(theory, abs=0.02)

    def test_symmetric_has_zero_moment(self, naca0012):
        solution = solve_airfoil(naca0012, 4.0)
        assert abs(solution.moment_coefficient()) < 0.01


class TestPublishedReferences:
    @pytest.mark.parametrize("reference", INVISCID_LIFT_REFERENCES,
                             ids=lambda r: f"{r.designation}@{r.alpha_degrees}")
    def test_inviscid_lift(self, reference):
        solution = solve_airfoil(naca(reference.designation, 200),
                                 reference.alpha_degrees)
        assert reference.matches(solution.lift_coefficient), (
            f"cl = {solution.lift_coefficient:.4f}, expected "
            f"{reference.cl} +- {reference.tolerance}"
        )

    @pytest.mark.parametrize("reference", MOMENT_REFERENCES,
                             ids=lambda r: r.designation)
    def test_moments(self, reference):
        solution = solve_airfoil(naca(reference.designation, 200), 2.0)
        assert solution.moment_coefficient() == pytest.approx(
            reference.cm, abs=reference.tolerance
        )
