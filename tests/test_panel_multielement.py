"""Tests for the multi-element (high-lift) panel solver."""

import numpy as np
import pytest

from repro.errors import PanelMethodError
from repro.geometry import Airfoil, naca
from repro.geometry.transforms import rotate, scale, translate
from repro.panel import Freestream, solve_airfoil, solve_multielement


def flapped_configuration(deflection_degrees=20.0, gap=0.02, n_main=120,
                          n_flap=80):
    """A main element plus a 30 %-chord flap below/behind its TE."""
    main = naca("2412", n_main)
    flap_points = scale(naca("2412", n_flap).points, 0.3)
    flap_points = rotate(flap_points, -np.radians(deflection_degrees),
                         center=(0.0, 0.0))
    flap_points = translate(flap_points, (1.0 + gap, -0.03))
    flap = Airfoil.from_points(flap_points, name="flap")
    return main, flap


@pytest.fixture(scope="module")
def high_lift():
    main, flap = flapped_configuration()
    return solve_multielement([main, flap], Freestream.from_degrees(4.0))


class TestDegenerateCases:
    def test_single_element_matches_plain_solver(self, naca2412):
        fs = Freestream.from_degrees(4.0)
        multi = solve_multielement([naca2412], fs)
        single = solve_airfoil(naca2412, 4.0)
        assert multi.lift_coefficient() == pytest.approx(
            single.lift_coefficient, abs=1e-10
        )
        assert multi.gammas[0] == pytest.approx(np.asarray(single.gamma),
                                                abs=1e-10)

    def test_empty_configuration_rejected(self):
        with pytest.raises(PanelMethodError):
            solve_multielement([])


class TestHighLiftPhysics:
    def test_boundary_condition_on_every_surface(self, high_lift):
        assert high_lift.boundary_residual() < 1e-9

    def test_kutta_on_every_element(self, high_lift):
        for gamma in high_lift.gammas:
            assert gamma[0] == pytest.approx(-gamma[-1])

    def test_flap_multiplies_system_lift(self, high_lift):
        single = solve_airfoil(naca("2412", 120), 4.0).lift_coefficient
        assert high_lift.lift_coefficient() > 2.0 * single

    def test_flap_supercharges_main_element(self, high_lift):
        """The flap's downwash recirculates the main element: the main
        element alone carries far more lift than it would in isolation
        (the classic multi-element effect)."""
        single = solve_airfoil(naca("2412", 120), 4.0).lift_coefficient
        assert high_lift.element_lift_coefficient(0) > 1.5 * single

    def test_lift_grows_with_deflection(self):
        lifts = []
        for deflection in (0.0, 10.0, 25.0):
            main, flap = flapped_configuration(deflection)
            solution = solve_multielement([main, flap],
                                          Freestream.from_degrees(4.0))
            lifts.append(solution.lift_coefficient())
        assert lifts[0] < lifts[1] < lifts[2]

    def test_far_field_circulation_matches_total(self, high_lift):
        """A big circle integral of V.t recovers the summed circulation
        (clockwise-positive convention)."""
        radius = 60.0
        theta = np.linspace(0.0, 2 * np.pi, 1441)[:-1]
        circle = np.column_stack([
            0.6 + radius * np.cos(theta), radius * np.sin(theta)
        ])
        velocity = high_lift.velocity_at(circle)
        tangents = np.column_stack([-np.sin(theta), np.cos(theta)])
        ccw_circulation = float(
            np.mean(np.einsum("ij,ij->i", velocity, tangents))
            * 2 * np.pi * radius
        )
        assert -ccw_circulation == pytest.approx(
            high_lift.total_circulation, rel=0.01
        )

    def test_interior_of_both_bodies_stagnant(self, high_lift):
        main_interior = high_lift.velocity_at([[0.5, 0.0]])
        flap_center = high_lift.elements[1].control_points.mean(axis=0)
        flap_interior = high_lift.velocity_at([flap_center])
        assert np.linalg.norm(main_interior) < 0.05
        assert np.linalg.norm(flap_interior) < 0.2

    def test_reference_chord_scaling(self, high_lift):
        default = high_lift.lift_coefficient()
        doubled = high_lift.lift_coefficient(reference_chord=2.0
                                             * high_lift.elements[0].chord)
        assert doubled == pytest.approx(0.5 * default)

    def test_elements_have_distinct_constants(self, high_lift):
        """Separate bodies sit on different streamlines in general."""
        assert high_lift.constants[0] != pytest.approx(
            high_lift.constants[1], abs=1e-6
        )
