"""Tests for the job runner: determinism, resume, cancel, failure isolation."""

import json
import threading
import time

import numpy as np
import pytest

from repro.errors import JobError
from repro.jobs import (
    JobRunner,
    JobSpec,
    JobState,
    JobStore,
    history_to_dict,
)
from repro.optimize import FitnessEvaluator, GAConfig, GeneticOptimizer, GenomeLayout
from repro.serve.tracing import Tracer

SPEC = {"seed": 7, "checkpoint_every": 2,
        "ga": {"population_size": 10, "generations": 4, "keep_best": 2},
        "fitness": {"n_panels": 60}}


def reference_history(spec=None):
    """The uninterrupted serial GA run the jobs path must reproduce."""
    spec = JobSpec.from_dict(spec or SPEC)
    history = GeneticOptimizer(
        evaluator=spec.fitness_evaluator(), config=spec.ga_config(),
    ).run(np.random.default_rng(spec.seed))
    return history_to_dict(history)


def wait_terminal(store, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = store.get(job_id)
        if record.terminal:
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} still {store.get(job_id).state}")


class TestRunnerBasics:
    def test_slots_validation(self, tmp_path):
        store = JobStore(str(tmp_path))
        with pytest.raises(JobError, match="slots"):
            JobRunner(store, slots=0)
        store.close()

    def test_double_start_rejected(self, tmp_path):
        store = JobStore(str(tmp_path))
        runner = JobRunner(store).start()
        with pytest.raises(JobError, match="started"):
            runner.start()
        assert runner.close()
        store.close()

    def test_close_before_start_is_safe(self, tmp_path):
        store = JobStore(str(tmp_path))
        assert JobRunner(store).close()
        store.close()

    def test_metrics_snapshot_shape(self, tmp_path):
        store = JobStore(str(tmp_path))
        runner = JobRunner(store, slots=2)
        snapshot = runner.metrics_snapshot()
        assert snapshot["slots"] == 2
        assert snapshot["queue_depth"] == 0
        assert set(snapshot["states"]) == set(JobState.ALL)
        assert snapshot["torn_journal_lines"] == 0
        assert snapshot["submitted"] == 0
        store.close()


class TestDeterminism:
    def test_job_history_matches_uninterrupted_serial_run(self, tmp_path):
        store = JobStore(str(tmp_path))
        runner = JobRunner(store, tracer=Tracer()).start()
        record = runner.submit(JobSpec.from_dict(SPEC))
        final = wait_terminal(store, record.id)
        assert runner.close()
        assert final.state == JobState.DONE
        assert json.dumps(final.result["history"], sort_keys=True) == \
            json.dumps(reference_history(), sort_keys=True)
        assert final.generations_done == 4
        assert store.metrics.snapshot()["generations_completed"] == 4
        store.close()

    def test_graceful_stop_then_resume_is_byte_identical(self, tmp_path):
        """Stop the runner mid-job; a fresh runner on the same directory
        must finish the job with history identical to an uninterrupted
        run — the tentpole's determinism contract."""
        store = JobStore(str(tmp_path))
        seen = threading.Event()
        release = threading.Event()

        def hold_at_generation_one(record, summary):
            if summary.index == 1:
                seen.set()
                release.wait(timeout=60.0)

        runner = JobRunner(store, on_generation=hold_at_generation_one)
        runner.start()
        record = runner.submit(JobSpec.from_dict(SPEC))
        assert seen.wait(timeout=120.0)
        # Stop while the worker is parked inside the callback: the
        # stopping flag is set before release, so the next generation
        # boundary checkpoints and leaves the job RUNNING.
        runner._stopping.set()
        release.set()
        assert runner.close()
        interrupted = store.get(record.id)
        assert interrupted.state == JobState.RUNNING
        assert store.load_checkpoint(record.id) is not None
        store.close()

        reopened = JobStore(str(tmp_path))
        resumed = JobRunner(reopened).start()
        final = wait_terminal(reopened, record.id)
        assert resumed.close()
        assert final.state == JobState.DONE
        assert final.resumes == 1
        assert reopened.metrics.snapshot()["resumed"] == 1
        assert json.dumps(final.result["history"], sort_keys=True) == \
            json.dumps(reference_history(), sort_keys=True)
        reopened.close()


class TestCancellation:
    def test_cancel_between_generations(self, tmp_path):
        store = JobStore(str(tmp_path))
        cancelled = threading.Event()

        def cancel_after_first(record, summary):
            if summary.index == 0 and not cancelled.is_set():
                store.request_cancel(record.id)
                cancelled.set()

        runner = JobRunner(store, on_generation=cancel_after_first).start()
        spec = dict(SPEC, ga=dict(SPEC["ga"], generations=6))
        record = runner.submit(JobSpec.from_dict(spec))
        final = wait_terminal(store, record.id)
        assert runner.close()
        assert final.state == JobState.CANCELLED
        assert 1 <= final.generations_done < 6
        store.close()

    def test_cancel_before_start(self, tmp_path):
        store = JobStore(str(tmp_path))
        runner = JobRunner(store)  # not started: nothing consumes yet
        record = runner.submit(JobSpec.from_dict(SPEC))
        runner.cancel(record.id)
        runner.start()
        final = wait_terminal(store, record.id)
        assert runner.close()
        assert final.state == JobState.CANCELLED
        assert final.generations_done == 0
        store.close()


class TestFailureIsolation:
    def test_raising_callback_fails_job_not_thread(self, tmp_path):
        store = JobStore(str(tmp_path))
        calls = []

        def explode_once(record, summary):
            if not calls:
                calls.append(record.id)
                raise RuntimeError("observer bug")

        runner = JobRunner(store, on_generation=explode_once).start()
        doomed = runner.submit(JobSpec.from_dict(SPEC))
        final = wait_terminal(store, doomed.id)
        assert final.state == JobState.FAILED
        assert "RuntimeError: observer bug" in final.error
        # The slot thread survived: the next job runs to completion.
        healthy = runner.submit(JobSpec.from_dict(SPEC))
        assert wait_terminal(store, healthy.id).state == JobState.DONE
        assert runner.close()
        assert store.metrics.snapshot()["failed"] == 1
        store.close()

    def test_invalid_spec_never_reaches_a_thread(self, tmp_path):
        store = JobStore(str(tmp_path))
        runner = JobRunner(store)
        with pytest.raises(JobError):
            runner.submit(JobSpec.from_dict({"seed": 0,
                                             "ga": {"population_size": 3}}))
        assert runner.queue_depth == 0
        store.close()


class TestTracing:
    def test_generation_spans_feed_the_tracer(self, tmp_path):
        tracer = Tracer()
        store = JobStore(str(tmp_path))
        runner = JobRunner(store, tracer=tracer).start()
        record = runner.submit(JobSpec.from_dict(SPEC))
        wait_terminal(store, record.id)
        assert runner.close()
        stages = tracer.stages_snapshot()
        assert stages["traced"] == 4
        assert stages["generation_seconds"] > 0.0
        assert stages["solve_seconds"] > 0.0  # batched solves ran inside
        trace = tracer.recent(1)[0]
        assert trace.trace_id == f"{record.id}:g3"
        assert trace.annotations["job_id"] == record.id
        store.close()
