"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.geometry import naca
from repro.panel import Freestream, PanelSolver


@pytest.fixture(scope="session")
def naca2412():
    """The paper's Figure 1 section at a moderate resolution."""
    return naca("2412", 160)


@pytest.fixture(scope="session")
def naca0012():
    """A symmetric reference section."""
    return naca("0012", 160)


@pytest.fixture(scope="session")
def solved_2412():
    """NACA 2412 solved at 4 degrees (double precision)."""
    return PanelSolver().solve(naca("2412", 160), Freestream.from_degrees(4.0))


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(20160704)
