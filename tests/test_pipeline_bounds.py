"""Tests for the Amdahl-style speedup bounds."""

import pytest

from repro.errors import ScheduleError
from repro.hardware import paper_workstation
from repro.pipeline import Workload, evaluate, hybrid, simulate, tune_slices
from repro.pipeline.bounds import speedup_bounds


@pytest.fixture(scope="module")
def configurations():
    result = {}
    for accel in ("k80-half", "phi"):
        for precision in ("single", "double"):
            station = paper_workstation(sockets=2, accelerator=accel,
                                        precision=precision)
            workload = Workload.paper_reference(precision)
            result[(accel, precision)] = (workload, station)
    return result


class TestBounds:
    def test_solve_bound_matches_paper_statement(self, configurations):
        """Paper: 2x CPU dp baseline 7.2 s, solve 2.05 s -> bound ~3.5."""
        workload, station = configurations[("k80-half", "double")]
        bounds = speedup_bounds(workload, station)
        assert bounds.solve_bound == pytest.approx(3.52, abs=0.1)

    def test_chain_never_exceeds_solve_bound(self, configurations):
        for workload, station in configurations.values():
            bounds = speedup_bounds(workload, station)
            assert bounds.chain_bound <= bounds.solve_bound + 1e-12

    def test_every_simulation_respects_the_bounds(self, configurations):
        for workload, station in configurations.values():
            bounds = speedup_bounds(workload, station)
            for n_slices in (1, 5, 10, 20, 40):
                metrics = evaluate(simulate(hybrid(workload, station,
                                                   n_slices)))
                achieved = bounds.cpu_wall / metrics.wall_time
                assert achieved <= bounds.chain_bound * 1.001

    def test_tuned_run_achieves_most_of_the_bound(self, configurations):
        """Paper: 'within 10 to 20 %' of the solve-time optimum; the
        chain-aware bound is tighter still, and the tuned GPU run
        realizes > 85 % of it."""
        workload, station = configurations[("k80-half", "double")]
        bounds = speedup_bounds(workload, station)
        tuned = tune_slices(workload, station)
        fraction = bounds.achieved_fraction(tuned.best_metrics)
        assert 0.85 < fraction <= 1.0

    def test_phi_chain_bound_binds(self, configurations):
        """For the Phi the chain (assembly+transfer) exceeds the solve,
        so its bound is strictly below the paper's solve bound —
        quantifying why the Phi cannot match the GPU here."""
        workload, station = configurations[("phi", "double")]
        bounds = speedup_bounds(workload, station)
        assert bounds.chain_seconds > bounds.solve_seconds
        assert bounds.chain_bound < bounds.solve_bound

    def test_gpu_solve_bound_binds(self, configurations):
        workload, station = configurations[("k80-half", "double")]
        bounds = speedup_bounds(workload, station)
        assert bounds.chain_seconds < bounds.solve_seconds

    def test_needs_accelerator(self):
        station = paper_workstation(sockets=2, precision="double")
        with pytest.raises(ScheduleError):
            speedup_bounds(Workload.paper_reference("double"), station)
