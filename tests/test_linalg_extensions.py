"""Tests for blocked LU and mixed-precision iterative refinement."""

import numpy as np
import pytest

from repro.errors import LinalgError
from repro.geometry import naca
from repro.linalg import (
    blocked_lu_factor,
    blocked_solve,
    lu_factor,
    refine_solve,
    relative_residual,
    solve,
)
from repro.panel import Freestream, assemble


def panel_system(n=120, alpha=4.0):
    system = assemble(naca("2412", n), Freestream.from_degrees(alpha))
    return (np.asarray(system.matrix, np.float64),
            np.asarray(system.rhs, np.float64))


class TestBlockedLU:
    @pytest.mark.parametrize("n,block", [(10, 4), (33, 8), (64, 32), (50, 64)])
    def test_identical_to_unblocked(self, rng, n, block):
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        blocked = blocked_lu_factor(a, block_size=block)
        unblocked = lu_factor(a)
        assert blocked.lu == pytest.approx(unblocked.lu, abs=1e-12)
        assert np.array_equal(blocked.pivots, unblocked.pivots)
        assert blocked.n_swaps == unblocked.n_swaps

    def test_block_size_one(self, rng):
        a = rng.standard_normal((12, 12)) + 12 * np.eye(12)
        assert blocked_lu_factor(a, block_size=1).lu == pytest.approx(
            lu_factor(a).lu
        )

    def test_requires_pivoting(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = blocked_solve(a, np.array([2.0, 3.0]))
        assert x == pytest.approx([3.0, 2.0])

    def test_singular_detected(self):
        with pytest.raises(LinalgError, match="singular"):
            blocked_lu_factor(np.zeros((4, 4)))

    def test_invalid_block_size(self, rng):
        with pytest.raises(LinalgError):
            blocked_lu_factor(np.eye(4), block_size=0)

    def test_panel_matrix(self):
        matrix, rhs = panel_system()
        x = blocked_solve(matrix, rhs)
        assert relative_residual(matrix, x, rhs) < 1e-14

    def test_solution_matches_numpy(self, rng):
        a = rng.standard_normal((77, 77)) + 77 * np.eye(77)
        b = rng.standard_normal(77)
        assert blocked_solve(a, b) == pytest.approx(
            np.linalg.solve(a, b), abs=1e-9
        )


class TestIterativeRefinement:
    def test_reaches_double_precision_on_panel_system(self):
        matrix, rhs = panel_system()
        result = refine_solve(matrix, rhs)
        assert result.converged
        assert result.residual_norms[-1] < 1e-12
        reference = solve(matrix, rhs)
        assert result.solution == pytest.approx(reference, abs=1e-8)

    def test_few_iterations_suffice(self):
        """Well-conditioned panel systems refine in 1-3 sweeps."""
        matrix, rhs = panel_system()
        result = refine_solve(matrix, rhs)
        assert result.iterations <= 3

    def test_residual_decreases(self):
        matrix, rhs = panel_system(n=80)
        result = refine_solve(matrix, rhs)
        norms = result.residual_norms
        assert norms[-1] < norms[0]

    def test_first_residual_is_single_precision(self):
        """Before refinement the residual sits at float32 accuracy."""
        matrix, rhs = panel_system(n=80)
        result = refine_solve(matrix, rhs)
        assert 1e-9 < result.residual_norms[0] < 1e-4

    def test_random_well_conditioned(self, rng):
        a = rng.standard_normal((60, 60)) + 60 * np.eye(60)
        b = rng.standard_normal(60)
        result = refine_solve(a, b)
        assert result.converged
        assert result.solution == pytest.approx(np.linalg.solve(a, b), abs=1e-9)

    def test_shape_errors(self):
        with pytest.raises(LinalgError):
            refine_solve(np.ones((2, 3)), np.ones(2))
        with pytest.raises(LinalgError):
            refine_solve(np.eye(3), np.ones(4))

    def test_zero_matrix(self):
        with pytest.raises(LinalgError):
            refine_solve(np.zeros((3, 3)), np.ones(3))

    def test_iteration_cap_respected(self, rng):
        # A nastier matrix: moderate conditioning still converges but
        # the cap must bound the work.
        a = rng.standard_normal((40, 40)) + 8 * np.eye(40)
        b = rng.standard_normal(40)
        result = refine_solve(a, b, max_iterations=2)
        assert result.iterations <= 2
