"""Idempotent keyed submission: model, store, runner, and HTTP layers."""

import time

import pytest

from repro.errors import JobError
from repro.jobs import JobRunner, JobSpec, JobState, JobStore
from repro.jobs.model import derive_job_id, validate_job_key
from repro.serve import AnalysisService, ServeClient, start_server

SPEC = {"seed": 7, "checkpoint_every": 2,
        "ga": {"population_size": 10, "generations": 4, "keep_best": 2},
        "fitness": {"n_panels": 60}}


def spec(**overrides):
    merged = dict(SPEC, **overrides)
    return JobSpec.from_dict(merged)


class TestJobKeyValidation:
    @pytest.mark.parametrize("key", [
        "exp/2026-08/run-1", "a", "UUID-like-0123", "dotted.name:v2",
        "x" * 128,
    ])
    def test_accepts_reasonable_keys(self, key):
        assert validate_job_key(key) == key

    @pytest.mark.parametrize("key", [
        None, 7, b"bytes", "", "x" * 129, "has space", "tab\there",
        "new\nline", "quo\"te", "héllo",
    ])
    def test_rejects_bad_keys(self, key):
        with pytest.raises(JobError, match="job_key"):
            validate_job_key(key)

    def test_derived_id_is_deterministic_and_distinct(self):
        assert derive_job_id("exp/run-1") == derive_job_id("exp/run-1")
        assert derive_job_id("exp/run-1") != derive_job_id("exp/run-2")
        assert derive_job_id("exp/run-1").startswith("job-k")

    def test_two_stores_derive_the_same_id(self, tmp_path):
        """The property the router's checkpoint staging relies on."""
        one = JobStore(str(tmp_path / "a"))
        two = JobStore(str(tmp_path / "b"))
        record_one = one.submit(spec(), job_key="exp/run-1")
        record_two = two.submit(spec(), job_key="exp/run-1")
        assert record_one.id == record_two.id == derive_job_id("exp/run-1")
        one.close()
        two.close()


class TestStoreIdempotency:
    def test_duplicate_key_returns_existing_record(self, tmp_path):
        store = JobStore(str(tmp_path))
        first, created = store.submit_idempotent(spec(), "exp/run-1")
        assert created
        again, created = store.submit_idempotent(spec(), "exp/run-1")
        assert not created
        assert again.id == first.id
        assert store.metrics.snapshot()["duplicate_submits"] == 1
        assert store.metrics.snapshot()["submitted"] == 1
        store.close()

    def test_key_wins_over_spec_difference(self, tmp_path):
        """The key is the identity: racing submitters with drifting
        specs still converge on one record."""
        store = JobStore(str(tmp_path))
        first, _ = store.submit_idempotent(spec(seed=7), "exp/run-1")
        again, created = store.submit_idempotent(spec(seed=999), "exp/run-1")
        assert not created
        assert again.id == first.id
        assert again.spec.seed == 7
        store.close()

    def test_plain_submit_rejects_duplicate_key(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.submit(spec(), job_key="exp/run-1")
        with pytest.raises(JobError, match="already exists"):
            store.submit(spec(), job_key="exp/run-1")
        store.close()

    def test_key_mapping_survives_replay(self, tmp_path):
        store = JobStore(str(tmp_path))
        first, _ = store.submit_idempotent(spec(), "exp/run-1")
        store.close()

        reopened = JobStore(str(tmp_path))
        record, created = reopened.submit_idempotent(spec(), "exp/run-1")
        assert not created
        assert record.id == first.id
        assert reopened.find_by_key("exp/run-1").job_key == "exp/run-1"
        reopened.close()


class TestRunnerIdempotency:
    def test_duplicate_submit_runs_the_job_once(self, tmp_path):
        store = JobStore(str(tmp_path))
        runner = JobRunner(store, slots=1).start()
        try:
            first = runner.submit(spec(), job_key="exp/run-1")
            again = runner.submit(spec(), job_key="exp/run-1")
            assert again.id == first.id
            deadline = time.monotonic() + 120.0
            while not store.get(first.id).terminal:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            assert store.get(first.id).state == JobState.DONE
            # Exactly one run's worth of generations — a second enqueue
            # would double this (or fail on the terminal record).
            generations = SPEC["ga"]["generations"]
            assert runner.metrics.snapshot()["generations_completed"] == \
                generations
        finally:
            assert runner.close()
            store.close()


@pytest.fixture
def served_jobs(tmp_path):
    service = AnalysisService(max_batch=8, max_wait=0.005, n_workers=1,
                              jobs_dir=str(tmp_path / "jobs"), job_slots=1)
    server = start_server(service)
    client = ServeClient(port=server.port)
    client.wait_until_ready()
    yield service, client
    client.close()
    server.stop()
    assert service.close(timeout=30.0)


class TestHTTPIdempotency:
    def test_duplicate_post_returns_same_job(self, served_jobs):
        service, client = served_jobs
        first = client.submit_job(SPEC, job_key="exp/run-1")
        again = client.submit_job(SPEC, job_key="exp/run-1")
        assert again["id"] == first["id"] == derive_job_id("exp/run-1")
        assert service.jobs.store.metrics.snapshot()["duplicate_submits"] == 1
        final = client.wait_job(first["id"], timeout=120.0)
        assert final["state"] == JobState.DONE

    def test_bad_job_key_is_a_client_error(self, served_jobs):
        _, client = served_jobs
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="job_key"):
            client.submit_job(SPEC, job_key="has space")

    def test_duplicate_submits_reach_prometheus(self, served_jobs):
        _, client = served_jobs
        client.submit_job(SPEC, job_key="exp/run-1")
        client.submit_job(SPEC, job_key="exp/run-1")
        text = client.metrics_prometheus()
        assert "repro_jobs_duplicate_submits 1" in text
