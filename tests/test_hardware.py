"""Tests for the device specs, calibration, and kernel cost models."""

import numpy as np
import pytest

from repro.errors import CalibrationError, HardwareModelError
from repro.hardware import (
    DUAL_E5_2630_V3,
    E5_2630_V3,
    FULL_K80,
    HALF_K80,
    PAPER_TABLE2,
    REFERENCE_BATCH,
    REFERENCE_N,
    TABLE1_DEVICES,
    XEON_PHI_7120,
    DeviceKind,
    DeviceSpec,
    KernelModel,
    PCIeLinkSpec,
    SimulatedDevice,
    Workstation,
    calibrate,
    cpu_spec,
    implied_efficiencies,
    paper_workstation,
)
from repro.geometry import naca
from repro.panel import Freestream, PanelSolver
from repro.precision import Precision


class TestSpecs:
    def test_table1_values(self):
        assert E5_2630_V3.peak_tflops_double == 0.3
        assert DUAL_E5_2630_V3.peak_tflops_single == 1.2
        assert XEON_PHI_7120.memory_bandwidth_gbs == 352.0
        assert HALF_K80.peak_tflops_single == 4.4
        assert FULL_K80.peak_tflops_double == 2.9

    def test_five_devices(self):
        assert len(TABLE1_DEVICES) == 5

    def test_peak_flops_by_precision(self):
        assert E5_2630_V3.peak_flops("sp") == pytest.approx(0.6e12)
        assert E5_2630_V3.peak_flops("dp") == pytest.approx(0.3e12)

    def test_accelerator_flag(self):
        assert not E5_2630_V3.is_accelerator
        assert XEON_PHI_7120.is_accelerator
        assert HALF_K80.is_accelerator

    def test_invalid_spec_rejected(self):
        with pytest.raises(HardwareModelError):
            DeviceSpec(name="bad", kind=DeviceKind.CPU, peak_tflops_single=0.0,
                       peak_tflops_double=1.0, memory_bandwidth_gbs=10.0)

    def test_link_transfer_time(self):
        link = PCIeLinkSpec(effective_bandwidth=1e9, latency=1e-3)
        assert link.transfer_time(1e9) == pytest.approx(1.001)

    def test_link_negative_bytes(self):
        link = PCIeLinkSpec(effective_bandwidth=1e9)
        with pytest.raises(HardwareModelError):
            link.transfer_time(-1.0)


class TestCalibration:
    def test_all_eight_anchors_present(self):
        assert len(PAPER_TABLE2) == 8

    def test_per_matrix_times(self):
        calibration = calibrate(HALF_K80, Precision.SINGLE)
        assert calibration.assembly_per_matrix == pytest.approx(0.46 / 4000)
        assert calibration.solve_per_matrix == pytest.approx(3.70 / 4000)

    def test_uncalibrated_device_raises(self):
        with pytest.raises(CalibrationError, match="no Table 2 anchor"):
            calibrate(FULL_K80, Precision.SINGLE)

    def test_efficiencies_sub_unity(self):
        for (_, _), (assembly_eff, solve_eff) in implied_efficiencies().items():
            assert 0.0 < assembly_eff < 1.0
            assert 0.0 < solve_eff < 1.0

    def test_cpu_solves_more_efficiently_than_gpu(self):
        table = implied_efficiencies()
        assert table[("E5-2630 v3", "dp")][1] > table[("0.5x K80", "dp")][1]

    def test_gpu_assembles_more_efficiently_than_it_solves(self):
        table = implied_efficiencies()
        assembly_eff, solve_eff = table[("0.5x K80", "dp")]
        assert assembly_eff > solve_eff


class TestKernelModel:
    @pytest.fixture(scope="class")
    def gpu(self):
        return KernelModel.for_device(HALF_K80, "single")

    @pytest.fixture(scope="class")
    def cpu(self):
        return KernelModel.for_device(DUAL_E5_2630_V3, "single")

    def test_reference_workload_matches_anchor(self, gpu):
        cost = gpu.assembly(REFERENCE_BATCH, REFERENCE_N)
        assert cost.seconds == pytest.approx(0.46, abs=0.01)

    def test_solve_reference_matches_anchor(self, cpu):
        cost = cpu.solve(REFERENCE_BATCH, REFERENCE_N)
        assert cost.seconds == pytest.approx(1.07, abs=0.02)

    def test_assembly_scales_quadratically(self, gpu):
        small = gpu.assembly(1000, 100).seconds - HALF_K80.kernel_setup
        large = gpu.assembly(1000, 200).seconds - HALF_K80.kernel_setup
        assert large / small == pytest.approx(4.0, rel=1e-6)

    def test_solve_scales_cubically(self, cpu):
        small = cpu.solve(1000, 100).seconds - DUAL_E5_2630_V3.solve_call_setup
        large = cpu.solve(1000, 200).seconds - DUAL_E5_2630_V3.solve_call_setup
        # (2/3 n^3 + 2 n^2) ratio, slightly below 8 for these sizes.
        expected = (2 / 3 * 200**3 + 2 * 200**2) / (2 / 3 * 100**3 + 2 * 100**2)
        assert large / small == pytest.approx(expected, rel=1e-6)

    def test_assembly_linear_in_batch(self, gpu):
        one = gpu.assembly(1000, 200).seconds - HALF_K80.kernel_setup
        two = gpu.assembly(2000, 200).seconds - HALF_K80.kernel_setup
        assert two == pytest.approx(2.0 * one, rel=1e-9)

    def test_setup_cost_penalizes_small_calls(self, cpu):
        whole = cpu.solve(4000, 200).seconds
        split = sum(cpu.solve(200, 200).seconds for _ in range(20))
        assert split > whole
        assert split - whole == pytest.approx(19 * DUAL_E5_2630_V3.solve_call_setup)

    def test_throughput_fraction(self, cpu):
        full = cpu.solve(4000, 200).seconds - DUAL_E5_2630_V3.solve_call_setup
        reduced = cpu.solve(4000, 200, throughput_fraction=0.5).seconds \
            - DUAL_E5_2630_V3.solve_call_setup
        assert reduced == pytest.approx(2.0 * full, rel=1e-9)

    def test_bad_throughput_fraction(self, cpu):
        with pytest.raises(HardwareModelError):
            cpu.solve(100, 50, throughput_fraction=0.0)

    def test_transfer_bytes(self, gpu):
        cost = gpu.transfer(1000, 200)
        expected_bytes = 1000 * (200 * 200 + 200) * 4
        assert cost.bytes_moved == expected_bytes
        assert cost.seconds == pytest.approx(
            HALF_K80.link.latency + expected_bytes / HALF_K80.link.effective_bandwidth
        )

    def test_cpu_has_no_link(self, cpu):
        with pytest.raises(HardwareModelError, match="no host link"):
            cpu.transfer(100, 200)

    def test_bad_workload(self, gpu):
        with pytest.raises(HardwareModelError):
            gpu.assembly(0, 200)
        with pytest.raises(HardwareModelError):
            gpu.assembly(10, 1)

    def test_paper_table2_shape_cpu_assembly_dominates(self):
        """Section 3: on the CPU assembly is 2.5-3.5x the solve."""
        for precision in ("single", "double"):
            for spec in (E5_2630_V3, DUAL_E5_2630_V3):
                model = KernelModel.for_device(spec, precision)
                ratio = (model.assembly(4000, 200).seconds
                         / model.solve(4000, 200).seconds)
                assert 2.4 < ratio < 3.6

    def test_paper_table2_shape_accelerators_reversed(self):
        """Section 3: on accelerators the solve dominates."""
        for precision in ("single", "double"):
            for spec in (XEON_PHI_7120, HALF_K80):
                model = KernelModel.for_device(spec, precision)
                assert (model.solve(4000, 200).seconds
                        > model.assembly(4000, 200).seconds)


class TestWorkstation:
    def test_cpu_spec_choices(self):
        assert cpu_spec(1) is E5_2630_V3
        assert cpu_spec(2) is DUAL_E5_2630_V3
        with pytest.raises(HardwareModelError):
            cpu_spec(4)

    def test_cpu_only(self):
        station = paper_workstation(sockets=2)
        assert not station.has_accelerator
        with pytest.raises(HardwareModelError):
            station.accelerator

    def test_phi_configuration(self):
        station = paper_workstation(accelerator="phi", precision="single")
        assert station.accelerator.spec is XEON_PHI_7120

    def test_dual_k80(self):
        station = paper_workstation(accelerator="k80-dual")
        assert len(station.accelerators) == 2
        assert all(d.spec is HALF_K80 for d in station.accelerators)

    def test_unknown_accelerator(self):
        with pytest.raises(HardwareModelError, match="unknown accelerator"):
            paper_workstation(accelerator="tpu")

    def test_describe(self):
        station = paper_workstation(sockets=1, accelerator="k80-half")
        assert "E5-2630 v3" in station.describe()
        assert "K80" in station.describe()


class TestFunctionalExecution:
    def test_functional_assembly_and_solve_match_direct(self):
        """The device's functional path returns the same physics."""
        device = SimulatedDevice.create(HALF_K80, "double")
        foils = [naca("2412", 50), naca("0012", 50)]
        fs = Freestream.from_degrees(3.0)
        assembly = device.run_assembly(foils, fs)
        solve = device.run_solve(assembly)
        direct = PanelSolver().solve_batch(foils, fs)
        for functional, reference in zip(solve.solutions, direct):
            assert functional.lift_coefficient == pytest.approx(
                reference.lift_coefficient, abs=1e-10
            )

    def test_costs_are_positive(self):
        device = SimulatedDevice.create(XEON_PHI_7120, "single")
        foils = [naca("2412", 40)]
        assembly = device.run_assembly(foils, Freestream())
        assert assembly.cost.seconds > 0
        solve = device.run_solve(assembly)
        assert solve.cost.seconds > 0

    def test_run_solve_requires_functional_input(self):
        from repro.hardware.device import AssemblyOutput
        from repro.hardware.kernels import KernelCost

        device = SimulatedDevice.create(HALF_K80, "single")
        timing_only = AssemblyOutput(cost=KernelCost(1.0, 0.0, 0.0))
        with pytest.raises(ValueError, match="functional"):
            device.run_solve(timing_only)

    def test_timing_interface(self):
        device = SimulatedDevice.create(HALF_K80, "single")
        assert device.assembly_seconds(4000, 200) == pytest.approx(0.46, abs=0.01)
        assert device.transfer_seconds(4000, 200) > 0.5
