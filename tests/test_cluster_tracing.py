"""Cluster-wide distributed tracing, SLO burn rates, and the stitched
``/debug/trace`` Gantt — in-process replicas behind a real router."""

import io
import json
import time
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterRouter
from repro.cluster.router import (SPAN_HEALTH_LOOKUP, SPAN_PROXY_ATTEMPT,
                                  SPAN_ROUTE)
from repro.cluster.http import start_cluster_server
from repro.obs.context import new_trace_context, parse_trace_header
from repro.obs.logging import StructuredLogger
from repro.serve import AnalysisService, ServeClient, start_server
from tests.test_obs import parse_prometheus


def payload(alpha):
    return {"airfoil": "2412", "alpha_degrees": float(alpha),
            "reynolds": 0, "n_panels": 60}


class TracedCluster:
    """Two in-process replicas behind one router, tracing everything."""

    def __init__(self, *, exec_backend=None, trace_sample=1.0,
                 log_stream=None):
        self.services, self.servers, specs = [], [], []
        for _ in range(2):
            service = AnalysisService(max_batch=8, max_wait=0.002,
                                      cache_size=64, n_workers=1,
                                      queue_limit=64,
                                      exec_backend=exec_backend,
                                      slo_latency_ms=250.0)
            server = start_server(service)
            self.services.append(service)
            self.servers.append(server)
            specs.append(f"127.0.0.1:{server.port}")
        logger = (None if log_stream is None
                  else StructuredLogger("json", log_stream))
        self.router = ClusterRouter(specs, health_interval=0.05,
                                    down_after=2, timeout=30.0,
                                    trace_sample=trace_sample,
                                    logger=logger).start()
        self.names = specs

    def stitched_after_analyze(self, alpha, *, timeout=5.0):
        """Route one request, then poll for its stitched document (the
        replica closes its trace just after resolving the response, so
        the first pull can race the ring insert)."""
        record = self.router.analyze(payload(alpha))
        assert "cl" in record
        trace_id = self.router.tracer.recent(1)[-1].trace_id
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            document = self.router.stitched_trace(trace_id)
            assert document is not None
            if document["stitched"]:
                return document
            time.sleep(0.02)
        raise AssertionError(f"trace {trace_id} never stitched: {document}")

    def close(self):
        self.router.close()
        for server, service in zip(self.servers, self.services):
            server.stop()
            service.close(timeout=30.0)


@pytest.fixture
def cluster():
    built = TracedCluster()
    yield built
    built.close()


class TestStitchedTrace:
    def test_one_tree_spanning_router_and_replica(self, cluster):
        document = cluster.stitched_after_analyze(4.0)
        hops = {hop["hop"]: hop for hop in document["hops"]}
        assert "router" in hops
        replica = document["annotations"]["replica"]
        assert replica in cluster.names
        assert f"replica {replica}" in hops
        router_names = [span["name"] for span in hops["router"]["spans"]]
        assert SPAN_ROUTE in router_names
        assert SPAN_HEALTH_LOOKUP in router_names
        assert SPAN_PROXY_ATTEMPT in router_names
        replica_names = [span["name"]
                         for span in hops[f"replica {replica}"]["spans"]]
        assert "request" in replica_names
        assert "solve" in replica_names

    def test_replica_spans_stay_inside_proxy_bounds(self, cluster):
        document = cluster.stitched_after_analyze(5.0)
        hops = {hop["hop"]: hop for hop in document["hops"]}
        proxy = next(span for span in hops["router"]["spans"]
                     if span["name"] == SPAN_PROXY_ATTEMPT)
        replica = document["annotations"]["replica"]
        for span in hops[f"replica {replica}"]["spans"]:
            assert proxy["start"] <= span["start"] <= proxy["end"]
            assert proxy["start"] <= span["end"] <= proxy["end"]

    def test_every_hop_satisfies_the_walo_identity(self, cluster):
        document = cluster.stitched_after_analyze(6.0)
        for hop in document["hops"]:
            walo = hop["walo"]
            assert walo["overhead_seconds"] == pytest.approx(
                walo["wall_seconds"] - walo["solve_seconds"])

    def test_ascii_gantt_renders_one_row_per_hop(self, cluster):
        document = cluster.stitched_after_analyze(7.0)
        text = cluster.router.render_stitched(document["trace_id"])
        replica = document["annotations"]["replica"]
        assert "router" in text
        assert f"replica {replica}" in text

    def test_stitch_counters_move(self, cluster):
        cluster.stitched_after_analyze(8.0)
        assert cluster.router.metrics.get("trace_pulls") >= 1
        assert cluster.router.metrics.get("traces_stitched") >= 1

    def test_unknown_trace_id_returns_none(self, cluster):
        assert cluster.router.stitched_trace("no-such-trace") is None

    def test_unsampled_router_keeps_serving(self):
        built = TracedCluster(trace_sample=0.0)
        try:
            record = built.router.analyze(payload(3.0))
            assert "cl" in record
            assert built.router.stitched_trace() is None
            assert built.router.metrics.get("routed") == 1
        finally:
            built.close()


class TestWorkerShardHop:
    def test_process_backend_spans_become_a_workers_hop(self):
        built = TracedCluster(exec_backend="process")
        try:
            # Distinct alphas defeat both caches so a solve really runs.
            document = built.stitched_after_analyze(9.25)
            hops = {hop["hop"]: hop for hop in document["hops"]}
            replica = document["annotations"]["replica"]
            workers = hops.get(f"workers {replica}")
            assert workers is not None
            names = {span["name"] for span in workers["spans"]}
            assert names <= {"assembly_shard", "solve_shard"}
            assert names
        finally:
            built.close()


class TestPropagationInvariance:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(alpha=st.floats(min_value=-4.0, max_value=9.0),
           sampled=st.booleans())
    def test_tracing_never_changes_response_bytes(self, cluster, alpha,
                                                  sampled):
        """The byte-identity contract survives the router and every
        sampling decision: headers may differ, bodies may not."""
        direct = ServeClient(port=self.port_of(cluster, 0), timeout=10.0)
        try:
            reference = direct.analyze_raw(payload(alpha))
        finally:
            direct.close()
        context = new_trace_context(sampled=sampled)
        via_router = cluster.router.analyze_raw(payload(alpha),
                                                trace_context=context)
        bare = cluster.router.analyze_raw(payload(alpha))
        assert via_router == reference
        assert bare == reference

    @staticmethod
    def port_of(cluster, index):
        return cluster.servers[index].port

    def test_replica_obeys_the_head_decision(self, cluster):
        context = new_trace_context(sampled=False)
        cluster.router.analyze_raw(payload(2.5), trace_context=context)
        for service in cluster.services:
            assert service.find_trace(context.trace_id) is None
        context = new_trace_context(sampled=True)
        cluster.router.analyze_raw(payload(2.5), trace_context=context)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if any(service.find_trace(context.trace_id) is not None
                   for service in cluster.services):
                break
            time.sleep(0.02)
        else:
            raise AssertionError("sampled trace never reached a replica ring")

    def test_header_wire_format_reaches_the_replica(self, cluster):
        # Drive the router over real HTTP with an explicit header.
        server = start_cluster_server(cluster.router)
        try:
            context = new_trace_context(sampled=True)
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/analyze",
                data=json.dumps(payload(1.5)).encode(),
                headers={"Content-Type": "application/json",
                         "X-Repro-Trace": context.header_value()},
            )
            with urllib.request.urlopen(request, timeout=10.0) as response:
                assert response.status == 200
            assert parse_trace_header(context.header_value()) == context
            trace = cluster.router.tracer.find(context.trace_id)
            assert trace is not None
        finally:
            server.stop()


class TestClusterHTTPEndpoints:
    def _get(self, port, path):
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10.0) as response:
            return response.status, response.read().decode()

    def test_debug_trace_ascii_and_json(self, cluster):
        document = cluster.stitched_after_analyze(3.5)
        server = start_cluster_server(cluster.router)
        try:
            status, text = self._get(server.port, "/debug/trace")
            assert status == 200
            assert "router" in text
            status, body = self._get(
                server.port,
                f"/debug/trace?format=json&trace_id={document['trace_id']}")
            assert status == 200
            fetched = json.loads(body)
            assert fetched["trace_id"] == document["trace_id"]
            assert fetched["stitched"] is True
        finally:
            server.stop()

    def test_debug_trace_unknown_id_404s_as_json(self, cluster):
        server = start_cluster_server(cluster.router)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.port, "/debug/trace?format=json&trace_id=nope")
            assert excinfo.value.code == 404
            assert json.loads(excinfo.value.read())["type"] == "TraceNotFound"
        finally:
            server.stop()

    def test_replica_trace_lookup_route(self, cluster):
        document = cluster.stitched_after_analyze(2.0)
        replica = document["annotations"]["replica"]
        port = int(replica.rsplit(":", 1)[1])
        status, body = self._get(port,
                                 f"/debug/trace/{document['trace_id']}")
        assert status == 200
        fetched = json.loads(body)
        assert fetched["trace"]["trace_id"] == document["trace_id"]
        assert "monotonic_now" in fetched
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(port, "/debug/trace/definitely-missing")
        assert excinfo.value.code == 404

    def test_router_prometheus_scrape_parses_without_duplicates(self, cluster):
        cluster.stitched_after_analyze(1.0)
        server = start_cluster_server(cluster.router)
        try:
            status, text = self._get(server.port,
                                     "/metrics?format=prometheus")
            assert status == 200
            samples, types, exemplars = parse_prometheus(text)
            assert types["repro_router_routed"] == "counter"
            assert samples[("repro_router_slo_availability_good", "")] >= 1
            bucket_families = [name for name, _ in samples
                               if name.endswith("_bucket")]
            assert bucket_families
            assert any(name.startswith("repro_cluster_latency_hist_ms")
                       for name, _ in samples)
            assert exemplars  # at least one bucket carries a trace id
        finally:
            server.stop()

    def test_cluster_json_metrics_merge_slo_and_histograms(self, cluster):
        cluster.stitched_after_analyze(0.5)
        document = cluster.router.metrics_document()
        assert document["router"]["slo"]["availability_good"] >= 1
        merged = document["cluster"]
        assert merged["slo"]["objectives"]["target"] == 0.99
        hist = merged["latency_hist_ms"]
        assert hist["count"] >= 1
        assert hist["buckets"][-1]["le"] == "+Inf"
        assert hist["buckets"][-1]["count"] == hist["count"]


class TestStructuredClusterLog:
    def _events(self, stream):
        return [json.loads(line) for line in
                stream.getvalue().splitlines() if line]

    def test_failover_and_health_events_carry_ids(self):
        stream = io.StringIO()
        built = TracedCluster(log_stream=stream)
        try:
            # Stop one replica cold; routing must fail over and say so.
            built.servers[0].stop()
            for alpha in (1.0, 2.0, 3.0, 4.0):
                built.router.analyze(payload(alpha))
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                events = self._events(stream)
                if any(event["event"] == "health_transition"
                       for event in events):
                    break
                time.sleep(0.05)
            events = self._events(stream)
            kinds = {event["event"] for event in events}
            assert "health_transition" in kinds
            transitions = [event for event in events
                           if event["event"] == "health_transition"]
            assert all({"replica", "old", "new"} <= set(event)
                       for event in transitions)
            failovers = [event for event in events
                         if event["event"] == "failover"]
            if failovers:  # raced health marking the replica DOWN first
                assert all("trace_id" in event and "replica" in event
                           for event in failovers)
        finally:
            built.close()
