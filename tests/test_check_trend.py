"""The benchmark trend gate: must pass on itself, fail on regressions
and on structural holes (missing artifacts, rows, or metrics)."""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks"))

import check_trend  # noqa: E402


SPEC = {"key_fields": ("backend", "max_batch"),
        "higher": ("throughput_rps",),
        "lower": ("latency_p99_ms",)}


def doc(rows):
    return {"benchmark": "serving", "rows": rows}


def row(backend="inline", max_batch=8, throughput=100.0, p99=10.0):
    return {"backend": backend, "max_batch": max_batch,
            "throughput_rps": throughput, "latency_p99_ms": p99}


class TestCompare:
    def test_identical_documents_pass(self):
        baseline = doc([row(), row(backend="process")])
        assert check_trend.compare(baseline, baseline, SPEC) == []

    def test_moves_inside_the_band_pass(self):
        baseline = doc([row(throughput=100.0, p99=10.0)])
        current = doc([row(throughput=60.0, p99=14.0)])
        assert check_trend.compare(baseline, current, SPEC,
                                   tolerance=0.5) == []

    def test_throughput_collapse_fails(self):
        baseline = doc([row(throughput=100.0)])
        current = doc([row(throughput=10.0)])
        failures = check_trend.compare(baseline, current, SPEC,
                                       tolerance=0.5)
        assert len(failures) == 1
        assert "throughput_rps" in failures[0]

    def test_latency_blowup_fails(self):
        baseline = doc([row(p99=10.0)])
        current = doc([row(p99=100.0)])
        failures = check_trend.compare(baseline, current, SPEC)
        assert any("latency_p99_ms" in failure for failure in failures)

    def test_improvements_never_fail(self):
        baseline = doc([row(throughput=100.0, p99=10.0)])
        current = doc([row(throughput=1000.0, p99=0.1)])
        assert check_trend.compare(baseline, current, SPEC) == []

    def test_missing_row_is_structural_failure(self):
        baseline = doc([row(), row(backend="process")])
        current = doc([row()])
        failures = check_trend.compare(baseline, current, SPEC)
        assert any("missing from current run" in failure
                   for failure in failures)

    def test_lost_metric_is_structural_failure(self):
        baseline = doc([row()])
        stripped = doc([{key: value for key, value in row().items()
                         if key != "throughput_rps"}])
        failures = check_trend.compare(baseline, stripped, SPEC)
        assert any("lost metric" in failure for failure in failures)

    def test_new_rows_in_current_are_not_gated(self):
        baseline = doc([row()])
        current = doc([row(), row(backend="process", throughput=1.0)])
        assert check_trend.compare(baseline, current, SPEC) == []

    def test_empty_baseline_fails_loudly(self):
        failures = check_trend.compare({"rows": []}, doc([row()]), SPEC)
        assert any("no comparable rows" in failure for failure in failures)

    def test_wider_tolerance_forgives(self):
        baseline = doc([row(throughput=100.0)])
        current = doc([row(throughput=30.0)])
        assert check_trend.compare(baseline, current, SPEC) != []
        assert check_trend.compare(baseline, current, SPEC,
                                   tolerance=0.8) == []


class TestMain:
    def _write(self, directory, filename, document):
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, filename), "w") as handle:
            json.dump(document, handle)

    def _serving_doc(self, throughput):
        return {"benchmark": "serving",
                "rows": [{"backend": "inline", "max_batch": 8,
                          "max_wait_ms": 2.0, "deadline_ms": None,
                          "throughput_rps": throughput,
                          "latency_p99_ms": 5.0}]}

    def test_end_to_end_pass_and_injected_regression(self, tmp_path):
        baseline_dir = str(tmp_path / "baselines")
        current_dir = str(tmp_path / "current")
        self._write(baseline_dir, "BENCH_serving.json",
                    self._serving_doc(100.0))
        self._write(current_dir, "BENCH_serving.json",
                    self._serving_doc(95.0))
        assert check_trend.main(["--baseline-dir", baseline_dir,
                                 "--current-dir", current_dir]) == 0
        self._write(current_dir, "BENCH_serving.json",
                    self._serving_doc(10.0))
        assert check_trend.main(["--baseline-dir", baseline_dir,
                                 "--current-dir", current_dir]) == 1

    def test_missing_current_artifact_fails(self, tmp_path):
        baseline_dir = str(tmp_path / "baselines")
        self._write(baseline_dir, "BENCH_serving.json",
                    self._serving_doc(100.0))
        assert check_trend.main(["--baseline-dir", baseline_dir,
                                 "--current-dir",
                                 str(tmp_path / "empty")]) == 1

    def test_no_baselines_at_all_errors(self, tmp_path):
        assert check_trend.main(["--baseline-dir", str(tmp_path / "none"),
                                 "--current-dir", str(tmp_path)]) == 2

    def test_update_rewrites_baselines(self, tmp_path):
        baseline_dir = str(tmp_path / "baselines")
        current_dir = str(tmp_path / "current")
        self._write(current_dir, "BENCH_serving.json",
                    self._serving_doc(42.0))
        assert check_trend.main(["--baseline-dir", baseline_dir,
                                 "--current-dir", current_dir,
                                 "--update"]) == 0
        with open(os.path.join(baseline_dir, "BENCH_serving.json")) as handle:
            assert json.load(handle)["rows"][0]["throughput_rps"] == 42.0

    def test_bad_tolerance_rejected(self, tmp_path):
        assert check_trend.main(["--tolerance", "0",
                                 "--current-dir", str(tmp_path)]) == 2

    def test_committed_baselines_cover_all_three_benchmarks(self):
        for filename in check_trend.ARTIFACTS:
            path = os.path.join(check_trend.BASELINE_DIR, filename)
            assert os.path.exists(path), f"baseline not committed: {filename}"
            with open(path) as handle:
                document = json.load(handle)
            spec = check_trend.SPECS[filename]
            rows = check_trend._index_rows(document, spec["key_fields"])
            assert rows, f"baseline {filename} has no comparable rows"
            # The committed baseline must gate itself cleanly.
            assert check_trend.compare(document, document, spec,
                                       name=filename) == []
