"""End-to-end integration tests across subsystem boundaries.

These runs exercise the same composite code paths the paper's system
does: GA -> panel solves -> viscous fitness; and the functional hybrid
pipeline (simulated clock + real numerics) against the plain solver.
"""

import numpy as np
import pytest

from repro.geometry import BSplineAirfoil, naca
from repro.hardware import HALF_K80, XEON_PHI_7120, SimulatedDevice
from repro.optimize import FitnessEvaluator, GAConfig, GenomeLayout, GeneticOptimizer
from repro.panel import Freestream, PanelSolver
from repro.pipeline import Workload, evaluate, hybrid, simulate
from repro.hardware.host import paper_workstation
from repro.viscous import analyze_viscous


class TestFunctionalHybridPipeline:
    """The hybrid pipeline's functional mode must reproduce the physics."""

    @pytest.mark.parametrize("spec", [HALF_K80, XEON_PHI_7120],
                             ids=["gpu", "phi"])
    def test_sliced_offload_matches_direct_solve(self, spec):
        device = SimulatedDevice.create(spec, "double")
        foils = [naca("2412", 60), naca("0012", 60), naca("4412", 60),
                 naca("2212", 60), naca("4312", 60)]
        fs = Freestream.from_degrees(3.0)

        # Slice the batch the way the hybrid schedule would, run each
        # slice through the device's functional kernels.
        functional_cls = []
        for start in range(0, len(foils), 2):
            chunk = foils[start:start + 2]
            assembly = device.run_assembly(chunk, fs)
            solve = device.run_solve(assembly)
            functional_cls.extend(
                s.lift_coefficient for s in solve.solutions
            )

        direct = PanelSolver().solve_batch(foils, fs)
        assert functional_cls == pytest.approx(
            [s.lift_coefficient for s in direct], abs=1e-12
        )

    def test_single_precision_device_loses_accuracy_gracefully(self):
        device_sp = SimulatedDevice.create(HALF_K80, "single")
        device_dp = SimulatedDevice.create(HALF_K80, "double")
        foils = [naca("2412", 100)]
        fs = Freestream.from_degrees(4.0)
        cl_sp = device_sp.run_solve(device_sp.run_assembly(foils, fs)).solutions[0]
        cl_dp = device_dp.run_solve(device_dp.run_assembly(foils, fs)).solutions[0]
        difference = abs(cl_sp.lift_coefficient - cl_dp.lift_coefficient)
        assert 0.0 < difference < 5e-3  # sp differs, but only slightly


class TestWorkloadScaleConsistency:
    def test_ga_workload_equals_pipeline_batch(self):
        """The GA's evaluation count is the pipeline's batch size."""
        config = GAConfig(population_size=400, generations=10)
        assert config.total_evaluations == Workload.paper_reference().batch

    def test_simulated_seconds_scale_with_ga_size(self):
        station = paper_workstation(sockets=2, accelerator="k80-half",
                                    precision="double")
        small = Workload(batch=1000, n=200, precision="double")
        large = Workload(batch=4000, n=200, precision="double")
        w_small = evaluate(simulate(hybrid(small, station, 10))).wall_time
        w_large = evaluate(simulate(hybrid(large, station, 10))).wall_time
        # Slightly sublinear: fixed per-slice setups amortize with size.
        assert 3.2 * w_small < w_large < 4.05 * w_small


class TestOptimizationPipeline:
    @pytest.fixture(scope="class")
    def run(self):
        layout = GenomeLayout(n_upper=5, n_lower=5)
        evaluator = FitnessEvaluator(layout=layout, n_panels=60, reynolds=4e5)
        optimizer = GeneticOptimizer(
            evaluator=evaluator,
            config=GAConfig(population_size=16, generations=5),
        )
        return layout, optimizer.run(np.random.default_rng(11))

    def test_fitness_improves(self, run):
        _, history = run
        trace = history.best_fitness_trace()
        assert trace[-1] > trace[0]

    def test_champion_geometry_is_analyzable(self, run):
        layout, history = run
        champion = layout.to_parametrization(history.champion.genome)
        foil = champion.to_airfoil(100)
        solution = PanelSolver().solve(foil, Freestream())
        viscous = analyze_viscous(solution, 4e5)
        assert solution.lift_coefficient > 0
        assert viscous.drag_coefficient > 0

    def test_champion_fitness_reproducible_from_genome(self, run):
        layout, history = run
        evaluator = FitnessEvaluator(layout=layout, n_panels=60, reynolds=4e5)
        record = evaluator.evaluate(history.champion.genome)
        assert record.fitness == pytest.approx(history.champion.fitness, rel=1e-9)


class TestPrecisionStory:
    """Single precision is usable end to end (the paper runs both)."""

    def test_sp_lift_within_tolerance_of_dp(self):
        foil = naca("2412", 200)
        fs = Freestream.from_degrees(4.0)
        cl_sp = PanelSolver(precision="single").solve(foil, fs).lift_coefficient
        cl_dp = PanelSolver(precision="double").solve(foil, fs).lift_coefficient
        assert cl_sp == pytest.approx(cl_dp, abs=2e-3)

    def test_sp_pipeline_is_faster_than_dp(self):
        station_sp = paper_workstation(sockets=2, accelerator="k80-half",
                                       precision="single")
        station_dp = paper_workstation(sockets=2, accelerator="k80-half",
                                       precision="double")
        w_sp = evaluate(simulate(hybrid(
            Workload.paper_reference("single"), station_sp, 10))).wall_time
        w_dp = evaluate(simulate(hybrid(
            Workload.paper_reference("double"), station_dp, 10))).wall_time
        assert w_sp < w_dp
