"""Tests for the genetic optimizer: operators, fitness, GA loop."""

import math

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optimize import (
    FitnessEvaluator,
    GAConfig,
    GenomeBounds,
    GenomeLayout,
    GeneticOptimizer,
    INFEASIBLE_FITNESS,
    OptimizationHistory,
    mutate_single_coefficient,
    one_point_crossover,
    tournament_select,
)


@pytest.fixture(scope="module")
def layout():
    return GenomeLayout(n_upper=5, n_lower=5)


class TestGenome:
    def test_gene_count(self, layout):
        assert layout.n_genes == 10

    def test_random_genome_in_bounds(self, layout, rng):
        genome = layout.random_genome(rng)
        low = layout.bounds.low_vector(5, 5)
        high = layout.bounds.high_vector(5, 5)
        assert np.all(genome >= low) and np.all(genome <= high)

    def test_clip(self, layout):
        wild = np.full(10, 99.0)
        clipped = layout.clip(wild)
        assert np.all(clipped <= layout.bounds.high_vector(5, 5))

    def test_to_parametrization_roundtrip(self, layout, rng):
        genome = layout.random_genome(rng)
        parametrization = layout.to_parametrization(genome)
        assert parametrization.coefficients() == pytest.approx(genome)

    def test_wrong_length_rejected(self, layout):
        with pytest.raises(OptimizationError, match="genes"):
            layout.to_parametrization(np.zeros(7))

    def test_empty_bounds_rejected(self):
        with pytest.raises(OptimizationError):
            GenomeBounds(upper_low=0.2, upper_high=0.1)

    def test_too_few_coefficients(self):
        with pytest.raises(OptimizationError):
            GenomeLayout(n_upper=2, n_lower=5)


class TestOperators:
    def test_tournament_prefers_best(self, rng):
        fitnesses = [0.0, 100.0, 1.0, 2.0]
        winners = [
            tournament_select(rng, fitnesses, tournament_size=4)
            for _ in range(20)
        ]
        assert all(w == 1 for w in winners)

    def test_tournament_size_one_is_uniform(self, rng):
        fitnesses = [1.0, 2.0, 3.0]
        winners = {tournament_select(rng, fitnesses, tournament_size=1)
                   for _ in range(200)}
        assert winners == {0, 1, 2}

    def test_tournament_empty_population(self, rng):
        with pytest.raises(OptimizationError):
            tournament_select(rng, [])

    def test_tournament_handles_infinities(self, rng):
        fitnesses = [-math.inf, 5.0, -math.inf]
        winner = tournament_select(rng, fitnesses, tournament_size=3)
        assert winner == 1

    def test_crossover_preserves_genes(self, rng):
        a = np.arange(10.0)
        b = np.arange(10.0) + 100.0
        child_a, child_b = one_point_crossover(rng, a, b)
        combined = np.sort(np.concatenate([child_a, child_b]))
        assert combined == pytest.approx(np.sort(np.concatenate([a, b])))

    def test_crossover_cut_internal(self, rng):
        a = np.zeros(10)
        b = np.ones(10)
        for _ in range(20):
            child_a, child_b = one_point_crossover(rng, a, b)
            assert 0 < child_a.sum() < 10  # neither pure copy
            assert child_a.sum() + child_b.sum() == pytest.approx(10.0)

    def test_crossover_shape_mismatch(self, rng):
        with pytest.raises(OptimizationError):
            one_point_crossover(rng, np.zeros(4), np.zeros(5))

    def test_mutation_changes_one_gene(self, layout, rng):
        genome = layout.random_genome(rng)
        mutated = mutate_single_coefficient(rng, genome, layout, scale=0.01)
        changed = np.nonzero(mutated != genome)[0]
        assert len(changed) <= 1  # exactly one, unless clipped back equal

    def test_mutation_does_not_modify_input(self, layout, rng):
        genome = layout.random_genome(rng)
        original = genome.copy()
        mutate_single_coefficient(rng, genome, layout)
        assert genome == pytest.approx(original)

    def test_mutation_respects_bounds(self, layout, rng):
        genome = layout.bounds.high_vector(5, 5)
        for _ in range(30):
            mutated = mutate_single_coefficient(rng, genome, layout, scale=1.0)
            assert np.all(mutated <= layout.bounds.high_vector(5, 5) + 1e-12)

    def test_mutation_bad_scale(self, layout, rng):
        with pytest.raises(OptimizationError):
            mutate_single_coefficient(rng, layout.random_genome(rng), layout,
                                      scale=0.0)


class TestFitness:
    @pytest.fixture(scope="class")
    def evaluator(self):
        return FitnessEvaluator(layout=GenomeLayout(n_upper=5, n_lower=5),
                                n_panels=60, reynolds=4e5)

    def test_reasonable_genome_feasible(self, evaluator):
        genome = np.array([0.05, 0.08, 0.08, 0.06, 0.03,
                           -0.02, -0.03, -0.03, -0.02, -0.01])
        record = evaluator.evaluate(genome)
        assert record.feasible
        assert record.cl > 0
        assert record.cd > 0
        assert record.fitness == pytest.approx(record.cl / record.cd)

    def test_thin_genome_infeasible(self, evaluator):
        # Upper at its floor and lower at its ceiling: nearly zero thickness.
        genome = np.array([0.03, 0.03, 0.03, 0.03, 0.03,
                           0.03, 0.03, 0.03, 0.03, 0.03])
        record = evaluator.evaluate(genome)
        assert record.fitness == INFEASIBLE_FITNESS
        assert record.failure is not None

    def test_negative_lift_ranked_low_but_finite(self, evaluator):
        # Inverted camber: lifts downward at alpha = 0.
        genome = np.array([0.02, 0.02, 0.02, 0.02, 0.02,
                           -0.09, -0.10, -0.10, -0.09, -0.04])
        record = evaluator.evaluate(genome)
        if record.failure == "non-positive lift":
            assert record.fitness <= 0
            assert math.isfinite(record.fitness)

    def test_callable_interface(self, evaluator):
        genome = np.array([0.05, 0.08, 0.08, 0.06, 0.03,
                           -0.02, -0.03, -0.03, -0.02, -0.01])
        assert evaluator(genome) == evaluator.evaluate(genome).fitness


class TestGAConfig:
    def test_total_evaluations(self):
        assert GAConfig(population_size=10, generations=4).total_evaluations == 40

    def test_odd_population_rejected(self):
        with pytest.raises(OptimizationError):
            GAConfig(population_size=11)

    def test_elitism_bound(self):
        with pytest.raises(OptimizationError):
            GAConfig(population_size=10, elitism=10)

    def test_probability_bounds(self):
        with pytest.raises(OptimizationError):
            GAConfig(crossover_probability=1.5)


class TestGeneticOptimizer:
    @pytest.fixture(scope="class")
    def history(self):
        evaluator = FitnessEvaluator(layout=GenomeLayout(n_upper=5, n_lower=5),
                                     n_panels=60, reynolds=4e5)
        config = GAConfig(population_size=16, generations=4)
        optimizer = GeneticOptimizer(evaluator=evaluator, config=config)
        return optimizer.run(np.random.default_rng(99))

    def test_generation_count(self, history):
        assert len(history.generations) == 4

    def test_elitism_keeps_best_nondecreasing(self, history):
        trace = history.best_fitness_trace()
        assert np.all(np.diff(trace) >= -1e-9)

    def test_champion_is_global_best(self, history):
        best = max(g.best_fitness for g in history.generations)
        assert history.champion.fitness == pytest.approx(best)

    def test_records_top_three(self, history):
        for generation in history.generations:
            assert len(generation.best) == 3
            fits = [i.fitness for i in generation.best]
            assert fits == sorted(fits, reverse=True)

    def test_callback_invoked(self):
        seen = []
        evaluator = FitnessEvaluator(layout=GenomeLayout(n_upper=5, n_lower=5),
                                     n_panels=60, reynolds=4e5)
        optimizer = GeneticOptimizer(
            evaluator=evaluator,
            config=GAConfig(population_size=8, generations=2),
            on_generation=seen.append,
        )
        optimizer.run(np.random.default_rng(1))
        assert [record.index for record in seen] == [0, 1]

    def test_reproducible_with_seed(self):
        evaluator = FitnessEvaluator(layout=GenomeLayout(n_upper=5, n_lower=5),
                                     n_panels=60, reynolds=4e5)
        config = GAConfig(population_size=8, generations=2)
        first = GeneticOptimizer(evaluator=evaluator, config=config).run(
            np.random.default_rng(7)
        )
        second = GeneticOptimizer(evaluator=evaluator, config=config).run(
            np.random.default_rng(7)
        )
        assert first.champion.fitness == pytest.approx(second.champion.fitness)

    def test_empty_history_champion_raises(self):
        with pytest.raises(ValueError):
            OptimizationHistory().champion


class TestRankingOrder:
    """Regression tests for the tie-break instability: reversing a
    stable ascending argsort emitted equal-fitness individuals in
    *reversed* index order, so two identical populations could record
    different champions."""

    def test_ties_keep_input_order(self):
        from repro.optimize.history import ranking_order

        order = ranking_order([1.0, 2.0, 2.0, 0.5, 2.0])
        assert order.tolist() == [1, 2, 4, 0, 3]
        # The old np.argsort(...)[::-1] spelling fails this: it yields
        # the tied indices as [4, 2, 1].

    def test_nan_ranks_last(self):
        from repro.optimize.history import ranking_order

        order = ranking_order([float("nan"), 1.0, float("-inf"), 2.0])
        assert order.tolist()[:2] == [3, 1]
        assert set(order.tolist()[2:]) == {0, 2}

    def test_record_breaks_fitness_ties_by_index(self):
        from repro.optimize.fitness import EvaluationRecord

        history = OptimizationHistory()
        genomes = [np.full(10, 0.01 * i) for i in range(4)]
        records = [EvaluationRecord(5.0, cl=1.0, cd=0.2) for _ in genomes]
        generation = history.record(0, genomes, records, keep_best=3)
        for slot, expected in enumerate(genomes[:3]):
            assert np.array_equal(generation.best[slot].genome, expected)

    def test_elitism_tie_break_is_deterministic(self):
        """Two GA runs over a fitness landscape full of ties must make
        identical selections (the checkpoint/resume prerequisite)."""
        class Constant:
            layout = GenomeLayout(n_upper=5, n_lower=5)

            def evaluate(self, genome):
                from repro.optimize.fitness import EvaluationRecord

                return EvaluationRecord(1.0, cl=1.0, cd=1.0)

        config = GAConfig(population_size=8, generations=3)
        first = GeneticOptimizer(evaluator=Constant(), config=config).run(
            np.random.default_rng(2)
        )
        second = GeneticOptimizer(evaluator=Constant(), config=config).run(
            np.random.default_rng(2)
        )
        for left, right in zip(first.generations, second.generations):
            for a, b in zip(left.best, right.best):
                assert np.array_equal(a.genome, b.genome)


class TestGAConfigValidationSatellites:
    def test_keep_best_below_one_rejected(self):
        with pytest.raises(OptimizationError, match="keep_best"):
            GAConfig(keep_best=0)

    def test_tournament_size_below_one_rejected(self):
        with pytest.raises(OptimizationError, match="tournament"):
            GAConfig(tournament_size=0)

    def test_minimal_valid_values_accepted(self):
        config = GAConfig(keep_best=1, tournament_size=1)
        assert config.keep_best == 1
        assert config.tournament_size == 1
