"""Tests for the panel-system assembly and closures."""

import numpy as np
import pytest

from repro.errors import PanelMethodError
from repro.geometry import naca
from repro.panel import Closure, Freestream, assemble, assemble_batch
from repro.linalg import condition_estimate_1norm


class TestClosureParse:
    def test_member_passthrough(self):
        assert Closure.parse(Closure.KUTTA) is Closure.KUTTA

    def test_string_values(self):
        assert Closure.parse("kutta") is Closure.KUTTA
        assert Closure.parse("ZERO-CIRCULATION") is Closure.ZERO_CIRCULATION

    def test_unknown_raises(self):
        with pytest.raises(PanelMethodError, match="unknown closure"):
            Closure.parse("free")


class TestKuttaAssembly:
    def test_square_system(self, naca2412):
        system = assemble(naca2412, Freestream())
        n = naca2412.n_panels
        assert system.matrix.shape == (n, n)
        assert system.rhs.shape == (n,)

    def test_constant_column_is_ones(self, naca2412):
        system = assemble(naca2412, Freestream())
        assert system.matrix[:, -1] == pytest.approx(np.ones(naca2412.n_panels))

    def test_rhs_is_freestream_streamfunction(self, naca2412):
        fs = Freestream.from_degrees(3.0)
        system = assemble(naca2412, fs)
        assert system.rhs == pytest.approx(
            fs.stream_function(naca2412.control_points)
        )

    def test_kutta_elimination_folds_last_column(self, naca2412):
        system = assemble(naca2412, Freestream())
        a = system.influence
        n = naca2412.n_panels
        assert system.matrix[:, 0] == pytest.approx(a[:, 0] - a[:, n - 1])

    def test_well_conditioned(self, naca2412):
        system = assemble(naca2412, Freestream())
        assert condition_estimate_1norm(np.asarray(system.matrix, np.float64)) < 1e7

    def test_expand_solution_enforces_kutta(self, naca2412):
        system = assemble(naca2412, Freestream())
        unknowns = np.arange(naca2412.n_panels, dtype=float)
        gamma, constant = system.expand_solution(unknowns)
        assert gamma[-1] == pytest.approx(-gamma[0])
        assert constant == pytest.approx(unknowns[-1])

    def test_dtype_controls_matrix(self, naca2412):
        system = assemble(naca2412, Freestream(), dtype=np.float32)
        assert system.matrix.dtype == np.float32
        assert system.rhs.dtype == np.float32


class TestZeroCirculationAssembly:
    def test_shape_one_larger(self, naca2412):
        system = assemble(naca2412, Freestream(), closure="zero-circulation")
        n = naca2412.n_panels
        assert system.matrix.shape == (n + 1, n + 1)

    def test_last_row_is_panel_lengths(self, naca2412):
        system = assemble(naca2412, Freestream(), closure="zero-circulation")
        n = naca2412.n_panels
        assert system.matrix[n, :n] == pytest.approx(naca2412.panel_lengths)
        assert system.matrix[n, n] == 0.0
        assert system.rhs[n] == 0.0

    def test_expand_solution_keeps_all_gammas(self, naca2412):
        system = assemble(naca2412, Freestream(), closure="zero-circulation")
        unknowns = np.arange(naca2412.n_panels + 1, dtype=float)
        gamma, constant = system.expand_solution(unknowns)
        assert len(gamma) == naca2412.n_panels
        assert constant == pytest.approx(unknowns[-1])


class TestBatchAssembly:
    def test_stacks(self):
        foils = [naca("2412", 40), naca("0012", 40), naca("4412", 40)]
        matrices, rhs, systems = assemble_batch(foils, Freestream())
        assert matrices.shape == (3, 40, 40)
        assert rhs.shape == (3, 40)
        assert len(systems) == 3

    def test_rows_match_individual_assembly(self):
        foils = [naca("2412", 30), naca("0012", 30)]
        fs = Freestream.from_degrees(2.0)
        matrices, rhs, _ = assemble_batch(foils, fs)
        for foil, matrix, vector in zip(foils, matrices, rhs):
            single = assemble(foil, fs)
            assert matrix == pytest.approx(single.matrix)
            assert vector == pytest.approx(single.rhs)

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(PanelMethodError, match="same panel count"):
            assemble_batch([naca("2412", 40), naca("0012", 60)], Freestream())

    def test_empty_batch_rejected(self):
        with pytest.raises(PanelMethodError, match="at least one"):
            assemble_batch([], Freestream())
