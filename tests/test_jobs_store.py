"""Tests for the durable job store: specs, journal replay, checkpoints."""

import json
import os

import numpy as np
import pytest

from repro.errors import JobError, JobNotFoundError
from repro.jobs import (
    JobSpec,
    JobState,
    JobStore,
    history_from_dict,
    history_to_dict,
    json_safe,
    rng_from_dict,
    rng_state_to_dict,
)
from repro.jobs.store import JOURNAL_NAME
from repro.optimize import FitnessEvaluator, GAConfig, GeneticOptimizer, GenomeLayout


def make_spec(**overrides):
    base = {"seed": 7, "checkpoint_every": 2,
            "ga": {"population_size": 8, "generations": 3},
            "fitness": {"n_panels": 60}}
    base.update(overrides)
    return JobSpec.from_dict(base)


class TestJobSpec:
    def test_roundtrip(self):
        spec = make_spec()
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_defaults(self):
        spec = JobSpec.from_dict({"seed": 0})
        assert spec.checkpoint_every == 1
        assert spec.ga_config() == GAConfig()

    @pytest.mark.parametrize("seed", [-1, 1.5, True, "7", None])
    def test_bad_seed_rejected(self, seed):
        with pytest.raises(JobError, match="seed"):
            JobSpec.from_dict({"seed": seed})

    def test_bad_cadence_rejected(self):
        with pytest.raises(JobError, match="checkpoint_every"):
            make_spec(checkpoint_every=0)

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(JobError, match="unknown"):
            JobSpec.from_dict({"seed": 0, "bogus": 1})

    def test_unknown_ga_field_rejected(self):
        with pytest.raises(JobError, match="bogus"):
            JobSpec.from_dict({"seed": 0, "ga": {"bogus": 1}})

    def test_invalid_ga_values_rejected_at_submit_time(self):
        with pytest.raises(JobError, match="ga config"):
            JobSpec.from_dict({"seed": 0, "ga": {"population_size": 11}})

    def test_invalid_fitness_rejected(self):
        with pytest.raises(JobError):
            JobSpec.from_dict({"seed": 0, "fitness": {"n_panels": -5}})


class TestStateMachine:
    def test_submit_starts_pending(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(make_spec())
        assert record.state == JobState.PENDING
        assert not record.terminal
        store.close()

    def test_full_lifecycle(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(make_spec())
        store.mark_running(record.id)
        assert store.get(record.id).state == JobState.RUNNING
        assert store.get(record.id).started_at is not None
        store.mark_done(record.id, {"champion": None})
        done = store.get(record.id)
        assert done.state == JobState.DONE and done.terminal
        assert done.finished_at is not None
        store.close()

    def test_illegal_transition_rejected(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(make_spec())
        with pytest.raises(JobError, match="cannot move"):
            store.mark_done(record.id, {})
        store.mark_running(record.id)
        store.mark_done(record.id, {})
        with pytest.raises(JobError, match="cannot move"):
            store.mark_failed(record.id, "late")
        store.close()

    def test_unknown_job_raises_not_found(self, tmp_path):
        store = JobStore(str(tmp_path))
        with pytest.raises(JobNotFoundError):
            store.get("job-missing")
        with pytest.raises(JobNotFoundError):
            store.events("job-missing")
        store.close()

    def test_cancel_is_idempotent_and_noop_on_terminal(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(make_spec())
        store.request_cancel(record.id)
        store.request_cancel(record.id)
        assert store.get(record.id).cancel_requested
        done = store.submit(make_spec())
        store.mark_running(done.id)
        store.mark_done(done.id, {})
        store.request_cancel(done.id)
        assert not store.get(done.id).cancel_requested
        store.close()

    def test_state_counts_always_has_every_state(self, tmp_path):
        store = JobStore(str(tmp_path))
        counts = store.state_counts()
        assert set(counts) == set(JobState.ALL)
        store.submit(make_spec())
        assert store.state_counts()[JobState.PENDING] == 1
        store.close()

    def test_resumable_lists_pending_and_running(self, tmp_path):
        store = JobStore(str(tmp_path))
        pending = store.submit(make_spec())
        running = store.submit(make_spec())
        store.mark_running(running.id)
        finished = store.submit(make_spec())
        store.mark_running(finished.id)
        store.mark_done(finished.id, {})
        ids = {record.id for record in store.resumable()}
        assert ids == {pending.id, running.id}
        store.close()


class TestJournalReplay:
    def build(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(make_spec())
        store.mark_running(record.id)
        store.record_progress(record.id, 0, {"best_fitness": 12.5,
                                             "mean_fitness": 3.0,
                                             "feasible_fraction": 1.0})
        store.record_progress(record.id, 1, {"best_fitness": 14.0,
                                             "mean_fitness": 5.0,
                                             "feasible_fraction": 0.5})
        store.mark_done(record.id, {"champion": {"fitness": 14.0}})
        store.close()
        return record.id

    def test_replay_reproduces_state(self, tmp_path):
        job_id = self.build(tmp_path)
        reopened = JobStore(str(tmp_path))
        record = reopened.get(job_id)
        assert record.state == JobState.DONE
        assert record.generations_done == 2
        assert record.result == {"champion": {"fitness": 14.0}}
        assert [event["seq"] for event in reopened.events(job_id)] == [1, 2]
        assert reopened.events(job_id, since=1)[0]["best_fitness"] == 14.0
        assert reopened.torn_lines == 0
        reopened.close()

    def test_torn_final_line_is_tolerated_and_counted(self, tmp_path):
        job_id = self.build(tmp_path)
        journal = tmp_path / JOURNAL_NAME
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"type": "progress", "id": "%s", "gen' % job_id)
        reopened = JobStore(str(tmp_path))
        assert reopened.torn_lines == 1
        assert reopened.get(job_id).state == JobState.DONE
        # The torn tail was truncated: a fresh append produces a
        # journal every subsequent boot replays cleanly.
        reopened.submit(make_spec())
        reopened.close()
        third = JobStore(str(tmp_path))
        assert third.torn_lines == 0
        assert len(third.list()) == 2
        third.close()

    def test_corrupt_interior_line_raises(self, tmp_path):
        self.build(tmp_path)
        journal = tmp_path / JOURNAL_NAME
        lines = journal.read_text(encoding="utf-8").splitlines()
        lines[1] = "{not json"
        journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JobError, match="corrupt journal line 2"):
            JobStore(str(tmp_path))

    def test_unknown_event_types_are_skipped(self, tmp_path):
        job_id = self.build(tmp_path)
        journal = tmp_path / JOURNAL_NAME
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "future-feature", "id": job_id})
                         + "\n")
        reopened = JobStore(str(tmp_path))
        assert reopened.get(job_id).state == JobState.DONE
        reopened.close()

    def test_resume_counter_survives_replay(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(make_spec())
        store.mark_running(record.id)
        store.mark_resumed(record.id)
        store.close()
        reopened = JobStore(str(tmp_path))
        assert reopened.get(record.id).resumes == 1
        reopened.close()


class TestCheckpoints:
    def test_roundtrip_and_overwrite(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(make_spec())
        assert store.load_checkpoint(record.id) is None
        store.write_checkpoint(record.id, {"generation_offset": 1,
                                           "population": [[0.1, -0.2]]})
        store.write_checkpoint(record.id, {"generation_offset": 2,
                                           "population": [[0.3, -0.4]]})
        checkpoint = store.load_checkpoint(record.id)
        assert checkpoint["generation_offset"] == 2
        # No temp files left behind by the atomic replace.
        leftovers = [name for name in os.listdir(tmp_path / "checkpoints")
                     if not name.endswith(".json")]
        assert leftovers == []
        store.close()

    def test_corrupt_checkpoint_raises(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(make_spec())
        store.write_checkpoint(record.id, {"generation_offset": 1})
        path = tmp_path / "checkpoints" / f"{record.id}.json"
        path.write_text("{truncated", encoding="utf-8")
        with pytest.raises(JobError, match="corrupt checkpoint"):
            store.load_checkpoint(record.id)
        store.close()


class TestSerializationHelpers:
    def test_rng_state_roundtrips_exactly(self):
        rng = np.random.default_rng(42)
        rng.random(17)  # advance past the seeded state
        state = json.loads(json.dumps(rng_state_to_dict(rng)))
        clone = rng_from_dict(state)
        assert np.array_equal(rng.random(32), clone.random(32))

    def test_history_roundtrips_exactly(self):
        evaluator = FitnessEvaluator(layout=GenomeLayout(n_upper=5, n_lower=5),
                                     n_panels=60, reynolds=4e5)
        config = GAConfig(population_size=8, generations=2)
        history = GeneticOptimizer(evaluator=evaluator, config=config).run(
            np.random.default_rng(3)
        )
        payload = json.loads(json.dumps(history_to_dict(history)))
        restored = history_from_dict(payload)
        assert history_to_dict(restored) == history_to_dict(history)
        assert restored.champion.fitness == history.champion.fitness
        assert np.array_equal(restored.champion.genome,
                              history.champion.genome)

    def test_json_safe_sanitizes_non_finite(self):
        payload = {"a": float("inf"), "b": [float("-inf"), float("nan"), 1.0],
                   "c": {"d": 2}}
        safe = json_safe(payload)
        assert safe == {"a": "Infinity", "b": ["-Infinity", "NaN", 1.0],
                        "c": {"d": 2}}
        json.dumps(safe, allow_nan=False)  # must not raise
