"""Tests for experiment-harness internals: sweeps, metrics, markdown."""

import pytest

from repro.experiments import hybrid_tables as ht
from repro.experiments.markdown import generate_experiments_markdown
from repro.experiments.paper_data import BASELINES, PaperRow
from repro.pipeline import lower_bound_gap
from repro.precision import Precision


class TestPaperData:
    def test_baseline_identity(self):
        """Every published baseline satisfies W = A + L (sanity of the
        transcription)."""
        for row in BASELINES.values():
            assert row.wall == pytest.approx(row.assembly + row.solve,
                                             abs=0.05)

    def test_hybrid_rows_satisfy_o_equals_w_minus_l(self):
        """The paper's own tables obey O = W - L (our adopted definition
        is consistent with the transcription)."""
        from repro.experiments.paper_data import TABLE3, TABLE4

        for table in (TABLE3, TABLE4):
            for block in table.values():
                for row in block.values():
                    assert row.overhead == pytest.approx(
                        row.wall - row.solve, abs=0.02
                    )

    def test_paper_row_defaults(self):
        row = PaperRow(1.0, 0.5, 0.4)
        assert row.overhead is None and row.speedup is None


class TestHybridTables:
    def test_baseline_metrics_cached_shape(self):
        metrics = ht.baseline_metrics(Precision.DOUBLE, 2)
        assert metrics.overhead == pytest.approx(metrics.assembly_busy)
        assert metrics.speedup is None

    def test_sweep_lengths(self):
        metrics = ht.hybrid_sweep("k80-half", Precision.SINGLE, 1, (1, 10))
        assert len(metrics) == 2
        assert metrics[0].speedup is not None

    def test_dual_sweep_custom_grid(self):
        metrics = ht.dual_sweep(Precision.SINGLE, 2, distributions=(0.6, 0.9))
        assert len(metrics) == 2

    def test_metrics_to_rows_keys(self):
        metrics = ht.hybrid_sweep("phi", Precision.DOUBLE, 2, (5,))
        rows = ht.metrics_to_rows("slices", (5,), metrics,
                                  precision=Precision.DOUBLE, sockets=2)
        assert set(rows[0]) == {"slices", "precision", "sockets", "wall",
                                "assembly", "solve", "overhead", "speedup"}

    def test_lower_bound_gap_in_paper_band(self):
        metrics = ht.hybrid_sweep("k80-half", Precision.DOUBLE, 2, (10,))[0]
        assert 0.0 < lower_bound_gap(metrics) < 0.25


class TestMarkdownGeneration:
    @pytest.fixture(scope="class")
    def markdown(self):
        return generate_experiments_markdown()

    def test_all_sections_present(self, markdown):
        for heading in ("## Table 1", "## Table 2", "## Table 3",
                        "## Table 4", "## Table 5", "## Figures",
                        "## Section 7 headline claims",
                        "## Beyond the paper"):
            assert heading in markdown

    def test_every_headline_passes(self, markdown):
        claims_section = markdown.split("## Section 7 headline claims")[1]
        claims_table = claims_section.split("##")[0]
        assert "FAIL" not in claims_table
        assert claims_table.count("PASS") == 7

    def test_deviation_annotations_present(self, markdown):
        # Every hybrid row carries a signed percentage deviation.
        assert markdown.count("%") > 40

    def test_worst_deviation_reported_small(self, markdown):
        import re

        worst = [int(match) for match in
                 re.findall(r"Worst wall-time deviation[^:]*: (\d+)%",
                            markdown)]
        assert worst and max(worst) <= 15
