"""Tests for the experiment harness: report, registry, each experiment."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    REGISTRY,
    ExperimentResult,
    TextTable,
    compare,
    experiment_names,
    run_experiment,
)
from repro.experiments import figure1, figure2, figure3, figure4
from repro.experiments import table1, table2, table3, table4, table5
from repro.experiments.report import ratio_note


class TestTextTable:
    def test_render_aligns_columns(self):
        table = TextTable(headers=("a", "bbbb"))
        table.add_row("x", 1)
        table.add_row("yyyy", 22)
        lines = table.render().splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_title_rendered(self):
        table = TextTable(headers=("a",), title="My Table")
        table.add_row(1)
        assert table.render().startswith("My Table")

    def test_wrong_cell_count(self):
        table = TextTable(headers=("a", "b"))
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1)

    def test_compare_formats(self):
        assert compare(1.953, 1.98) == "1.95 (1.98)"
        assert compare(1.953, None) == "1.95"

    def test_ratio_note(self):
        assert ratio_note(1.1, 1.0) == "+10%"
        assert ratio_note(1.0, None) == "-"


class TestRegistry:
    def test_twelve_experiments(self):
        assert len(REGISTRY) == 12

    def test_names_include_all_tables_and_figures(self):
        names = experiment_names()
        for index in range(1, 6):
            assert f"table{index}" in names
        for index in range(1, 5):
            assert f"figure{index}" in names
        for extra in ("headline", "convergence", "energy"):
            assert extra in names

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("table99")

    def test_name_normalization(self):
        result = run_experiment("  TABLE1 ")
        assert result.experiment_id == "table1"


class TestTable1:
    def test_five_rows(self):
        result = table1.run()
        assert len(result.rows) == 5

    def test_text_mentions_devices(self):
        text = table1.run().text
        for name in ("E5-2630 v3", "Phi 7120", "0.5x K80", "1x K80"):
            assert name in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run()

    def test_eight_rows(self, result):
        assert len(result.rows) == 8

    def test_simulated_matches_paper_anchor(self, result):
        for row in result.rows:
            assert row["assembly_seconds"] == pytest.approx(
                row["paper_assembly_seconds"], rel=0.02
            )
            assert row["solve_seconds"] == pytest.approx(
                row["paper_solve_seconds"], rel=0.02
            )

    def test_notes_present(self, result):
        assert "assembly/solve ratio" in result.text


class TestTables345:
    def test_table3_blocks(self):
        result = table3.run()
        assert len(result.rows) == 16  # 4 slices x 2 precisions x 2 sockets
        assert "simulated optimum" in result.text

    def test_table4_blocks(self):
        result = table4.run()
        assert len(result.rows) == 16
        assert "GPU reference" in result.text

    def test_table5_blocks(self):
        result = table5.run()
        assert len(result.rows) == 12  # 3 distributions x 4 blocks
        assert "autotuned optimum" in result.text

    def test_table3_rows_have_speedups(self):
        for row in table3.run().rows:
            assert row["speedup"] > 1.0


class TestFigures:
    def test_figure1_artifact_and_geometry(self):
        result = figure1.run()
        assert "figure1.svg" in result.artifacts
        assert result.artifacts["figure1.svg"].startswith("<svg")
        assert result.rows[0]["n_panels"] == 10
        assert "NACA 2412" in result.text

    def test_figure1_custom_section(self):
        result = figure1.run(n_panels=16, designation="0012")
        assert result.rows[0]["n_panels"] == 16

    def test_figure2_improves_over_generations(self):
        result = figure2.run(seed=5, generations=4)
        best = [row["best_fitness"] for row in result.rows]
        assert best[-1] >= best[0]
        assert "champion" in result.text
        assert "figure2.svg" in result.artifacts

    def test_figure3_trace_rows(self):
        result = figure3.run(n_slices=4)
        resources = {row["resource"] for row in result.rows}
        assert resources == {"accel", "cpu"}
        assert "figure3.svg" in result.artifacts

    def test_figure4_has_link_row(self):
        result = figure4.run(n_slices=4)
        resources = {row["resource"] for row in result.rows}
        assert "link" in resources

    def test_artifact_saving(self, tmp_path):
        result = figure1.run()
        written = result.save_artifacts(str(tmp_path))
        assert len(written) == 1
        with open(written[0]) as handle:
            assert handle.read().startswith("<svg")
