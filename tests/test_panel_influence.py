"""Tests for the influence coefficients and free stream."""

import math

import numpy as np
import pytest

from repro.errors import PanelMethodError
from repro.geometry import naca
from repro.panel import (
    ASSEMBLY_FLOPS_PER_ENTRY,
    Freestream,
    assembly_flops,
    stream_influence_matrix,
    velocity_influence,
)


class TestFreestream:
    def test_velocity_at_zero_alpha(self):
        assert Freestream(speed=2.0).velocity == pytest.approx([2.0, 0.0])

    def test_velocity_at_alpha(self):
        fs = Freestream.from_degrees(90.0, speed=1.0)
        assert fs.velocity == pytest.approx([0.0, 1.0], abs=1e-12)

    def test_alpha_degrees_roundtrip(self):
        assert Freestream.from_degrees(4.0).alpha_degrees == pytest.approx(4.0)

    def test_stream_function_linear(self):
        fs = Freestream.from_degrees(0.0, speed=3.0)
        points = np.array([[0.0, 1.0], [0.0, 2.0], [5.0, 2.0]])
        psi = fs.stream_function(points)
        assert psi == pytest.approx([3.0, 6.0, 6.0])

    def test_stream_function_constant_along_streamline(self):
        fs = Freestream.from_degrees(30.0)
        direction = fs.velocity
        start = np.array([0.3, -0.2])
        points = start + np.outer(np.linspace(0, 5, 7), direction)
        psi = fs.stream_function(points)
        assert psi == pytest.approx(np.full(7, psi[0]), abs=1e-12)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(PanelMethodError):
            Freestream(speed=0.0)


class TestStreamInfluence:
    def test_shape(self, naca2412):
        points = np.array([[2.0, 0.5], [0.5, 1.0]])
        matrix = stream_influence_matrix(points, naca2412)
        assert matrix.shape == (2, naca2412.n_panels)

    def test_finite_on_surface_points(self, naca2412):
        # Control points and even panel endpoints must evaluate finite.
        values = stream_influence_matrix(naca2412.points[:-1], naca2412)
        assert np.all(np.isfinite(values))

    def test_finite_at_control_points(self, naca2412):
        values = stream_influence_matrix(naca2412.control_points, naca2412)
        assert np.all(np.isfinite(values))

    def test_decays_in_far_field(self, naca2412):
        near = stream_influence_matrix(np.array([[2.0, 0.0]]), naca2412)
        far = stream_influence_matrix(np.array([[200.0, 0.0]]), naca2412)
        # Stream function of a vortex grows like log r, but the panel
        # integral scale (per unit gamma) stays bounded relative to log.
        assert np.all(np.abs(far) < 10 * np.max(np.abs(near)) * math.log(200.0))

    def test_single_precision_dtype(self, naca2412):
        matrix = stream_influence_matrix(
            naca2412.control_points, naca2412, dtype=np.float32
        )
        assert matrix.dtype == np.float32

    def test_single_close_to_double(self, naca2412):
        points = naca2412.control_points
        double = stream_influence_matrix(points, naca2412)
        single = stream_influence_matrix(
            points.astype(np.float32), naca2412, dtype=np.float32
        )
        assert np.max(np.abs(single - double)) < 1e-4


class TestVelocityInfluence:
    def test_shape(self, naca2412):
        points = np.array([[2.0, 0.5]])
        assert velocity_influence(points, naca2412).shape == (1, naca2412.n_panels, 2)

    def test_consistent_with_stream_gradient(self, naca2412):
        """V = (d psi / dy, -d psi / dx) per unit CCW vortex strength.

        The paper's F equals minus the CCW stream function, so the
        velocity influence equals *minus* the perpendicular gradient of
        the stream influence.
        """
        point = np.array([[1.8, 0.6]])
        h = 1e-6
        v = velocity_influence(point, naca2412)[0]
        psi_yp = stream_influence_matrix(point + [0.0, h], naca2412)[0]
        psi_ym = stream_influence_matrix(point - [0.0, h], naca2412)[0]
        psi_xp = stream_influence_matrix(point + [h, 0.0], naca2412)[0]
        psi_xm = stream_influence_matrix(point - [h, 0.0], naca2412)[0]
        u_from_psi = -(psi_yp - psi_ym) / (2 * h)
        w_from_psi = (psi_xp - psi_xm) / (2 * h)
        assert v[:, 0] == pytest.approx(u_from_psi, abs=1e-6)
        assert v[:, 1] == pytest.approx(w_from_psi, abs=1e-6)

    def test_far_field_decay(self, naca2412):
        far = velocity_influence(np.array([[500.0, 0.0]]), naca2412)
        # A unit panel's far velocity ~ length / (2 pi r).
        assert np.max(np.abs(far)) < 1e-3

    def test_circulation_theorem_far_field(self, naca2412):
        """The far velocity of all panels together ~ a point vortex."""
        r = 300.0
        point = np.array([[r, 0.0]])
        total = velocity_influence(point, naca2412)[0]
        # Each panel's influence is already integrated over its length,
        # so the plain sum is a point vortex of strength = perimeter.
        combined = total.sum(axis=0)
        expected_speed = naca2412.perimeter / (2 * np.pi * r)
        assert np.linalg.norm(combined) == pytest.approx(expected_speed, rel=0.02)


class TestFlopAccounting:
    def test_per_entry_constant(self):
        assert ASSEMBLY_FLOPS_PER_ENTRY == 130

    def test_assembly_flops(self):
        assert assembly_flops(10, 20) == 10 * 20 * ASSEMBLY_FLOPS_PER_ENTRY
