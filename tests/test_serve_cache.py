"""Tests for the genome-keyed LRU result cache."""

import pytest

from repro.errors import ServeError
from repro.serve import ResultCache


class TestLRUPolicy:
    def test_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refreshes 'a'
        cache.put("c", {"v": 3})  # displaces 'b', the LRU entry
        assert cache.peek("b") is None
        assert cache.peek("a") == {"v": 1}
        assert cache.peek("c") == {"v": 3}
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.put("a", {"v": 10})  # re-put refreshes and replaces
        cache.put("c", {"v": 3})
        assert cache.peek("b") is None
        assert cache.peek("a") == {"v": 10}

    def test_len_tracks_entries(self):
        cache = ResultCache(capacity=3)
        for index in range(5):
            cache.put(str(index), {"v": index})
        assert len(cache) == 3


class TestCounters:
    def test_hit_and_miss_counting(self):
        cache = ResultCache(capacity=4)
        assert cache.get("missing") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.get("k") == {"v": 1}
        assert (cache.hits, cache.misses) == (2, 1)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_peek_is_uncounted(self):
        cache = ResultCache(capacity=4)
        cache.put("k", {"v": 1})
        cache.peek("k")
        cache.peek("missing")
        assert (cache.hits, cache.misses) == (0, 0)

    def test_stats_document(self):
        cache = ResultCache(capacity=4)
        cache.put("k", {"v": 1})
        cache.get("k")
        cache.get("nope")
        stats = cache.stats()
        assert stats == {"capacity": 4, "size": 1, "hits": 1, "misses": 1,
                         "evictions": 0, "hit_rate": 0.5}

    def test_hit_rate_before_any_lookup(self):
        assert ResultCache(capacity=4).hit_rate == 0.0


class TestEdgeCases:
    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(capacity=0)
        cache.put("k", {"v": 1})
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ServeError):
            ResultCache(capacity=-1)

    def test_clear_keeps_counters(self):
        cache = ResultCache(capacity=4)
        cache.put("k", {"v": 1})
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class _CountingLock:
    """Wraps the cache's lock to count context-manager acquisitions."""

    def __init__(self, inner):
        self._inner = inner
        self.acquisitions = 0

    def __enter__(self):
        self.acquisitions += 1
        return self._inner.__enter__()

    def __exit__(self, exc_type, exc, tb):
        return self._inner.__exit__(exc_type, exc, tb)


class TestCounterLocking:
    def test_counter_properties_read_under_the_lock(self):
        """Regression: hits/misses/evictions/hit_rate read the counters
        without the lock, so hit_rate could pair a pre-lookup numerator
        with a post-lookup denominator from a concurrent get()."""
        cache = ResultCache(capacity=4)
        cache.put("k", {"v": 1})
        cache.get("k")
        cache.get("absent")
        counting = _CountingLock(cache._lock)
        cache._lock = counting
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.evictions == 0
        assert cache.hit_rate == 0.5
        assert counting.acquisitions == 4  # one locked snapshot apiece
