"""Unit tests for the shared observability primitives (repro.obs)."""

import io
import json

import pytest

from repro.errors import ServeError
from repro.obs.ids import (MAX_REQUEST_ID_LENGTH, coerce_request_id,
                           new_request_id, validate_request_id)
from repro.obs.logging import LOG_FORMATS, StructuredLogger, make_logger
from repro.obs.prometheus import metric_name, render_prometheus
from repro.obs.trace import Trace, walo_summary


class FakeClock:
    """A deterministic monotonic clock tests can advance by hand."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds
        return self.now


# ----------------------------------------------------------------------
# Request IDs
# ----------------------------------------------------------------------

class TestRequestIds:
    def test_new_ids_are_unique_hex(self):
        first, second = new_request_id(), new_request_id()
        assert first != second
        assert len(first) == 32
        int(first, 16)  # must parse as hex

    def test_validate_accepts_common_formats(self):
        for value in ("abc-123", "a" * MAX_REQUEST_ID_LENGTH,
                      "trace.1:span/2", "550e8400-e29b-41d4-a716-446655440000"):
            assert validate_request_id(value) == value

    @pytest.mark.parametrize("bad", [
        "", "a" * (MAX_REQUEST_ID_LENGTH + 1), "evil\nheader", "with space",
        "quote\"", 42, None, b"bytes",
    ])
    def test_validate_rejects_unsafe_values(self, bad):
        with pytest.raises(ServeError):
            validate_request_id(bad)

    def test_coerce_generates_when_missing_and_validates_otherwise(self):
        assert len(coerce_request_id(None)) == 32
        assert coerce_request_id("mine") == "mine"
        with pytest.raises(ServeError):
            coerce_request_id("bad id")


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------

class TestTrace:
    def test_nested_spans_record_parents(self):
        clock = FakeClock()
        trace = Trace("req-1", clock=clock)
        with trace.span("outer") as outer:
            clock.advance(1.0)
            with trace.span("inner") as inner:
                clock.advance(0.5)
        clock.advance(0.25)
        trace.close("completed")

        outer_span = trace.spans[outer.index]
        inner_span = trace.spans[inner.index]
        assert outer_span.parent == 0
        assert inner_span.parent == outer.index
        assert inner_span.duration == pytest.approx(0.5)
        assert outer_span.duration == pytest.approx(1.5)
        assert trace.root.duration == pytest.approx(1.75)
        assert [span.name for span in trace.children(0)] == ["outer"]

    def test_exit_closes_inner_spans_left_open(self):
        clock = FakeClock()
        trace = Trace("req-2", clock=clock)
        handle = trace.span("outer")
        trace.span("inner")  # never explicitly closed
        clock.advance(2.0)
        trace.end_span(handle.index)
        assert all(span.end is not None for span in trace.spans[1:])

    def test_add_stage_records_external_stamps(self):
        clock = FakeClock()
        trace = Trace("req-3", clock=clock)
        trace.add_stage("solve", clock.now + 1.0, clock.now + 3.0)
        clock.advance(4.0)
        trace.close()
        assert trace.stage_seconds()["solve"] == pytest.approx(2.0)

    def test_walo_reduction_holds_the_overhead_identity(self):
        clock = FakeClock()
        trace = Trace("req-4", clock=clock)
        trace.add_stage("assembly", clock.now, clock.now + 1.0)
        trace.add_stage("solve", clock.now + 1.0, clock.now + 2.5)
        trace.add_stage("solve", clock.now + 2.5, clock.now + 3.0)
        clock.advance(4.0)
        trace.close()

        walo = walo_summary(trace)
        assert walo["wall_seconds"] == pytest.approx(4.0)
        assert walo["assembly_seconds"] == pytest.approx(1.0)
        assert walo["solve_seconds"] == pytest.approx(2.0)
        # O = W - L, by construction.
        assert walo["overhead_seconds"] == pytest.approx(
            walo["wall_seconds"] - walo["solve_seconds"])

    def test_close_is_idempotent_and_stamps_outcome(self):
        trace = Trace("req-5", clock=FakeClock())
        trace.close("failed")
        end = trace.root.end
        trace.close("completed")
        assert trace.root.end == end
        assert trace.closed

    def test_to_dict_is_json_ready(self):
        clock = FakeClock()
        trace = Trace("req-6", clock=clock)
        trace.annotate(batch_size=4, cache_hit=False)
        clock.advance(1.0)
        trace.close()
        document = json.loads(json.dumps(trace.to_dict()))
        assert document["trace_id"] == "req-6"
        assert document["annotations"] == {"batch_size": 4, "cache_hit": False}
        assert document["walo"]["wall_seconds"] == pytest.approx(1.0)
        assert document["spans"][0]["name"] == "request"


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------

class TestStructuredLogger:
    def test_json_lines_are_compact_sorted_and_parse(self):
        stream = io.StringIO()
        logger = StructuredLogger("json", stream, clock=lambda: 123.456)
        logger.event("request", request_id="r-1", latency_ms=1.5,
                     outcome="completed", skipped=None)
        line = stream.getvalue().strip()
        record = json.loads(line)
        assert record == {"ts": 123.456, "event": "request",
                          "request_id": "r-1", "latency_ms": 1.5,
                          "outcome": "completed"}
        assert "skipped" not in record
        # Compact separators and sorted keys: stable bytes for pipelines.
        assert ", " not in line
        assert line.index('"event"') < line.index('"latency_ms"')

    def test_text_format_renders_key_value_pairs(self):
        stream = io.StringIO()
        logger = StructuredLogger("text", stream, clock=lambda: 2.0)
        logger.event("request", outcome="shed", request_id="r-2")
        line = stream.getvalue().strip()
        assert line.startswith("2.000 request")
        assert "outcome=shed" in line and "request_id=r-2" in line

    def test_off_logger_is_silent(self):
        stream = io.StringIO()
        logger = StructuredLogger("off", stream)
        logger.event("request", outcome="completed")
        assert stream.getvalue() == ""
        assert not logger.enabled

    def test_unknown_format_rejected(self):
        with pytest.raises(ServeError, match="log format"):
            StructuredLogger("xml")

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        logger = StructuredLogger("json", stream)
        stream.close()
        logger.event("request", outcome="completed")  # must not raise

    def test_make_logger_maps_none_to_off(self):
        assert not make_logger(None).enabled
        assert make_logger("json").enabled
        assert set(LOG_FORMATS) == {"json", "text", "off"}

    def test_non_json_values_fall_back_to_repr(self):
        stream = io.StringIO()
        logger = StructuredLogger("json", stream, clock=lambda: 0.0)
        logger.event("request", weird=object())
        assert json.loads(stream.getvalue())  # still a valid JSON line


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------

def parse_prometheus(text):
    """Parse exposition text into {(name, labels) -> value}; every line
    must be a comment or a well-formed sample (optionally carrying an
    OpenMetrics ``# {...}`` exemplar suffix)."""
    samples = {}
    types = {}
    exemplars = {}
    for line in text.splitlines():
        assert line.strip() == line and line, f"ragged line: {line!r}"
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, mtype = line.split(" ", 3)
            assert mtype in {"counter", "gauge", "summary", "histogram"}, line
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = mtype
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        exemplar = None
        if " # {" in line:
            line, _, exemplar = line.partition(" # ")
            assert exemplar.startswith("{"), exemplar
        metric, value = line.rsplit(" ", 1)
        float(value)  # every sample value must be numeric
        if "{" in metric:
            name, labels = metric[:-1].split("{", 1)
            assert metric.endswith("}"), line
        else:
            name, labels = metric, ""
        key = (name, labels)
        assert key not in samples, f"duplicate sample: {key}"
        samples[key] = float(value)
        if exemplar is not None:
            exemplars[key] = exemplar
    return samples, types, exemplars


SNAPSHOT = {
    "started_at": 1700000000.0,
    "uptime_seconds": 12.5,
    "snapshot_seq": 3,
    "requests": {"admitted": 10, "completed": 8, "failed": 1, "shed": 1,
                 "in_flight": 0, "accounting_drift": 0},
    "queue_depth": 2,
    "batching": {
        "flushes": 4,
        "batch_size_histogram": {"1": 2, "8": 1, "32": 1},
    },
    "latency_ms": {"count": 9, "mean": 4.2, "p50": 3.0, "p90": 8.0,
                   "p99": 9.5, "max": 10.0},
    "cache": {"hits": 5, "misses": 5, "hit_rate": 0.5, "capacity": 128},
    "stages": {"traced": 9, "sample_rate": 1.0, "wall_seconds": 0.5,
               "solve_seconds": 0.2, "overhead_seconds": 0.3,
               "ring": {"capacity": 256, "size": 9, "evicted": 0}},
}


class TestPrometheus:
    def test_every_line_parses_with_zero_duplicates(self):
        samples, types, _ = parse_prometheus(render_prometheus(SNAPSHOT))
        assert samples and types

    def test_nested_paths_flatten_with_prefix(self):
        samples, types, _ = parse_prometheus(render_prometheus(SNAPSHOT))
        assert samples[("repro_requests_admitted", "")] == 10
        assert types["repro_requests_admitted"] == "counter"
        assert samples[("repro_queue_depth", "")] == 2
        assert types["repro_queue_depth"] == "gauge"
        assert samples[("repro_stages_overhead_seconds", "")] == 0.3

    def test_histograms_become_bucket_labelled_families(self):
        samples, _, _ = parse_prometheus(render_prometheus(SNAPSHOT))
        assert samples[("repro_batching_batch_size", 'bucket="8"')] == 1
        assert samples[("repro_batching_batch_size", 'bucket="32"')] == 1

    def test_latency_becomes_a_quantile_summary(self):
        samples, types, _ = parse_prometheus(render_prometheus(SNAPSHOT))
        assert types["repro_latency_ms"] == "summary"
        assert samples[("repro_latency_ms", 'quantile="0.5"')] == 3.0
        assert samples[("repro_latency_ms", 'quantile="0.9"')] == 8.0
        assert samples[("repro_latency_ms", 'quantile="0.99"')] == 9.5
        assert samples[("repro_latency_ms_count", "")] == 9
        assert samples[("repro_latency_ms_max", "")] == 10.0

    def test_none_and_strings_are_skipped_not_emitted(self):
        text = render_prometheus({"a": None, "b": "string", "c": 1})
        samples, _, _ = parse_prometheus(text)
        assert list(samples) == [("repro_c", "")]

    def test_duplicate_samples_raise_instead_of_corrupting(self):
        with pytest.raises(ServeError, match="duplicate"):
            render_prometheus({"a": {"b": 1}, "a_b": 2})

    def test_metric_name_sanitizes(self):
        assert metric_name("repro", "latency_ms") == "repro_latency_ms"
        assert metric_name("weird key!") == "weird_key_"
        assert metric_name("9lives").startswith("_")
