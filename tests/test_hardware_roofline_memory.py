"""Tests for the roofline analysis and the device memory model."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware import (
    DUAL_E5_2630_V3,
    E5_2630_V3,
    HALF_K80,
    XEON_PHI_7120,
    Regime,
    assembly_intensity,
    device_capacity_bytes,
    enforce_slice_floor,
    plan_memory,
    roofline_point,
    solve_intensity,
)
from repro.pipeline import Workload
from repro.precision import Precision


class TestIntensities:
    def test_assembly_intensity_values(self):
        assert assembly_intensity(Precision.SINGLE) == pytest.approx(130 / 4)
        assert assembly_intensity(Precision.DOUBLE) == pytest.approx(130 / 8)

    def test_solve_intensity_grows_with_n(self):
        assert solve_intensity(400, Precision.DOUBLE) > solve_intensity(
            100, Precision.DOUBLE
        )

    def test_solve_intensity_leading_order(self):
        """Intensity ~ n / (3 * itemsize) for large n."""
        n = 1000
        approx = n / (3 * 8)
        assert solve_intensity(n, Precision.DOUBLE) == pytest.approx(
            approx, rel=0.02
        )


class TestRooflinePoints:
    @pytest.mark.parametrize("device", [E5_2630_V3, XEON_PHI_7120, HALF_K80])
    @pytest.mark.parametrize("kernel", ["assembly", "solve"])
    def test_kernels_are_compute_bound(self, device, kernel):
        """Both of the paper's kernels sit right of every ridge point."""
        point = roofline_point(device, kernel)
        assert point.regime is Regime.COMPUTE_BOUND
        assert point.intensity > point.ridge_intensity

    def test_achieved_below_roofline(self):
        for device in (E5_2630_V3, XEON_PHI_7120, HALF_K80):
            for kernel in ("assembly", "solve"):
                point = roofline_point(device, kernel)
                assert 0.0 < point.roofline_fraction < 1.0

    def test_cpu_solve_runs_closest_to_its_roofline(self):
        """The Section 3 story in roofline terms: the CPU's batched LU
        achieves the largest fraction of its bound, the GPU's the
        smallest — that gap is why the hybrid scheme exists."""
        cpu = roofline_point(DUAL_E5_2630_V3, "solve")
        phi = roofline_point(XEON_PHI_7120, "solve")
        gpu = roofline_point(HALF_K80, "solve")
        assert cpu.roofline_fraction > phi.roofline_fraction
        assert cpu.roofline_fraction > gpu.roofline_fraction

    def test_gpu_assembly_beats_its_solve(self):
        gpu_assembly = roofline_point(HALF_K80, "assembly")
        gpu_solve = roofline_point(HALF_K80, "solve")
        assert gpu_assembly.roofline_fraction > gpu_solve.roofline_fraction

    def test_unknown_kernel(self):
        with pytest.raises(HardwareModelError, match="unknown kernel"):
            roofline_point(HALF_K80, "fft")

    def test_precision_changes_intensity(self):
        sp = roofline_point(HALF_K80, "assembly", precision="single")
        dp = roofline_point(HALF_K80, "assembly", precision="double")
        assert sp.intensity == pytest.approx(2 * dp.intensity)


class TestMemoryModel:
    def test_paper_workload_fits_on_k80_half(self):
        plan = plan_memory(HALF_K80, Workload.paper_reference("double"))
        assert plan.fits_whole_batch
        assert plan.min_slices == 1
        assert plan.utilization < 0.2

    def test_capacity_values(self):
        assert device_capacity_bytes(HALF_K80) < device_capacity_bytes(
            XEON_PHI_7120
        )

    def test_large_workload_forces_slicing(self):
        big = Workload(batch=100000, n=400, precision="double")
        plan = plan_memory(HALF_K80, big)
        assert not plan.fits_whole_batch
        assert plan.min_slices > 1
        # Two resident slices fit by construction.
        slice_bytes = 2 * big.total_bytes / plan.min_slices
        assert slice_bytes <= plan.capacity_bytes

    def test_enforce_slice_floor(self):
        big = Workload(batch=100000, n=400, precision="double")
        floor = plan_memory(HALF_K80, big).min_slices
        assert enforce_slice_floor(HALF_K80, big, 5) == max(5, floor)
        assert enforce_slice_floor(HALF_K80, big, floor + 10) == floor + 10

    def test_cpu_has_no_memory_entry(self):
        with pytest.raises(HardwareModelError, match="no memory size"):
            plan_memory(E5_2630_V3, Workload.paper_reference())

    def test_oversized_single_matrix_rejected(self):
        huge = Workload(batch=2, n=40000, precision="double")
        with pytest.raises(HardwareModelError, match="does not fit"):
            plan_memory(HALF_K80, huge)
