"""Tests for the B-spline machinery."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.bspline import (
    BSplineAirfoil,
    BSplineCurve,
    basis_functions,
    open_uniform_knots,
)


class TestKnots:
    def test_clamped_ends(self):
        knots = open_uniform_knots(7, 3)
        assert list(knots[:4]) == [0.0] * 4
        assert list(knots[-4:]) == [1.0] * 4

    def test_length(self):
        assert len(open_uniform_knots(7, 3)) == 7 + 3 + 1

    def test_interior_uniform(self):
        knots = open_uniform_knots(7, 3)
        interior = knots[4:-4]
        assert interior == pytest.approx([1 / 4, 2 / 4, 3 / 4])

    def test_too_few_control_points(self):
        with pytest.raises(GeometryError):
            open_uniform_knots(3, 3)


class TestBasis:
    def test_partition_of_unity(self):
        knots = open_uniform_knots(8, 3)
        t = np.linspace(0.0, 1.0, 101)
        basis = basis_functions(knots, 3, t)
        assert basis.sum(axis=1) == pytest.approx(np.ones(101))

    def test_nonnegative(self):
        knots = open_uniform_knots(8, 3)
        basis = basis_functions(knots, 3, np.linspace(0, 1, 101))
        assert np.all(basis >= -1e-14)

    def test_endpoint_interpolation(self):
        knots = open_uniform_knots(6, 3)
        basis = basis_functions(knots, 3, np.array([0.0, 1.0]))
        assert basis[0, 0] == pytest.approx(1.0)
        assert basis[1, -1] == pytest.approx(1.0)

    def test_local_support(self):
        knots = open_uniform_knots(10, 3)
        basis = basis_functions(knots, 3, np.array([0.05]))
        assert np.count_nonzero(basis[0] > 1e-12) <= 4

    def test_out_of_range_raises(self):
        knots = open_uniform_knots(6, 3)
        with pytest.raises(GeometryError, match="outside"):
            basis_functions(knots, 3, np.array([1.5]))


class TestCurve:
    def test_interpolates_endpoints(self):
        control = np.array([[0, 0], [1, 2], [2, -1], [3, 0]], dtype=float)
        curve = BSplineCurve(control_points=control)
        ends = curve.evaluate([0.0, 1.0])
        assert ends[0] == pytest.approx(control[0])
        assert ends[1] == pytest.approx(control[-1])

    def test_convex_hull_property(self):
        control = np.array([[0, 0], [1, 1], [2, 1], [3, 0]], dtype=float)
        curve = BSplineCurve(control_points=control)
        points = curve.evaluate(np.linspace(0, 1, 101))
        assert points[:, 1].max() <= 1.0 + 1e-12
        assert points[:, 1].min() >= -1e-12

    def test_straight_control_polygon_gives_line(self):
        control = np.column_stack([np.linspace(0, 1, 6), np.linspace(0, 2, 6)])
        curve = BSplineCurve(control_points=control)
        points = curve.evaluate(np.linspace(0, 1, 33))
        assert points[:, 1] == pytest.approx(2.0 * points[:, 0], abs=1e-12)

    def test_derivative_matches_finite_difference(self):
        control = np.array([[0, 0], [0.5, 1], [1.5, -0.5], [2, 0.3], [3, 0]], float)
        curve = BSplineCurve(control_points=control)
        derivative = curve.derivative()
        t = np.array([0.21, 0.5, 0.83])
        h = 1e-6
        numeric = (curve.evaluate(t + h) - curve.evaluate(t - h)) / (2 * h)
        assert derivative.evaluate(t) == pytest.approx(numeric, abs=1e-5)

    def test_degree_reduced(self):
        control = np.zeros((5, 2))
        control[:, 0] = np.arange(5)
        assert BSplineCurve(control_points=control).derivative().degree == 2

    def test_too_few_control_points(self):
        with pytest.raises(GeometryError):
            BSplineCurve(control_points=np.zeros((3, 2)))


class TestBSplineAirfoil:
    def make(self):
        return BSplineAirfoil(
            upper_heights=[0.06, 0.09, 0.07, 0.04],
            lower_heights=[-0.03, -0.04, -0.03, -0.01],
        )

    def test_n_parameters(self):
        assert self.make().n_parameters == 8

    def test_coefficient_roundtrip(self):
        parametrization = self.make()
        rebuilt = BSplineAirfoil.from_coefficients(
            parametrization.coefficients(), n_upper=4
        )
        assert rebuilt.upper_heights == pytest.approx(parametrization.upper_heights)
        assert rebuilt.lower_heights == pytest.approx(parametrization.lower_heights)

    def test_to_airfoil_closed_and_sized(self):
        foil = self.make().to_airfoil(80)
        assert foil.n_panels == 80
        assert np.allclose(foil.points[0], foil.points[-1])

    def test_pinned_edges(self):
        foil = self.make().to_airfoil(80)
        assert foil.trailing_edge == pytest.approx([1.0, 0.0], abs=1e-9)
        assert foil.leading_edge == pytest.approx([0.0, 0.0], abs=0.05)

    def test_thickness_positive_everywhere(self):
        assert self.make().is_feasible(min_thickness=0.005)

    def test_crossed_surfaces_infeasible(self):
        crossed = BSplineAirfoil(
            upper_heights=[-0.05, -0.06, -0.05, -0.02],
            lower_heights=[0.05, 0.06, 0.05, 0.02],
        )
        assert not crossed.is_feasible()

    def test_thickness_at_matches_curves(self):
        parametrization = self.make()
        stations = np.array([0.3, 0.6])
        upper = parametrization.upper_curve().evaluate(stations)[:, 1]
        lower = parametrization.lower_curve().evaluate(stations)[:, 1]
        assert parametrization.thickness_at(stations) == pytest.approx(upper - lower)

    def test_odd_panels_rejected(self):
        with pytest.raises(GeometryError):
            self.make().to_airfoil(81)

    def test_too_few_heights(self):
        with pytest.raises(GeometryError):
            BSplineAirfoil(upper_heights=[0.1, 0.1], lower_heights=[-0.1, -0.1, -0.1])
