"""Tests for geometry transforms, Selig I/O, and validation checks."""

import io

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    naca,
    normalize_chord,
    pitch,
    read_dat,
    read_dat_string,
    rotate,
    scale,
    to_dat_string,
    translate,
    validate_airfoil,
    write_dat,
)
from repro.geometry.airfoil import Airfoil


class TestTransforms:
    def test_rotate_quarter_turn(self):
        result = rotate(np.array([[1.0, 0.0]]), np.pi / 2)
        assert result == pytest.approx(np.array([[0.0, 1.0]]), abs=1e-12)

    def test_rotate_about_center(self):
        result = rotate(np.array([[2.0, 1.0]]), np.pi, center=(1.0, 1.0))
        assert result == pytest.approx(np.array([[0.0, 1.0]]), abs=1e-12)

    def test_translate(self):
        assert translate(np.array([[1.0, 2.0]]), (0.5, -1.0)) == pytest.approx(
            np.array([[1.5, 1.0]])
        )

    def test_scale_uniform(self):
        assert scale(np.array([[2.0, 4.0]]), 0.5) == pytest.approx(
            np.array([[1.0, 2.0]])
        )

    def test_scale_about_center(self):
        result = scale(np.array([[2.0, 2.0]]), 2.0, center=(1.0, 1.0))
        assert result == pytest.approx(np.array([[3.0, 3.0]]))

    def test_normalize_chord(self, naca2412):
        scrambled = Airfoil.from_points(
            translate(rotate(scale(naca2412.points, 2.5), 0.3), (4.0, -2.0)),
            name="scrambled",
        )
        restored = normalize_chord(scrambled)
        assert restored.chord == pytest.approx(1.0, abs=1e-9)
        assert restored.leading_edge == pytest.approx([0.0, 0.0], abs=0.02)
        assert restored.trailing_edge == pytest.approx([1.0, 0.0], abs=1e-9)

    def test_pitch_preserves_shape(self, naca2412):
        pitched = pitch(naca2412, np.radians(5.0))
        assert pitched.area == pytest.approx(naca2412.area, rel=1e-9)
        assert pitched.perimeter == pytest.approx(naca2412.perimeter, rel=1e-9)

    def test_pitch_nose_up_raises_leading_edge(self, naca2412):
        pitched = pitch(naca2412, np.radians(8.0))
        assert pitched.leading_edge[1] > naca2412.leading_edge[1]


class TestSeligIO:
    def test_roundtrip_through_string(self, naca2412):
        text = to_dat_string(naca2412, digits=8)
        back = read_dat_string(text)
        assert back.name == naca2412.name
        assert back.points == pytest.approx(naca2412.points, abs=1e-7)

    def test_roundtrip_through_file(self, tmp_path, naca2412):
        path = tmp_path / "foil.dat"
        write_dat(naca2412, str(path))
        back = read_dat(str(path))
        assert back.n_panels == naca2412.n_panels

    def test_default_name_from_filename(self, tmp_path, naca2412):
        path = tmp_path / "mysection.dat"
        with open(path, "w") as handle:  # headerless numeric file
            for x, y in naca2412.points:
                handle.write(f"{x:.6f} {y:.6f}\n")
        assert read_dat(str(path)).name == "mysection"

    def test_comments_and_blanks_skipped(self):
        text = "test foil\n# comment\n\n1.0 0.0\n0.5 0.1\n0.0 0.0\n0.5 -0.1\n1.0 0.0\n"
        foil = read_dat_string(text)
        assert foil.name == "test foil"
        assert foil.n_panels == 4

    def test_garbage_line_raises(self):
        text = "name\n1.0 0.0\n0.5 abc\n"
        with pytest.raises(GeometryError, match="cannot parse"):
            read_dat_string(text)

    def test_too_few_points_raises(self):
        with pytest.raises(GeometryError, match="fewer than 4"):
            read_dat_string("name\n1.0 0.0\n0.0 0.0\n")

    def test_file_object_io(self, naca0012):
        buffer = io.StringIO()
        write_dat(naca0012, buffer)
        buffer.seek(0)
        assert read_dat(buffer).n_panels == naca0012.n_panels


class TestValidation:
    def test_good_airfoil_passes(self, naca2412):
        report = validate_airfoil(naca2412)
        assert report.ok
        assert "ok" in str(report)

    def test_thin_section_flagged(self):
        foil = naca("0001", 100)
        report = validate_airfoil(foil, min_thickness=0.05)
        assert not report.ok
        assert any(issue.code == "thin" for issue in report.issues)

    def test_area_floor(self, naca2412):
        report = validate_airfoil(naca2412, min_area=1.0)
        assert any(issue.code == "area" for issue in report.issues)

    def test_panel_ratio_flag(self, naca2412):
        report = validate_airfoil(naca2412, max_panel_length_ratio=1.5)
        assert any(issue.code == "panels" for issue in report.issues)

    def test_self_intersection_flag(self):
        crossed = Airfoil.from_points(np.array(
            [[1.0, 0.0], [0.2, 0.5], [0.8, 0.5], [0.0, 0.0], [1.0, 0.0]]))
        report = validate_airfoil(crossed)
        assert any(issue.code == "crossing" for issue in report.issues)

    def test_intersection_check_can_be_disabled(self, naca2412):
        report = validate_airfoil(naca2412, check_self_intersection=False)
        assert report.ok
