"""Tests for tasks, schedules, and the discrete-event engine."""

import pytest

from repro.errors import ScheduleError
from repro.pipeline import (
    Schedule,
    TaskKind,
    Workload,
    simulate,
    slice_sizes,
)


class TestTask:
    def test_negative_duration_rejected(self):
        schedule = Schedule(name="t")
        with pytest.raises(ScheduleError, match="negative"):
            schedule.add(TaskKind.SOLVE, "cpu", -1.0)

    def test_forward_dependency_rejected(self):
        schedule = Schedule(name="t")
        schedule.add(TaskKind.ASSEMBLE, "gpu", 1.0)
        with pytest.raises(ScheduleError, match="not earlier"):
            schedule.add(TaskKind.SOLVE, "cpu", 1.0, dependencies=(5,))

    def test_dense_ids(self):
        schedule = Schedule(name="t")
        first = schedule.add(TaskKind.ASSEMBLE, "gpu", 1.0)
        second = schedule.add(TaskKind.SOLVE, "cpu", 1.0)
        assert (first.task_id, second.task_id) == (0, 1)

    def test_resources_in_first_use_order(self):
        schedule = Schedule(name="t")
        schedule.add(TaskKind.ASSEMBLE, "gpu", 1.0)
        schedule.add(TaskKind.SOLVE, "cpu", 1.0)
        schedule.add(TaskKind.ASSEMBLE, "gpu", 1.0)
        assert schedule.resources == ["gpu", "cpu"]

    def test_total_duration_by_kind(self):
        schedule = Schedule(name="t")
        schedule.add(TaskKind.ASSEMBLE, "gpu", 1.0)
        schedule.add(TaskKind.ASSEMBLE, "gpu", 2.0)
        schedule.add(TaskKind.SOLVE, "cpu", 4.0)
        assert schedule.total_duration(TaskKind.ASSEMBLE) == 3.0
        assert schedule.total_duration(TaskKind.SOLVE, "cpu") == 4.0

    def test_empty_schedule_rejected(self):
        with pytest.raises(ScheduleError, match="empty"):
            simulate(Schedule(name="empty"))


class TestEngine:
    def test_serial_chain(self):
        schedule = Schedule(name="chain")
        a = schedule.add(TaskKind.ASSEMBLE, "gpu", 2.0)
        b = schedule.add(TaskKind.TRANSFER, "link", 1.0, dependencies=(a.task_id,))
        schedule.add(TaskKind.SOLVE, "cpu", 3.0, dependencies=(b.task_id,))
        timeline = simulate(schedule)
        assert timeline.makespan == pytest.approx(6.0)

    def test_resource_fifo_serializes(self):
        schedule = Schedule(name="fifo")
        schedule.add(TaskKind.ASSEMBLE, "gpu", 2.0)
        schedule.add(TaskKind.ASSEMBLE, "gpu", 2.0)
        timeline = simulate(schedule)
        records = timeline.records_for("gpu")
        assert records[0].end == pytest.approx(2.0)
        assert records[1].start == pytest.approx(2.0)

    def test_independent_resources_overlap(self):
        schedule = Schedule(name="parallel")
        schedule.add(TaskKind.ASSEMBLE, "gpu", 2.0)
        schedule.add(TaskKind.SOLVE, "cpu", 2.0)
        assert simulate(schedule).makespan == pytest.approx(2.0)

    def test_pipeline_overlap(self):
        """Classic 2-stage software pipeline: W = fill + n * bottleneck."""
        schedule = Schedule(name="pipe")
        previous_copy = None
        for index in range(10):
            assemble = schedule.add(TaskKind.ASSEMBLE, "gpu", 1.0)
            deps = (assemble.task_id,)
            solve = schedule.add(TaskKind.SOLVE, "cpu", 2.0, dependencies=deps)
            previous_copy = solve
        timeline = simulate(schedule)
        # Fill = 1 (first assembly), then ten 2-second solves back to back.
        assert timeline.makespan == pytest.approx(1.0 + 10 * 2.0)

    def test_busy_seconds(self):
        schedule = Schedule(name="busy")
        schedule.add(TaskKind.ASSEMBLE, "gpu", 2.0)
        schedule.add(TaskKind.TRANSFER, "gpu", 1.0)
        timeline = simulate(schedule)
        assert timeline.busy_seconds("gpu") == pytest.approx(3.0)
        assert timeline.busy_seconds("gpu", TaskKind.ASSEMBLE) == pytest.approx(2.0)

    def test_first_start(self):
        schedule = Schedule(name="start")
        a = schedule.add(TaskKind.ASSEMBLE, "gpu", 2.5)
        schedule.add(TaskKind.SOLVE, "cpu", 1.0, dependencies=(a.task_id,))
        timeline = simulate(schedule)
        assert timeline.first_start(TaskKind.SOLVE) == pytest.approx(2.5)
        assert timeline.first_start(TaskKind.TRANSFER) == float("inf")

    def test_utilization(self):
        schedule = Schedule(name="util")
        a = schedule.add(TaskKind.ASSEMBLE, "gpu", 1.0)
        schedule.add(TaskKind.SOLVE, "cpu", 3.0, dependencies=(a.task_id,))
        timeline = simulate(schedule)
        assert timeline.utilization("gpu") == pytest.approx(0.25)
        assert timeline.utilization("cpu") == pytest.approx(0.75)

    def test_deterministic(self):
        schedule = Schedule(name="det")
        a = schedule.add(TaskKind.ASSEMBLE, "gpu", 1.5)
        schedule.add(TaskKind.SOLVE, "cpu", 2.5, dependencies=(a.task_id,))
        assert simulate(schedule).makespan == simulate(schedule).makespan


class TestWorkload:
    def test_paper_reference(self):
        workload = Workload.paper_reference("single")
        assert workload.batch == 4000
        assert workload.n == 200
        assert workload.matrix_bytes == (200 * 200 + 200) * 4

    def test_total_bytes(self):
        workload = Workload(batch=10, n=100, precision="double")
        assert workload.total_bytes == 10 * (100 * 100 + 100) * 8

    def test_with_batch(self):
        assert Workload(batch=100, n=50).with_batch(7).batch == 7

    def test_split_sizes_sum(self):
        workload = Workload(batch=4000, n=200)
        first, second = workload.split_sizes(0.75)
        assert first + second == 4000
        assert first == 3000

    def test_split_full(self):
        first, second = Workload(batch=100, n=50).split_sizes(1.0)
        assert (first, second) == (100, 0)

    def test_split_bad_fraction(self):
        with pytest.raises(ScheduleError):
            Workload(batch=100, n=50).split_sizes(0.0)

    def test_invalid_workload(self):
        with pytest.raises(ScheduleError):
            Workload(batch=0, n=50)
        with pytest.raises(ScheduleError):
            Workload(batch=10, n=1)


class TestSliceSizes:
    def test_even_split(self):
        assert slice_sizes(100, 4) == [25, 25, 25, 25]

    def test_remainder_distributed(self):
        sizes = slice_sizes(103, 4)
        assert sizes == [26, 26, 26, 25]
        assert sum(sizes) == 103

    def test_single_slice(self):
        assert slice_sizes(7, 1) == [7]

    def test_all_positive(self):
        assert all(size > 0 for size in slice_sizes(10, 10))

    def test_too_many_slices(self):
        with pytest.raises(ScheduleError):
            slice_sizes(5, 6)

    def test_zero_slices(self):
        with pytest.raises(ScheduleError):
            slice_sizes(5, 0)
