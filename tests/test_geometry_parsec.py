"""Tests for the PARSEC airfoil parametrization."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import ParsecAirfoil
from repro.panel import solve_airfoil


class TestSurfaceConditions:
    """The six defining conditions must be met exactly by construction."""

    section = ParsecAirfoil()

    def test_crest_position_and_height(self):
        x = np.array([self.section.upper_crest_x])
        y = self.section.surface_heights(x, upper=True)
        assert y[0] == pytest.approx(self.section.upper_crest_y, abs=1e-12)

    def test_crest_is_a_maximum(self):
        h = 1e-6
        x0 = self.section.upper_crest_x
        values = self.section.surface_heights(
            np.array([x0 - h, x0, x0 + h]), upper=True
        )
        assert values[1] >= values[0] and values[1] >= values[2]

    def test_crest_curvature(self):
        h = 1e-4
        x0 = self.section.upper_crest_x
        values = self.section.surface_heights(
            np.array([x0 - h, x0, x0 + h]), upper=True
        )
        curvature = (values[0] - 2 * values[1] + values[2]) / h**2
        assert curvature == pytest.approx(
            self.section.upper_crest_curvature, abs=1e-4
        )

    def test_trailing_edge_closes(self):
        x = np.array([1.0])
        assert self.section.surface_heights(x, upper=True)[0] == pytest.approx(0.0, abs=1e-12)
        assert self.section.surface_heights(x, upper=False)[0] == pytest.approx(0.0, abs=1e-12)

    def test_trailing_edge_wedge(self):
        h = 1e-6
        x = np.array([1.0 - h, 1.0])
        upper_slope = np.diff(self.section.surface_heights(x, upper=True))[0] / h
        lower_slope = np.diff(self.section.surface_heights(x, upper=False))[0] / h
        wedge = math.atan(lower_slope) - math.atan(upper_slope)
        assert wedge == pytest.approx(self.section.te_wedge, abs=1e-4)

    def test_leading_edge_radius(self):
        """Near the nose y ~ sqrt(2 r x), so y^2/(2x) -> r_le."""
        x = np.array([1e-8])
        y = self.section.surface_heights(x, upper=True)
        implied = float((y**2 / (2 * x))[0])
        assert implied == pytest.approx(self.section.le_radius_upper, rel=1e-3)


class TestAirfoilGeneration:
    def test_default_section_is_sane(self):
        foil = ParsecAirfoil().to_airfoil(160)
        assert foil.n_panels == 160
        assert foil.chord == pytest.approx(1.0, abs=0.01)
        assert 0.08 < foil.max_thickness < 0.14

    def test_feasibility(self):
        assert ParsecAirfoil().is_feasible(min_thickness=0.005)

    def test_crossed_section_infeasible(self):
        crossed = ParsecAirfoil(upper_crest_y=-0.02, lower_crest_y=0.02)
        assert not crossed.is_feasible()

    def test_panel_solution(self):
        foil = ParsecAirfoil().to_airfoil(160)
        solution = solve_airfoil(foil, 2.0)
        assert 0.2 < solution.lift_coefficient < 0.7
        assert solution.boundary_residual() < 1e-9

    def test_camber_raises_lift(self):
        neutral = ParsecAirfoil(upper_crest_y=0.05, lower_crest_y=-0.05,
                                te_direction=0.0)
        cambered = ParsecAirfoil(upper_crest_y=0.08, lower_crest_y=-0.02,
                                 te_direction=math.radians(-8.0))
        cl_neutral = solve_airfoil(neutral.to_airfoil(120), 0.0).lift_coefficient
        cl_cambered = solve_airfoil(cambered.to_airfoil(120), 0.0).lift_coefficient
        assert cl_cambered > cl_neutral + 0.1

    def test_invalid_parameters(self):
        with pytest.raises(GeometryError):
            ParsecAirfoil(le_radius_upper=0.0).upper_coefficients()
        with pytest.raises(GeometryError):
            ParsecAirfoil(upper_crest_x=0.999).upper_coefficients()

    def test_odd_panels_rejected(self):
        with pytest.raises(GeometryError):
            ParsecAirfoil().to_airfoil(81)

    def test_max_thickness_helper(self):
        section = ParsecAirfoil()
        assert section.max_thickness() == pytest.approx(
            section.to_airfoil(300).max_thickness, abs=0.003
        )
