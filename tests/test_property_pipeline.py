"""Property-based tests for pipeline and panel-method invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import naca4
from repro.hardware import paper_workstation
from repro.panel import solve_airfoil
from repro.pipeline import (
    TaskKind,
    Workload,
    cpu_only,
    dual_accelerator,
    evaluate,
    hybrid,
    simulate,
    slice_sizes,
)


def workloads():
    return st.builds(
        Workload,
        batch=st.integers(64, 8000),
        n=st.integers(50, 400),
        precision=st.sampled_from(["single", "double"]),
    )


class TestSliceProperties:
    @given(batch=st.integers(1, 10000), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_sizes_partition_batch(self, batch, data):
        n_slices = data.draw(st.integers(1, batch))
        sizes = slice_sizes(batch, n_slices)
        assert sum(sizes) == batch
        assert len(sizes) == n_slices
        assert max(sizes) - min(sizes) <= 1
        assert min(sizes) >= 1


class TestPipelineInvariants:
    @given(workload=workloads(), n_slices=st.integers(1, 32),
           accel=st.sampled_from(["phi", "k80-half"]),
           sockets=st.sampled_from([1, 2]))
    @settings(max_examples=40, deadline=None)
    def test_conservation_and_bounds(self, workload, n_slices, accel, sockets):
        workstation = paper_workstation(
            sockets=sockets, accelerator=accel, precision=workload.precision
        )
        schedule = hybrid(workload, workstation, n_slices)
        timeline = simulate(schedule)
        metrics = evaluate(timeline)

        # W >= busy time of every resource (no resource overcommitted).
        for resource in schedule.resources:
            assert timeline.busy_seconds(resource) <= metrics.wall_time + 1e-9

        # W >= the solve lower bound and >= exposed fill time.
        assert metrics.wall_time >= metrics.solve_busy - 1e-9
        assert metrics.wall_time >= metrics.assembly_exposed - 1e-9

        # O = W - L by definition; both non-negative.
        assert metrics.overhead == pytest.approx(
            metrics.wall_time - metrics.solve_busy
        )
        assert metrics.overhead > 0

        # Solve tasks cover the whole batch exactly once.
        solves = [t for t in schedule.tasks if t.kind is TaskKind.SOLVE]
        assert sum(task.batch for task in solves) == workload.batch

    @given(
        batch=st.integers(1000, 8000),
        n=st.integers(120, 400),
        precision=st.sampled_from(["single", "double"]),
        sockets=st.sampled_from([1, 2]),
    )
    @settings(max_examples=25, deadline=None)
    def test_interleaving_wins_in_amortizing_regime(self, batch, n, precision,
                                                    sockets):
        """In the paper's workload regime 10 slices beat 1 slice.

        (For tiny workloads per-slice setup dominates and the property
        genuinely fails — see examples/design_space.py.)
        """
        workload = Workload(batch=batch, n=n, precision=precision)
        workstation = paper_workstation(
            sockets=sockets, accelerator="k80-half", precision=precision
        )
        sequential = simulate(hybrid(workload, workstation, 1)).makespan
        interleaved = simulate(hybrid(workload, workstation, 10)).makespan
        assert interleaved <= sequential + 1e-9

    @given(workload=workloads(),
           distribution=st.floats(0.5, 1.0),
           n_slices=st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_dual_gpu_batch_conserved(self, workload, distribution, n_slices):
        workstation = paper_workstation(
            sockets=2, accelerator="k80-dual", precision=workload.precision
        )
        n_slices = min(n_slices, max(1, round(workload.batch * distribution)))
        schedule = dual_accelerator(workload, workstation, distribution, n_slices)
        solves = [t for t in schedule.tasks if t.kind is TaskKind.SOLVE]
        assert sum(task.batch for task in solves) == workload.batch

    @given(workload=workloads())
    @settings(max_examples=20, deadline=None)
    def test_cpu_baseline_additivity(self, workload):
        station = paper_workstation(sockets=2, precision=workload.precision)
        metrics = evaluate(simulate(cpu_only(workload, station.cpu)))
        assert metrics.wall_time == pytest.approx(
            metrics.assembly_busy + metrics.solve_busy
        )


class TestPanelMethodProperties:
    @given(
        camber=st.integers(0, 4),
        thickness=st.integers(8, 18),
        alpha=st.floats(-6.0, 8.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_physical_invariants(self, camber, thickness, alpha):
        designation = f"{camber}{4 if camber else 0}{thickness:02d}"
        solution = solve_airfoil(naca4(designation, 80), alpha)
        # Boundary condition satisfied.
        assert solution.boundary_residual() < 1e-8
        # Kutta condition enforced.
        assert solution.gamma[0] == pytest.approx(-solution.gamma[-1])
        # Stagnation pressure never exceeded.
        assert solution.pressure_coefficients.max() <= 1.0 + 1e-9
        # Kutta-Joukowski and pressure integration agree.
        assert solution.lift_coefficient == pytest.approx(
            solution.lift_coefficient_pressure, abs=0.02
        )
        # d'Alembert: negligible pressure drag.
        assert abs(solution.pressure_drag_coefficient) < 0.01
