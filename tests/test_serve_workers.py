"""Tests for the worker pool: admission control, shedding, drain."""

import threading
import time

import pytest

from repro.errors import OverloadedError, ServeError
from repro.serve import BatchPolicy, PendingResult, WorkerPool


class TestPendingResult:
    def test_resolve(self):
        pending = PendingResult()
        pending.resolve({"v": 1})
        assert pending.done()
        assert pending.result(timeout=0.1) == {"v": 1}

    def test_fail_reraises_in_waiter(self):
        pending = PendingResult()
        pending.fail(ServeError("boom"))
        with pytest.raises(ServeError, match="boom"):
            pending.result(timeout=0.1)

    def test_first_write_wins(self):
        pending = PendingResult()
        pending.resolve("first")
        pending.fail(ServeError("late"))
        pending.resolve("late")
        assert pending.result(timeout=0.1) == "first"

    def test_timeout(self):
        with pytest.raises(ServeError, match="timed out"):
            PendingResult().result(timeout=0.01)

    def test_write_attempts_report_whether_they_won(self):
        pending = PendingResult()
        assert pending.resolve("first") is True
        assert pending.resolve("late") is False
        assert pending.fail(ServeError("late")) is False
        assert pending.cancel() is False

    def test_cancel_detaches_the_waiter(self):
        pending = PendingResult()
        assert pending.cancel() is True
        assert pending.cancelled and pending.done()
        assert pending.resolve("too late") is False
        assert pending.fail(ServeError("too late")) is False
        with pytest.raises(ServeError, match="cancelled"):
            pending.result(timeout=0.1)

    def test_cancel_loses_to_a_delivered_result(self):
        pending = PendingResult()
        pending.resolve({"v": 1})
        assert pending.cancel() is False
        assert not pending.cancelled
        assert pending.result(timeout=0.1) == {"v": 1}

    def test_each_waiter_gets_a_fresh_exception_instance(self):
        """Regression: one failed batch fans the same exception object
        out to every waiter; re-raising it concurrently in several
        threads garbles its traceback.  Each result() call must raise
        its own instance, chained to the original."""
        original = ValueError("shared failure")
        first, second = PendingResult(), PendingResult()
        first.fail(original)
        second.fail(original)
        with pytest.raises(ValueError, match="shared failure") as excinfo_a:
            first.result(timeout=0.1)
        with pytest.raises(ValueError, match="shared failure") as excinfo_b:
            second.result(timeout=0.1)
        assert excinfo_a.value is not original
        assert excinfo_b.value is not original
        assert excinfo_a.value is not excinfo_b.value
        assert excinfo_a.value.__cause__ is original
        assert excinfo_b.value.__cause__ is original

    def test_repeated_result_calls_each_get_fresh_instances(self):
        pending = PendingResult()
        pending.fail(ServeError("boom"))
        raised = []
        for _ in range(3):
            with pytest.raises(ServeError, match="boom") as excinfo:
                pending.result(timeout=0.1)
            raised.append(excinfo.value)
        assert len({id(error) for error in raised}) == 3

    def test_unreconstructible_exception_falls_back_to_serve_error(self):
        class Picky(Exception):
            def __init__(self, code, detail):
                super().__init__(f"{code}: {detail}")
                self.args = ()  # reconstruction via *args impossible

        original = Picky(42, "nope")
        pending = PendingResult()
        pending.fail(original)
        with pytest.raises(ServeError, match="Picky") as excinfo:
            pending.result(timeout=0.1)
        assert excinfo.value.__cause__ is original


class TestWorkerPool:
    def test_processes_everything_submitted(self):
        processed = []

        def process(items):
            processed.extend(items)
            for item in items:
                item.resolve(True)

        pool = WorkerPool(process, BatchPolicy(max_batch=4, max_wait=0.01),
                          n_workers=2, queue_limit=32)
        pendings = [PendingResult() for _ in range(10)]
        for pending in pendings:
            pool.submit(pending)
        for pending in pendings:
            assert pending.result(timeout=5.0) is True
        assert pool.shutdown(timeout=5.0)
        assert sorted(map(id, processed)) == sorted(map(id, pendings))

    def test_sheds_when_queue_is_full(self):
        release = threading.Event()
        started = threading.Event()

        def process(items):
            started.set()
            release.wait(5.0)
            for item in items:
                item.resolve(True)

        pool = WorkerPool(process, BatchPolicy(max_batch=1, max_wait=0.0),
                          n_workers=1, queue_limit=2)
        first = PendingResult()
        pool.submit(first)
        assert started.wait(5.0)  # worker is now stuck holding `first`
        queued = [PendingResult(), PendingResult()]
        for pending in queued:
            pool.submit(pending)
        with pytest.raises(OverloadedError):
            pool.submit(PendingResult())
        release.set()
        for pending in [first] + queued:
            assert pending.result(timeout=5.0) is True
        assert pool.shutdown(timeout=5.0)

    def test_graceful_drain_finishes_accepted_work(self):
        def process(items):
            time.sleep(0.01)
            for item in items:
                item.resolve(True)

        pool = WorkerPool(process, BatchPolicy(max_batch=2, max_wait=0.0),
                          n_workers=1, queue_limit=64)
        pendings = [PendingResult() for _ in range(12)]
        for pending in pendings:
            pool.submit(pending)
        assert pool.shutdown(timeout=10.0)
        assert all(pending.done() for pending in pendings)
        with pytest.raises(ServeError):  # post-drain submissions refused
            pool.submit(PendingResult())

    def test_process_errors_go_to_handler_and_worker_survives(self):
        failures = []

        def process(items):
            if items[0] == "bad":
                raise ValueError("exploded")
            items[0].resolve(True)

        pool = WorkerPool(process, BatchPolicy(max_batch=1, max_wait=0.0),
                          n_workers=1, queue_limit=8,
                          on_error=lambda items, error: failures.append(
                              (items, str(error))))
        pool.submit("bad")
        good = PendingResult()
        pool.submit(good)
        assert good.result(timeout=5.0) is True  # worker outlived the error
        assert failures == [(["bad"], "exploded")]
        assert pool.shutdown(timeout=5.0)

    def test_no_stray_threads_after_shutdown(self):
        baseline = threading.active_count()
        pool = WorkerPool(lambda items: None, n_workers=3, queue_limit=8)
        assert threading.active_count() == baseline + 3
        assert pool.shutdown(timeout=5.0)
        assert threading.active_count() == baseline

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(lambda items: None, n_workers=1, queue_limit=8)
        assert pool.shutdown(timeout=5.0)
        assert pool.shutdown(timeout=5.0)

    def test_constructor_validation(self):
        with pytest.raises(ServeError):
            WorkerPool(lambda items: None, n_workers=0)
        with pytest.raises(ServeError):
            WorkerPool(lambda items: None, queue_limit=0)

    def test_drop_predicate_sheds_items_before_processing(self):
        """Items the drop predicate rejects never reach process() and
        never occupy a batch slot."""
        release = threading.Event()
        started = threading.Event()
        batches = []

        def process(items):
            started.set()
            release.wait(5.0)
            batches.append(list(items))
            for item in items:
                item.resolve(True)

        pool = WorkerPool(process, BatchPolicy(max_batch=8, max_wait=0.0),
                          n_workers=1, queue_limit=16,
                          drop=lambda pending: pending.cancelled)
        blocker = PendingResult()
        pool.submit(blocker)
        assert started.wait(5.0)  # worker is parked inside process()
        kept, dropped = PendingResult(), PendingResult()
        pool.submit(dropped)
        pool.submit(kept)
        assert dropped.cancel() is True  # submitter walks away while queued
        release.set()
        assert kept.result(timeout=5.0) is True
        assert pool.shutdown(timeout=5.0)
        flattened = [item for batch in batches for item in batch]
        assert kept in flattened and dropped not in flattened


class TestShutdownRaces:
    def test_submit_cannot_land_behind_a_concurrent_shutdown_sentinel(self):
        """Regression (deterministically lost race): submit() checked the
        drain flag, then a concurrent shutdown() enqueued the sentinel,
        then submit()'s put landed *behind* it — workers exited and the
        item was silently dropped.  Admission must be atomic with the
        drain flag."""
        from repro.serve.workers import _SENTINEL

        pool = WorkerPool(
            lambda items: [item.resolve(True) for item in items],
            BatchPolicy(max_batch=4, max_wait=0.0), n_workers=1,
            queue_limit=8,
        )
        inner = pool._queue
        sentinel_enqueued = threading.Event()
        shutdown_results = []
        shutdown_threads = []

        class RacingQueue:
            """Delegates to the real queue, but the first non-sentinel
            put_nowait first triggers a concurrent shutdown() and gives
            it every chance to enqueue the sentinel ahead of the item."""

            def __init__(self):
                self._tripped = False

            def put_nowait(self, item):
                if item is _SENTINEL:
                    inner.put_nowait(item)
                    sentinel_enqueued.set()
                    return
                if not self._tripped:
                    self._tripped = True
                    thread = threading.Thread(
                        target=lambda: shutdown_results.append(
                            pool.shutdown(timeout=5.0)))
                    thread.start()
                    shutdown_threads.append(thread)
                    # Pre-fix this wait returns as soon as the sentinel
                    # lands (losing the race); post-fix shutdown() blocks
                    # on the admission lock and the wait just times out.
                    sentinel_enqueued.wait(0.5)
                inner.put_nowait(item)

            def put(self, item, *args, **kwargs):
                if item is _SENTINEL:
                    inner.put(item, *args, **kwargs)
                    sentinel_enqueued.set()
                    return
                inner.put(item, *args, **kwargs)

            def __getattr__(self, name):
                return getattr(inner, name)

        pool._queue = RacingQueue()
        pending = PendingResult()
        pool.submit(pending)
        # The admitted item must still be answered even though a
        # shutdown raced the submission.
        assert pending.result(timeout=5.0) is True
        for thread in shutdown_threads:
            thread.join(5.0)
        assert shutdown_results == [True]

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_shutdown_timeout_honoured_with_dead_workers_and_full_queue(self):
        """Regression: shutdown() used a blocking queue.put for the
        sentinel; with dead workers behind a full queue it deadlocked
        forever, ignoring its own timeout.  It must return False within
        the timeout instead."""
        def process(items):
            raise ValueError("worker dies here")

        pool = WorkerPool(process, BatchPolicy(max_batch=1, max_wait=0.0),
                          n_workers=1, queue_limit=1, on_error=None)
        pool.submit("doomed")
        pool._threads[0].join(5.0)
        assert not pool._threads[0].is_alive()  # worker died on the item
        pool.submit("stuck")  # fills the queue; nobody will ever drain it
        start = time.monotonic()
        assert pool.shutdown(timeout=0.3) is False
        assert time.monotonic() - start < 3.0
        # A later attempt still fails fast rather than hanging.
        assert pool.shutdown(timeout=0.1) is False
