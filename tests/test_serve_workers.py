"""Tests for the worker pool: admission control, shedding, drain."""

import threading
import time

import pytest

from repro.errors import OverloadedError, ServeError
from repro.serve import BatchPolicy, PendingResult, WorkerPool


class TestPendingResult:
    def test_resolve(self):
        pending = PendingResult()
        pending.resolve({"v": 1})
        assert pending.done()
        assert pending.result(timeout=0.1) == {"v": 1}

    def test_fail_reraises_in_waiter(self):
        pending = PendingResult()
        pending.fail(ServeError("boom"))
        with pytest.raises(ServeError, match="boom"):
            pending.result(timeout=0.1)

    def test_first_write_wins(self):
        pending = PendingResult()
        pending.resolve("first")
        pending.fail(ServeError("late"))
        pending.resolve("late")
        assert pending.result(timeout=0.1) == "first"

    def test_timeout(self):
        with pytest.raises(ServeError, match="timed out"):
            PendingResult().result(timeout=0.01)


class TestWorkerPool:
    def test_processes_everything_submitted(self):
        processed = []

        def process(items):
            processed.extend(items)
            for item in items:
                item.resolve(True)

        pool = WorkerPool(process, BatchPolicy(max_batch=4, max_wait=0.01),
                          n_workers=2, queue_limit=32)
        pendings = [PendingResult() for _ in range(10)]
        for pending in pendings:
            pool.submit(pending)
        for pending in pendings:
            assert pending.result(timeout=5.0) is True
        assert pool.shutdown(timeout=5.0)
        assert sorted(map(id, processed)) == sorted(map(id, pendings))

    def test_sheds_when_queue_is_full(self):
        release = threading.Event()
        started = threading.Event()

        def process(items):
            started.set()
            release.wait(5.0)
            for item in items:
                item.resolve(True)

        pool = WorkerPool(process, BatchPolicy(max_batch=1, max_wait=0.0),
                          n_workers=1, queue_limit=2)
        first = PendingResult()
        pool.submit(first)
        assert started.wait(5.0)  # worker is now stuck holding `first`
        queued = [PendingResult(), PendingResult()]
        for pending in queued:
            pool.submit(pending)
        with pytest.raises(OverloadedError):
            pool.submit(PendingResult())
        release.set()
        for pending in [first] + queued:
            assert pending.result(timeout=5.0) is True
        assert pool.shutdown(timeout=5.0)

    def test_graceful_drain_finishes_accepted_work(self):
        def process(items):
            time.sleep(0.01)
            for item in items:
                item.resolve(True)

        pool = WorkerPool(process, BatchPolicy(max_batch=2, max_wait=0.0),
                          n_workers=1, queue_limit=64)
        pendings = [PendingResult() for _ in range(12)]
        for pending in pendings:
            pool.submit(pending)
        assert pool.shutdown(timeout=10.0)
        assert all(pending.done() for pending in pendings)
        with pytest.raises(ServeError):  # post-drain submissions refused
            pool.submit(PendingResult())

    def test_process_errors_go_to_handler_and_worker_survives(self):
        failures = []

        def process(items):
            if items[0] == "bad":
                raise ValueError("exploded")
            items[0].resolve(True)

        pool = WorkerPool(process, BatchPolicy(max_batch=1, max_wait=0.0),
                          n_workers=1, queue_limit=8,
                          on_error=lambda items, error: failures.append(
                              (items, str(error))))
        pool.submit("bad")
        good = PendingResult()
        pool.submit(good)
        assert good.result(timeout=5.0) is True  # worker outlived the error
        assert failures == [(["bad"], "exploded")]
        assert pool.shutdown(timeout=5.0)

    def test_no_stray_threads_after_shutdown(self):
        baseline = threading.active_count()
        pool = WorkerPool(lambda items: None, n_workers=3, queue_limit=8)
        assert threading.active_count() == baseline + 3
        assert pool.shutdown(timeout=5.0)
        assert threading.active_count() == baseline

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(lambda items: None, n_workers=1, queue_limit=8)
        assert pool.shutdown(timeout=5.0)
        assert pool.shutdown(timeout=5.0)

    def test_constructor_validation(self):
        with pytest.raises(ServeError):
            WorkerPool(lambda items: None, n_workers=0)
        with pytest.raises(ServeError):
            WorkerPool(lambda items: None, queue_limit=0)
