"""Tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import points as pt


class TestAsPoints:
    def test_list_of_pairs(self):
        result = pt.as_points([[0, 1], [2, 3]])
        assert result.shape == (2, 2)
        assert result.dtype == np.float64

    def test_single_point_promoted(self):
        assert pt.as_points([1.0, 2.0]).shape == (1, 2)

    def test_wrong_shape_raises(self):
        with pytest.raises(GeometryError, match="expected an"):
            pt.as_points([[1, 2, 3]])

    def test_dtype_override(self):
        assert pt.as_points([[0, 1]], dtype=np.float32).dtype == np.float32


class TestVectorOps:
    def test_dot_rowwise(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0, 6.0], [7.0, 8.0]])
        assert pt.dot(a, b) == pytest.approx([17.0, 53.0])

    def test_cross_z(self):
        assert pt.cross_z(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0
        assert pt.cross_z(np.array([0.0, 1.0]), np.array([1.0, 0.0])) == -1.0

    def test_norms(self):
        assert pt.norms(np.array([[3.0, 4.0]])) == pytest.approx([5.0])

    def test_normalize_unit_length(self):
        vectors = np.array([[3.0, 4.0], [0.0, -2.0]])
        result = pt.normalize(vectors)
        assert pt.norms(result) == pytest.approx([1.0, 1.0])

    def test_normalize_zero_raises(self):
        with pytest.raises(GeometryError, match="zero-length"):
            pt.normalize(np.array([[0.0, 0.0]]))

    def test_perpendicular_is_minus_90_rotation(self):
        result = pt.perpendicular(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert result == pytest.approx(np.array([[0.0, -1.0], [1.0, 0.0]]))

    def test_perpendicular_orthogonal(self):
        vectors = np.array([[1.2, -0.7], [3.0, 2.0]])
        perp = pt.perpendicular(vectors)
        assert pt.dot(vectors, perp) == pytest.approx([0.0, 0.0])


class TestPolyline:
    square = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0], [0.0, 0.0]])

    def test_segment_lengths(self):
        assert pt.segment_lengths(self.square) == pytest.approx([1.0] * 4)

    def test_polyline_length(self):
        assert pt.polyline_length(self.square) == pytest.approx(4.0)

    def test_arc_length_parameter(self):
        parameter = pt.arc_length_parameter(self.square)
        assert parameter == pytest.approx([0.0, 1.0, 2.0, 3.0, 4.0])

    def test_midpoints(self):
        mids = pt.midpoints(np.array([[0.0, 0.0], [2.0, 0.0]]))
        assert mids == pytest.approx(np.array([[1.0, 0.0]]))

    def test_signed_area_ccw_positive(self):
        assert pt.signed_polygon_area(self.square) == pytest.approx(1.0)

    def test_signed_area_cw_negative(self):
        assert pt.signed_polygon_area(self.square[::-1]) == pytest.approx(-1.0)

    def test_is_clockwise(self):
        assert not pt.is_clockwise(self.square)
        assert pt.is_clockwise(self.square[::-1])

    def test_centroid(self):
        assert pt.centroid(np.array([[0.0, 0.0], [2.0, 4.0]])) == pytest.approx([1.0, 2.0])

    def test_bounding_box(self):
        low, high = pt.bounding_box(self.square)
        assert low == pytest.approx([0.0, 0.0])
        assert high == pytest.approx([1.0, 1.0])


class TestIntersection:
    def test_crossing_segments(self):
        assert pt.segments_intersect((0, 0), (1, 1), (0, 1), (1, 0))

    def test_parallel_segments(self):
        assert not pt.segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_shared_endpoint_not_crossing(self):
        assert not pt.segments_intersect((0, 0), (1, 0), (1, 0), (1, 1))

    def test_disjoint(self):
        assert not pt.segments_intersect((0, 0), (1, 0), (2, 1), (3, 1))

    def test_simple_polyline_not_self_intersecting(self):
        assert not pt.polyline_self_intersects(TestPolyline.square)

    def test_bowtie_self_intersects(self):
        bowtie = np.array([[0.0, 0.0], [1.0, 1.0], [1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        assert pt.polyline_self_intersects(bowtie)

    def test_closed_polyline_closing_segment_ignored(self):
        # First and last segments share the closing point; must not be
        # reported as a crossing.
        triangle = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0], [0.0, 0.0]])
        assert not pt.polyline_self_intersects(triangle)
