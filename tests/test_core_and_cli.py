"""Tests for the high-level API and the command-line interface."""

import pytest

from repro import analyze, optimize, simulate_hybrid
from repro.cli import main
from repro.geometry import naca


class TestAnalyze:
    def test_by_designation(self):
        analysis = analyze("2412", alpha_degrees=4.0, n_panels=120)
        assert 0.6 < analysis.cl < 0.85
        assert analysis.cd is not None and analysis.cd > 0
        assert analysis.lift_to_drag == pytest.approx(analysis.cl / analysis.cd)

    def test_by_airfoil_object(self, naca0012):
        analysis = analyze(naca0012, alpha_degrees=0.0)
        assert abs(analysis.cl) < 1e-6

    def test_inviscid_only(self):
        analysis = analyze("2412", alpha_degrees=2.0, reynolds=None,
                           n_panels=100)
        assert analysis.cd is None
        assert analysis.lift_to_drag is None

    def test_summary_contents(self):
        summary = analyze("2412", alpha_degrees=4.0, n_panels=100).summary()
        assert "cl" in summary and "cd" in summary and "Re" in summary

    def test_naca_prefix_stripped(self):
        analysis = analyze("NACA 2412", alpha_degrees=0.0, reynolds=None,
                           n_panels=100)
        assert analysis.solution.airfoil.name == "NACA 2412"


class TestOptimize:
    def test_short_run(self):
        history = optimize(population_size=12, generations=2, n_panels=60,
                           seed=3)
        assert len(history.generations) == 2
        assert history.champion.fitness > 0


class TestSimulateHybrid:
    def test_gpu_speedup(self):
        experiment = simulate_hybrid(accelerator="k80-half", sockets=2,
                                     precision="double", n_slices=10)
        assert 2.5 < experiment.speedup < 3.6

    def test_phi_speedup(self):
        experiment = simulate_hybrid(accelerator="phi", sockets=2,
                                     precision="double", n_slices=20)
        assert 1.8 < experiment.speedup < 3.0

    def test_dual_gpu(self):
        experiment = simulate_hybrid(accelerator="k80-dual", sockets=1,
                                     precision="double", distribution=0.75)
        assert experiment.speedup > 4.0

    def test_custom_workload(self):
        experiment = simulate_hybrid(accelerator="k80-half", batch=500, n=100)
        assert experiment.metrics.wall_time > 0
        assert experiment.baseline.wall_time > experiment.metrics.wall_time


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_analyze_command(self, capsys):
        assert main(["analyze", "2412", "--alpha", "4", "--panels", "120"]) == 0
        out = capsys.readouterr().out
        assert "cl" in out

    def test_analyze_inviscid(self, capsys):
        assert main(["analyze", "0012", "--reynolds", "0"]) == 0
        out = capsys.readouterr().out
        assert "cd" not in out

    def test_figure_with_artifacts(self, tmp_path, capsys):
        assert main(["figure1", "--artifacts", str(tmp_path)]) == 0
        assert (tmp_path / "figure1.svg").exists()

    def test_unknown_command_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
