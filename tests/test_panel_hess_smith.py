"""Tests for the Hess-Smith source-vortex formulation."""

import numpy as np
import pytest

from repro.errors import PanelMethodError
from repro.geometry import naca
from repro.panel import (
    Freestream,
    solve_airfoil,
    solve_hess_smith,
    source_velocity_influence,
)
from repro.validation import JoukowskiAirfoil, cylinder_airfoil


class TestSourceInfluence:
    def test_shape(self, naca2412):
        points = np.array([[2.0, 0.5]])
        influence = source_velocity_influence(points, naca2412)
        assert influence.shape == (1, naca2412.n_panels, 2)

    def test_far_field_is_radial(self, naca2412):
        """Far away, the summed sources look like one point source."""
        point = np.array([[300.0, 0.0]])
        total = source_velocity_influence(point, naca2412)[0].sum(axis=0)
        # A point source of strength = perimeter at ~unit distance left.
        expected = naca2412.perimeter / (2 * np.pi * 299.5)
        assert total[0] == pytest.approx(expected, rel=0.02)
        assert abs(total[1]) < 0.1 * abs(total[0])

    def test_mass_conservation_flux(self, naca2412):
        """Unit sources emit unit flux: integrate V.n over a far circle."""
        theta = np.linspace(0.0, 2 * np.pi, 721)[:-1]
        radius = 50.0
        circle = np.column_stack([
            0.5 + radius * np.cos(theta), radius * np.sin(theta)
        ])
        influence = source_velocity_influence(circle, naca2412)
        normals = np.column_stack([np.cos(theta), np.sin(theta)])
        # Total flux of all panels at unit strength = total source
        # emission = sum of panel lengths.
        flux_density = np.einsum("mpc,mc->m", influence, normals)
        total_flux = flux_density.mean() * 2 * np.pi * radius
        assert total_flux == pytest.approx(naca2412.perimeter, rel=0.01)


class TestHessSmithSolver:
    @pytest.mark.parametrize("alpha", [0.0, 4.0, 8.0])
    def test_agrees_with_stream_function_solver(self, naca2412, alpha):
        hess = solve_hess_smith(naca2412, Freestream.from_degrees(alpha))
        stream = solve_airfoil(naca2412, alpha)
        assert hess.lift_coefficient == pytest.approx(
            stream.lift_coefficient, abs=0.01
        )

    def test_flow_tangency_residual(self, naca2412):
        solution = solve_hess_smith(naca2412, Freestream.from_degrees(4.0))
        assert solution.normal_velocity_residual() < 1e-10

    def test_joukowski_exact_lift(self):
        section = JoukowskiAirfoil(0.08, 0.05)
        solution = solve_hess_smith(section.airfoil(400),
                                    Freestream.from_degrees(4.0))
        exact = section.exact_lift_coefficient(np.radians(4.0))
        # The cusped Joukowski trailing edge is the hard case for
        # Hess-Smith; 2-3 % agreement at 400 panels is expected.
        assert solution.lift_coefficient == pytest.approx(exact, rel=0.03)

    def test_symmetric_zero_lift(self, naca0012):
        solution = solve_hess_smith(naca0012, Freestream())
        assert abs(solution.lift_coefficient) < 1e-6

    def test_cylinder_surface_speed(self):
        cylinder = cylinder_airfoil(160)
        solution = solve_hess_smith(cylinder, Freestream())
        # At alpha = 0 the Kutta condition at the downstream point gives
        # (nearly) zero circulation: q(theta) ~ 2 sin(theta).
        cps = cylinder.control_points
        theta = np.arctan2(cps[:, 1], cps[:, 0])
        assert solution.tangential_velocities == pytest.approx(
            np.abs(2 * np.sin(theta)), abs=0.02
        )

    def test_source_strengths_sum_near_zero(self, solved_2412):
        """A closed body in steady flow emits (almost) no net mass.

        The residual emission is a discretization error, so it must be
        small and shrink as the paneling refines.
        """
        def net_emission(n_panels):
            foil = naca("2412", n_panels)
            hess = solve_hess_smith(foil, Freestream())
            return abs(hess.source_strengths @ foil.panel_lengths)

        coarse, fine = net_emission(80), net_emission(240)
        assert fine < 2e-3
        assert fine < coarse

    def test_pressure_coefficients_bounded(self, naca2412):
        solution = solve_hess_smith(naca2412, Freestream.from_degrees(4.0))
        assert solution.pressure_coefficients.max() <= 1.0 + 1e-9

    def test_too_few_panels(self):
        import dataclasses

        from repro.geometry.airfoil import Airfoil

        tri = Airfoil.from_points(np.array(
            [[1.0, 0.0], [0.0, 0.2], [0.0, -0.2], [1.0, 0.0]]
        ))
        # 3 panels is the minimum; works, but 2 would not construct at all.
        solution = solve_hess_smith(tri, Freestream())
        assert np.isfinite(solution.lift_coefficient)
