"""Kernel selection, bit parity, and degenerate-geometry regressions.

The fused kernel's contract is the strongest one NumPy can offer:
``tobytes()``-identical to the reference kernel in *both* precisions.
The native kernel computes in double and rounds once on store, so its
float64 output is tolerance-checked against the reference and its
float32 output must sit within 2 ulp of the correctly rounded double
result (measured: 0 ulp).  See ``docs/kernels.md``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PanelMethodError
from repro.geometry import naca
from repro.geometry.airfoil import Airfoil
from repro.panel import (
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KERNEL_NAMES,
    Freestream,
    assemble,
    native_status,
    resolve_kernel,
    stream_influence_matrix,
    velocity_influence,
)
from repro.panel import kernels as kernels_module

DTYPES = (np.float64, np.float32)

NATIVE_AVAILABLE = native_status()["available"]

needs_native = pytest.mark.skipif(
    not NATIVE_AVAILABLE, reason="no C compiler for the native kernel"
)


def field_points(airfoil, seed):
    """A deterministic mix of hard points: control points, panel
    endpoints (on-surface), and random near/far field points."""
    rng = np.random.default_rng(seed)
    far = rng.uniform(-3.0, 4.0, size=(8, 2))
    near = airfoil.control_points[::7] + rng.uniform(-1e-3, 1e-3, size=(
        len(airfoil.control_points[::7]), 2))
    return np.concatenate([
        airfoil.control_points[::5],
        airfoil.points[:-1:5],
        near,
        far,
    ])


def ulp_distance_f32(a, b):
    """Units-in-the-last-place distance between float32 arrays.

    Uses the standard lexicographic integer mapping (monotone in the
    reals, maps -0.0 and +0.0 to the same key).
    """
    def key(x):
        i = np.ascontiguousarray(x, dtype=np.float32).view(np.int32)
        i = i.astype(np.int64)
        return np.where(i >= 0, i, np.int64(-2 ** 31) - i)

    return np.abs(key(a) - key(b))


class TestResolveKernel:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel() == DEFAULT_KERNEL == "fused"

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "reference")
        assert resolve_kernel() == "reference"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "reference")
        assert resolve_kernel("native") == "native"

    def test_spelling_normalized(self):
        assert resolve_kernel("  Fused ") == "fused"

    def test_unknown_rejected(self):
        with pytest.raises(PanelMethodError, match="unknown assembly kernel"):
            resolve_kernel("simd")

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "turbo")
        with pytest.raises(PanelMethodError, match="turbo"):
            resolve_kernel()

    def test_names_cover_dispatch_tables(self):
        assert set(KERNEL_NAMES) == set(kernels_module._STREAM_KERNELS)
        assert set(KERNEL_NAMES) == set(kernels_module._VELOCITY_KERNELS)


class TestFusedBitParity:
    """The acceptance-criteria property: fused == reference, bytewise."""

    @given(
        code=st.sampled_from(["0012", "2412", "4408", "6321"]),
        n_panels=st.sampled_from([16, 40, 90]),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_stream_identical_both_dtypes(self, code, n_panels, seed):
        foil = naca(code, n_panels)
        points = field_points(foil, seed)
        for dtype in DTYPES:
            reference = stream_influence_matrix(points, foil, dtype=dtype,
                                                kernel="reference")
            fused = stream_influence_matrix(points, foil, dtype=dtype,
                                            kernel="fused")
            assert fused.dtype == np.dtype(dtype)
            assert fused.tobytes() == reference.tobytes()

    @given(
        code=st.sampled_from(["0012", "2412", "4408", "6321"]),
        n_panels=st.sampled_from([16, 40, 90]),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_velocity_identical_both_dtypes(self, code, n_panels, seed):
        foil = naca(code, n_panels)
        points = field_points(foil, seed)
        for dtype in DTYPES:
            reference = velocity_influence(points, foil, dtype=dtype,
                                           kernel="reference")
            fused = velocity_influence(points, foil, dtype=dtype,
                                       kernel="fused")
            assert fused.tobytes() == reference.tobytes()


@needs_native
class TestNativeParity:
    """Native computes in double, rounds once on store."""

    @given(
        code=st.sampled_from(["0012", "2412", "4408"]),
        n_panels=st.sampled_from([16, 60]),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_stream_float64_close(self, code, n_panels, seed):
        foil = naca(code, n_panels)
        points = field_points(foil, seed)
        reference = stream_influence_matrix(points, foil, kernel="reference")
        native = stream_influence_matrix(points, foil, kernel="native")
        assert np.allclose(native, reference, rtol=1e-9, atol=1e-12)

    @given(
        code=st.sampled_from(["0012", "2412", "4408"]),
        n_panels=st.sampled_from([16, 60]),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_velocity_float64_close(self, code, n_panels, seed):
        foil = naca(code, n_panels)
        points = field_points(foil, seed)
        reference = velocity_influence(points, foil, kernel="reference")
        native = velocity_influence(points, foil, kernel="native")
        assert np.allclose(native, reference, rtol=1e-9, atol=1e-12)

    @given(
        code=st.sampled_from(["0012", "2412", "4408"]),
        n_panels=st.sampled_from([16, 60]),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_stream_float32_within_2ulp_of_rounded_double(self, code,
                                                          n_panels, seed):
        foil = naca(code, n_panels)
        points = field_points(foil, seed)
        native = stream_influence_matrix(points, foil, dtype=np.float32,
                                         kernel="native")
        # The oracle: the float32-rounded geometry (what every float32
        # kernel sees) evaluated by the reference kernel in float64,
        # rounded once — the best answer float32 storage can hold.
        foil32 = Airfoil(points=foil.points.astype(np.float32))
        points32 = points.astype(np.float32).astype(np.float64)
        oracle = stream_influence_matrix(
            points32, foil32, kernel="reference"
        ).astype(np.float32)
        assert int(ulp_distance_f32(native, oracle).max()) <= 2

    def test_velocity_float32_within_2ulp(self, naca2412):
        points = field_points(naca2412, seed=7)
        native = velocity_influence(points, naca2412, dtype=np.float32,
                                    kernel="native")
        foil32 = Airfoil(points=naca2412.points.astype(np.float32))
        points32 = points.astype(np.float32).astype(np.float64)
        oracle = velocity_influence(
            points32, foil32, kernel="reference"
        ).astype(np.float32)
        assert int(ulp_distance_f32(native, oracle).max()) <= 2

    def test_status_shape(self):
        status = native_status()
        assert status["available"] is True
        assert status["reason"] is None
        assert status["library"]
        assert status["compiler"]


class TestNativeFallback:
    def test_falls_back_to_fused_without_compiler(self, monkeypatch,
                                                  naca2412):
        # Force a fresh native probe that cannot find a compiler; the
        # module-level state is restored afterwards so other tests see
        # the real library again.
        monkeypatch.setenv(kernels_module.CC_ENV, "/no/such/compiler-xyz")
        monkeypatch.setattr(kernels_module, "_NATIVE", None)
        status = native_status()
        assert status["available"] is False
        assert "compiler" in status["reason"]
        points = naca2412.control_points[:5]
        native = stream_influence_matrix(points, naca2412, kernel="native")
        fused = stream_influence_matrix(points, naca2412, kernel="fused")
        assert native.tobytes() == fused.tobytes()
        assert native_status()["fallbacks"] >= 1
        monkeypatch.setattr(kernels_module, "_NATIVE", None)


def near_duplicate_airfoil():
    """A float64 outline with two points 1e-12 apart: legal in double,
    but the pair collapses to one point when cast to float32."""
    points = naca("2412", 40).points.copy()
    extra = points[10] + np.array([1e-12, 0.0])
    outline = np.insert(points, 11, extra, axis=0)
    return Airfoil(points=outline)


class TestDegenerateGeometryRegression:
    """S1: float32 near-duplicate points must not produce NaN/inf.

    Pre-fix, ``_safe_log_sq`` guarded only exact zeros and the panel
    length appeared unclamped in denominators, so the collapsed panel
    yielded 0/0 = NaN across its whole matrix column.
    """

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_stream_finite_in_float32(self, kernel):
        foil = near_duplicate_airfoil()
        values = stream_influence_matrix(foil.control_points, foil,
                                         dtype=np.float32, kernel=kernel)
        assert np.all(np.isfinite(values))

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_velocity_finite_in_float32(self, kernel):
        foil = near_duplicate_airfoil()
        values = velocity_influence(foil.control_points, foil,
                                    dtype=np.float32, kernel=kernel)
        assert np.all(np.isfinite(values))

    def test_collapsed_panel_contributes_nothing(self):
        foil = near_duplicate_airfoil()
        values = stream_influence_matrix(foil.control_points, foil,
                                         dtype=np.float32)
        assert np.all(values[:, 10] == 0.0)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_double_precision_still_finite(self, kernel):
        foil = near_duplicate_airfoil()
        values = stream_influence_matrix(foil.control_points, foil,
                                         kernel=kernel)
        assert np.all(np.isfinite(values))


def square_airfoil(dtype=np.float64):
    return Airfoil(points=np.array(
        [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0], [0.0, 0.0]],
        dtype=dtype,
    ))


class TestVelocityPrincipalValues:
    """S4: on-panel, endpoint, and shared-endpoint semantics, pinned
    across both dtypes and all three kernel selections."""

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_on_panel_midpoint_principal_value(self, dtype, kernel):
        # The midpoint of the bottom panel of the unit square: the
        # panel's own tangential influence is the principal value -1/2
        # (eta = +0 selects the outer side), its normal influence is 0
        # by symmetry (r_start == r_end).
        foil = square_airfoil(dtype)
        point = np.array([[0.5, 0.0]], dtype=dtype)
        v = velocity_influence(point, foil, dtype=dtype, kernel=kernel)
        assert v[0, 0] == pytest.approx([-0.5, 0.0], abs=1e-6)
        assert np.all(np.isfinite(v))

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_exact_endpoint_contribution_vanishes(self, dtype, kernel):
        # At a panel's exact endpoint both the subtended angle and the
        # log ratio vanish, so the two panels sharing the corner each
        # contribute exactly zero — symmetrically, unlike the legacy
        # two-arctan2 form whose start endpoint saw a spurious -1/2.
        foil = square_airfoil(dtype)
        corner = np.array([[0.0, 0.0]], dtype=dtype)
        v = velocity_influence(corner, foil, dtype=dtype, kernel=kernel)
        assert np.all(v[0, 0] == 0.0)  # panel starting at the corner
        assert np.all(v[0, 3] == 0.0)  # panel ending at the corner
        assert np.all(np.isfinite(v))

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_edge_points_bitwise_identical_reference_vs_fused(self, dtype):
        foil = square_airfoil(dtype)
        points = np.array(
            [[0.5, 0.0], [0.0, 0.0], [1.0, 1.0], [0.25, 0.0], [1.0, 0.5]],
            dtype=dtype,
        )
        reference = velocity_influence(points, foil, dtype=dtype,
                                       kernel="reference")
        fused = velocity_influence(points, foil, dtype=dtype, kernel="fused")
        assert fused.tobytes() == reference.tobytes()

    @needs_native
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_edge_points_native_matches(self, dtype):
        foil = square_airfoil(dtype)
        points = np.array(
            [[0.5, 0.0], [0.0, 0.0], [1.0, 1.0], [0.25, 0.0], [1.0, 0.5]],
            dtype=dtype,
        )
        reference = velocity_influence(points, foil, dtype=dtype,
                                       kernel="reference")
        native = velocity_influence(points, foil, dtype=dtype,
                                    kernel="native")
        assert np.allclose(native, reference, rtol=1e-6, atol=1e-7)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_airfoil_surface_points_finite_both_dtypes(self, naca2412,
                                                       kernel):
        for dtype in DTYPES:
            v = velocity_influence(naca2412.points[:-1], naca2412,
                                   dtype=dtype, kernel=kernel)
            assert np.all(np.isfinite(v))


class TestRhsDtypeHonesty:
    """S2: the assembled RHS must be computed natively in the system
    dtype, not in float64 and truncated."""

    def test_float32_rhs_is_native_single_precision(self):
        foil = naca("2412", 40)
        freestream = Freestream.from_degrees(3.0)
        system = assemble(foil, freestream, dtype=np.float32)
        expected = freestream.stream_function(foil.control_points,
                                              dtype=np.float32)
        assert system.rhs.dtype == np.float32
        assert system.rhs.tobytes() == expected.tobytes()

    def test_truncated_double_differs_here(self):
        # Documents why the parity above is a real pin: for this exact
        # configuration the pre-fix path (compute in float64, truncate)
        # produces different bytes, so the test above fails pre-fix.
        foil = naca("2412", 40)
        freestream = Freestream.from_degrees(3.0)
        native32 = freestream.stream_function(foil.control_points,
                                              dtype=np.float32)
        truncated = freestream.stream_function(
            foil.control_points).astype(np.float32)
        assert native32.tobytes() != truncated.tobytes()

    def test_float64_rhs_unchanged(self):
        foil = naca("2412", 40)
        freestream = Freestream.from_degrees(3.0)
        system = assemble(foil, freestream)
        legacy = freestream.stream_function(foil.control_points)
        assert system.rhs.tobytes() == legacy.tobytes()

    def test_stream_function_dtype_argument(self):
        freestream = Freestream.from_degrees(30.0)
        points = np.array([[0.3, -0.2], [1.5, 0.7]])
        single = freestream.stream_function(points, dtype=np.float32)
        assert single.dtype == np.float32
        default = freestream.stream_function(points)
        assert default.dtype == np.float64
        assert single == pytest.approx(default, rel=1e-6)


class TestKernelThreading:
    """The kernel knob reaches assembly through every public seam."""

    def test_assemble_kernel_parity(self, naca2412):
        freestream = Freestream.from_degrees(2.0)
        fused = assemble(naca2412, freestream, kernel="fused")
        reference = assemble(naca2412, freestream, kernel="reference")
        assert fused.matrix.tobytes() == reference.matrix.tobytes()
        assert fused.rhs.tobytes() == reference.rhs.tobytes()

    def test_env_default_used_by_assemble(self, naca2412, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "bogus")
        with pytest.raises(PanelMethodError, match="bogus"):
            assemble(naca2412, Freestream.from_degrees(2.0))

    def test_solver_results_kernel_independent(self, naca2412, monkeypatch):
        # solve_airfoil has no kernel parameter of its own; it rides the
        # env default, which is the seam exercised here.  The fused
        # kernel is bit-identical at assembly, so lift matches exactly.
        from repro.panel import solve_airfoil

        lifts = {}
        for kernel in ("reference", "fused"):
            monkeypatch.setenv(KERNEL_ENV, kernel)
            lifts[kernel] = solve_airfoil(
                naca2412, alpha_degrees=4.0).lift_coefficient
        assert lifts["fused"] == lifts["reference"]
