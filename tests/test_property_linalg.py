"""Property-based tests for the linear-algebra substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg import (
    batched_lu_factor,
    batched_lu_solve,
    lu_factor,
    lu_solve,
    relative_residual,
)


def well_conditioned_matrices(max_n=12):
    """Random square matrices pushed away from singularity."""
    return st.integers(2, max_n).flatmap(
        lambda n: hnp.arrays(
            np.float64, (n, n),
            elements=st.floats(-10.0, 10.0, allow_nan=False),
        ).map(lambda a: a + (np.abs(a).sum() + n) * np.eye(n))
    )


class TestLUProperties:
    @given(matrix=well_conditioned_matrices())
    @settings(max_examples=60, deadline=None)
    def test_factorization_reconstructs(self, matrix):
        factors = lu_factor(matrix)
        reconstructed = factors.lower() @ factors.upper()
        assert np.allclose(
            reconstructed, factors.permutation_matrix() @ matrix,
            atol=1e-8 * (1 + np.abs(matrix).max()),
        )

    @given(matrix=well_conditioned_matrices())
    @settings(max_examples=60, deadline=None)
    def test_solve_has_tiny_backward_error(self, matrix):
        n = matrix.shape[0]
        rhs = np.arange(1.0, n + 1.0)
        x = lu_solve(lu_factor(matrix), rhs)
        assert relative_residual(matrix, x, rhs) < 1e-12

    @given(matrix=well_conditioned_matrices())
    @settings(max_examples=40, deadline=None)
    def test_pivot_permutation_is_a_permutation(self, matrix):
        factors = lu_factor(matrix)
        assert sorted(factors.pivots.tolist()) == list(range(matrix.shape[0]))

    @given(matrix=well_conditioned_matrices())
    @settings(max_examples=40, deadline=None)
    def test_unit_lower_triangle_bounded(self, matrix):
        """Partial pivoting keeps |L| <= 1 below the diagonal."""
        factors = lu_factor(matrix)
        lower = np.tril(factors.lu, -1)
        assert np.all(np.abs(lower) <= 1.0 + 1e-12)

    @given(matrix=well_conditioned_matrices(), scale=st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_solution_linearity(self, matrix, scale):
        """A(x1 + c x2) = b1 + c b2 (solving is linear in the rhs)."""
        n = matrix.shape[0]
        factors = lu_factor(matrix)
        b1 = np.ones(n)
        b2 = np.arange(1.0, n + 1.0)
        x1 = lu_solve(factors, b1)
        x2 = lu_solve(factors, b2)
        combined = lu_solve(factors, b1 + scale * b2)
        assert np.allclose(combined, x1 + scale * x2, atol=1e-9)


class TestBatchedProperties:
    @given(
        data=st.data(),
        batch=st.integers(1, 6),
        n=st.integers(2, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_equals_loop_of_singles(self, data, batch, n):
        matrices = data.draw(hnp.arrays(
            np.float64, (batch, n, n),
            elements=st.floats(-5.0, 5.0, allow_nan=False),
        ))
        matrices = matrices + (np.abs(matrices).sum(axis=(1, 2))[:, None, None]
                               + n) * np.eye(n)
        rhs = data.draw(hnp.arrays(
            np.float64, (batch, n),
            elements=st.floats(-5.0, 5.0, allow_nan=False),
        ))
        batched = batched_lu_solve(batched_lu_factor(matrices), rhs)
        for index in range(batch):
            single = lu_solve(lu_factor(matrices[index]), rhs[index])
            assert np.allclose(batched[index], single, atol=1e-9)
