"""Tests for the serving wire format shared by the CLI and the service:
:class:`AnalyzeRequest`, :func:`evaluate_requests`, and the canonical
JSON serialization."""

import json

import pytest

from repro.cli import main
from repro.core.api import (
    AnalyzeRequest,
    analyze,
    canonical_json,
    evaluate_requests,
    serialize_analysis,
)
from repro.errors import ReproError, ServeError
from repro.geometry import naca
from repro.serve import AnalysisService


class TestAnalyzeRequest:
    def test_from_dict_roundtrip(self):
        request = AnalyzeRequest.from_dict({
            "airfoil": "2412", "alpha_degrees": 4.0, "reynolds": 1e6,
            "n_panels": 120, "precision": "single", "use_head": False,
        })
        assert request.n_panels == 120
        assert request.precision.value == "single"
        assert AnalyzeRequest.from_dict(request.to_dict()) == request

    def test_alpha_alias(self):
        request = AnalyzeRequest.from_dict({"airfoil": "0012", "alpha": 3.0})
        assert request.alpha_degrees == 3.0
        with pytest.raises(ServeError):
            AnalyzeRequest.from_dict(
                {"airfoil": "0012", "alpha": 1.0, "alpha_degrees": 2.0}
            )

    def test_reynolds_zero_means_inviscid(self):
        request = AnalyzeRequest.from_dict({"airfoil": "0012", "reynolds": 0})
        assert request.reynolds is None

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},  # missing airfoil
        {"airfoil": 2412},  # non-string designation
        {"airfoil": "2412", "frobnicate": 1},  # unknown field
        {"airfoil": "2412", "reynolds": -5.0},
        {"airfoil": "2412", "alpha_degrees": float("nan")},
        {"airfoil": "2412", "n_panels": 2},
        {"airfoil": "2412", "precision": "half"},
        {"airfoil": ""},
    ])
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(ServeError):
            AnalyzeRequest.from_dict(payload)

    def test_airfoil_object_not_serializable(self, naca0012):
        request = AnalyzeRequest(airfoil=naca0012, n_panels=naca0012.n_panels)
        with pytest.raises(ServeError):
            request.to_dict()

    def test_run_matches_analyze(self):
        request = AnalyzeRequest(airfoil="2412", alpha_degrees=4.0,
                                 reynolds=1e6, n_panels=100)
        batched = request.run()
        single = analyze("2412", 4.0, reynolds=1e6, n_panels=100)
        assert batched.cl == pytest.approx(single.cl, rel=1e-9)
        assert batched.cd == pytest.approx(single.cd, rel=1e-9)
        assert batched.cm == pytest.approx(single.cm, rel=1e-9)


class TestCacheKey:
    def test_keyed_by_geometry_not_spelling(self):
        # "2412" and "NACA 2412" build identical outlines.
        assert (AnalyzeRequest(airfoil="2412", n_panels=80).cache_key()
                == AnalyzeRequest(airfoil="NACA 2412", n_panels=80).cache_key())

    @pytest.mark.parametrize("variant", [
        {"alpha_degrees": 1.0},
        {"reynolds": 2e6},
        {"reynolds": None},
        {"n_panels": 90},
        {"precision": "single"},
        {"use_head": False},
        {"airfoil": "0012"},
    ])
    def test_every_config_knob_changes_the_key(self, variant):
        base = dict(airfoil="2412", alpha_degrees=4.0, reynolds=1e6,
                    n_panels=80)
        key = AnalyzeRequest(**base).cache_key()
        assert AnalyzeRequest(**{**base, **variant}).cache_key() != key


class TestEvaluateRequests:
    def test_mixed_sizes_grouped_and_ordered(self):
        requests = [
            AnalyzeRequest(airfoil="2412", alpha_degrees=4.0, reynolds=None,
                           n_panels=80),
            AnalyzeRequest(airfoil="0012", alpha_degrees=0.0, reynolds=None,
                           n_panels=60),
            AnalyzeRequest(airfoil="2412", alpha_degrees=2.0, reynolds=None,
                           n_panels=80),
        ]
        results = evaluate_requests(requests)
        assert len(results) == 3
        assert 0.6 < results[0].cl < 0.9
        assert abs(results[1].cl) < 1e-6
        assert 0.0 < results[2].cl < results[0].cl

    def test_bad_request_does_not_poison_batchmates(self):
        requests = [
            AnalyzeRequest(airfoil="2412", alpha_degrees=4.0, reynolds=None,
                           n_panels=80),
            AnalyzeRequest(airfoil="99", n_panels=80),  # invalid NACA code
        ]
        results = evaluate_requests(requests)
        assert not isinstance(results[0], Exception)
        assert isinstance(results[1], ReproError)

    def test_batch_composition_invariance(self):
        """A request's record must not depend on its batchmates —
        the property that makes CLI and served output byte-identical."""
        target = AnalyzeRequest(airfoil="2412", alpha_degrees=4.0,
                                reynolds=1e6, n_panels=80)
        alone = evaluate_requests([target])[0]
        others = [AnalyzeRequest(airfoil="0012", alpha_degrees=a,
                                 reynolds=1e6, n_panels=80)
                  for a in (0.0, 2.0, 6.0)]
        stacked = evaluate_requests(others + [target])[-1]
        assert (serialize_analysis(target, alone)
                == serialize_analysis(target, stacked))


class TestSerialization:
    def test_record_fields(self):
        request = AnalyzeRequest(airfoil="2412", alpha_degrees=4.0,
                                 reynolds=1e6, n_panels=100)
        record = serialize_analysis(request, request.run())
        assert record["airfoil"] == "NACA 2412"
        assert record["n_panels"] == 100
        assert record["cd"] > 0 and record["cl"] > 0.5
        assert record["lift_to_drag"] == pytest.approx(
            record["cl"] / record["cd"])
        assert record["separated"] in (True, False)

    def test_inviscid_record_has_nulls(self):
        request = AnalyzeRequest(airfoil="0012", reynolds=None, n_panels=60)
        record = serialize_analysis(request, request.run())
        assert record["cd"] is None
        assert record["lift_to_drag"] is None
        assert record["separated"] is None

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_json({"b": 1, "a": [1.5, None]})
        assert text == '{"a":[1.5,null],"b":1}'

    def test_cli_json_matches_service_bytes(self, capsys):
        """The satellite contract: CLI --json and the served response
        are byte-identical for the same input."""
        assert main(["analyze", "2412", "--alpha", "4", "--panels", "100",
                     "--json"]) == 0
        cli_line = capsys.readouterr().out.strip()
        with AnalysisService(max_batch=4, max_wait=0.0, cache_size=8,
                             n_workers=1, queue_limit=16) as service:
            served = service.analyze_json(
                AnalyzeRequest(airfoil="2412", alpha_degrees=4.0,
                               reynolds=1e6, n_panels=100))
        assert cli_line == served
        assert json.loads(cli_line)["n_panels"] == 100

    def test_cli_json_inviscid(self, capsys):
        assert main(["analyze", "0012", "--reynolds", "0", "--panels", "60",
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["cd"] is None and record["reynolds"] is None
