"""Tests for the supplementary convergence and energy experiments."""

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.experiments.convergence import PANEL_COUNTS, run as run_convergence
from repro.experiments.energy_table import run as run_energy


class TestConvergenceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_convergence()

    def test_all_panel_counts_present(self, result):
        assert [row["panels"] for row in result.rows] == list(PANEL_COUNTS)

    def test_stream_function_errors_decrease_monotonically(self, result):
        errors = [row["stream_error"] for row in result.rows]
        assert all(b < a for a, b in zip(errors, errors[1:]))

    def test_second_order_convergence(self, result):
        """Error ratios between doublings approach 4 (order 2)."""
        errors = [row["stream_error"] for row in result.rows]
        orders = np.log2(np.array(errors[:-1]) / np.array(errors[1:]))
        assert 1.6 < np.mean(orders) < 2.4

    def test_error_small_at_paper_resolution(self, result):
        n200 = next(row for row in result.rows if row["panels"] == 200)
        assert n200["stream_error"] < 1e-3

    def test_hess_smith_converges_slower_on_cusp(self, result):
        """The cusped trailing edge degrades Hess-Smith's order."""
        coarse = result.rows[0]
        fine = result.rows[-1]
        assert fine["hess_error"] < coarse["hess_error"]
        stream_gain = coarse["stream_error"] / fine["stream_error"]
        hess_gain = coarse["hess_error"] / fine["hess_error"]
        assert stream_gain > 10 * hess_gain

    def test_repaneling_helps_at_low_counts(self, result):
        n50 = next(row for row in result.rows if row["panels"] == 50)
        assert n50["adaptive_error"] < n50["stream_error"]

    def test_registry_entry(self):
        assert run_experiment("convergence").experiment_id == "convergence"


class TestEnergyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_energy()

    def test_eight_rows(self, result):
        assert len(result.rows) == 8

    def test_gpu_wins_both_axes(self, result):
        for precision in ("single", "double"):
            block = {row["configuration"]: row for row in result.rows
                     if row["precision"] == precision}
            assert block["k80-half"]["energy_ratio_vs_cpu"] < 0.7
            assert block["k80-half"]["wall"] < block["none"]["wall"]

    def test_phi_energy_penalty_visible(self, result):
        for precision in ("single", "double"):
            block = {row["configuration"]: row for row in result.rows
                     if row["precision"] == precision}
            assert block["phi"]["energy_ratio_vs_cpu"] > 1.0

    def test_text_mentions_conclusion(self, result):
        assert "MORE energy" in result.text

    def test_registry_entry(self):
        assert run_experiment("energy").experiment_id == "energy"
