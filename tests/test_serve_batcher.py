"""Tests for micro-batch collection and the slicing-derived policy."""

import queue
import time

import pytest

from repro.errors import ServeError
from repro.serve import BatchPolicy, collect_batch, suggested_policy
from repro.serve.batcher import MAX_BATCH_CEILING, MAX_WAIT, MIN_WAIT


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ServeError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ServeError):
            BatchPolicy(max_wait=-1.0)
        with pytest.raises(ServeError):
            BatchPolicy(max_wait=float("inf"))

    def test_coerces_types(self):
        policy = BatchPolicy(max_batch=8.0, max_wait=1)
        assert policy.max_batch == 8 and policy.max_wait == 1.0


class TestCollectBatch:
    def test_max_batch_path_flushes_without_waiting(self):
        source = queue.Queue()
        for index in range(10):
            source.put(index)
        first = source.get()
        start = time.monotonic()
        items, saw = collect_batch(source, first,
                                   BatchPolicy(max_batch=4, max_wait=5.0))
        elapsed = time.monotonic() - start
        assert items == [0, 1, 2, 3] and not saw
        assert elapsed < 1.0  # did NOT sit out the 5 s deadline
        assert source.qsize() == 6

    def test_deadline_path_flushes_partial_batch(self):
        source = queue.Queue()
        start = time.monotonic()
        items, saw = collect_batch(source, "only",
                                   BatchPolicy(max_batch=8, max_wait=0.05))
        elapsed = time.monotonic() - start
        assert items == ["only"] and not saw
        assert 0.04 <= elapsed < 1.0

    def test_zero_wait_still_drains_backlog(self):
        source = queue.Queue()
        for index in range(5):
            source.put(index)
        first = source.get()
        items, saw = collect_batch(source, first,
                                   BatchPolicy(max_batch=100, max_wait=0.0))
        assert items == [0, 1, 2, 3, 4] and not saw

    def test_sentinel_is_pushed_back(self):
        sentinel = object()
        source = queue.Queue()
        source.put("b")
        source.put(sentinel)
        items, saw = collect_batch(source, "a",
                                   BatchPolicy(max_batch=10, max_wait=0.0),
                                   sentinel=sentinel)
        assert items == ["a", "b"] and saw
        # Re-queued so sibling workers observe the shutdown too.  (In
        # real use the sentinel is always last: admissions stop before
        # shutdown enqueues it.)
        assert source.get_nowait() is sentinel


class TestSuggestedPolicy:
    def test_derived_knobs_respect_clamps(self):
        policy = suggested_policy(200)
        assert 1 <= policy.max_batch <= MAX_BATCH_CEILING
        assert MIN_WAIT <= policy.max_wait <= MAX_WAIT

    def test_explicit_overrides_win_individually(self):
        policy = suggested_policy(200, max_batch=7)
        assert policy.max_batch == 7
        assert MIN_WAIT <= policy.max_wait <= MAX_WAIT  # still derived
        policy = suggested_policy(200, max_wait=0.001)
        assert policy.max_wait == 0.001

    def test_deterministic_per_system_size(self):
        assert suggested_policy(160) == suggested_policy(160)

    def test_invalid_n_panels(self):
        with pytest.raises(ServeError):
            suggested_policy(2)
