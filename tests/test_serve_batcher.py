"""Tests for micro-batch collection and the slicing-derived policy."""

import queue
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.serve import BatchPolicy, collect_batch, suggested_policy
from repro.serve.batcher import MAX_BATCH_CEILING, MAX_WAIT, MIN_WAIT


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ServeError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ServeError):
            BatchPolicy(max_wait=-1.0)
        with pytest.raises(ServeError):
            BatchPolicy(max_wait=float("inf"))

    def test_coerces_types(self):
        policy = BatchPolicy(max_batch=8.0, max_wait=1)
        assert policy.max_batch == 8 and policy.max_wait == 1.0

    def test_rejects_fractional_max_batch(self):
        # Regression: 2.7 used to be silently truncated to 2, flushing
        # smaller batches than configured with no error anywhere.
        with pytest.raises(ServeError, match="integer"):
            BatchPolicy(max_batch=2.7)

    def test_rejects_non_numeric_max_batch(self):
        with pytest.raises(ServeError, match="integer"):
            BatchPolicy(max_batch="eight")


class TestCollectBatch:
    def test_max_batch_path_flushes_without_waiting(self):
        source = queue.Queue()
        for index in range(10):
            source.put(index)
        first = source.get()
        start = time.monotonic()
        items, saw = collect_batch(source, first,
                                   BatchPolicy(max_batch=4, max_wait=5.0))
        elapsed = time.monotonic() - start
        assert items == [0, 1, 2, 3] and not saw
        assert elapsed < 1.0  # did NOT sit out the 5 s deadline
        assert source.qsize() == 6

    def test_deadline_path_flushes_partial_batch(self):
        source = queue.Queue()
        start = time.monotonic()
        items, saw = collect_batch(source, "only",
                                   BatchPolicy(max_batch=8, max_wait=0.05))
        elapsed = time.monotonic() - start
        assert items == ["only"] and not saw
        assert 0.04 <= elapsed < 1.0

    def test_zero_wait_still_drains_backlog(self):
        source = queue.Queue()
        for index in range(5):
            source.put(index)
        first = source.get()
        items, saw = collect_batch(source, first,
                                   BatchPolicy(max_batch=100, max_wait=0.0))
        assert items == [0, 1, 2, 3, 4] and not saw

    def test_sentinel_is_pushed_back(self):
        sentinel = object()
        source = queue.Queue()
        source.put("b")
        source.put(sentinel)
        items, saw = collect_batch(source, "a",
                                   BatchPolicy(max_batch=10, max_wait=0.0),
                                   sentinel=sentinel)
        assert items == ["a", "b"] and saw
        # Re-queued so sibling workers observe the shutdown too.  (In
        # real use the sentinel is always last: admissions stop before
        # shutdown enqueues it.)
        assert source.get_nowait() is sentinel


class TestCollectBatchDrop:
    def test_dropped_items_are_excluded_and_notified(self):
        source = queue.Queue()
        for value in (1, -2, 3, -4, 5):
            source.put(value)
        first = source.get()
        dropped = []

        def drop(item):
            if item < 0:
                dropped.append(item)
                return True
            return False

        items, saw = collect_batch(source, first,
                                   BatchPolicy(max_batch=10, max_wait=0.0),
                                   drop=drop)
        assert items == [1, 3, 5] and not saw
        assert dropped == [-2, -4]

    def test_first_item_can_be_dropped(self):
        source = queue.Queue()
        source.put("live")
        items, saw = collect_batch(source, "dead",
                                   BatchPolicy(max_batch=4, max_wait=0.0),
                                   drop=lambda item: item == "dead")
        assert items == ["live"] and not saw

    def test_all_dropped_returns_empty_batch(self):
        source = queue.Queue()
        source.put("dead")
        items, saw = collect_batch(source, "dead",
                                   BatchPolicy(max_batch=4, max_wait=0.0),
                                   drop=lambda item: True)
        assert items == [] and not saw

    def test_dropped_items_do_not_consume_batch_slots(self):
        """Dead work must not displace live work: with max_batch=2 and
        expired items interleaved, the batch still fills with live ones."""
        source = queue.Queue()
        for value in ("dead", "live-1", "dead", "live-2"):
            source.put(value)
        first = source.get()
        items, _ = collect_batch(source, first,
                                 BatchPolicy(max_batch=2, max_wait=0.0),
                                 drop=lambda item: item == "dead")
        assert items == ["live-1", "live-2"]

    def test_sentinel_still_observed_while_dropping(self):
        sentinel = object()
        source = queue.Queue()
        source.put("dead")
        source.put(sentinel)
        items, saw = collect_batch(source, "live",
                                   BatchPolicy(max_batch=10, max_wait=0.0),
                                   sentinel=sentinel,
                                   drop=lambda item: item == "dead")
        assert items == ["live"] and saw
        assert source.get_nowait() is sentinel

    @given(expired=st.lists(st.booleans(), min_size=1, max_size=30),
           max_batch=st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_property_zero_wait_with_expired_items(self, expired, max_batch):
        """With max_wait=0 and a pre-filled backlog of (index, expired)
        items: no expired item is ever batched, live items keep FIFO
        order, and the batch never exceeds max_batch live items."""
        backlog = list(enumerate(expired))
        source = queue.Queue()
        for entry in backlog[1:]:
            source.put(entry)
        dropped = []

        def drop(entry):
            if entry[1]:
                dropped.append(entry)
                return True
            return False

        items, saw = collect_batch(source, backlog[0],
                                   BatchPolicy(max_batch=max_batch,
                                               max_wait=0.0),
                                   drop=drop)
        assert not saw
        assert all(not is_expired for _, is_expired in items)
        assert len(items) <= max_batch
        live = [entry for entry in backlog if not entry[1]]
        assert items == live[:len(items)]  # FIFO order, no skips
        # Everything examined was either batched or dropped; nothing
        # vanished.  (The scan stops once the batch is full.)
        examined = len(items) + len(dropped) + source.qsize()
        assert examined == len(backlog)
        if len(items) < max_batch:  # backlog exhausted without filling up
            assert items == live
            assert dropped == [entry for entry in backlog if entry[1]]


class TestDeadlineAnchoring:
    """The flush deadline is a promise about the *oldest request's*
    total wait, so it anchors at that request's enqueue stamp, not at
    whenever a worker got around to collecting the batch."""

    def test_stale_first_item_flushes_immediately(self):
        # Regression: the item already waited 10 s in the queue (a
        # solve was in flight); pre-fix the deadline restarted at
        # collection time and the item sat out another full max_wait.
        source = queue.Queue()
        item = ("req", time.monotonic() - 10.0)
        start = time.monotonic()
        items, saw = collect_batch(source, item,
                                   BatchPolicy(max_batch=8, max_wait=0.25),
                                   enqueued_at=lambda it: it[1])
        elapsed = time.monotonic() - start
        assert items == [item] and not saw
        assert elapsed < 0.1

    def test_partially_spent_budget_waits_only_the_remainder(self):
        source = queue.Queue()
        item = ("req", time.monotonic() - 0.2)
        start = time.monotonic()
        items, _ = collect_batch(source, item,
                                 BatchPolicy(max_batch=8, max_wait=0.3),
                                 enqueued_at=lambda it: it[1])
        elapsed = time.monotonic() - start
        assert items == [item]
        assert 0.05 <= elapsed < 0.25  # ~0.1 s remained of the budget

    def test_fresh_first_item_still_waits_the_full_window(self):
        source = queue.Queue()
        item = ("req", time.monotonic())
        start = time.monotonic()
        items, _ = collect_batch(source, item,
                                 BatchPolicy(max_batch=8, max_wait=0.05),
                                 enqueued_at=lambda it: it[1])
        elapsed = time.monotonic() - start
        assert items == [item]
        assert 0.04 <= elapsed < 1.0

    def test_anchor_comes_from_first_admitted_not_first_dropped(self):
        # The dropped first item never waited for this batch; the
        # deadline anchors at the first *admitted* item, whose budget
        # here is already spent — so collection returns immediately.
        source = queue.Queue()
        live = ("live", time.monotonic() - 10.0)
        source.put(live)
        start = time.monotonic()
        items, _ = collect_batch(source, ("dead", time.monotonic()),
                                 BatchPolicy(max_batch=8, max_wait=0.25),
                                 drop=lambda it: it[0] == "dead",
                                 enqueued_at=lambda it: it[1])
        elapsed = time.monotonic() - start
        assert items == [live]
        assert elapsed < 0.1


class TestSuggestedPolicy:
    def test_derived_knobs_respect_clamps(self):
        policy = suggested_policy(200)
        assert 1 <= policy.max_batch <= MAX_BATCH_CEILING
        assert MIN_WAIT <= policy.max_wait <= MAX_WAIT

    def test_explicit_overrides_win_individually(self):
        policy = suggested_policy(200, max_batch=7)
        assert policy.max_batch == 7
        assert MIN_WAIT <= policy.max_wait <= MAX_WAIT  # still derived
        policy = suggested_policy(200, max_wait=0.001)
        assert policy.max_wait == 0.001

    def test_deterministic_per_system_size(self):
        assert suggested_policy(160) == suggested_policy(160)

    def test_invalid_n_panels(self):
        with pytest.raises(ServeError):
            suggested_policy(2)
