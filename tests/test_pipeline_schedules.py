"""Tests for the hybrid schedules, metrics, traces, and autotuner."""

import math

import pytest

from repro.errors import ScheduleError
from repro.hardware import paper_workstation
from repro.pipeline import (
    TaskKind,
    Workload,
    build_trace,
    cpu_only,
    default_stages,
    dual_accelerator,
    evaluate,
    hybrid,
    lower_bound_gap,
    predicted_optimum_distribution,
    render_ascii,
    sequential_offload,
    simulate,
    tune_distribution,
    tune_slices,
)


@pytest.fixture(scope="module")
def workload():
    return Workload.paper_reference("single")


@pytest.fixture(scope="module")
def gpu_station():
    return paper_workstation(sockets=2, accelerator="k80-half", precision="single")


@pytest.fixture(scope="module")
def phi_station():
    return paper_workstation(sockets=2, accelerator="phi", precision="single")


@pytest.fixture(scope="module")
def dual_station():
    return paper_workstation(sockets=2, accelerator="k80-dual", precision="single")


@pytest.fixture(scope="module")
def cpu_baseline(workload):
    station = paper_workstation(sockets=2, precision="single")
    return evaluate(simulate(cpu_only(workload, station.cpu)))


class TestCpuOnly:
    def test_wall_is_assembly_plus_solve(self, cpu_baseline):
        assert cpu_baseline.wall_time == pytest.approx(
            cpu_baseline.assembly_busy + cpu_baseline.solve_busy
        )

    def test_matches_paper_baseline(self, cpu_baseline):
        # Paper: 2x CPU single precision W = 3.80.
        assert cpu_baseline.wall_time == pytest.approx(3.80, abs=0.1)


class TestHybridSchedule:
    def test_needs_accelerator(self, workload):
        station = paper_workstation(sockets=2, precision="single")
        with pytest.raises(ScheduleError, match="accelerator"):
            hybrid(workload, station, 5)

    def test_default_stages(self, gpu_station, phi_station):
        assert default_stages(gpu_station.accelerator) == 2
        assert default_stages(phi_station.accelerator) == 3

    def test_invalid_stages(self, workload, gpu_station):
        with pytest.raises(ScheduleError, match="stages"):
            hybrid(workload, gpu_station, 5, stages=4)

    def test_two_stage_copy_on_accelerator_queue(self, workload, gpu_station):
        schedule = hybrid(workload, gpu_station, 4, stages=2)
        copies = [t for t in schedule.tasks if t.kind is TaskKind.TRANSFER
                  and t.resource != "cpu"]
        assert all(task.resource == "accel" for task in copies)

    def test_three_stage_copy_on_link(self, workload, phi_station):
        schedule = hybrid(workload, phi_station, 4, stages=3)
        copies = [t for t in schedule.tasks if t.kind is TaskKind.TRANSFER
                  and t.resource != "cpu"]
        assert all(task.resource == "link" for task in copies)

    def test_slices_cover_batch(self, workload, gpu_station):
        schedule = hybrid(workload, gpu_station, 7)
        solves = [t for t in schedule.tasks if t.kind is TaskKind.SOLVE]
        assert sum(task.batch for task in solves) == workload.batch

    def test_sequential_offload_is_one_slice(self, workload, gpu_station):
        sequential = simulate(sequential_offload(workload, gpu_station)).makespan
        one_slice = simulate(hybrid(workload, gpu_station, 1)).makespan
        assert sequential == pytest.approx(one_slice)

    def test_interleaving_beats_sequential(self, workload, gpu_station):
        sequential = simulate(sequential_offload(workload, gpu_station)).makespan
        interleaved = simulate(hybrid(workload, gpu_station, 10)).makespan
        assert interleaved < sequential

    def test_hybrid_beats_cpu_only(self, workload, gpu_station, cpu_baseline):
        metrics = evaluate(simulate(hybrid(workload, gpu_station, 10)))
        assert metrics.wall_time < cpu_baseline.wall_time

    def test_overhead_identity(self, workload, gpu_station):
        metrics = evaluate(simulate(hybrid(workload, gpu_station, 10)))
        assert metrics.overhead == pytest.approx(
            metrics.wall_time - metrics.solve_busy
        )

    def test_overhead_shrinks_with_slices(self, workload, gpu_station):
        one = evaluate(simulate(hybrid(workload, gpu_station, 1))).overhead
        ten = evaluate(simulate(hybrid(workload, gpu_station, 10))).overhead
        assert ten < one / 3

    def test_solve_busy_grows_with_slices(self, workload, gpu_station):
        few = evaluate(simulate(hybrid(workload, gpu_station, 1))).solve_busy
        many = evaluate(simulate(hybrid(workload, gpu_station, 40))).solve_busy
        assert many > few

    def test_exposed_assembly_shrinks_with_slices(self, workload, phi_station):
        few = evaluate(simulate(hybrid(workload, phi_station, 1)))
        many = evaluate(simulate(hybrid(workload, phi_station, 20)))
        assert many.assembly_exposed < few.assembly_exposed / 5

    def test_phi_overhead_exceeds_gpu(self, workload, gpu_station, phi_station):
        gpu = evaluate(simulate(hybrid(workload, gpu_station, 20)))
        phi = evaluate(simulate(hybrid(workload, phi_station, 20)))
        assert phi.overhead > gpu.overhead

    def test_lower_bound_gap(self, workload, gpu_station):
        metrics = evaluate(simulate(hybrid(workload, gpu_station, 10)))
        gap = lower_bound_gap(metrics)
        # Paper: within 10-20 % of the solve-time lower bound.
        assert 0.0 < gap < 0.25


class TestDualAccelerator:
    def test_needs_two_accelerators(self, workload, gpu_station):
        with pytest.raises(ScheduleError, match="two accelerators"):
            dual_accelerator(workload, gpu_station, 0.75, 10)

    def test_gpu2_tasks_present(self, workload, dual_station):
        schedule = dual_accelerator(workload, dual_station, 0.75, 10)
        gpu2 = [t for t in schedule.tasks if t.resource == "accel1"]
        assert len(gpu2) == 2  # one assembly, one solve
        assert {t.kind for t in gpu2} == {TaskKind.ASSEMBLE, TaskKind.SOLVE}

    def test_distribution_one_has_no_gpu2_work(self, workload, dual_station):
        schedule = dual_accelerator(workload, dual_station, 1.0, 10)
        assert not [t for t in schedule.tasks if t.resource == "accel1"]

    def test_batch_conservation(self, workload, dual_station):
        schedule = dual_accelerator(workload, dual_station, 0.7, 10)
        solves = [t for t in schedule.tasks if t.kind is TaskKind.SOLVE]
        assert sum(task.batch for task in solves) == workload.batch

    def test_dual_beats_single_gpu(self, workload, dual_station, gpu_station):
        dual = simulate(dual_accelerator(workload, dual_station, 0.75, 10)).makespan
        single = simulate(hybrid(workload, gpu_station, 10)).makespan
        assert dual < single

    def test_reduced_cpu_pool_slows_solves(self, workload, dual_station):
        full = simulate(dual_accelerator(workload, dual_station, 1.0, 10,
                                         cpu_solve_fraction=1.0))
        reduced = simulate(dual_accelerator(workload, dual_station, 1.0, 10))
        assert evaluate(reduced).solve_busy > evaluate(full).solve_busy

    def test_bad_distribution(self, workload, dual_station):
        with pytest.raises(ScheduleError):
            dual_accelerator(workload, dual_station, 0.0, 10)


class TestTrace:
    def test_rows_cover_resources(self, workload, phi_station):
        timeline = simulate(hybrid(workload, phi_station, 5))
        trace = build_trace(timeline)
        assert [row.resource for row in trace.rows] == ["accel", "link", "cpu"]

    def test_segments_ordered_and_disjoint(self, workload, gpu_station):
        trace = build_trace(simulate(hybrid(workload, gpu_station, 8)))
        for row in trace.rows:
            for before, after in zip(row.segments[:-1], row.segments[1:]):
                assert after.start >= before.end - 1e-12

    def test_busy_matches_timeline(self, workload, gpu_station):
        timeline = simulate(hybrid(workload, gpu_station, 8))
        trace = build_trace(timeline)
        for row in trace.rows:
            assert row.busy() == pytest.approx(timeline.busy_seconds(row.resource))

    def test_unknown_resource_raises(self, workload, gpu_station):
        trace = build_trace(simulate(hybrid(workload, gpu_station, 2)))
        with pytest.raises(KeyError):
            trace.row("fpga")

    def test_ascii_render_contains_rows_and_legend(self, workload, phi_station):
        trace = build_trace(simulate(hybrid(workload, phi_station, 5)))
        art = render_ascii(trace)
        assert "accel" in art and "link" in art and "cpu" in art
        assert "legend" in art
        assert "a = assembly" in art

    def test_ascii_width_respected(self, workload, gpu_station):
        trace = build_trace(simulate(hybrid(workload, gpu_station, 3)))
        art = render_ascii(trace, width=40)
        for line in art.splitlines():
            assert len(line) <= 40 + 20  # label + bars + border


class TestAutotune:
    def test_slice_optimum_in_paper_range(self, workload, gpu_station):
        result = tune_slices(workload, gpu_station)
        assert 5 <= result.best_parameter <= 32

    def test_sweep_contains_all_candidates(self, workload, gpu_station):
        result = tune_slices(workload, gpu_station, candidates=(1, 5, 10))
        assert [p for p, _ in result.sweep] == [1.0, 5.0, 10.0]

    def test_best_is_minimum(self, workload, gpu_station):
        result = tune_slices(workload, gpu_station)
        walls = [metrics.wall_time for _, metrics in result.sweep]
        assert result.best_wall_time == pytest.approx(min(walls))

    def test_distribution_optimum_near_three_quarters(self, workload, dual_station):
        result = tune_distribution(workload, dual_station)
        assert 0.6 <= result.best_parameter <= 0.9

    def test_empty_candidates_raise(self, workload, gpu_station):
        with pytest.raises(ScheduleError):
            tune_slices(workload, gpu_station, candidates=())

    def test_closed_form_distribution(self):
        # Equal unit costs -> split in half.
        assert predicted_optimum_distribution(1.0, 1.0) == pytest.approx(0.5)
        # Paper's regime: hybrid ~3x faster per candidate -> distr ~0.75.
        assert predicted_optimum_distribution(1.0, 3.0) == pytest.approx(0.75)
        assert predicted_optimum_distribution(0.0, 0.0) is None
