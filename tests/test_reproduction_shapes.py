"""Shape-level reproduction checks against the paper's Tables 3-5.

These tests are the scientific core of the test suite: they assert that
the calibrated simulator reproduces *the paper's findings* — row values
within a modest tolerance, orderings, optima locations, and the
Section 7 headline claims.
"""

import pytest

from repro.experiments import hybrid_tables as ht
from repro.experiments.headline import measured_values
from repro.experiments.paper_data import (
    BASELINES,
    HEADLINE_CLAIMS,
    TABLE3,
    TABLE4,
    TABLE5,
)
from repro.precision import Precision

PRECISIONS = (Precision.SINGLE, Precision.DOUBLE)
SOCKETS = (1, 2)


@pytest.fixture(scope="module")
def table3_metrics():
    return {
        (precision, sockets): dict(zip(
            ht.PAPER_SLICES, ht.hybrid_sweep("k80-half", precision, sockets)
        ))
        for precision in PRECISIONS for sockets in SOCKETS
    }


@pytest.fixture(scope="module")
def table4_metrics():
    return {
        (precision, sockets): dict(zip(
            ht.PAPER_SLICES, ht.hybrid_sweep("phi", precision, sockets)
        ))
        for precision in PRECISIONS for sockets in SOCKETS
    }


@pytest.fixture(scope="module")
def table5_metrics():
    return {
        (precision, sockets): dict(zip(
            ht.PAPER_DISTRIBUTIONS, ht.dual_sweep(precision, sockets)
        ))
        for precision in PRECISIONS for sockets in SOCKETS
    }


class TestBaselines:
    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("sockets", SOCKETS)
    def test_cpu_baseline_within_3_percent(self, precision, sockets):
        metrics = ht.baseline_metrics(precision, sockets)
        paper = BASELINES[(precision, sockets)]
        assert metrics.wall_time == pytest.approx(paper.wall, rel=0.03)
        assert metrics.assembly_busy == pytest.approx(paper.assembly, rel=0.03)
        assert metrics.solve_busy == pytest.approx(paper.solve, rel=0.03)


class TestTable3:
    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("sockets", SOCKETS)
    def test_wall_times_within_10_percent(self, table3_metrics, precision, sockets):
        for slices, paper in TABLE3[(precision, sockets)].items():
            simulated = table3_metrics[(precision, sockets)][slices]
            assert simulated.wall_time == pytest.approx(paper.wall, rel=0.10), (
                f"{precision}, {sockets}x CPU, {slices} slices"
            )

    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("sockets", SOCKETS)
    def test_assembly_constant_across_slices(self, table3_metrics, precision,
                                             sockets):
        sweep = table3_metrics[(precision, sockets)]
        values = [sweep[s].assembly_busy for s in ht.PAPER_SLICES]
        assert max(values) - min(values) < 0.1 * max(values)

    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("sockets", SOCKETS)
    def test_speedups_within_15_percent(self, table3_metrics, precision, sockets):
        for slices, paper in TABLE3[(precision, sockets)].items():
            simulated = table3_metrics[(precision, sockets)][slices]
            assert simulated.speedup == pytest.approx(paper.speedup, rel=0.15)

    def test_interleaving_contributes(self, table3_metrics):
        """Paper: the hiding scheme 'contributes significantly'."""
        for sweep in table3_metrics.values():
            assert sweep[10].wall_time < 0.85 * sweep[1].wall_time


class TestTable4:
    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("sockets", SOCKETS)
    def test_wall_times_within_12_percent(self, table4_metrics, precision, sockets):
        for slices, paper in TABLE4[(precision, sockets)].items():
            simulated = table4_metrics[(precision, sockets)][slices]
            assert simulated.wall_time == pytest.approx(paper.wall, rel=0.12), (
                f"{precision}, {sockets}x CPU, {slices} slices"
            )

    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("sockets", SOCKETS)
    def test_exposed_assembly_shrinks(self, table4_metrics, precision, sockets):
        sweep = table4_metrics[(precision, sockets)]
        exposed = [sweep[s].assembly_exposed for s in ht.PAPER_SLICES]
        assert exposed[-1] < exposed[0]
        # and roughly tracks the paper at 5-20 slices (s=1 is anomalous
        # in the paper's own data).
        for slices in (5, 10, 20):
            paper = TABLE4[(precision, sockets)][slices].assembly
            assert sweep[slices].assembly_exposed == pytest.approx(paper, abs=0.25)

    def test_gpu_outperforms_phi(self, table3_metrics, table4_metrics):
        """Paper Section 5: GPU is ~10-20 % faster than the Phi."""
        for key in table3_metrics:
            gpu_best = min(m.wall_time for m in table3_metrics[key].values())
            phi_best = min(m.wall_time for m in table4_metrics[key].values())
            assert gpu_best < phi_best
            assert phi_best / gpu_best < 1.45


class TestTable5:
    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("sockets", SOCKETS)
    def test_wall_times_within_15_percent(self, table5_metrics, precision, sockets):
        for distr, paper in TABLE5[(precision, sockets)].items():
            simulated = table5_metrics[(precision, sockets)][distr]
            assert simulated.wall_time == pytest.approx(paper.wall, rel=0.15), (
                f"{precision}, {sockets}x CPU, distr {distr}"
            )

    def test_dual_gpu_beats_single_gpu(self, table5_metrics, table3_metrics):
        """Paper: 20-30 % improvement over the single-GPU scheme."""
        for key in table5_metrics:
            dual_best = min(m.wall_time for m in table5_metrics[key].values())
            single_best = min(m.wall_time for m in table3_metrics[key].values())
            assert dual_best < single_best

    def test_optimum_distribution_in_paper_band(self, table5_metrics):
        for key, sweep in table5_metrics.items():
            best = min(sweep, key=lambda d: sweep[d].wall_time)
            assert 0.70 <= best <= 0.80


class TestHeadlineClaims:
    @pytest.fixture(scope="class")
    def values(self):
        return measured_values()

    @pytest.mark.parametrize("claim_key", sorted(HEADLINE_CLAIMS))
    def test_claim_band(self, values, claim_key):
        claim = HEADLINE_CLAIMS[claim_key]
        assert claim.holds(values[claim_key]), (
            f"{claim.description}: simulated {values[claim_key]:.2f} outside "
            f"[{claim.low}, {claim.high}]"
        )
