"""In-process tests: router, placement, migration, cluster metrics."""

import json
import time

import numpy as np
import pytest

from repro.cli import main
from repro.cluster import ClusterRouter, parse_replica
from repro.cluster.metrics import aggregate_cluster, merge_snapshots
from repro.cluster.placement import JobPlacer, PlacementJournal
from repro.core.api import AnalyzeRequest
from repro.errors import ClusterError, OverloadedError, ServeError
from repro.jobs import JobState
from repro.serve import AnalysisService, start_server

SPEC = {"seed": 7, "checkpoint_every": 2,
        "ga": {"population_size": 10, "generations": 4, "keep_best": 2},
        "fitness": {"n_panels": 60}}

#: A longer spec for the migration test: heavy enough per generation
#: that the job is still mid-run when its replica dies after the first
#: checkpoint lands on disk.
LONG_SPEC = {"seed": 7, "checkpoint_every": 2,
             "ga": {"population_size": 24, "generations": 10, "keep_best": 2},
             "fitness": {"n_panels": 200}}


def reference_history(spec):
    from repro.jobs import JobSpec, history_to_dict
    from repro.optimize import GeneticOptimizer

    parsed = JobSpec.from_dict(spec)
    history = GeneticOptimizer(
        evaluator=parsed.fitness_evaluator(), config=parsed.ga_config(),
    ).run(np.random.default_rng(parsed.seed))
    return history_to_dict(history)


def payload(alpha):
    return {"airfoil": "2412", "alpha_degrees": float(alpha),
            "reynolds": 0, "n_panels": 60}


def key_of(alpha):
    return AnalyzeRequest.from_dict(payload(alpha)).cache_key()


class Cluster:
    """Three live in-process replicas behind one router."""

    def __init__(self, tmp_path, *, state_dir=None, jobs=True):
        self.services, self.servers, specs = [], [], []
        for index in range(3):
            jobs_dir = str(tmp_path / f"jobs-{index}") if jobs else None
            service = AnalysisService(max_batch=8, max_wait=0.005,
                                      cache_size=64, n_workers=1,
                                      queue_limit=64, jobs_dir=jobs_dir,
                                      job_slots=1)
            server = start_server(service)
            self.services.append(service)
            self.servers.append(server)
            spec = f"127.0.0.1:{server.port}"
            if jobs_dir is not None:
                spec += f"={jobs_dir}"
            specs.append(spec)
        self.router = ClusterRouter(specs, state_dir=state_dir,
                                    health_interval=0.05, down_after=2,
                                    timeout=30.0).start()
        self.names = [f"127.0.0.1:{server.port}" for server in self.servers]

    def replica_index(self, name):
        return self.names.index(name)

    def kill(self, index):
        """Simulate a replica death: stop HTTP, checkpoint and halt the
        service (the on-disk state a crashed process leaves behind)."""
        self.servers[index].stop()
        assert self.services[index].close(timeout=30.0)

    def close(self):
        self.router.close()
        for index, server in enumerate(self.servers):
            server.stop()
            self.services[index].close(timeout=30.0)


@pytest.fixture
def cluster(tmp_path):
    built = Cluster(tmp_path, state_dir=str(tmp_path / "router-state"))
    yield built
    built.close()


class TestAnalyzeRouting:
    def test_result_matches_single_node_and_counts(self, cluster):
        record = cluster.router.analyze(payload(4.0))
        assert 0.6 < record["cl"] < 0.9
        assert cluster.router.metrics.get("routed") == 1

    def test_identical_requests_stick_to_one_replica(self, cluster):
        """Cache affinity: the same key always lands on the same
        replica, so repeats are cache hits on exactly one node."""
        for _ in range(4):
            cluster.router.analyze(payload(3.0))
        owner = cluster.router.ring.lookup(key_of(3.0))
        hits = {name: cluster.services[cluster.replica_index(name)]
                .cache.stats()["hits"] for name in cluster.names}
        assert hits[owner] == 3
        assert all(count == 0 for name, count in hits.items()
                   if name != owner)

    def test_distinct_keys_spread_over_replicas(self, cluster):
        owners = {cluster.router.ring.lookup(key_of(alpha))
                  for alpha in np.linspace(-5.0, 5.0, 12)}
        assert len(owners) >= 2

    def test_replica_rejection_propagates_as_is(self, cluster):
        with pytest.raises(ServeError, match="unknown request fields"):
            cluster.router.analyze({"airfoil": "2412", "bogus": 1})
        assert cluster.router.metrics.get("proxy_errors") == 1

    def test_failover_to_next_ring_node(self, cluster):
        # Find a key owned by replica 0, then kill replica 0.
        victim = cluster.names[0]
        alpha = next(a / 10.0 for a in range(200)
                     if cluster.router.ring.lookup(key_of(a / 10.0)) == victim)
        cluster.kill(0)
        record = cluster.router.analyze(payload(alpha))
        assert 0 < abs(record["cl"]) < 2.0 or record["cl"] == 0.0
        assert cluster.router.metrics.get("failovers") >= 1
        # And it landed exactly where the ring says the key inherits.
        heir = cluster.router.ring.preference(key_of(alpha), 2)[1]
        service = cluster.services[cluster.replica_index(heir)]
        assert service.metrics_snapshot()["requests"]["completed"] >= 1

    def test_batch_preserves_order_and_isolates_errors(self, cluster):
        results = cluster.router.analyze_batch([
            payload(0.0),
            {"airfoil": "99", "n_panels": 60},  # invalid NACA code
            payload(4.0),
        ])
        assert len(results) == 3
        assert results[0]["cl"] < results[2]["cl"]  # order preserved
        assert "error" in results[1] and results[1]["type"]
        assert results[2]["cl"] > 0.5
        assert cluster.router.metrics.get("routed_batch") == 1
        assert cluster.router.metrics.get("fanout_requests") >= 1

    def test_batch_survives_a_dead_replica(self, cluster):
        cluster.kill(1)
        results = cluster.router.analyze_batch(
            [payload(alpha) for alpha in np.linspace(0.0, 4.0, 9)])
        assert len(results) == 9
        assert all("error" not in result for result in results)

    def test_draining_replica_gets_no_new_work(self, cluster):
        victim = cluster.router.ring.lookup(key_of(2.0))
        cluster.router.health.set_draining(victim)
        cluster.router.analyze(payload(2.0))
        service = cluster.services[cluster.replica_index(victim)]
        assert service.metrics_snapshot()["requests"]["admitted"] == 0
        # No failover was charged: draining is placement, not failure.
        assert cluster.router.metrics.get("failovers") == 0


class TestJobPlacementAndMigration:
    def test_submit_places_and_completes(self, cluster):
        record = cluster.router.submit_job(dict(SPEC))
        assert record["state"] == JobState.PENDING
        assert record["replica"] in cluster.names
        assert cluster.router.metrics.get("jobs_placed") == 1
        deadline = time.monotonic() + 120.0
        while True:
            current = cluster.router.job(record["id"])
            if current["state"] in JobState.TERMINAL:
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert current["state"] == JobState.DONE
        placement = cluster.router.journal.get(
            cluster.router.journal.by_job_id(record["id"]).job_key)
        assert not placement.live

    def test_duplicate_job_key_is_idempotent_cluster_wide(self, cluster):
        spec = dict(SPEC, job_key="exp/run-1")
        first = cluster.router.submit_job(dict(spec))
        second = cluster.router.submit_job(dict(spec))
        assert second["id"] == first["id"]
        assert second["replica"] == first["replica"]
        assert cluster.router.metrics.get("jobs_placed") == 1
        document = cluster.router.metrics_document()
        assert document["cluster"]["jobs"]["duplicate_submits"] == 1
        assert document["cluster"]["jobs"]["submitted"] == 1

    def test_jobs_listing_merges_replicas(self, cluster):
        one = cluster.router.submit_job(dict(SPEC, job_key="list/a"))
        two = cluster.router.submit_job(
            dict(SPEC, seed=8, job_key="list/b"))
        listed = {record["id"]: record for record in cluster.router.jobs()}
        assert one["id"] in listed and two["id"] in listed
        assert listed[one["id"]]["replica"] in cluster.names

    def test_dead_replica_jobs_migrate_and_resume(self, cluster):
        """The tentpole scenario, in process: kill the replica running
        a checkpointed job; the router stages the checkpoint on a
        survivor and resubmits, and the finished history is
        byte-identical to an uninterrupted run."""
        record = cluster.router.submit_job(dict(LONG_SPEC))
        home = record["replica"]
        index = cluster.replica_index(home)
        checkpoint = (cluster.services[index].jobs.store
                      ._checkpoint_path(record["id"]))
        deadline = time.monotonic() + 120.0
        import os
        while not os.path.exists(checkpoint):
            assert time.monotonic() < deadline, "checkpoint never appeared"
            time.sleep(0.02)
        cluster.kill(index)
        # Health detects the death; migration stages + resubmits.
        while cluster.router.metrics.get("jobs_migrated") < 1:
            assert time.monotonic() < deadline, "job never migrated"
            time.sleep(0.02)
        assert cluster.router.metrics.get("checkpoints_staged") == 1
        placement = cluster.router.journal.by_job_id(record["id"])
        assert placement.replica != home
        assert placement.migrations == 1
        while True:
            try:
                current = cluster.router.job(record["id"])
            except OverloadedError:
                current = None
            if current is not None and current["state"] in JobState.TERMINAL:
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert current["state"] == JobState.DONE
        assert current["replica"] == placement.replica
        assert json.dumps(current["result"]["history"], sort_keys=True) == \
            json.dumps(reference_history(LONG_SPEC), sort_keys=True)
        # The survivor *resumed* (loaded the staged checkpoint): it did
        # not recompute the generations done before the death.
        survivor = cluster.services[cluster.replica_index(placement.replica)]
        generations = survivor.jobs.metrics_snapshot()["generations_completed"]
        assert generations < LONG_SPEC["ga"]["generations"]


class TestClusterIntrospection:
    def test_metrics_document_shape(self, cluster):
        cluster.router.analyze(payload(1.0))
        document = cluster.router.metrics_document()
        assert set(document) == {"router", "cluster", "replicas"}
        assert document["router"]["routed"] == 1
        assert set(document["router"]["health"]) == set(cluster.names)
        assert document["cluster"]["requests"]["admitted"] == 1
        assert sorted(document["replicas"]) == sorted(cluster.names)

    def test_unreachable_replica_is_marked(self, cluster):
        cluster.kill(2)
        document = cluster.router.metrics_document()
        assert document["replicas"][cluster.names[2]] == {"unreachable": True}

    def test_status_document(self, cluster):
        cluster.router.submit_job(dict(SPEC, job_key="status/a"))
        status = cluster.router.status()
        assert status["ring"]["replicas"] == 3
        assert status["ring"]["vnodes"] == cluster.router.ring.vnodes
        assert len(status["placements"]) == 1
        total_live = sum(entry["live_jobs"]
                         for entry in status["replicas"].values())
        assert total_live == 1

    def test_healthz_degrades_when_all_down(self, cluster):
        assert cluster.router.healthz()["status"] == "ok"
        for index in range(3):
            cluster.kill(index)
        cluster.router.health.check_now()
        cluster.router.health.check_now()
        health = cluster.router.healthz()
        assert health["status"] == "degraded"
        assert health["routable"] == 0


class TestTopologyValidation:
    @pytest.mark.parametrize("spec", [
        "", "   ", "no-port", "https://127.0.0.1:8000", "127.0.0.1:not-a-port",
        "127.0.0.1:0", "127.0.0.1:70000", ":8000", "127.0.0.1:8000=",
        "http://127.0.0.1:8000/path:1",
    ])
    def test_malformed_replica_rejected(self, spec):
        with pytest.raises(ClusterError):
            parse_replica(spec)

    def test_parse_accepts_url_and_hostport_and_jobs_dir(self):
        assert parse_replica("http://10.0.0.1:8001") == ("10.0.0.1", 8001, None)
        assert parse_replica("10.0.0.1:8001") == ("10.0.0.1", 8001, None)
        assert parse_replica("10.0.0.1:8001=/var/jobs") == \
            ("10.0.0.1", 8001, "/var/jobs")

    def test_duplicate_replicas_rejected(self):
        with pytest.raises(ClusterError, match="duplicate"):
            ClusterRouter(["127.0.0.1:9000", "http://127.0.0.1:9000"])

    def test_empty_topology_rejected(self):
        with pytest.raises(ClusterError, match="at least one"):
            ClusterRouter([])

    def test_cli_route_fails_fast_on_bad_replica(self, capsys):
        assert main(["cluster", "route", "--replica", "bogus"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_cli_route_fails_fast_without_replicas(self, capsys):
        assert main(["cluster", "route"]) == 1
        assert "--replica" in capsys.readouterr().err


class TestClusterHTTP:
    """The router's HTTP front end, driven by the ordinary ServeClient."""

    @pytest.fixture
    def served(self, cluster):
        from repro.cluster import start_cluster_server
        from repro.serve import ServeClient

        server = start_cluster_server(cluster.router)
        client = ServeClient(port=server.port)
        yield server, client
        client.close()
        server.stop()

    def test_analyze_and_batch_over_http(self, served):
        _, client = served
        record = client.analyze("2412", 4.0, n_panels=60)
        assert 0.6 < record["cl"] < 0.9
        results = client.analyze_batch([
            {"airfoil": "2412", "alpha_degrees": 0.0, "n_panels": 60},
            {"airfoil": "2412", "alpha_degrees": 4.0, "n_panels": 60},
        ])
        assert len(results) == 2
        assert results[0]["cl"] < results[1]["cl"]

    def test_replica_status_is_preserved_through_proxy(self, served):
        _, client = served
        from repro.errors import ServeError as Error

        with pytest.raises(Error, match="unknown request fields") as info:
            client.analyze_raw({"airfoil": "2412", "bogus": 1})
        assert info.value.status == 400

    def test_status_endpoint_and_cli(self, served, cluster, capsys):
        server, client = served
        status = client.cluster_status()
        assert status["ring"]["replicas"] == 3
        assert sorted(status["replicas"]) == sorted(cluster.names)
        assert main(["cluster", "status", "--port", str(server.port)]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["ring"] == status["ring"]

    def test_drain_endpoint_toggles_routing(self, served, cluster):
        _, client = served
        name = cluster.names[0]
        reply = json.loads(client._post(
            "/cluster/drain", {"replica": name, "draining": True}))
        assert reply["state"] == "DRAINING"
        assert client.healthz()["replicas"][name] == "DRAINING"
        reply = json.loads(client._post(
            "/cluster/drain", {"replica": name, "draining": False}))
        assert reply["state"] == "UP"

    def test_job_lifecycle_over_http(self, served):
        _, client = served
        record = client.submit_job(SPEC, job_key="http/run-1")
        assert record["replica"]
        final = client.wait_job(record["id"], timeout=120.0)
        assert final["state"] == JobState.DONE
        events = client.job_events(record["id"])
        assert events["events"]
        listed = client.jobs()
        assert any(job["id"] == record["id"] for job in listed)


class TestPlacementJournal:
    def test_roundtrip_replay(self, tmp_path):
        journal = PlacementJournal(str(tmp_path))
        journal.record_placed("k1", "job-k1", "a:1", {"seed": 1})
        journal.record_placed("k2", "job-k2", "a:1", {"seed": 2})
        journal.record_migrated("k1", "b:2")
        journal.record_state("k2", JobState.DONE)
        journal.close()

        reopened = PlacementJournal(str(tmp_path))
        one = reopened.get("k1")
        assert (one.replica, one.migrations, one.live) == ("b:2", 1, True)
        two = reopened.get("k2")
        assert (two.state, two.live) == (JobState.DONE, False)
        assert reopened.live_on("b:2") == [one]
        assert reopened.by_job_id("job-k2") is two
        reopened.close()

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = PlacementJournal(str(tmp_path))
        journal.record_placed("k1", "job-k1", "a:1", {})
        journal.close()
        path = tmp_path / "placements.jsonl"
        path.write_bytes(path.read_bytes() + b'{"type": "migr')
        reopened = PlacementJournal(str(tmp_path))
        assert reopened.torn_lines == 1
        assert reopened.get("k1").replica == "a:1"
        reopened.close()

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "placements.jsonl"
        path.write_text('not json\n{"type": "placed", "job_key": "k", '
                        '"job_id": "j", "replica": "a:1"}\n')
        with pytest.raises(ClusterError, match="corrupt placement line 1"):
            PlacementJournal(str(tmp_path))

    def test_duplicate_placement_rejected(self, tmp_path):
        journal = PlacementJournal(str(tmp_path))
        journal.record_placed("k1", "job-k1", "a:1", {})
        with pytest.raises(ClusterError, match="already placed"):
            journal.record_placed("k1", "job-x", "b:2", {})
        journal.close()

    def test_memory_only_journal_works(self):
        journal = PlacementJournal(None)
        journal.record_placed("k1", "job-k1", "a:1", {})
        assert journal.get("k1").replica == "a:1"
        journal.close()


class TestJobPlacer:
    @staticmethod
    def placer(loads):
        return JobPlacer(lambda name: loads.get(name))

    def test_chooses_least_loaded(self):
        placer = self.placer({
            "a:1": {"slots": 1, "states": {"PENDING": 2, "RUNNING": 1}},
            "b:2": {"slots": 1, "states": {"PENDING": 0, "RUNNING": 1}},
            "c:3": {"slots": 1, "states": {}},
        })
        assert placer.choose(["a:1", "b:2", "c:3"]) == "c:3"

    def test_ties_break_by_name(self):
        placer = self.placer({"b:2": {"states": {}}, "a:1": {"states": {}}})
        assert placer.choose(["b:2", "a:1"]) == "a:1"

    def test_no_jobs_capable_candidate_raises(self):
        placer = self.placer({})
        with pytest.raises(ClusterError, match="no replica can accept"):
            placer.choose(["a:1"])

    def test_migration_plan_follows_free_capacity(self):
        placer = self.placer({
            "a:1": {"slots": 4, "states": {"RUNNING": 0}},   # 4 free
            "b:2": {"slots": 4, "states": {"RUNNING": 3}},   # 1 free
        })
        orphans = [f"k{index}" for index in range(5)]
        plan = placer.plan_migration(orphans, ["a:1", "b:2"])
        assert sorted(plan) == sorted(orphans)
        counts = {"a:1": 0, "b:2": 0}
        for target in plan.values():
            counts[target] += 1
        assert counts == {"a:1": 4, "b:2": 1}

    def test_migration_without_survivors_raises(self):
        placer = self.placer({})
        with pytest.raises(ClusterError, match="no surviving replica"):
            placer.plan_migration(["k1"], [])


class TestMetricsMerge:
    def test_counters_sum_and_quantiles_take_worst(self):
        merged = merge_snapshots({
            "a:1": {"requests": {"admitted": 3},
                    "latency_ms": {"count": 2, "mean": 10.0, "p99": 20.0}},
            "b:2": {"requests": {"admitted": 5},
                    "latency_ms": {"count": 6, "mean": 30.0, "p99": 50.0}},
        })
        assert merged["requests"]["admitted"] == 8
        assert merged["latency_ms"]["count"] == 8
        assert merged["latency_ms"]["p99"] == 50.0
        assert abs(merged["latency_ms"]["mean"] - 25.0) < 1e-9
        assert "_mean_weight" not in merged["latency_ms"]

    def test_unreachable_contributes_nothing_but_is_reported(self):
        document = aggregate_cluster(
            {"routed": 1},
            {"a:1": {"requests": {"admitted": 2}}, "b:2": None})
        assert document["cluster"]["requests"]["admitted"] == 2
        assert document["replicas"]["b:2"] == {"unreachable": True}

    def test_identity_keys_dropped(self):
        merged = merge_snapshots({
            "a:1": {"started_at": 123.0, "snapshot_seq": 9,
                    "queue_depth": 1},
            "b:2": {"started_at": 456.0, "snapshot_seq": 2,
                    "queue_depth": 2},
        })
        assert "started_at" not in merged
        assert merged["queue_depth"] == 3
