"""Serial/batched generation evaluation parity — the jobs subsystem's
bit-for-bit contract with :meth:`FitnessEvaluator.evaluate`."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizationError
from repro.jobs import BatchedGenerationEvaluator
from repro.optimize import (
    FitnessEvaluator,
    GAConfig,
    GeneticOptimizer,
    GenomeLayout,
)
from repro.panel import PanelSolver
from repro.precision import Precision


def make_evaluator(**overrides):
    settings = dict(layout=GenomeLayout(n_upper=5, n_lower=5),
                    n_panels=60, reynolds=4e5)
    settings.update(overrides)
    return FitnessEvaluator(**settings)


def records_identical(serial, batched):
    """Bit-for-bit equality of two EvaluationRecords (NaN-safe)."""
    for field in ("fitness", "cl", "cd"):
        left = getattr(serial, field)
        right = getattr(batched, field)
        if left is None or right is None:
            assert left is right, f"{field}: {left!r} != {right!r}"
        else:
            assert (np.float64(left).tobytes()
                    == np.float64(right).tobytes()), \
                f"{field}: {left!r} != {right!r}"
    assert serial.failure == batched.failure
    return True


#: Genomes drawn wide enough to hit every evaluate() branch: feasible
#: sections, thin/crossed sections, and negative-lift shapes.
genome_strategy = st.lists(
    st.floats(min_value=-0.12, max_value=0.12, allow_nan=False,
              width=64),
    min_size=10, max_size=10,
).map(lambda genes: np.asarray(genes, dtype=np.float64))


class TestBitParity:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(genome_strategy, min_size=1, max_size=6))
    def test_batched_generation_matches_serial_bit_for_bit(self, genomes):
        evaluator = make_evaluator()
        batched = BatchedGenerationEvaluator(evaluator)
        serial_records = [evaluator.evaluate(genome) for genome in genomes]
        batched_records = batched(genomes)
        assert len(batched_records) == len(serial_records)
        for serial, batch in zip(serial_records, batched_records):
            assert records_identical(serial, batch)

    def test_mixed_population_with_failures(self, rng):
        evaluator = make_evaluator()
        genomes = [
            evaluator.layout.random_genome(rng),          # usually feasible
            np.full(10, 0.03),                            # zero thickness
            np.array([0.02, 0.02, 0.02, 0.02, 0.02,
                      -0.09, -0.10, -0.10, -0.09, -0.04]),  # negative lift
            evaluator.layout.random_genome(rng),
        ]
        batched = BatchedGenerationEvaluator(evaluator)(genomes)
        for genome, record in zip(genomes, batched):
            assert records_identical(evaluator.evaluate(genome), record)

    def test_single_precision_solver_falls_back_to_serial(self):
        evaluator = make_evaluator(
            solver=PanelSolver(precision=Precision.SINGLE)
        )
        batched = BatchedGenerationEvaluator(evaluator)
        assert not batched.batchable
        genome = np.array([0.05, 0.08, 0.08, 0.06, 0.03,
                           -0.02, -0.03, -0.03, -0.02, -0.01])
        assert records_identical(evaluator.evaluate(genome),
                                 batched([genome])[0])


class TestGAIntegration:
    def test_ga_with_batched_evaluate_all_is_identical(self):
        evaluator = make_evaluator()
        config = GAConfig(population_size=10, generations=3)
        serial = GeneticOptimizer(evaluator=evaluator, config=config).run(
            np.random.default_rng(11)
        )
        batched = GeneticOptimizer(
            evaluator=evaluator, config=config,
            evaluate_all=BatchedGenerationEvaluator(evaluator),
        ).run(np.random.default_rng(11))
        assert len(serial.generations) == len(batched.generations)
        for left, right in zip(serial.generations, batched.generations):
            assert left.best_fitness == right.best_fitness
            assert left.mean_fitness == right.mean_fitness
            assert left.feasible_fraction == right.feasible_fraction
            for a, b in zip(left.best, right.best):
                assert np.array_equal(a.genome, b.genome)
                assert a.fitness == b.fitness

    def test_wrong_length_evaluate_all_rejected(self):
        evaluator = make_evaluator()
        config = GAConfig(population_size=8, generations=1)
        optimizer = GeneticOptimizer(
            evaluator=evaluator, config=config,
            evaluate_all=lambda population: [],
        )
        with pytest.raises(OptimizationError, match="8"):
            optimizer.run(np.random.default_rng(0))

    def test_run_from_chaining_matches_single_run(self):
        """One-generation stepping (what the job runner does) is
        exactly one multi-generation run."""
        evaluator = make_evaluator()
        config = GAConfig(population_size=10, generations=3)
        reference = GeneticOptimizer(evaluator=evaluator, config=config).run(
            np.random.default_rng(5)
        )
        from repro.optimize import OptimizationHistory

        rng = np.random.default_rng(5)
        population = [evaluator.layout.random_genome(rng)
                      for _ in range(config.population_size)]
        history = OptimizationHistory()
        step = dataclasses.replace(config, generations=1)
        for generation in range(config.generations):
            population = GeneticOptimizer(
                evaluator=evaluator, config=step,
            ).run_from(population, rng, history=history,
                       generation_offset=generation)
        assert len(history.generations) == len(reference.generations)
        for left, right in zip(reference.generations, history.generations):
            assert left.index == right.index
            assert left.best_fitness == right.best_fitness
            assert np.array_equal(left.champion.genome, right.champion.genome)
