"""Closing the loop for real: a live service with deliberately bad
knobs converges to a batched configuration under ``--autotune apply``,
and the observability surfaces (``/metrics`` workload section,
``/debug/autotune``, Prometheus rendering) tell the story."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterRouter
from repro.cluster.http import start_cluster_server
from repro.errors import ClusterError
from repro.obs.prometheus import render_prometheus
from repro.serve import AnalysisService, start_server


def steady_load(service, *, threads=4, n_panels=64):
    """Closed-loop load generators against the in-process service."""
    stop = threading.Event()
    completed = [0]
    lock = threading.Lock()

    def run():
        while not stop.is_set():
            service.analyze({"airfoil": "0012", "alpha_degrees": 2.0,
                             "n_panels": n_panels})
            with lock:
                completed[0] += 1

    pool = [threading.Thread(target=run, daemon=True) for _ in range(threads)]
    for thread in pool:
        thread.start()

    def throughput(seconds):
        with lock:
            before = completed[0]
        start = time.monotonic()
        time.sleep(seconds)
        with lock:
            after = completed[0]
        return (after - before) / (time.monotonic() - start)

    def shutdown():
        stop.set()
        for thread in pool:
            thread.join(timeout=5.0)

    return throughput, shutdown


class TestAutotuneConvergence:
    def test_apply_escapes_bad_knobs(self):
        """The acceptance gate: max_batch=1/max_wait=0 under steady load
        converges via apply to >= 1.3x the bad-knob throughput, with the
        journal carrying predicted-vs-realized deltas."""
        service = AnalysisService(max_batch=1, max_wait=0.0, cache_size=0,
                                  n_workers=1, queue_limit=512,
                                  trace_sample=1.0, autotune="apply",
                                  autotune_interval=3600.0,
                                  autotune_min_improvement=0.05)
        throughput, shutdown = steady_load(service)
        try:
            time.sleep(2.0)  # warm-up
            baseline = throughput(3.0)
            assert baseline > 0.0
            assert service.policy.max_batch == 1

            first = service.autotuner.run_cycle()
            assert first["action"] == "applied", first
            assert service.policy.max_batch > 1
            assert first["predicted_improvement"] >= 0.05
            assert first["old"]["max_batch"] == 1
            assert first["new"]["max_batch"] == service.policy.max_batch

            tuned = throughput(3.0)
            assert tuned >= 1.3 * baseline, (
                f"autotuned throughput {tuned:.1f} rps is not >= 1.3x "
                f"the bad-knob baseline {baseline:.1f} rps")

            # The next cycle realizes the applied decision's delta.
            service.autotuner.run_cycle()
            applied = service.autotuner.journal()[0]
            assert applied["action"] == "applied"
            assert applied["realized_throughput_gain"] is not None
            assert applied["realized_throughput_gain"] >= 1.3
            assert applied["realized"]["throughput_after_rps"] > (
                applied["realized"]["throughput_before_rps"])

            # /metrics carries the autotune section; Prometheus renders
            # its counters as counters.
            snapshot = service.metrics_snapshot()
            assert snapshot["autotune"]["applies"] >= 1
            assert snapshot["autotune"]["last_action"] in ("applied", "held")
            text = render_prometheus(snapshot)
            assert "# TYPE repro_autotune_applies counter" in text
            assert "# TYPE repro_autotune_decisions gauge" in text
        finally:
            shutdown()
            assert service.close(timeout=10.0)

    def test_advise_observes_but_never_acts(self):
        service = AnalysisService(max_batch=1, max_wait=0.0, cache_size=0,
                                  n_workers=1, queue_limit=512,
                                  trace_sample=1.0, autotune="advise",
                                  autotune_interval=3600.0,
                                  autotune_min_improvement=0.05)
        throughput, shutdown = steady_load(service)
        try:
            time.sleep(2.5)
            decision = service.autotuner.run_cycle()
            assert decision["action"] in ("advised", "held")
            assert service.policy.max_batch == 1
            assert service.policy.max_wait == 0.0
            if decision["action"] == "advised":
                assert decision["new"]["max_batch"] > 1
        finally:
            shutdown()
            assert service.close(timeout=10.0)


class TestWorkloadSection:
    def test_metrics_record_the_problem_mix(self):
        service = AnalysisService(max_batch=4, max_wait=0.002, cache_size=8,
                                  n_workers=1)
        try:
            for _ in range(3):
                service.analyze({"airfoil": "0012", "alpha_degrees": 1.0,
                                 "n_panels": 72})
            service.analyze({"airfoil": "2412", "alpha_degrees": 2.0,
                             "n_panels": 96})
            workload = service.metrics_snapshot()["workload"]
            assert workload["n_panels_histogram"]["72"] == 3
            assert workload["n_panels_histogram"]["96"] == 1
            assert workload["precision_histogram"]["double"] == 4
        finally:
            assert service.close(timeout=10.0)

    def test_cache_hits_still_count_toward_the_mix(self):
        service = AnalysisService(max_batch=4, max_wait=0.002, cache_size=8,
                                  n_workers=1)
        try:
            payload = {"airfoil": "0012", "alpha_degrees": 1.0,
                       "n_panels": 72}
            service.analyze(payload)
            service.analyze(payload)  # cache hit
            workload = service.metrics_snapshot()["workload"]
            assert workload["n_panels_histogram"]["72"] == 2
        finally:
            assert service.close(timeout=10.0)


def http_get(port, route):
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{route}", timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestDebugEndpoint:
    def test_serve_404_when_autotuning_is_off(self):
        service = AnalysisService(max_batch=4, max_wait=0.002, n_workers=1)
        server = start_server(service)
        try:
            status, body = http_get(server.port, "/debug/autotune")
            assert status == 404
            assert "not enabled" in body["error"]
        finally:
            server.stop()
            assert service.close(timeout=10.0)

    def test_serve_debug_document_and_ascii(self):
        service = AnalysisService(max_batch=1, max_wait=0.0, cache_size=0,
                                  n_workers=1, trace_sample=1.0,
                                  autotune="advise",
                                  autotune_interval=3600.0)
        server = start_server(service)
        try:
            service.autotuner.run_cycle()  # held: insufficient traffic
            status, body = http_get(server.port, "/debug/autotune")
            assert status == 200
            assert body["config"]["mode"] == "advise"
            assert body["journal"][0]["reason"] == "insufficient-traffic"

            with urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}"
                    "/debug/autotune?format=ascii", timeout=30) as response:
                assert response.status == 200
                text = response.read().decode()
            assert "decisions" in text or "no sweep yet" in text

            status, _body = http_get(server.port,
                                     "/debug/autotune?format=xml")
            assert status == 400
        finally:
            server.stop()
            assert service.close(timeout=10.0)

    def test_cluster_endpoint_and_weighted_ring(self):
        service = AnalysisService(max_batch=8, max_wait=0.002, n_workers=1)
        replica_server = start_server(service)
        router = ClusterRouter([f"127.0.0.1:{replica_server.port}"],
                               health_interval=0.05,
                               autotune="advise",
                               autotune_interval=3600.0).start()
        front = start_cluster_server(router)
        try:
            status, body = http_get(front.port, "/debug/autotune")
            assert status == 200
            assert body["config"]["mode"] == "advise"
            assert set(body["weights"]) == set(router.replicas)

            # Reweighting swaps the ring atomically and counts itself.
            name = next(iter(router.replicas))
            router.apply_weights({name: 1.0})
            status_doc = router.status()
            assert status_doc["ring"]["weights"][name] == pytest.approx(1.0)
            assert router.metrics.snapshot()["ring_reweights"] == 1
            with pytest.raises(ClusterError):
                router.apply_weights({name: 0.0})
        finally:
            front.stop()
            router.close()
            replica_server.stop()
            assert service.close(timeout=10.0)

    def test_cluster_404_when_off(self):
        service = AnalysisService(max_batch=8, max_wait=0.002, n_workers=1)
        replica_server = start_server(service)
        router = ClusterRouter([f"127.0.0.1:{replica_server.port}"],
                               health_interval=0.05).start()
        front = start_cluster_server(router)
        try:
            status, body = http_get(front.port, "/debug/autotune")
            assert status == 404
            assert "not enabled" in body["error"]
        finally:
            front.stop()
            router.close()
            replica_server.stop()
            assert service.close(timeout=10.0)
