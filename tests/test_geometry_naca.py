"""Tests for the NACA section generators."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import naca, naca4, naca5
from repro.geometry.naca import camber_line_4digit, thickness_distribution


class TestThickness:
    def test_zero_at_endpoints_when_closed(self):
        x = np.array([0.0, 1.0])
        y = thickness_distribution(x, 0.12, closed_te=True)
        assert y[0] == pytest.approx(0.0)
        assert y[1] == pytest.approx(0.0, abs=1e-4)

    def test_open_te_has_finite_thickness(self):
        y = thickness_distribution(np.array([1.0]), 0.12, closed_te=False)
        assert y[0] > 1e-3

    def test_max_thickness_value(self):
        x = np.linspace(0, 1, 2001)
        y = thickness_distribution(x, 0.12)
        assert 2.0 * y.max() == pytest.approx(0.12, abs=2e-3)

    def test_max_thickness_location(self):
        x = np.linspace(0, 1, 2001)
        y = thickness_distribution(x, 0.12)
        assert x[np.argmax(y)] == pytest.approx(0.30, abs=0.02)

    def test_scales_linearly(self):
        x = np.linspace(0.05, 0.95, 10)
        assert thickness_distribution(x, 0.24) == pytest.approx(
            2.0 * thickness_distribution(x, 0.12)
        )


class TestCamberLine:
    def test_symmetric_is_flat(self):
        x = np.linspace(0, 1, 11)
        y, slope = camber_line_4digit(x, 0.0, 0.0)
        assert np.all(y == 0.0) and np.all(slope == 0.0)

    def test_max_camber_at_position(self):
        x = np.linspace(0, 1, 4001)
        y, _ = camber_line_4digit(x, 0.02, 0.4)
        assert y.max() == pytest.approx(0.02, abs=1e-5)
        assert x[np.argmax(y)] == pytest.approx(0.4, abs=0.01)

    def test_slope_zero_at_max_camber(self):
        _, slope = camber_line_4digit(np.array([0.4]), 0.02, 0.4)
        assert slope[0] == pytest.approx(0.0, abs=1e-12)

    def test_slope_continuous_at_junction(self):
        eps = 1e-9
        _, before = camber_line_4digit(np.array([0.4 - eps]), 0.02, 0.4)
        _, after = camber_line_4digit(np.array([0.4 + eps]), 0.02, 0.4)
        assert before[0] == pytest.approx(after[0], abs=1e-6)


class TestNaca4:
    def test_panel_count(self):
        assert naca4("2412", 100).n_panels == 100

    def test_name(self):
        assert naca4("2412", 40).name == "NACA 2412"

    def test_symmetric_section_is_symmetric(self):
        foil = naca4("0012", 200)
        upper, lower = foil.surfaces()
        x = np.linspace(0.02, 0.98, 50)
        y_up = np.interp(x, upper[:, 0], upper[:, 1])
        y_lo = np.interp(x, lower[:, 0], lower[:, 1])
        assert y_up == pytest.approx(-y_lo, abs=1e-10)

    def test_cambered_section_asymmetric(self):
        foil = naca4("4412", 200)
        upper, lower = foil.surfaces()
        assert upper[:, 1].max() > -lower[:, 1].min()

    def test_invalid_designation(self):
        with pytest.raises(GeometryError):
            naca4("24", 100)
        with pytest.raises(GeometryError):
            naca4("24a2", 100)

    def test_odd_panel_count_rejected(self):
        with pytest.raises(GeometryError, match="even"):
            naca4("2412", 101)

    def test_zero_thickness_rejected(self):
        with pytest.raises(GeometryError, match="thickness"):
            naca4("2400", 100)

    def test_closed_trailing_edge(self):
        foil = naca4("2412", 100)
        assert np.allclose(foil.points[0], foil.points[-1])

    def test_uniform_spacing_option(self):
        foil = naca4("0012", 60, spacing_kind="uniform")
        assert foil.n_panels == 60


class TestNaca5:
    def test_23012_generates(self):
        foil = naca5("23012", 120)
        assert foil.n_panels == 120
        assert foil.max_thickness == pytest.approx(0.12, abs=0.01)

    def test_unknown_camber_code(self):
        with pytest.raises(GeometryError, match="camber code"):
            naca5("99912", 100)

    def test_invalid_length(self):
        with pytest.raises(GeometryError):
            naca5("2301", 100)


class TestDispatch:
    def test_four_digit(self):
        assert naca("2412", 60).name == "NACA 2412"

    def test_five_digit(self):
        assert naca("23012", 60).name == "NACA 23012"

    def test_bad_length(self):
        with pytest.raises(GeometryError, match="unsupported"):
            naca("241", 60)
