"""Tests for the heterogeneous multi-accelerator pipeline."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.hardware import HALF_K80, XEON_PHI_7120, custom_workstation, paper_workstation
from repro.pipeline import (
    TaskKind,
    Workload,
    balanced_fractions,
    cpu_only,
    evaluate,
    heterogeneous_schedule,
    hybrid,
    simulate,
    split_batch,
)
from repro.pipeline.heterogeneous import tune_fractions


@pytest.fixture(scope="module")
def hetero_station():
    return paper_workstation(sockets=2, accelerator="k80-half+phi",
                             precision="double")


@pytest.fixture(scope="module")
def workload():
    return Workload.paper_reference("double")


class TestSplitBatch:
    def test_sums_to_batch(self):
        assert sum(split_batch(4000, [0.7, 0.3])) == 4000

    def test_proportions_respected(self):
        shares = split_batch(1000, [0.75, 0.25])
        assert shares == [750, 250]

    def test_largest_remainder(self):
        shares = split_batch(10, [1 / 3, 1 / 3, 1 / 3])
        assert sum(shares) == 10
        assert max(shares) - min(shares) <= 1

    def test_zero_fraction_allowed(self):
        assert split_batch(100, [1.0, 0.0]) == [100, 0]

    def test_invalid_fractions(self):
        with pytest.raises(ScheduleError):
            split_batch(100, [])
        with pytest.raises(ScheduleError):
            split_batch(100, [-0.5, 1.5])


class TestBalancedFractions:
    def test_sums_to_one(self, hetero_station, workload):
        fractions = balanced_fractions(hetero_station, workload)
        assert sum(fractions) == pytest.approx(1.0)

    def test_faster_assembler_gets_more(self, hetero_station, workload):
        fractions = balanced_fractions(hetero_station, workload)
        # accelerators[0] is the K80 half, ~3.4x faster at assembly.
        assert fractions[0] > 0.7

    def test_requires_accelerators(self, workload):
        station = paper_workstation(sockets=2, precision="double")
        with pytest.raises(ScheduleError):
            balanced_fractions(station, workload)


class TestHeterogeneousSchedule:
    def test_both_chains_present(self, hetero_station, workload):
        schedule = heterogeneous_schedule(workload, hetero_station, 8)
        resources = set(schedule.resources)
        assert "accel0" in resources and "accel1" in resources
        assert "link1" in resources  # the Phi's 3-stage chain

    def test_batch_conserved(self, hetero_station, workload):
        schedule = heterogeneous_schedule(workload, hetero_station, 8)
        solves = [t for t in schedule.tasks if t.kind is TaskKind.SOLVE]
        assert sum(task.batch for task in solves) == workload.batch

    def test_zero_share_device_skipped(self, hetero_station, workload):
        schedule = heterogeneous_schedule(workload, hetero_station, 8,
                                          fractions=(1.0, 0.0))
        assert "accel1" not in schedule.resources

    def test_wrong_fraction_count(self, hetero_station, workload):
        with pytest.raises(ScheduleError, match="fractions"):
            heterogeneous_schedule(workload, hetero_station, 8,
                                   fractions=(1.0,))

    def test_single_device_degenerates_to_hybrid(self, workload):
        station = paper_workstation(sockets=2, accelerator="k80-half",
                                    precision="double")
        hetero = simulate(heterogeneous_schedule(workload, station, 10)).makespan
        plain = simulate(hybrid(workload, station, 10)).makespan
        assert hetero == pytest.approx(plain, rel=1e-9)

    def test_beats_phi_alone(self, hetero_station, workload):
        phi_station = paper_workstation(sockets=2, accelerator="phi",
                                        precision="double")
        phi_alone = simulate(hybrid(workload, phi_station, 10)).makespan
        hetero = simulate(
            heterogeneous_schedule(workload, hetero_station, 10)
        ).makespan
        assert hetero < phi_alone

    def test_beats_cpu_baseline(self, hetero_station, workload):
        baseline = evaluate(
            simulate(cpu_only(workload, hetero_station.cpu))
        ).wall_time
        hetero = simulate(
            heterogeneous_schedule(workload, hetero_station, 10)
        ).makespan
        assert hetero < baseline / 2

    def test_transfer_bound_regime_profits_from_second_link(self):
        """At n = 100 (single precision) the per-matrix GPU chain cost
        (assembly + transfer) exceeds the per-matrix CPU solve, so with
        a batch large enough to amortize per-call setups, adding the
        Phi's independent link genuinely wins."""
        workload = Workload(batch=40000, n=100, precision="single")
        gpu_station = paper_workstation(sockets=2, accelerator="k80-half",
                                        precision="single")
        hetero_station = paper_workstation(
            sockets=2, accelerator="k80-half+phi", precision="single"
        )
        gpu_alone = simulate(hybrid(workload, gpu_station, 20)).makespan
        best_fraction, best_metrics, _ = tune_fractions(
            workload, hetero_station, 20
        )
        assert best_metrics.wall_time < gpu_alone
        assert 0.0 < best_fraction < 1.0  # genuinely uses both devices

    def test_solve_bound_regime_ignores_second_device(self):
        """At the paper's own workload the host solve is the bottleneck,
        so the tuner correctly sends (nearly) everything to the GPU —
        the honest answer to 'why didn't the paper combine them?'."""
        workload = Workload.paper_reference("double")
        station = paper_workstation(sockets=2, accelerator="k80-half+phi",
                                    precision="double")
        best_fraction, _, _ = tune_fractions(workload, station, 10)
        assert best_fraction >= 0.95


class TestTuneFractions:
    def test_endpoints_included(self, hetero_station, workload):
        _, _, sweep = tune_fractions(workload, hetero_station, 10,
                                     grid_points=5)
        fractions = [fraction for fraction, _ in sweep]
        assert fractions[0] == 0.0 and fractions[-1] == 1.0

    def test_best_is_minimum(self, hetero_station, workload):
        _, best, sweep = tune_fractions(workload, hetero_station, 10,
                                        grid_points=11)
        assert best.wall_time == pytest.approx(
            min(metrics.wall_time for _, metrics in sweep)
        )

    def test_requires_two_accelerators(self, workload):
        station = paper_workstation(sockets=2, accelerator="k80-half",
                                    precision="double")
        with pytest.raises(ScheduleError):
            tune_fractions(workload, station)


class TestCustomWorkstation:
    def test_arbitrary_combination(self, workload):
        station = custom_workstation([XEON_PHI_7120, XEON_PHI_7120, HALF_K80],
                                     sockets=1, precision="single")
        assert len(station.accelerators) == 3
        schedule = heterogeneous_schedule(
            Workload.paper_reference("single"), station, 8
        )
        solves = [t for t in schedule.tasks if t.kind is TaskKind.SOLVE]
        assert sum(task.batch for task in solves) == 4000
