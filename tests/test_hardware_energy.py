"""Tests for the energy-to-solution model."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware import (
    configuration_energy,
    device_power,
    estimate_energy,
    paper_workstation,
)
from repro.hardware.energy import DEVICE_TDP_W, IDLE_FRACTION
from repro.pipeline import Workload, cpu_only, hybrid, simulate


class TestDevicePower:
    def test_published_tdps(self):
        assert DEVICE_TDP_W["Phi 7120"] == 300.0
        assert DEVICE_TDP_W["0.5x K80"] == 150.0

    def test_idle_below_tdp(self):
        for name in DEVICE_TDP_W:
            tdp, idle = device_power(name)
            assert 0.0 < idle < tdp

    def test_unknown_device(self):
        with pytest.raises(HardwareModelError):
            device_power("FPGA")


class TestEstimateEnergy:
    def test_cpu_only_runs_at_tdp(self):
        """The baseline keeps the CPU busy the whole run: E = TDP * W."""
        station = paper_workstation(sockets=2, precision="double")
        workload = Workload.paper_reference("double")
        timeline = simulate(cpu_only(workload, station.cpu))
        estimate = estimate_energy(timeline, cpu_name=station.cpu.name)
        assert estimate.average_watts == pytest.approx(170.0, rel=1e-6)

    def test_hybrid_charges_idle_accelerator_time(self):
        """The accelerator draws idle power even while the host solves."""
        station = paper_workstation(sockets=2, accelerator="k80-half",
                                    precision="double")
        workload = Workload.paper_reference("double")
        timeline = simulate(hybrid(workload, station, 10))
        estimate = estimate_energy(
            timeline, cpu_name=station.cpu.name,
            accelerator_names=[station.accelerator.name],
        )
        gpu_energy = estimate.per_device_joules["0.5x K80"]
        _, idle = device_power("0.5x K80")
        assert gpu_energy > idle * timeline.makespan  # idle floor + bursts
        assert gpu_energy < 150.0 * timeline.makespan  # never 100 % busy

    def test_dual_gpu_devices_separated(self):
        estimate = configuration_energy(accelerator="k80-dual")
        labels = set(estimate.per_device_joules)
        assert "0.5x K80 #0" in labels and "0.5x K80 #1" in labels


class TestConfigurationComparison:
    @pytest.fixture(scope="class")
    def estimates(self):
        return {
            accel: configuration_energy(accelerator=accel)
            for accel in ("none", "phi", "k80-half", "k80-dual")
        }

    def test_gpu_saves_time_and_energy(self, estimates):
        """The K80 hybrid wins on both axes against the CPU baseline."""
        assert estimates["k80-half"].wall_time < estimates["none"].wall_time
        assert estimates["k80-half"].total_joules < estimates["none"].total_joules

    def test_phi_saves_time_but_not_energy(self, estimates):
        """The Phi's 300 W board with high idle draw costs more energy
        than the CPU-only run despite being 2.3x faster — the classic
        accelerator energy trap, and a conclusion the paper's
        time-only evaluation cannot see."""
        assert estimates["phi"].wall_time < estimates["none"].wall_time
        assert estimates["phi"].total_joules > estimates["none"].total_joules

    def test_second_gpu_costs_energy_for_its_speed(self, estimates):
        """Using both K80 halves is faster but less energy-efficient
        than one half (the second board mostly idles at 30 W)."""
        assert estimates["k80-dual"].wall_time < estimates["k80-half"].wall_time
        assert estimates["k80-dual"].total_joules > estimates["k80-half"].total_joules

    def test_energy_ordering(self, estimates):
        best = min(estimates, key=lambda key: estimates[key].total_joules)
        assert best == "k80-half"
