"""Tests for the streamline tracer."""

import numpy as np
import pytest

from repro.errors import PanelMethodError
from repro.geometry import naca
from repro.panel import solve_airfoil, trace_streamline, trace_streamlines


@pytest.fixture(scope="module")
def flow():
    return solve_airfoil(naca("2412", 120), 5.0)


class TestTraceStreamline:
    def test_follows_stream_function_contour(self, flow):
        line = trace_streamline(flow, (-1.0, 0.3), step=0.03, n_steps=120)
        assert line.stream_function_drift < 1e-5

    def test_moves_downstream(self, flow):
        line = trace_streamline(flow, (-1.0, 0.5), step=0.05, n_steps=80)
        assert line.points[-1, 0] > line.points[0, 0] + 1.0

    def test_arc_length_matches_steps(self, flow):
        steps, size = 60, 0.05
        line = trace_streamline(flow, (-1.0, 0.8), step=size, n_steps=steps)
        assert line.length == pytest.approx(steps * size, rel=0.01)

    def test_does_not_enter_body(self, flow):
        line = trace_streamline(flow, (-1.0, 0.05), step=0.02, n_steps=200)
        foil = flow.airfoil
        # No traced point may be strictly inside the outline: inside
        # points have the boundary stream-function value.
        psi = flow.stream_function_at(line.points)
        interior = np.abs(psi - flow.constant) < 1e-9
        body_band = (line.points[:, 0] > 0.0) & (line.points[:, 0] < 1.0)
        assert not np.any(interior & body_band)

    def test_stops_near_stagnation(self, flow):
        # Seed aimed at the stagnation streamline with a generous budget:
        # tracing may stop early but must never blow up.
        line = trace_streamline(flow, (-2.0, 0.0), step=0.02, n_steps=400)
        assert np.all(np.isfinite(line.points))

    def test_invalid_parameters(self, flow):
        with pytest.raises(PanelMethodError):
            trace_streamline(flow, (0, 1), step=0.0)
        with pytest.raises(PanelMethodError):
            trace_streamline(flow, (0, 1), n_steps=0)


class TestTraceFan:
    def test_line_count(self, flow):
        lines = trace_streamlines(flow, n_lines=5, step=0.05, n_steps=40)
        assert len(lines) == 5

    def test_lines_do_not_cross(self, flow):
        """Streamlines are ordered by their psi value and stay ordered."""
        lines = trace_streamlines(flow, n_lines=5, step=0.04, n_steps=100)
        psi_values = [
            float(flow.stream_function_at(line.points[:1])[0]) for line in lines
        ]
        assert psi_values == sorted(psi_values)
        # At a common downstream station the y-order matches the psi-order.
        station = 2.2
        heights = []
        for line in lines:
            xs = line.points[:, 0]
            if xs.max() < station:
                continue
            heights.append(float(np.interp(station, xs, line.points[:, 1])))
        assert heights == sorted(heights)
