"""Property-based tests: viscous invariants and polar I/O round trips."""

import io

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.viscous import (
    ludwieg_tillmann_cf,
    polar_to_string,
    read_polar,
    solve_thwaites,
    thwaites_h,
    thwaites_l,
)
from repro.viscous.edge_velocity import SurfaceDistribution
from repro.viscous.polar import Polar, PolarPoint


def edge_distributions():
    """Smooth positive edge-velocity distributions U(s) = a + b s."""
    return st.tuples(
        st.floats(0.5, 2.0),  # U at the start
        st.floats(-0.4, 1.5),  # slope
        st.floats(0.3, 1.5),  # surface length
    ).map(lambda t: SurfaceDistribution(
        name="prop",
        s=np.linspace(1e-4, t[2], 200),
        velocity=np.maximum(t[0] + t[1] * np.linspace(1e-4, t[2], 200), 0.05),
        panel_indices=np.arange(200),
    ))


class TestViscousProperties:
    @given(surface=edge_distributions(), nu=st.floats(1e-7, 1e-5))
    @settings(max_examples=50, deadline=None)
    def test_thwaites_invariants(self, surface, nu):
        result = solve_thwaites(surface, nu)
        # Momentum thickness is positive and finite everywhere.
        assert np.all(result.theta > 0)
        assert np.all(np.isfinite(result.theta))
        # Shape factor stays in the laminar range of the correlations.
        assert np.all(result.shape_factor >= 2.0)
        assert np.all(result.shape_factor <= 3.6)
        # Skin friction is non-negative up to any separation point.
        end = result.separation_index or len(surface.s)
        assert np.all(result.cf[:max(end - 1, 1)] >= -1e-12)

    @given(surface=edge_distributions(), nu=st.floats(1e-7, 1e-6))
    @settings(max_examples=30, deadline=None)
    def test_thicker_fluid_thickens_layer(self, surface, nu):
        thin = solve_thwaites(surface, nu)
        thick = solve_thwaites(surface, 4.0 * nu)
        # theta ~ sqrt(nu): quadrupling nu doubles the thickness.
        ratio = thick.theta[-1] / thin.theta[-1]
        assert ratio == pytest.approx(2.0, rel=1e-6)

    @given(h=st.floats(1.2, 2.4), re=st.floats(1e2, 1e7))
    @settings(max_examples=60, deadline=None)
    def test_ludwieg_tillmann_positive_bounded(self, h, re):
        cf = float(ludwieg_tillmann_cf(h, re))
        assert 0.0 < cf < 0.1

    @given(lam=st.floats(-0.2, 0.4))
    @settings(max_examples=60, deadline=None)
    def test_correlations_finite_everywhere(self, lam):
        assert np.isfinite(thwaites_h(lam))
        assert np.isfinite(thwaites_l(lam))
        assert float(thwaites_h(lam)) > 1.9


def polar_points():
    return st.builds(
        PolarPoint,
        alpha_degrees=st.floats(-15.0, 20.0),
        cl=st.floats(-1.5, 2.5),
        cd=st.one_of(st.none(), st.floats(1e-4, 0.5)),
        cm=st.floats(-0.3, 0.1),
        separated=st.booleans(),
    )


class TestPolarIOProperties:
    @given(
        points=st.lists(polar_points(), min_size=1, max_size=12),
        reynolds=st.floats(1e4, 5e7),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, points, reynolds):
        # The file format cannot distinguish separated-with-cd rows;
        # normalize the flag the way the writer does.
        polar = Polar(airfoil_name="prop foil", reynolds=reynolds,
                      points=points)
        back = read_polar(io.StringIO(polar_to_string(polar)))
        assert back.airfoil_name == "prop foil"
        assert back.reynolds == pytest.approx(reynolds, abs=0.51, rel=1e-6)
        assert len(back.points) == len(points)
        for original, parsed in zip(points, back.points):
            assert parsed.alpha_degrees == pytest.approx(
                original.alpha_degrees, abs=1.5e-3
            )
            assert parsed.cl == pytest.approx(original.cl, abs=1e-4)
            if original.cd is None:
                assert parsed.cd is None
            else:
                assert parsed.cd == pytest.approx(original.cd, abs=1e-5)
