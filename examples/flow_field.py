"""Visualize the potential flow around an airfoil.

Solves a NACA section with the panel method, then samples the velocity
and stream-function fields on a grid and renders an ASCII picture of
the flow speed, plus the surface pressure distribution.

Usage::

    python examples/flow_field.py [--designation 2412] [--alpha 6]
"""

import argparse

import numpy as np

from repro.geometry import naca
from repro.panel import Freestream, PanelSolver
from repro.viz import plot_series


def speed_field_art(solution, *, width=78, height=24, margin=0.6) -> str:
    """ASCII art of |V| around the airfoil ('#' = body, darker = slower)."""
    foil = solution.airfoil
    low = foil.points.min(axis=0) - margin
    high = foil.points.max(axis=0) + margin
    xs = np.linspace(low[0], high[0], width)
    ys = np.linspace(low[1], high[1], height)
    grid = np.array([[x, y] for y in ys for x in xs])
    speeds = np.linalg.norm(solution.velocity_at(grid), axis=1)
    psi = solution.stream_function_at(grid)

    # Points inside the body have stream function ~ C (stagnant interior).
    inside = np.abs(psi - solution.constant) < 1e-3
    ramp = " .:-=+*%@"
    v_inf = solution.freestream.speed
    lines = []
    for row in range(height - 1, -1, -1):
        cells = []
        for col in range(width):
            index = row * width + col
            if inside[index]:
                cells.append("#")
                continue
            level = min(speeds[index] / (1.8 * v_inf), 0.999)
            cells.append(ramp[int(level * len(ramp))])
        lines.append("".join(cells))
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designation", default="2412")
    parser.add_argument("--alpha", type=float, default=6.0)
    parser.add_argument("--panels", type=int, default=160)
    parser.add_argument("--svg", metavar="PATH", default=None,
                        help="write a streamline SVG figure to PATH")
    arguments = parser.parse_args()

    foil = naca(arguments.designation, arguments.panels)
    solution = PanelSolver().solve(foil, Freestream.from_degrees(arguments.alpha))
    print(f"{foil.name} at alpha = {arguments.alpha:.1f} deg: "
          f"cl = {solution.lift_coefficient:.3f}, "
          f"cm(c/4) = {solution.moment_coefficient():.4f}")
    print()
    print("flow speed (brighter = faster; '#' = airfoil):")
    print(speed_field_art(solution))
    print()

    # Surface pressure distribution (suction peak on the upper surface).
    upper_mask = solution.airfoil.control_points[:, 1] > 0
    x = solution.airfoil.control_points[:, 0]
    cp = solution.pressure_coefficients
    order = np.argsort(x[upper_mask])
    print(plot_series(
        x[upper_mask][order], -cp[upper_mask][order],
        title="upper-surface -Cp vs x/c", height=12,
    ))
    stagnation_cp = cp.max()
    print(f"\nstagnation Cp = {stagnation_cp:.4f} (ideal: 1.0), "
          f"suction peak Cp = {cp.min():.3f}")

    if arguments.svg:
        from repro.panel import trace_streamlines
        from repro.viz import flow_svg

        lines = trace_streamlines(solution, n_lines=13, spread=1.2,
                                  step=0.03, n_steps=160)
        with open(arguments.svg, "w", encoding="utf-8") as handle:
            handle.write(flow_svg(foil, lines))
        print(f"wrote streamline figure to {arguments.svg}")


if __name__ == "__main__":
    main()
