"""Design-space study: when do accelerators pay off?

The paper fixes the workload at 4000 systems of size 200.  This example
sweeps both knobs — the matrix dimension ``n`` ("in practice n is often
between 100 and 300") and the batch size — and maps where each
configuration wins, how the optimal slice count moves, and where the
hybrid's advantage collapses.

Usage::

    python examples/design_space.py [--precision double]
"""

import argparse

from repro.hardware import paper_workstation
from repro.pipeline import Workload, cpu_only, evaluate, simulate, tune_slices


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--precision", default="double", choices=["single", "double"])
    parser.add_argument("--sockets", type=int, default=2, choices=[1, 2])
    arguments = parser.parse_args()

    host = paper_workstation(sockets=arguments.sockets,
                             precision=arguments.precision)
    stations = {
        name: paper_workstation(sockets=arguments.sockets, accelerator=name,
                                precision=arguments.precision)
        for name in ("phi", "k80-half")
    }

    print(f"sweep at {arguments.precision} precision, "
          f"{arguments.sockets}x CPU baseline\n")
    header = (f"{'n':>5} {'batch':>6} {'cpu W':>8}"
              f" {'phi W':>8} {'phi x':>6} {'phi s*':>6}"
              f" {'gpu W':>8} {'gpu x':>6} {'gpu s*':>6} winner")
    print(header)
    print("-" * len(header))
    for n in (50, 100, 200, 400):
        for batch in (250, 1000, 4000):
            workload = Workload(batch=batch, n=n, precision=arguments.precision)
            baseline = evaluate(simulate(cpu_only(workload, host.cpu)))
            row = [f"{n:5d} {batch:6d} {baseline.wall_time:8.3f}"]
            results = {}
            for name, workstation in stations.items():
                tuned = tune_slices(workload, workstation)
                metrics = tuned.best_metrics.with_baseline(baseline.wall_time)
                results[name] = metrics
                row.append(f" {metrics.wall_time:8.3f} {metrics.speedup:6.2f}"
                           f" {tuned.best_parameter:6.0f}")
            candidates = {"cpu": baseline.wall_time}
            candidates.update(
                {name: metrics.wall_time for name, metrics in results.items()}
            )
            winner = min(candidates, key=candidates.get)
            row.append(f" {winner}")
            print("".join(row))
    print("\ns* = autotuned slice count.  Small batches and small n erode the")
    print("hybrid advantage: per-slice setup costs stop amortizing, exactly")
    print("the overhead regime the paper's Section 4 discusses.")


if __name__ == "__main__":
    main()
