"""Quickstart: analyze an airfoil and simulate the hybrid pipeline.

Runs the library's two headline code paths in under a minute:

1. the panel-method inner solver (lift, drag, moment of a NACA 2412),
2. the hybrid accelerator pipeline (speedup of adding a K80 to the
   paper's dual-socket workstation).

Usage::

    python examples/quickstart.py
"""

from repro import analyze, simulate_hybrid
from repro.viscous import compute_polar
from repro.geometry import naca


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The inner solver: one configuration, full report.
    # ------------------------------------------------------------------
    print("=== Panel-method analysis ===")
    analysis = analyze("2412", alpha_degrees=4.0, reynolds=1e6)
    print(analysis.summary())
    print()

    # A small polar sweep (the kind of curve the optimizer climbs).
    print("=== Drag polar, NACA 2412, Re = 1e6 ===")
    polar = compute_polar(naca("2412", 160), [-4, -2, 0, 2, 4, 6, 8],
                          reynolds=1e6)
    print(f"{'alpha':>6}  {'cl':>7}  {'cd':>8}  {'L/D':>6}")
    for point in polar.points:
        ld = f"{point.lift_to_drag:6.1f}" if point.lift_to_drag else "     -"
        cd = f"{point.cd:8.5f}" if point.cd is not None else "       -"
        note = "  (separated: cd unreliable)" if point.separated else ""
        print(f"{point.alpha_degrees:6.1f}  {point.cl:7.3f}  {cd}  {ld}{note}")
    attached = [p for p in polar.points
                if p.lift_to_drag is not None and not p.separated]
    if attached:
        best = max(attached, key=lambda p: p.lift_to_drag)
        print(f"best attached L/D: {best.lift_to_drag:.1f} "
              f"at alpha = {best.alpha_degrees:.1f} deg")
    else:
        best = polar.best_lift_to_drag()
        print(f"best L/D (all rows flag separation at this Re): "
              f"{best.lift_to_drag:.1f} at alpha = {best.alpha_degrees:.1f} deg")
    print(f"lift slope: {polar.lift_slope_per_radian():.2f} per rad "
          "(thin-airfoil theory: 6.28)")
    print()

    # ------------------------------------------------------------------
    # 2. The hybrid pipeline: the paper's headline experiment.
    # ------------------------------------------------------------------
    print("=== Hybrid accelerator pipeline (simulated hardware) ===")
    for accelerator in ("phi", "k80-half", "k80-dual"):
        experiment = simulate_hybrid(
            accelerator=accelerator, sockets=2, precision="double", n_slices=10
        )
        m = experiment.metrics
        print(f"{accelerator:>9}: W = {m.wall_time:5.2f} s "
              f"(cpu only: {experiment.baseline.wall_time:5.2f} s)  "
              f"speedup = {experiment.speedup:.2f}x")


if __name__ == "__main__":
    main()
