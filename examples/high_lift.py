"""Multi-element (high-lift) configurations with the panel method.

Builds a main element plus a deflected flap, sweeps the flap angle,
and shows the classic high-lift physics: the flap's circulation
supercharges the *main* element far beyond its isolated lift.

Usage::

    python examples/high_lift.py [--alpha 4]
"""

import argparse

import numpy as np

from repro.geometry import Airfoil, naca
from repro.geometry.transforms import rotate, scale, translate
from repro.panel import Freestream, solve_airfoil, solve_multielement
from repro.viz import plot_points


def flapped(deflection_degrees, *, gap=0.02, drop=0.03):
    main = naca("2412", 140)
    flap_points = scale(naca("2412", 80).points, 0.3)
    flap_points = rotate(flap_points, -np.radians(deflection_degrees),
                         center=(0.0, 0.0))
    flap_points = translate(flap_points, (1.0 + gap, -drop))
    return main, Airfoil.from_points(flap_points, name="flap")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--alpha", type=float, default=4.0)
    arguments = parser.parse_args()
    fs = Freestream.from_degrees(arguments.alpha)

    single = solve_airfoil(naca("2412", 140), arguments.alpha)
    print(f"single NACA 2412 at {arguments.alpha:g} deg: "
          f"cl = {single.lift_coefficient:.3f}\n")

    print(f"{'flap defl':>9}  {'system cl':>9}  {'main cl':>8}  {'flap cl':>8}"
          f"  {'vs single':>9}")
    for deflection in (0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0):
        main_el, flap = flapped(deflection)
        solution = solve_multielement([main_el, flap], fs)
        print(f"{deflection:9.0f}  {solution.lift_coefficient():9.3f}  "
              f"{solution.element_lift_coefficient(0):8.3f}  "
              f"{solution.element_lift_coefficient(1):8.3f}  "
              f"{solution.lift_coefficient() / single.lift_coefficient:8.2f}x")

    main_el, flap = flapped(25.0)
    outline = np.vstack([main_el.points, flap.points])
    print("\nconfiguration (25 deg flap):")
    print(plot_points(outline, width=72, height=12, marker="#", connect=False))
    print("\nNote how most of the extra lift lands on the *main* element —")
    print("the flap's bound vortex raises the velocity over the main")
    print("surface (the 'circulation effect' of Smith's classic analysis).")


if __name__ == "__main__":
    main()
