"""End-to-end functional run: GA candidates through the hybrid pipeline.

This example connects every layer of the library the way the paper's
system does: a genetic algorithm produces a generation of candidate
airfoils, the simulated accelerator assembles their panel systems
(real NumPy math at device precision), the host's batched LU solves
them — and the virtual clock prices the whole thing on each hardware
configuration, including energy.

Usage::

    python examples/functional_pipeline.py [--candidates 48] [--panels 100]
"""

import argparse

import numpy as np

from repro.geometry import naca
from repro.hardware import configuration_energy, paper_workstation
from repro.optimize import GenomeLayout
from repro.panel import Freestream, PanelSolver
from repro.pipeline import execute_hybrid


def make_candidates(count: int, panels: int, seed: int):
    """A population of B-spline candidates plus a few NACA classics."""
    layout = GenomeLayout()
    rng = np.random.default_rng(seed)
    candidates = []
    for index in range(count - 3):
        genome = layout.random_genome(rng)
        parametrization = layout.to_parametrization(genome, name=f"cand {index}")
        if parametrization.is_feasible(min_thickness=0.01):
            candidates.append(parametrization.to_airfoil(panels))
    candidates.extend(naca(code, panels) for code in ("2412", "0012", "4412"))
    return candidates


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--candidates", type=int, default=48)
    parser.add_argument("--panels", type=int, default=100)
    parser.add_argument("--seed", type=int, default=7)
    arguments = parser.parse_args()

    candidates = make_candidates(arguments.candidates, arguments.panels,
                                 arguments.seed)
    fs = Freestream.from_degrees(3.0)
    print(f"{len(candidates)} candidate geometries, {arguments.panels} panels each\n")

    reference = PanelSolver().solve_batch(candidates, fs)
    reference_cl = np.array([s.lift_coefficient for s in reference])

    print(f"{'configuration':>22}  {'W [s]':>8}  {'max |dcl|':>10}  {'E [J]':>8}")
    for accel, precision in (("phi", "double"), ("k80-half", "double"),
                             ("k80-half", "single")):
        station = paper_workstation(sockets=2, accelerator=accel,
                                    precision=precision)
        result = execute_hybrid(candidates, station, n_slices=6, freestream=fs)
        deviation = np.max(np.abs(result.lift_coefficients() - reference_cl))
        energy = configuration_energy(
            accelerator=accel, precision=precision,
            batch=len(candidates), n=arguments.panels, n_slices=6,
        )
        label = f"{accel} ({precision})"
        print(f"{label:>22}  {result.wall_time:8.4f}  {deviation:10.2e}  "
              f"{energy.total_joules:8.1f}")

    best = int(np.argmax(reference_cl))
    print(f"\nbest candidate by cl: {candidates[best].name} "
          f"(cl = {reference_cl[best]:.3f})")
    print("double-precision offload reproduces the host solver exactly;")
    print("single precision differs in the last ~3 digits, as in the paper.")


if __name__ == "__main__":
    main()
