"""Single vs double precision, and getting both at once.

The paper runs its entire evaluation twice because single precision is
~2x faster on every device.  This example quantifies what single
precision costs in accuracy for the panel solver — and then shows
mixed-precision iterative refinement recovering double-precision
answers from single-precision factorizations, the classical remedy.

Usage::

    python examples/mixed_precision.py
"""

import numpy as np

from repro.geometry import naca
from repro.linalg import condition_estimate_1norm, refine_solve, solve
from repro.panel import Freestream, PanelSolver, assemble
from repro.pipeline import Workload, evaluate, hybrid, simulate
from repro.hardware import paper_workstation


def main() -> None:
    foil = naca("2412", 200)
    fs = Freestream.from_degrees(4.0)

    print("=== Accuracy: single vs double precision solves ===")
    dp = PanelSolver(precision="double").solve(foil, fs)
    sp = PanelSolver(precision="single").solve(foil, fs)
    system = assemble(foil, fs)
    condition = condition_estimate_1norm(np.asarray(system.matrix, np.float64))
    print(f"matrix condition estimate: {condition:.2e}")
    print(f"cl (double): {dp.lift_coefficient:.8f}")
    print(f"cl (single): {sp.lift_coefficient:.8f}   "
          f"error: {abs(sp.lift_coefficient - dp.lift_coefficient):.2e}")
    print(f"max |gamma_sp - gamma_dp|: {np.max(np.abs(sp.gamma - dp.gamma)):.2e}")
    print()

    print("=== Mixed precision: float32 factorization + refinement ===")
    matrix = np.asarray(system.matrix, np.float64)
    rhs = np.asarray(system.rhs, np.float64)
    reference = solve(matrix, rhs)
    result = refine_solve(matrix, rhs)
    print(f"{'sweep':>5}  {'scaled residual':>16}")
    for sweep, norm in enumerate(result.residual_norms):
        print(f"{sweep:5d}  {norm:16.3e}")
    print(f"converged: {result.converged} after {result.iterations} sweep(s)")
    print(f"max error vs double solve: "
          f"{np.max(np.abs(result.solution - reference)):.2e}")
    print()

    print("=== Throughput: what single precision buys on each platform ===")
    for accelerator in ("none", "phi", "k80-half"):
        walls = {}
        for precision in ("single", "double"):
            station = paper_workstation(sockets=2, accelerator=accelerator,
                                        precision=precision)
            workload = Workload.paper_reference(precision)
            if accelerator == "none":
                from repro.pipeline import cpu_only
                timeline = simulate(cpu_only(workload, station.cpu))
            else:
                timeline = simulate(hybrid(workload, station, 10))
            walls[precision] = evaluate(timeline).wall_time
        label = accelerator if accelerator != "none" else "cpu only"
        print(f"{label:>9}: sp {walls['single']:5.2f} s | dp {walls['double']:5.2f} s"
              f" | sp is {walls['double'] / walls['single']:.2f}x faster")
    print("\nWith refinement converging in ~1 sweep, the single-precision")
    print("pipeline effectively delivers double-precision vortex strengths.")


if __name__ == "__main__":
    main()
