"""Explore the hybrid accelerator pipeline on the simulated workstation.

Reproduces the paper's Section 4-6 story interactively: baseline CPU
runs, slice sweeps for the GPU and Xeon Phi interleaves, autotuned
optima, and Gantt traces of the winning schedules.

Usage::

    python examples/hybrid_acceleration.py [--precision double] [--sockets 2]
"""

import argparse

from repro.hardware import paper_workstation
from repro.pipeline import (
    Workload,
    build_trace,
    cpu_only,
    evaluate,
    hybrid,
    lower_bound_gap,
    render_ascii,
    simulate,
    tune_distribution,
    tune_slices,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--precision", default="double", choices=["single", "double"])
    parser.add_argument("--sockets", type=int, default=2, choices=[1, 2])
    parser.add_argument("--batch", type=int, default=4000)
    parser.add_argument("--n", type=int, default=200)
    arguments = parser.parse_args()

    workload = Workload(batch=arguments.batch, n=arguments.n,
                        precision=arguments.precision)
    host = paper_workstation(sockets=arguments.sockets,
                             precision=arguments.precision)
    baseline = evaluate(simulate(cpu_only(workload, host.cpu)))
    print(f"workload: {workload.batch} systems of {workload.n}x{workload.n} "
          f"({workload.precision}), {workload.total_bytes / 1e6:.0f} MB assembled")
    print(f"baseline ({host.cpu.name}): W = {baseline.wall_time:.2f} s "
          f"(assembly {baseline.assembly_busy:.2f} + solve {baseline.solve_busy:.2f})")
    print()

    for accelerator in ("phi", "k80-half"):
        workstation = paper_workstation(
            sockets=arguments.sockets, accelerator=accelerator,
            precision=arguments.precision,
        )
        print(f"--- {workstation.describe()} ---")
        print(f"{'slices':>7}  {'W':>6}  {'L':>6}  {'O':>6}  {'speedup':>7}")
        for n_slices in (1, 5, 10, 20, 40):
            metrics = evaluate(
                simulate(hybrid(workload, workstation, n_slices))
            ).with_baseline(baseline.wall_time)
            print(f"{n_slices:7d}  {metrics.wall_time:6.2f}  "
                  f"{metrics.solve_busy:6.2f}  {metrics.overhead:6.2f}  "
                  f"{metrics.speedup:7.2f}")
        tuned = tune_slices(workload, workstation)
        best = tuned.best_metrics.with_baseline(baseline.wall_time)
        print(f"autotuned: {tuned.best_parameter:.0f} slices -> "
              f"W = {best.wall_time:.2f} s, speedup = {best.speedup:.2f}x, "
              f"{lower_bound_gap(best):.0%} above the solve-time lower bound")
        timeline = simulate(
            hybrid(workload, workstation, int(tuned.best_parameter))
        )
        print(render_ascii(build_trace(timeline), width=70))
        print()

    dual = paper_workstation(sockets=arguments.sockets, accelerator="k80-dual",
                             precision=arguments.precision)
    tuned = tune_distribution(workload, dual)
    best = tuned.best_metrics.with_baseline(baseline.wall_time)
    print(f"--- {dual.describe()} (both K80 GPUs) ---")
    print(f"autotuned distribution: {tuned.best_parameter:.2f} of the batch on "
          f"the hybrid path -> W = {best.wall_time:.2f} s, "
          f"speedup = {best.speedup:.2f}x")


if __name__ == "__main__":
    main()
