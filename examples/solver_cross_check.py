"""Cross-validate the two panel formulations against exact solutions.

The library implements the same physics twice — the paper's
stream-function vortex method and the classical Hess-Smith
source-vortex method — and carries exact references (Joukowski
conformal maps, thin-airfoil theory).  This example plays the role
Xfoil plays in the paper: an independent check of every lift number.

Usage::

    python examples/solver_cross_check.py
"""

import numpy as np

from repro.geometry import naca
from repro.panel import Freestream, solve_airfoil, solve_hess_smith
from repro.validation import (
    JoukowskiAirfoil,
    naca4_parameters,
    zero_lift_alpha,
    lift_coefficient as thin_airfoil_cl,
)


def main() -> None:
    print("=== NACA sections: two formulations vs thin-airfoil theory ===")
    print(f"{'section':>8} {'alpha':>6} {'stream-fn':>10} {'hess-smith':>11} "
          f"{'thin-airfoil':>13}")
    for designation in ("0012", "2412", "4412"):
        camber, position = naca4_parameters(designation)
        for alpha in (0.0, 4.0, 8.0):
            foil = naca(designation, 200)
            stream = solve_airfoil(foil, alpha).lift_coefficient
            hess = solve_hess_smith(
                foil, Freestream.from_degrees(alpha)
            ).lift_coefficient
            thin = thin_airfoil_cl(np.radians(alpha), camber, position)
            print(f"{designation:>8} {alpha:6.1f} {stream:10.4f} "
                  f"{hess:11.4f} {thin:13.4f}")
    print()

    print("=== Joukowski sections: panel methods vs the exact map ===")
    print(f"{'section':>26} {'alpha':>6} {'stream-fn':>10} {'hess-smith':>11} "
          f"{'exact':>8}")
    for thickness, camber in ((0.08, 0.05), (0.12, 0.03), (0.05, 0.08)):
        section = JoukowskiAirfoil(thickness, camber)
        foil = section.airfoil(300)
        for alpha in (0.0, 4.0):
            stream = solve_airfoil(foil, alpha).lift_coefficient
            hess = solve_hess_smith(
                foil, Freestream.from_degrees(alpha)
            ).lift_coefficient
            exact = section.exact_lift_coefficient(np.radians(alpha))
            print(f"{foil.name:>26} {alpha:6.1f} {stream:10.4f} "
                  f"{hess:11.4f} {exact:8.4f}")
    print()

    print("=== Zero-lift angles: panel method vs Glauert's integral ===")
    for designation in ("2412", "4412", "2512"):
        camber, position = naca4_parameters(designation)
        alpha0 = np.degrees(zero_lift_alpha(camber, position))
        cl_at_alpha0 = solve_airfoil(naca(designation, 200), alpha0).lift_coefficient
        print(f"NACA {designation}: alpha_L0 = {alpha0:+.2f} deg "
              f"(panel cl there: {cl_at_alpha0:+.4f})")


if __name__ == "__main__":
    main()
