"""Genetic optimization of an airfoil for lift-to-drag ratio.

Reproduces the workflow behind the paper's Figure 2: a genetic
algorithm over B-spline airfoil parametrizations, with tournament
selection, one-point crossover, and single-coefficient mutation,
maximizing L/D at zero angle of attack.

Usage::

    python examples/airfoil_optimization.py [--population 60] [--generations 8]
"""

import argparse

import numpy as np

from repro.optimize import FitnessEvaluator, GAConfig, GeneticOptimizer, GenomeLayout
from repro.geometry.io import to_dat_string
from repro.viz import plot_airfoil


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--population", type=int, default=60)
    parser.add_argument("--generations", type=int, default=8)
    parser.add_argument("--panels", type=int, default=120)
    parser.add_argument("--reynolds", type=float, default=5e5)
    parser.add_argument("--seed", type=int, default=42)
    arguments = parser.parse_args()

    layout = GenomeLayout(n_upper=6, n_lower=6)
    evaluator = FitnessEvaluator(
        layout=layout, n_panels=arguments.panels, reynolds=arguments.reynolds
    )
    config = GAConfig(
        population_size=arguments.population, generations=arguments.generations
    )

    def report(record) -> None:
        champion = record.champion
        print(f"generation {record.index:2d}: best L/D = {record.best_fitness:7.1f}  "
              f"(cl = {champion.cl:.3f}, cd = {champion.cd:.5f})  "
              f"mean = {record.mean_fitness:7.1f}  "
              f"feasible = {record.feasible_fraction:.0%}")

    optimizer = GeneticOptimizer(
        evaluator=evaluator, config=config, on_generation=report
    )
    print(f"optimizing {config.total_evaluations} candidates "
          f"({config.population_size} x {config.generations})...")
    history = optimizer.run(np.random.default_rng(arguments.seed))

    champion = history.champion
    parametrization = layout.to_parametrization(champion.genome, name="champion")
    airfoil = parametrization.to_airfoil(max(arguments.panels, 120))
    print()
    print(plot_airfoil(airfoil, width=72, height=12))
    print(f"\nchampion: L/D = {champion.fitness:.1f}, "
          f"cl = {champion.cl:.3f}, cd = {champion.cd:.5f}")
    print(f"max thickness: {airfoil.max_thickness:.3f} chord")
    print("\nSelig .dat (first lines):")
    print("\n".join(to_dat_string(airfoil).splitlines()[:6]))


if __name__ == "__main__":
    main()
