"""Analytic potential flow over a circular cylinder.

The classic closed-form solution used to validate the panel method:
for a cylinder of radius ``R`` in a free stream ``V`` along ``x`` with
circulation ``Gamma`` (clockwise-positive, matching the library), the
surface speed is

    q(theta) = | 2 V sin(theta) - Gamma / (2 pi R) |

and the pressure coefficient ``Cp = 1 - (q / V)^2``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.geometry.airfoil import Airfoil


def cylinder_airfoil(n_panels: int = 120, *, radius: float = 1.0,
                     center=(0.0, 0.0)) -> Airfoil:
    """A circle discretized as an :class:`Airfoil` (CCW, closed).

    The "trailing edge" sits at angle 0 (the +x axis point).
    """
    theta = np.linspace(0.0, 2.0 * np.pi, n_panels + 1)
    center = np.asarray(center, dtype=np.float64)
    points = center + radius * np.column_stack([np.cos(theta), np.sin(theta)])
    points[-1] = points[0]
    return Airfoil(points=points, name=f"cylinder r={radius:g}")


@dataclasses.dataclass(frozen=True)
class CylinderFlow:
    """Analytic reference flow over a cylinder."""

    radius: float = 1.0
    speed: float = 1.0
    alpha: float = 0.0
    circulation: float = 0.0  # clockwise-positive

    def surface_speed(self, theta) -> np.ndarray:
        """Flow speed on the surface at polar angle *theta*."""
        theta = np.asarray(theta, dtype=np.float64)
        rotational = self.circulation / (2.0 * np.pi * self.radius)
        return np.abs(
            2.0 * self.speed * np.sin(theta - self.alpha) + rotational
        )

    def pressure_coefficient(self, theta) -> np.ndarray:
        """``Cp`` on the surface at polar angle *theta*."""
        q = self.surface_speed(theta)
        return 1.0 - (q / self.speed) ** 2

    def velocity(self, points) -> np.ndarray:
        """Velocity at exterior field points (doublet + vortex + stream)."""
        points = np.asarray(points, dtype=np.float64)
        x, y = points[..., 0], points[..., 1]
        r_sq = x**2 + y**2
        v = self.speed
        a2 = self.radius**2
        cos_a, sin_a = np.cos(self.alpha), np.sin(self.alpha)
        # Doublet aligned with the stream.
        x_r = x * cos_a + y * sin_a
        y_r = -x * sin_a + y * cos_a
        u_r = v * (1.0 - a2 * (x_r**2 - y_r**2) / r_sq**2)
        v_r = -v * 2.0 * a2 * x_r * y_r / r_sq**2
        u = u_r * cos_a - v_r * sin_a
        w = u_r * sin_a + v_r * cos_a
        # Clockwise vortex of strength `circulation`.
        u += self.circulation * y / (2.0 * np.pi * r_sq)
        w += -self.circulation * x / (2.0 * np.pi * r_sq)
        return np.stack([u, w], axis=-1)

    @property
    def lift_coefficient(self) -> float:
        """``cl`` referenced to the diameter (Kutta–Joukowski)."""
        return 2.0 * self.circulation / (self.speed * 2.0 * self.radius)


def control_point_angles(airfoil: Airfoil, center=(0.0, 0.0)) -> np.ndarray:
    """Polar angle of each control point about *center*."""
    offsets = airfoil.control_points - np.asarray(center, dtype=np.float64)
    return np.arctan2(offsets[:, 1], offsets[:, 0])
