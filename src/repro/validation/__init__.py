"""Analytic and published references that validate the panel method.

Plays the role Xfoil plays in the paper: an independent source of truth
for lift, moment, and drag.
"""

from repro.validation.cylinder import (
    CylinderFlow,
    control_point_angles,
    cylinder_airfoil,
)
from repro.validation.joukowski import JoukowskiAirfoil
from repro.validation.references import (
    DRAG_REFERENCES,
    INVISCID_LIFT_REFERENCES,
    MOMENT_REFERENCES,
    DragReference,
    LiftReference,
    MomentReference,
)
from repro.validation.thin_airfoil import (
    LIFT_SLOPE,
    lift_coefficient,
    naca4_parameters,
    quarter_chord_moment,
    zero_lift_alpha,
)

__all__ = [
    "CylinderFlow",
    "DRAG_REFERENCES",
    "DragReference",
    "INVISCID_LIFT_REFERENCES",
    "JoukowskiAirfoil",
    "LIFT_SLOPE",
    "LiftReference",
    "MOMENT_REFERENCES",
    "MomentReference",
    "control_point_angles",
    "cylinder_airfoil",
    "lift_coefficient",
    "naca4_parameters",
    "quarter_chord_moment",
    "zero_lift_alpha",
]
