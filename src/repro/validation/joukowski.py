"""Joukowski airfoils: exact lifting solutions via conformal mapping.

The Joukowski transform ``z = zeta + c^2 / zeta`` maps a circle passing
through ``zeta = c`` to an airfoil with a cusped trailing edge.  The
exact circulation enforcing the Kutta condition is known in closed
form, giving an exact lift coefficient to validate the panel method
against — the strongest available check of the Kutta-condition
implementation.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.airfoil import Airfoil


@dataclasses.dataclass(frozen=True)
class JoukowskiAirfoil:
    """A Joukowski airfoil defined by its generating circle.

    Parameters
    ----------
    thickness_parameter:
        Shifts the circle centre to ``-epsilon_x``; larger values give
        thicker sections (``~ 0.05 - 0.15``).
    camber_parameter:
        Lifts the circle centre to ``+epsilon_y``; larger values give
        more camber.
    """

    thickness_parameter: float = 0.08
    camber_parameter: float = 0.05

    def __post_init__(self) -> None:
        if self.thickness_parameter < 0.0:
            raise GeometryError("thickness parameter must be non-negative")
        if self.thickness_parameter == 0.0 and self.camber_parameter == 0.0:
            raise GeometryError("degenerate Joukowski section (flat plate)")

    @property
    def center(self) -> complex:
        """Centre of the generating circle in the zeta plane."""
        return complex(-self.thickness_parameter, self.camber_parameter)

    @property
    def radius(self) -> float:
        """Radius of the generating circle (passes through zeta = 1)."""
        return abs(1.0 - self.center)

    @property
    def beta(self) -> float:
        """The angle setting the zero-lift direction."""
        return math.asin(self.camber_parameter / self.radius)

    def circle_points(self, n: int) -> np.ndarray:
        """``n + 1`` points around the generating circle (closed).

        The parametrization starts at the point mapping to the trailing
        edge (``zeta = 1``) and runs counter-clockwise.
        """
        start = np.angle(1.0 - self.center)
        theta = start + np.linspace(0.0, 2.0 * np.pi, n + 1)
        return self.center + self.radius * np.exp(1j * theta)

    def airfoil(self, n_panels: int = 200) -> Airfoil:
        """The mapped airfoil, discretized with *n_panels* panels."""
        zeta = self.circle_points(n_panels)
        z = zeta + 1.0 / zeta
        z[-1] = z[0]  # the closing point maps exactly to the trailing edge
        points = np.column_stack([z.real, z.imag])
        return Airfoil.from_points(
            points,
            name=(f"Joukowski(t={self.thickness_parameter:g}, "
                  f"c={self.camber_parameter:g})"),
        )

    def chord(self, n_panels: int = 400) -> float:
        """Chord length of the mapped section (computed from geometry)."""
        return self.airfoil(n_panels).chord

    def exact_lift_coefficient(self, alpha: float, *, n_panels: int = 400) -> float:
        """Exact ``cl`` at angle of attack *alpha* (radians).

        The Kutta circulation of the mapped flow is
        ``Gamma = 4 pi a V sin(alpha + beta)``; with ``L = rho V Gamma``
        and the true (mapped) chord this gives
        ``cl = 8 pi a sin(alpha + beta) / chord``.
        """
        return (8.0 * math.pi * self.radius * math.sin(alpha + self.beta)
                / self.chord(n_panels))

    def zero_lift_alpha(self) -> float:
        """Angle of attack (radians) at which the exact lift vanishes."""
        return -self.beta
