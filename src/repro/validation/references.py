"""Published reference values for standard sections.

The paper validates its lift/drag outputs against Xfoil; without Xfoil
available, this module collects the corresponding published numbers
(Abbott & von Doenhoff section data and widely reproduced Xfoil
inviscid results) together with the tolerances a 200-panel inviscid
vortex method is expected to meet.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple


@dataclasses.dataclass(frozen=True)
class LiftReference:
    """An expected inviscid lift coefficient for one configuration."""

    designation: str
    alpha_degrees: float
    cl: float
    tolerance: float

    def matches(self, value: float) -> bool:
        """True when *value* is within tolerance of the reference."""
        return abs(value - self.cl) <= self.tolerance


#: Inviscid lift references.  Panel methods (like Xfoil's inviscid mode)
#: overshoot measured wind-tunnel lift slightly because there is no
#: boundary-layer decambering; the tolerances account for discretization
#: differences only.
INVISCID_LIFT_REFERENCES: Tuple[LiftReference, ...] = (
    # Symmetric section: zero lift at zero alpha, slope ~ 2 pi * 1.08.
    LiftReference("0012", 0.0, 0.0, 0.005),
    LiftReference("0012", 5.0, 0.60, 0.04),
    LiftReference("0012", 10.0, 1.19, 0.08),
    # NACA 2412 (the paper's Figure 1 section).
    LiftReference("2412", 0.0, 0.25, 0.03),
    LiftReference("2412", 4.0, 0.73, 0.04),
    LiftReference("2412", 8.0, 1.20, 0.08),
    # NACA 4412: strongly cambered.
    LiftReference("4412", 0.0, 0.50, 0.05),
    LiftReference("4412", 4.0, 0.98, 0.06),
)


@dataclasses.dataclass(frozen=True)
class MomentReference:
    """Expected quarter-chord moment coefficient (inviscid)."""

    designation: str
    cm: float
    tolerance: float


#: Quarter-chord moment references (thin-airfoil theory values; the
#: panel method picks up small thickness corrections).
MOMENT_REFERENCES: Tuple[MomentReference, ...] = (
    MomentReference("0012", 0.0, 0.01),
    MomentReference("2412", -0.053, 0.015),
    MomentReference("4412", -0.106, 0.025),
)


@dataclasses.dataclass(frozen=True)
class DragReference:
    """An expected profile-drag band for one viscous configuration."""

    designation: str
    alpha_degrees: float
    reynolds: float
    cd_low: float
    cd_high: float

    def contains(self, value: float) -> bool:
        """True when *value* falls inside the expected band."""
        return self.cd_low <= value <= self.cd_high


#: Coarse drag bands (Abbott & von Doenhoff / Xfoil ballparks).  The
#: integral boundary-layer stack is expected to land in the band, not to
#: match a specific decimal.
DRAG_REFERENCES: Tuple[DragReference, ...] = (
    DragReference("0012", 0.0, 1e6, 0.004, 0.013),
    DragReference("2412", 0.0, 1e6, 0.004, 0.014),
    DragReference("2412", 4.0, 1e6, 0.005, 0.018),
)
