"""Thin-airfoil theory predictions.

For thin sections the lift curve is ``cl = 2 pi (alpha - alpha_L0)``
with the zero-lift angle given by Glauert's integral over the camber
line slope:

    alpha_L0 = -(1/pi) * integral_0^pi dyc/dx (cos(theta) - 1) dtheta

and the quarter-chord moment by

    cm_c/4 = (1/2) * integral_0^pi dyc/dx (cos(2 theta) - cos(theta)) dtheta.

These give independent closed-form-ish references for cambered NACA
sections (the integrals are evaluated with high-resolution quadrature,
which is exact for our polynomial camber lines to rounding error).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.naca import camber_line_4digit

#: Thin-airfoil lift slope, per radian.
LIFT_SLOPE = 2.0 * math.pi


def zero_lift_alpha(camber: float, camber_pos: float, *, quadrature: int = 2001) -> float:
    """Zero-lift angle (radians) of a NACA 4-digit camber line."""
    theta = np.linspace(0.0, np.pi, quadrature)
    x = 0.5 * (1.0 - np.cos(theta))
    _, slope = camber_line_4digit(x, camber, camber_pos)
    integrand = slope * (np.cos(theta) - 1.0)
    return -float(np.trapezoid(integrand, theta)) / math.pi


def lift_coefficient(alpha: float, camber: float = 0.0, camber_pos: float = 0.0) -> float:
    """Thin-airfoil ``cl`` at *alpha* radians for a 4-digit camber line."""
    if camber == 0.0 or camber_pos == 0.0:
        return LIFT_SLOPE * alpha
    return LIFT_SLOPE * (alpha - zero_lift_alpha(camber, camber_pos))


def quarter_chord_moment(camber: float, camber_pos: float, *,
                         quadrature: int = 2001) -> float:
    """Thin-airfoil ``cm`` about the quarter chord (alpha independent)."""
    if camber == 0.0 or camber_pos == 0.0:
        return 0.0
    theta = np.linspace(0.0, np.pi, quadrature)
    x = 0.5 * (1.0 - np.cos(theta))
    _, slope = camber_line_4digit(x, camber, camber_pos)
    integrand = slope * (np.cos(2.0 * theta) - np.cos(theta))
    return 0.5 * float(np.trapezoid(integrand, theta))


def naca4_parameters(designation: str) -> tuple:
    """``(camber, camber_pos)`` fractions from a 4-digit designation."""
    digits = designation.strip()
    return int(digits[0]) / 100.0, int(digits[1]) / 10.0
