"""Floating-point precision handling.

The paper reports every experiment in both single and double precision;
this module centralizes the mapping between the human-readable precision
names used throughout the library ("single"/"double") and NumPy dtypes,
byte sizes, and machine epsilons.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np


class Precision(enum.Enum):
    """Floating-point precision of a computation.

    Members compare and hash by identity; use :meth:`parse` to accept
    user-facing spellings such as ``"sp"``, ``"float32"``, or an actual
    ``np.dtype``.
    """

    SINGLE = "single"
    DOUBLE = "double"

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype implementing this precision."""
        return np.dtype(np.float32 if self is Precision.SINGLE else np.float64)

    @property
    def itemsize(self) -> int:
        """Bytes per scalar (4 for single, 8 for double)."""
        return self.dtype.itemsize

    @property
    def eps(self) -> float:
        """Machine epsilon of this precision."""
        return float(np.finfo(self.dtype).eps)

    @property
    def short_name(self) -> str:
        """Two-letter abbreviation used in table headers ("sp"/"dp")."""
        return "sp" if self is Precision.SINGLE else "dp"

    @classmethod
    def parse(cls, value: "PrecisionLike") -> "Precision":
        """Coerce a user-supplied precision spelling to a member.

        Accepts a :class:`Precision`, the strings ``"single"``,
        ``"double"``, ``"sp"``, ``"dp"``, ``"float32"``, ``"float64"``,
        ``"f4"``, ``"f8"``, or a NumPy dtype / scalar type.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            normalized = value.strip().lower()
            singles = {"single", "sp", "float32", "f4", "32"}
            doubles = {"double", "dp", "float64", "f8", "64"}
            if normalized in singles:
                return cls.SINGLE
            if normalized in doubles:
                return cls.DOUBLE
            raise ValueError(f"unknown precision spelling: {value!r}")
        dtype = np.dtype(value)
        if dtype == np.float32:
            return cls.SINGLE
        if dtype == np.float64:
            return cls.DOUBLE
        raise ValueError(f"unsupported dtype for Precision: {dtype}")

    def __str__(self) -> str:
        return self.value


PrecisionLike = Union[Precision, str, np.dtype, type]

SINGLE = Precision.SINGLE
DOUBLE = Precision.DOUBLE


def as_dtype(precision: PrecisionLike) -> np.dtype:
    """Shorthand for ``Precision.parse(precision).dtype``."""
    return Precision.parse(precision).dtype


def tolerance_for(precision: PrecisionLike, factor: float = 1e3) -> float:
    """A sensible comparison tolerance for results at *precision*.

    ``factor`` scales machine epsilon; the default of ``1e3`` tolerates
    mild error growth through an O(n^2) assembly plus an LU solve.
    """
    return Precision.parse(precision).eps * factor
