"""Execution backends: inline, and a process pool with shared memory.

The paper's CPU-path observation is that *assembly dominates* and must
be overlapped with the solve; a Python serving process cannot get that
overlap from threads because assembly is GIL-bound numpy-and-loop
work.  :class:`ProcessBackend` therefore shards each micro-batch
across ``N`` persistent worker processes — real execution units — and
moves the bulk ``float64`` payload through
``multiprocessing.shared_memory`` (see :mod:`repro.parallel.shm`)
instead of pickling it.

The seam is :class:`ExecutionBackend`: one method,
``solve(requests, stage_hook=...)``, returning per-request
:class:`~repro.core.api.SolvedSystem` entries (or the
:class:`~repro.errors.ReproError` a request raised).
:class:`InlineBackend` is the default and simply runs
:func:`repro.core.api.solve_request_systems` in the calling thread;
``ProcessBackend`` is opt-in via ``AnalysisService(exec_backend=...)``,
``serve --exec-backend process``, or ``REPRO_EXEC_BACKEND=process``.

Failure containment, not just speed:

* a crashed or killed child fails **only its shard's requests** with
  :class:`~repro.errors.ExecutionBackendError`; batchmates on sibling
  workers are answered normally and the pool re-forms;
* if worker processes cannot be started at all (or every worker dies
  on first use), the backend **degrades to inline execution** — the
  batch is still answered correctly, and the fallback is counted in
  ``stats()`` so ``/metrics`` shows it;
* after :meth:`ProcessBackend.close`, stray calls also fall back
  inline rather than erroring.

Small batches are a real trade-off: dispatching one request to one
child costs a pipe round trip plus a shared-memory segment, so inline
wins below a handful of requests per shard — see the "Execution
backends" section of ``docs/serving.md``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionBackendError, ReproError, ServeError
from repro.parallel import shm as shm_transport
from repro.parallel.protocol import (
    MODE_PARENT,
    MODE_WORKER,
    ShardReply,
    ShardTask,
    anchor_stamps,
    expand_kutta_row,
    merge_envelope,
    plan_layout,
    plan_shards,
)

#: Environment variable selecting the default backend (``inline`` /
#: ``process``) used when no explicit backend is passed.
BACKEND_ENV = "REPRO_EXEC_BACKEND"

#: Environment variable overriding the process backend's worker count.
PROCS_ENV = "REPRO_EXEC_PROCS"

#: Environment variable selecting where the LU runs (``worker`` /
#: ``parent``) for env-constructed process backends.
SOLVE_ENV = "REPRO_EXEC_SOLVE"

#: Environment variable overriding the multiprocessing start method.
START_ENV = "REPRO_EXEC_START"


class ExecutionBackend:
    """Where a micro-batch's assembly + batched LU actually runs.

    Subclasses implement :meth:`solve`; :meth:`stats` and
    :meth:`close` have safe defaults so callers can treat every
    backend uniformly.
    """

    name = "abstract"

    def solve(self, requests: Sequence, *, stage_hook=None,
              kernel=None) -> List:
        """Assemble and solve *requests*; one entry per request, in
        order — a :class:`~repro.core.api.SolvedSystem` or the
        :class:`~repro.errors.ReproError` that request raised.
        ``kernel`` selects the assembly kernel (``None`` defers to
        ``REPRO_ASSEMBLY_KERNEL``; see ``docs/kernels.md``)."""
        raise NotImplementedError

    def stats(self) -> dict:
        """JSON-ready counters for the ``/metrics`` document."""
        return {"name": self.name}

    def close(self) -> None:
        """Release any resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InlineBackend(ExecutionBackend):
    """The default backend: solve in the calling thread."""

    name = "inline"

    def solve(self, requests: Sequence, *, stage_hook=None,
              kernel=None) -> List:
        from repro.core.api import solve_request_systems

        return solve_request_systems(requests, stage_hook=stage_hook,
                                     kernel=kernel)

    def stats(self) -> dict:
        return {"name": self.name, "procs": 0}


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

def _picklable(error: BaseException) -> BaseException:
    """Best-effort: an exception safe to send over a pipe."""
    import pickle

    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return ServeError(f"{type(error).__name__}: {error}")


def _run_shard(task: ShardTask) -> ShardReply:
    """Execute one shard inside a worker process."""
    from repro.core.api import solve_request_systems
    from repro.panel.assembly import assemble

    base = time.monotonic()
    stamps: List[Tuple[str, float, float, int]] = []

    def hook(stage: str, start: float, end: float, count: int) -> None:
        stamps.append((stage, start - base, end - base, count))

    segment = shm_transport.attach_segment(task.shm_name)
    outcomes: List[Optional[BaseException]] = []
    try:
        if task.mode == MODE_WORKER:
            solved = solve_request_systems(task.requests, stage_hook=hook,
                                           kernel=task.kernel)
            for request, offset, entry in zip(task.requests, task.offsets,
                                              solved):
                if isinstance(entry, BaseException):
                    outcomes.append(_picklable(entry))
                    continue
                n = int(request.n_panels)
                row = shm_transport.slot_view(segment, offset, (n + 1,),
                                              np.float64)
                row[:n] = entry.gamma  # float32 -> float64 widening is exact
                row[n] = entry.constant
                outcomes.append(None)
        else:
            assembly_started = time.monotonic()
            for request, offset in zip(task.requests, task.offsets):
                try:
                    system = assemble(request.build_airfoil(),
                                      request.freestream(),
                                      dtype=request.precision.dtype,
                                      kernel=task.kernel)
                except ReproError as error:
                    outcomes.append(_picklable(error))
                    continue
                m = system.n_unknowns
                dtype = system.matrix.dtype
                matrix = shm_transport.slot_view(segment, offset, (m, m), dtype)
                matrix[:] = system.matrix
                rhs = shm_transport.slot_view(
                    segment, offset + m * m * dtype.itemsize, (m,), dtype
                )
                rhs[:] = system.rhs
                outcomes.append(None)
            hook("assembly", assembly_started, time.monotonic(),
                 len(task.requests))
    finally:
        segment.close()
    return ShardReply(seq=task.seq, shard_index=task.shard_index,
                      outcomes=tuple(outcomes), error=None,
                      stamps=tuple(stamps),
                      elapsed=time.monotonic() - base)


def _worker_main(conn) -> None:
    """Persistent worker loop: recv a task, run it, send the reply.

    ``SIGINT`` is ignored so a terminal Ctrl-C drains through the
    parent's graceful shutdown instead of killing children mid-shard.
    Exits on EOF, a ``None`` sentinel, or a broken pipe.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        conn.send(("ready", os.getpid()))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        return
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        try:
            reply = _run_shard(task)
        except BaseException as error:  # whole-shard failure
            reply = ShardReply(seq=task.seq, shard_index=task.shard_index,
                               outcomes=None, error=_picklable(error))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            return


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class _Worker:
    """One pool member: the process and the parent end of its pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class _Shard:
    """Book-keeping for one dispatched shard."""

    __slots__ = ("index", "bounds", "task", "segment", "worker",
                 "sent_at", "received_at", "reply")

    def __init__(self, index: int, bounds: Tuple[int, int]) -> None:
        self.index = index
        self.bounds = bounds
        self.task: Optional[ShardTask] = None
        self.segment = None
        self.worker: Optional[_Worker] = None
        self.sent_at = 0.0
        self.received_at = 0.0
        self.reply: Optional[ShardReply] = None


def _default_procs() -> int:
    """Worker count when none is configured: 2..4, always >= 2 so the
    sharded code path is exercised even on small hosts."""
    raw = os.environ.get(PROCS_ENV)
    if raw:
        return int(raw)
    return max(2, min(4, os.cpu_count() or 2))


def _default_context_name() -> str:
    raw = os.environ.get(START_ENV, "").strip().lower()
    if raw:
        return raw
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ProcessBackend(ExecutionBackend):
    """Shard assembly (and optionally the batched LU) across processes.

    Parameters
    ----------
    n_procs:
        Worker processes (default: ``REPRO_EXEC_PROCS`` or 2..4 from
        the host's core count; always at least 2).
    solve_in_worker:
        ``True`` (default): each child assembles *and* LU-solves its
        shard, so only ``n_panels + 1`` circulation doubles per request
        cross back.  ``False``: children only assemble; the stacked
        matrices and right-hand sides cross through shared memory and
        the parent runs one batched LU per ``(size, dtype)`` group —
        the better mode when the batch is large enough that the
        vectorized elimination loop's per-step overhead (paid once per
        *stack*, not per matrix) outweighs parallelizing it.
    mp_context:
        Multiprocessing start method (default ``REPRO_EXEC_START``,
        else ``fork`` where available).
    shard_timeout:
        Seconds a dispatched shard may run before its worker is
        declared wedged, killed, and the shard failed.
    start_timeout:
        Seconds to wait for a fresh worker's ready handshake.

    Construction never raises for environmental reasons: if workers
    cannot be started the backend marks itself broken and serves every
    batch inline (see ``stats()['inline_fallbacks']``).
    """

    name = "process"

    def __init__(self, n_procs: Optional[int] = None, *,
                 solve_in_worker: bool = True,
                 mp_context: Optional[str] = None,
                 shard_timeout: float = 120.0,
                 start_timeout: float = 30.0) -> None:
        procs = _default_procs() if n_procs is None else int(n_procs)
        if procs < 1:
            raise ServeError(f"n_procs must be at least 1, got {n_procs}")
        self.n_procs = procs
        self.solve_in_worker = bool(solve_in_worker)
        self.shard_timeout = float(shard_timeout)
        self.start_timeout = float(start_timeout)
        self._mode = MODE_WORKER if self.solve_in_worker else MODE_PARENT
        self._lock = threading.Lock()
        self._workers: List[Optional[_Worker]] = [None] * procs
        self._seq = 0
        self._closed = False
        self._broken = False
        self._ever_succeeded = False
        self._shards_dispatched = 0
        self._sharded_requests = 0
        self._worker_crashes = 0
        self._worker_restarts = 0
        self._inline_fallbacks = 0
        self._start_failures = 0
        #: Test seam: called as ``(shard_index, worker)`` right after a
        #: shard is written to its worker's pipe (used by the crash
        #: tests to SIGKILL a child deterministically mid-shard).
        self._after_dispatch: Optional[Callable] = None
        try:
            context_name = mp_context or _default_context_name()
            self._ctx = multiprocessing.get_context(context_name)
        except ValueError as error:
            raise ServeError(f"unknown multiprocessing context: {error}")
        try:
            with self._lock:
                self._ensure_workers_locked()
        except Exception:
            self._note_start_failure()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _spawn_worker(self, index: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,),
            name=f"repro-exec-{index}", daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.start_timeout):
            process.terminate()
            raise ExecutionBackendError(
                f"worker {index} did not complete its ready handshake "
                f"within {self.start_timeout:g}s"
            )
        parent_conn.recv()  # ("ready", pid)
        return _Worker(process, parent_conn)

    def _ensure_workers_locked(self) -> None:
        """Spawn (or respawn) every missing worker; called under lock."""
        for index in range(self.n_procs):
            worker = self._workers[index]
            if worker is not None and worker.alive:
                continue
            if worker is not None:
                self._discard_worker(worker)
                self._workers[index] = None
            self._workers[index] = self._spawn_worker(index)
            if worker is not None:
                self._worker_restarts += 1

    def _discard_worker(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():  # pragma: no cover - stubborn child
            worker.process.kill()
            worker.process.join(timeout=1.0)

    def _note_start_failure(self) -> None:
        with self._lock:
            self._broken = True
            self._start_failures += 1

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker (graceful sentinel, then terminate)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            deadline = time.monotonic() + max(0.0, float(timeout))
            for worker in self._workers:
                if worker is None:
                    continue
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for worker in self._workers:
                if worker is None:
                    continue
                worker.process.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
                self._discard_worker(worker)
            self._workers = [None] * self.n_procs

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def _fallback(self, requests: Sequence, stage_hook,
                  kernel=None) -> List:
        from repro.core.api import solve_request_systems

        with self._lock:
            self._inline_fallbacks += 1
        return solve_request_systems(requests, stage_hook=stage_hook,
                                     kernel=kernel)

    def solve(self, requests: Sequence, *, stage_hook=None,
              kernel=None) -> List:
        requests = list(requests)
        if not requests:
            return []
        if self._closed or self._broken:
            return self._fallback(requests, stage_hook, kernel)
        with self._lock:
            try:
                self._ensure_workers_locked()
            except Exception:
                self._broken = True
                self._start_failures += 1
            else:
                return self._solve_locked(requests, stage_hook, kernel)
        return self._fallback(requests, stage_hook, kernel)

    def _solve_locked(self, requests: List, stage_hook,
                      kernel=None) -> List:
        shards = [_Shard(index, bounds) for index, bounds in
                  enumerate(plan_shards(len(requests), self.n_procs))]
        try:
            self._dispatch(shards, requests, kernel)
            self._collect(shards)
            crashed = [shard for shard in shards if shard.reply is None]
            if crashed:
                self._worker_crashes += len(crashed)
                self._repair_after_crash(crashed)
                if len(crashed) == len(shards) and not self._ever_succeeded:
                    # Every worker died the very first time the pool was
                    # used: treat it as a failed start and degrade.
                    self._broken = True
                    self._start_failures += 1
                    self._inline_fallbacks += 1
                    from repro.core.api import solve_request_systems

                    return solve_request_systems(requests,
                                                 stage_hook=stage_hook,
                                                 kernel=kernel)
            if any(shard.reply is not None for shard in shards):
                self._ever_succeeded = True
            self._shards_dispatched += len(shards)
            self._sharded_requests += len(requests)
            return self._gather(shards, requests, stage_hook)
        finally:
            for shard in shards:
                if shard.segment is not None:
                    shm_transport.destroy_segment(shard.segment)
                    shard.segment = None

    def _dispatch(self, shards: List[_Shard], requests: List,
                  kernel=None) -> None:
        for shard in shards:
            start, stop = shard.bounds
            shard_requests = tuple(requests[start:stop])
            offsets, total = plan_layout(shard_requests, self._mode)
            shard.segment = shm_transport.create_segment(total)
            self._seq += 1
            shard.task = ShardTask(
                seq=self._seq, shard_index=shard.index, mode=self._mode,
                requests=shard_requests, shm_name=shard.segment.name,
                offsets=offsets, kernel=kernel,
            )
            worker = self._workers[shard.index]
            try:
                worker.conn.send(shard.task)
            except (BrokenPipeError, OSError):
                # The worker died while idle; one respawn-and-resend
                # attempt is safe because the task never started.
                try:
                    self._discard_worker(worker)
                    worker = self._spawn_worker(shard.index)
                    self._workers[shard.index] = worker
                    self._worker_restarts += 1
                    worker.conn.send(shard.task)
                except Exception:
                    shard.worker = worker
                    shard.sent_at = time.monotonic()
                    continue  # collected as a crashed shard
            shard.worker = worker
            shard.sent_at = time.monotonic()
            if self._after_dispatch is not None:
                self._after_dispatch(shard.index, worker)

    def _collect(self, shards: List[_Shard]) -> None:
        for shard in shards:
            worker = shard.worker
            deadline = shard.sent_at + self.shard_timeout
            while shard.reply is None:
                try:
                    if worker.conn.poll(0.02):
                        shard.reply = worker.conn.recv()
                        break
                except (EOFError, OSError):
                    break
                if not worker.alive:
                    # Drain a reply the child managed to write before
                    # dying, so finished work is never discarded.
                    try:
                        if worker.conn.poll(0):
                            shard.reply = worker.conn.recv()
                    except (EOFError, OSError):
                        pass
                    break
                if time.monotonic() > deadline:
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
                    break
            shard.received_at = time.monotonic()

    def _repair_after_crash(self, crashed: List[_Shard]) -> None:
        """Re-form the pool after one or more workers were lost."""
        try:
            self._ensure_workers_locked()
        except Exception:
            self._broken = True
            self._start_failures += 1

    def _gather(self, shards: List[_Shard], requests: List,
                stage_hook) -> List:
        results: List = [None] * len(requests)
        anchored: List[Tuple[str, float, float, int]] = []
        pending_groups: Dict = {}
        for shard in shards:
            start, stop = shard.bounds
            reply = shard.reply
            if reply is None or reply.error is not None:
                detail = ("worker process crashed or timed out"
                          if reply is None
                          else f"worker shard failed: {reply.error!r}")
                error = ExecutionBackendError(
                    f"{detail}; {stop - start} request(s) of shard "
                    f"{shard.index} failed (batchmates are unaffected)"
                )
                for index in range(start, stop):
                    results[index] = error
                continue
            anchored.extend(anchor_stamps(reply.stamps, reply.elapsed,
                                          shard.received_at))
            for slot, (index, outcome) in enumerate(
                    zip(range(start, stop), reply.outcomes)):
                if outcome is not None:
                    results[index] = outcome
                    continue
                request = requests[index]
                offset = shard.task.offsets[slot]
                if self._mode == MODE_WORKER:
                    results[index] = self._read_solved_row(
                        request, shard.segment, offset
                    )
                else:
                    key = (request.n_panels,
                           np.dtype(request.precision.dtype))
                    pending_groups.setdefault(key, []).append(
                        (index, request, shard.segment, offset)
                    )
        self._emit_stamps(anchored, len(requests), stage_hook)
        if pending_groups:
            self._solve_parent_groups(pending_groups, results, stage_hook)
        return results

    @staticmethod
    def _read_solved_row(request, segment, offset):
        from repro.core.api import SolvedSystem
        from repro.panel.assembly import Closure

        n = int(request.n_panels)
        row = shm_transport.slot_view(segment, offset, (n + 1,), np.float64)
        return SolvedSystem(
            airfoil=request.build_airfoil(), freestream=request.freestream(),
            closure=Closure.KUTTA, gamma=np.array(row[:n]),
            constant=float(row[n]),
        )

    def _solve_parent_groups(self, groups: Dict, results: List,
                             stage_hook) -> None:
        """Parent-mode LU: one batched factorization per (m, dtype)
        group across *all* shards, mirroring the inline path's
        grouping so stack structure (and numerics) are identical."""
        from repro.core.api import SolvedSystem
        from repro.linalg import batched_lu_factor, batched_lu_solve
        from repro.panel.assembly import Closure

        for (n_panels, dtype), members in groups.items():
            m = int(n_panels)
            matrices = np.empty((len(members), m, m), dtype=dtype)
            rhs = np.empty((len(members), m), dtype=dtype)
            for row, (_, _, segment, offset) in enumerate(members):
                matrices[row] = shm_transport.slot_view(segment, offset,
                                                        (m, m), dtype)
                rhs[row] = shm_transport.slot_view(
                    segment, offset + m * m * dtype.itemsize, (m,), dtype
                )
            solve_started = time.monotonic()
            try:
                unknowns = batched_lu_solve(
                    batched_lu_factor(matrices, overwrite=True), rhs
                )
            except ReproError as error:
                for index, _, _, _ in members:
                    results[index] = error
                continue
            finally:
                if stage_hook is not None:
                    stage_hook("solve", solve_started, time.monotonic(),
                               len(members))
            for (index, request, _, _), row in zip(members, unknowns):
                gamma, constant = expand_kutta_row(row)
                results[index] = SolvedSystem(
                    airfoil=request.build_airfoil(),
                    freestream=request.freestream(),
                    closure=Closure.KUTTA, gamma=gamma, constant=constant,
                )

    def _emit_stamps(self, anchored: List, n_requests: int,
                     stage_hook) -> None:
        """Per-shard attribution plus parallel-wall envelopes.

        Each child stamp is re-emitted under ``<stage>_shard`` so
        traces and ``/metrics`` show where every worker spent its time;
        the envelope of the shard spans is emitted under the core stage
        name, so ``assembly_seconds`` (and ``solve_seconds`` in worker
        mode) keep measuring *wall* time — comparable across backends
        and consistent with the W/A/L/O identity.
        """
        if stage_hook is None:
            return
        by_stage: Dict[str, List[Tuple[float, float]]] = {}
        for stage, start, end, count in anchored:
            stage_hook(f"{stage}_shard", start, end, count)
            by_stage.setdefault(stage, []).append((start, end))
        for stage, spans in by_stage.items():
            envelope = merge_envelope(spans)
            if envelope is not None:
                stage_hook(stage, envelope[0], envelope[1], n_requests)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            alive = sum(1 for worker in self._workers
                        if worker is not None and worker.alive)
            return {
                "name": self.name,
                "procs": self.n_procs,
                "alive_workers": alive,
                "solve_in_worker": self.solve_in_worker,
                "broken": self._broken,
                "shards": self._shards_dispatched,
                "sharded_requests": self._sharded_requests,
                "worker_crashes": self._worker_crashes,
                "worker_restarts": self._worker_restarts,
                "inline_fallbacks": self._inline_fallbacks,
                "start_failures": self._start_failures,
            }


# ----------------------------------------------------------------------
# Registry and defaults
# ----------------------------------------------------------------------

#: Recognized backend names for :func:`make_backend`.
BACKEND_NAMES = ("inline", "process")


def make_backend(name: str, *, n_procs: Optional[int] = None,
                 solve_in_worker: Optional[bool] = None) -> ExecutionBackend:
    """Construct a backend by name (``inline`` or ``process``)."""
    normalized = str(name).strip().lower()
    if normalized == "inline":
        return InlineBackend()
    if normalized == "process":
        if solve_in_worker is None:
            solve_in_worker = (
                os.environ.get(SOLVE_ENV, "worker").strip().lower()
                != "parent"
            )
        return ProcessBackend(n_procs=n_procs,
                              solve_in_worker=solve_in_worker)
    raise ServeError(
        f"unknown execution backend {name!r}; "
        f"expected one of {', '.join(BACKEND_NAMES)}"
    )


_default_lock = threading.Lock()
_default_backend: Optional[ExecutionBackend] = None
_default_name: Optional[str] = None


def default_backend() -> ExecutionBackend:
    """The process-wide backend used when none is passed explicitly.

    Chosen by ``REPRO_EXEC_BACKEND`` (default ``inline``) and cached;
    the cache is invalidated when the variable's value changes, so
    tests can flip backends with ``monkeypatch.setenv``.
    """
    global _default_backend, _default_name
    name = os.environ.get(BACKEND_ENV, "inline").strip().lower() or "inline"
    with _default_lock:
        if _default_backend is None or _default_name != name:
            if _default_backend is not None:
                _default_backend.close()
            _default_backend = make_backend(name)
            _default_name = name
        return _default_backend


def close_default_backend() -> None:
    """Close and forget the cached default backend (tests, atexit)."""
    global _default_backend, _default_name
    with _default_lock:
        if _default_backend is not None:
            _default_backend.close()
        _default_backend = None
        _default_name = None


atexit.register(close_default_backend)


def resolve_backend(backend=None) -> ExecutionBackend:
    """Coerce an ``evaluate_requests(backend=...)`` argument.

    ``None`` resolves to :func:`default_backend`; an
    :class:`ExecutionBackend` instance passes through.  Strings are
    deliberately rejected here — construct once with
    :func:`make_backend` instead of respawning a pool per call.
    """
    if backend is None:
        return default_backend()
    if isinstance(backend, ExecutionBackend):
        return backend
    raise ServeError(
        f"backend must be an ExecutionBackend or None, got "
        f"{type(backend).__name__}; use make_backend() for names"
    )
