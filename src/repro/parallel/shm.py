"""Shared-memory transport for the process-pool execution backend.

The parent owns every segment: it creates one per shard before
dispatch, the child attaches and writes its slots, and the parent
unlinks in a ``finally`` once the payload has been copied out — so a
crashed child can never leak a segment past the batch that created it.

Attaching is where the stdlib needs help: before Python 3.13,
``SharedMemory(name=...)`` registers the segment with the attaching
process's resource tracker as if it owned it, which produces spurious
"leaked shared_memory" warnings (and a double unlink attempt) when the
child exits.  :func:`attach_segment` uses ``track=False`` where
available and falls back to unregistering by hand, so ownership stays
with the parent on every supported Python.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Tuple

import numpy as np


def create_segment(n_bytes: int) -> shared_memory.SharedMemory:
    """Create a parent-owned segment of at least *n_bytes*."""
    return shared_memory.SharedMemory(create=True, size=max(int(n_bytes), 8))


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without claiming ownership."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        # Suppress the attach-side register instead of unregistering
        # afterwards: under a fork context the child shares the
        # parent's tracker process, whose name set dedupes the double
        # register — an unregister here would then make the parent's
        # own unlink-time unregister fail (bpo-38119).
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(res_name, rtype):  # pragma: no cover - 3.13+ skips
            if rtype != "shared_memory":
                original(res_name, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def destroy_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink a parent-owned segment (idempotent-ish)."""
    try:
        segment.close()
    finally:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def slot_view(segment: shared_memory.SharedMemory, offset: int,
              shape: Tuple[int, ...], dtype) -> np.ndarray:
    """A zero-copy ndarray view of one slot inside a segment.

    The view is only valid while the segment is open; callers that
    outlive the segment must copy (``np.array(view)``) first.
    """
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf,
                      offset=int(offset))
