"""Process-parallel execution backends for micro-batch evaluation.

This package supplies the :class:`ExecutionBackend` seam used by
:func:`repro.core.api.evaluate_requests`: ``inline`` (default — solve
in the calling thread) and ``process`` (shard a micro-batch's assembly
and, optionally, the batched LU across persistent worker processes,
moving bulk arrays through POSIX shared memory).  See
:mod:`repro.parallel.pool` for the backend implementations,
:mod:`repro.parallel.protocol` for the shard/layout maths, and the
"Execution backends" section of ``docs/serving.md`` for trade-offs.
"""

from repro.parallel.pool import (
    BACKEND_ENV,
    BACKEND_NAMES,
    PROCS_ENV,
    SOLVE_ENV,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    close_default_backend,
    default_backend,
    make_backend,
    resolve_backend,
)
from repro.parallel.protocol import MODE_PARENT, MODE_WORKER

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "PROCS_ENV",
    "SOLVE_ENV",
    "MODE_PARENT",
    "MODE_WORKER",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "close_default_backend",
    "default_backend",
    "make_backend",
    "resolve_backend",
]
