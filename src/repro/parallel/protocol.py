"""Shard protocol for the process-pool execution backend.

A micro-batch handed to :class:`repro.parallel.ProcessBackend` is cut
into contiguous *shards*, one per worker process.  Everything small
(the :class:`~repro.core.api.AnalyzeRequest` objects, per-request
outcomes, stage timings) crosses the process boundary as pickled
:class:`ShardTask` / :class:`ShardReply` messages over a pipe; the
*bulk* ``float64`` payload — stacked matrices and right-hand sides, or
solved circulation rows — moves through a ``multiprocessing.shared_memory``
segment whose layout both sides compute from this module, so the big
arrays are written exactly once and never pickled.

Two shard modes exist (see :mod:`repro.parallel.pool`):

* ``"worker"`` — the child assembles *and* solves its shard (the full
  :func:`repro.core.api.solve_request_systems` path) and writes one
  ``n_panels + 1`` row of ``float64`` per request: the expanded
  circulation strengths followed by the boundary constant.
* ``"parent"`` — the child only assembles; each request's slot holds
  the closed ``(m, m)`` system matrix followed by its ``m`` right-hand
  side values, in the request's own precision.  The parent stacks the
  groups and runs the batched LU itself, preserving the inline path's
  one-factorization-per-group structure.

Both layouts are bit-faithful to the inline backend: the batched LU
kernels are elementwise across the stack (each matrix is factored
independently), widening ``float32`` results to ``float64`` is exact,
and the Kutta expansion below mirrors
:meth:`repro.panel.assembly.PanelSystem.expand_solution` — which is
what makes response bytes identical across backends.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Shard mode: the child assembles and solves (gamma rows cross back).
MODE_WORKER = "worker"

#: Shard mode: the child only assembles (matrices + rhs cross back).
MODE_PARENT = "parent"

#: Slot alignment in bytes; keeps every ``float64`` view aligned even
#: after a single-precision slot of odd byte length.
_ALIGN = 8


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """One worker's share of a micro-batch.

    Attributes
    ----------
    seq:
        Monotonic dispatch sequence number (labels replies).
    shard_index:
        Position of this shard within the batch's shard list.
    mode:
        :data:`MODE_WORKER` or :data:`MODE_PARENT`.
    requests:
        The shard's :class:`~repro.core.api.AnalyzeRequest` objects.
    shm_name:
        Name of the parent-owned shared-memory segment to write into.
    offsets:
        Per-request byte offset of each slot within the segment.
    kernel:
        Assembly-kernel selection forwarded to the child (``None``
        defers to the child's ``REPRO_ASSEMBLY_KERNEL`` default) — the
        knob must cross the process boundary explicitly or a parent
        pinned to one kernel would shard onto children using another.
    """

    seq: int
    shard_index: int
    mode: str
    requests: Tuple
    shm_name: str
    offsets: Tuple[int, ...]
    kernel: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class ShardReply:
    """A worker's answer for one :class:`ShardTask`.

    ``outcomes`` aligns with the task's requests: ``None`` marks a slot
    whose payload landed in shared memory, an exception instance marks
    a request that failed during assembly/solve (the same per-request
    error convention :func:`~repro.core.api.evaluate_requests` uses).
    ``error`` is a whole-shard failure (``outcomes`` is then ``None``).
    ``stamps`` are ``(stage, rel_start, rel_end, count)`` tuples
    relative to the child's task start, and ``elapsed`` is the child's
    total task wall time — the parent re-anchors both on its own
    monotonic clock for tracing.
    """

    seq: int
    shard_index: int
    outcomes: Optional[Tuple]
    error: Optional[BaseException]
    stamps: Tuple = ()
    elapsed: float = 0.0


def plan_shards(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Cut ``range(n_items)`` into at most *n_shards* contiguous chunks.

    Chunks are balanced to within one item and never empty, so the
    shard count adapts to small batches (a 3-request batch on a
    4-process pool yields 3 single-request shards).
    """
    n_shards = max(1, min(int(n_shards), int(n_items)))
    base, extra = divmod(int(n_items), n_shards)
    bounds = []
    start = 0
    for index in range(n_shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _slot_bytes(request, mode: str) -> int:
    """Byte size of one request's shared-memory slot (aligned)."""
    n = int(request.n_panels)
    if mode == MODE_WORKER:
        raw = (n + 1) * 8  # float64 gamma row + boundary constant
    else:
        itemsize = np.dtype(request.precision.dtype).itemsize
        raw = (n * n + n) * itemsize  # closed matrix + rhs, native dtype
    return (raw + _ALIGN - 1) // _ALIGN * _ALIGN


def plan_layout(requests: Sequence, mode: str) -> Tuple[Tuple[int, ...], int]:
    """Per-request slot offsets and the total segment size in bytes.

    The Kutta-closed system of an ``n``-panel request is ``n x n`` (see
    :func:`repro.panel.assembly.assemble`), which is what lets the
    parent size every slot without assembling anything.
    """
    offsets = []
    total = 0
    for request in requests:
        offsets.append(total)
        total += _slot_bytes(request, mode)
    return tuple(offsets), max(total, _ALIGN)


def expand_kutta_row(unknowns: np.ndarray) -> Tuple[np.ndarray, float]:
    """Recover ``(gamma, C)`` from one solved Kutta-closure row.

    Mirrors :meth:`repro.panel.assembly.PanelSystem.expand_solution`
    for :attr:`~repro.panel.assembly.Closure.KUTTA`: the eliminated
    trailing-edge strength ``gamma_{n-1} = -gamma_0`` is reinstated and
    the last unknown is the boundary constant.  Used by the parent-mode
    solve, where the assembled :class:`PanelSystem` lives only in the
    child that built it.
    """
    unknowns = np.asarray(unknowns)
    gamma = np.empty(unknowns.shape[0], dtype=unknowns.dtype)
    gamma[:-1] = unknowns[:-1]
    gamma[-1] = -unknowns[0]
    return gamma, float(unknowns[-1])


def anchor_stamps(stamps: Sequence, elapsed: float,
                  received_at: float) -> List[Tuple[str, float, float, int]]:
    """Re-anchor a child's relative stage stamps on the parent's clock.

    The child's monotonic clock is not comparable to the parent's, so
    its task timeline is pinned by estimating the task start as
    ``received_at - elapsed`` (reply receipt minus the child's measured
    task duration) — exact up to the pipe latency of one small message.
    """
    base = float(received_at) - float(elapsed)
    return [(stage, base + start, base + end, count)
            for stage, start, end, count in stamps]


def merge_envelope(spans: Sequence[Tuple[float, float]]
                   ) -> Optional[Tuple[float, float]]:
    """The ``(min_start, max_end)`` envelope of concurrent shard spans.

    This is the *wall* time of a stage running in parallel across the
    pool — the number the paper's W/A/L/O tables put in the ``A`` and
    ``L`` columns — as opposed to the sum of per-shard durations, which
    measures CPU work and exceeds wall whenever shards overlap.
    """
    if not spans:
        return None
    return min(start for start, _ in spans), max(end for _, end in spans)
