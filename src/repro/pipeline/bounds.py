"""Speedup upper bounds for the hybrid scheme (Amdahl-style).

The paper states its own bound: "Assuming instantaneous data transfer
the optimal run time of our hybrid implementation is equal to the time
for the linear solver."  This module formalizes that and two sharper
variants, so every simulated (or measured) result can be reported as a
fraction of what is achievable:

* **solve bound** — an infinitely fast accelerator and link:
  ``W >= L``; speedup ``<= (A_cpu + L) / L``.
* **chain bound** — the real accelerator but a free lunch on overlap:
  the pipeline cannot beat its own slowest stage, so
  ``W >= max(L, A_acc + T)`` for the 2-stage (GPU) scheme where
  assembly and copy share the device queue, and
  ``W >= max(L, A_acc, T)`` for the 3-stage (Phi) scheme where they
  overlap.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ScheduleError
from repro.hardware.host import Workstation
from repro.pipeline.metrics import HybridMetrics
from repro.pipeline.workload import Workload


@dataclasses.dataclass(frozen=True)
class SpeedupBounds:
    """Upper bounds on the hybrid speedup for one configuration."""

    cpu_wall: float  # A_cpu + L: the baseline
    solve_seconds: float  # L
    chain_seconds: float  # A_acc + T (unsliced, setups excluded)

    @property
    def solve_bound(self) -> float:
        """Paper's bound: speedup with an infinitely fast accelerator."""
        return self.cpu_wall / self.solve_seconds

    @property
    def chain_bound(self) -> float:
        """Bound respecting the real accelerator chain throughput."""
        return self.cpu_wall / max(self.solve_seconds, self.chain_seconds)

    def achieved_fraction(self, metrics: HybridMetrics) -> float:
        """How much of the chain bound a simulated run realizes."""
        if metrics.wall_time <= 0.0:
            raise ScheduleError("metrics carry a non-positive wall time")
        achieved = self.cpu_wall / metrics.wall_time
        return achieved / self.chain_bound


def speedup_bounds(workload: Workload, workstation: Workstation) -> SpeedupBounds:
    """Compute the bounds for a workstation's hybrid configuration.

    The chain bound respects the interleave depth the device uses: the
    GPU scheme serializes assembly and copy on the device queue, the
    Phi scheme overlaps them on separate resources.
    """
    from repro.pipeline.schedules import default_stages

    if not workstation.has_accelerator:
        raise ScheduleError("bounds need an accelerator configuration")
    cpu = workstation.cpu
    device = workstation.accelerator
    assembly_cpu = cpu.assembly_seconds(workload.batch, workload.n)
    solve = cpu.solve_seconds(workload.batch, workload.n)
    assembly = device.assembly_seconds(workload.batch, workload.n)
    transfer = device.transfer_seconds(workload.batch, workload.n)
    if default_stages(device) == 2:
        chain = assembly + transfer
    else:
        chain = max(assembly, transfer)
    return SpeedupBounds(
        cpu_wall=assembly_cpu + solve,
        solve_seconds=solve,
        chain_seconds=chain,
    )
