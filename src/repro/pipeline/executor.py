"""Functional execution of the hybrid pipeline.

The schedules in :mod:`repro.pipeline.schedules` carry only durations;
this module runs the *same* slicing with real data: each slice's
systems are genuinely assembled (NumPy, at the device's precision),
"transferred" (the arrays change hands), and solved with the batched LU
kernels — while the virtual clock advances by the calibrated model
times.  The result carries both the physics (one
:class:`~repro.panel.solution.PanelSolution` per candidate, in order)
and the timing (a :class:`~repro.pipeline.engine.Timeline` identical to
the duration-only schedule's, which the tests assert).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.geometry.airfoil import Airfoil
from repro.hardware.host import Workstation
from repro.linalg.batched import batched_lu_factor, batched_lu_solve
from repro.panel.assembly import Closure
from repro.panel.freestream import Freestream
from repro.panel.solution import PanelSolution
from repro.pipeline.engine import Timeline, simulate
from repro.pipeline.metrics import HybridMetrics, evaluate
from repro.pipeline.schedules import default_stages, hybrid
from repro.pipeline.task import Schedule
from repro.pipeline.workload import Workload, slice_sizes


@dataclasses.dataclass(frozen=True)
class FunctionalHybridResult:
    """Physics plus timing of one functional hybrid run."""

    solutions: List[PanelSolution]  # one per candidate, input order
    timeline: Timeline
    metrics: HybridMetrics

    @property
    def wall_time(self) -> float:
        """Simulated wall time of the run."""
        return self.metrics.wall_time

    def lift_coefficients(self) -> np.ndarray:
        """Convenience: cl of every candidate, in input order."""
        return np.array([s.lift_coefficient for s in self.solutions])


def execute_hybrid(airfoils: Sequence[Airfoil], workstation: Workstation,
                   n_slices: int, *, freestream: Freestream = None,
                   closure=Closure.KUTTA) -> FunctionalHybridResult:
    """Run the hybrid pipeline functionally over real airfoils.

    Every airfoil must share a panel count (as in the paper's GA
    workload).  The returned timeline is bit-identical to the one the
    duration-only :func:`repro.pipeline.schedules.hybrid` schedule
    produces for the same workload, because both are built from the
    same kernel model — the difference is that this run also computes
    the actual vortex strengths.
    """
    airfoils = list(airfoils)
    if not airfoils:
        raise ScheduleError("execute_hybrid needs at least one airfoil")
    if not workstation.has_accelerator:
        raise ScheduleError("execute_hybrid needs an accelerator")
    freestream = freestream or Freestream()
    n = airfoils[0].n_panels
    for foil in airfoils[1:]:
        if foil.n_panels != n:
            raise ScheduleError("all airfoils must share a panel count")

    device = workstation.accelerator
    cpu = workstation.cpu
    stages = default_stages(device)
    sizes = slice_sizes(len(airfoils), n_slices)

    # --- functional part: assemble and solve slice by slice -----------
    solutions: List[PanelSolution] = []
    matrix_dim = None
    cursor = 0
    for size in sizes:
        chunk = airfoils[cursor:cursor + size]
        cursor += size
        assembly = device.run_assembly(chunk, freestream, closure=closure)
        matrix_dim = assembly.matrices.shape[1]
        # "Transfer": in-process, the arrays simply change owner; the
        # timing model charges the link below.
        factors = batched_lu_factor(assembly.matrices, overwrite=True)
        unknowns = batched_lu_solve(factors, assembly.rhs)
        for system, row in zip(assembly.systems, unknowns):
            gamma, constant = system.expand_solution(row)
            solutions.append(PanelSolution(
                airfoil=system.airfoil,
                freestream=freestream,
                closure=system.closure,
                gamma=np.asarray(gamma, dtype=np.float64),
                constant=constant,
            ))

    # --- timing part: the same slicing priced by the kernel models ----
    # Note the schedule is built on the *matrix* dimension (n for the
    # Kutta closure, n+1 for zero circulation), matching what is
    # actually assembled, transferred, and solved.
    workload = Workload(batch=len(airfoils), n=matrix_dim,
                        precision=workstation.precision)
    schedule: Schedule = hybrid(workload, workstation, n_slices, stages=stages)
    timeline = simulate(schedule)
    return FunctionalHybridResult(
        solutions=solutions,
        timeline=timeline,
        metrics=evaluate(timeline),
    )
