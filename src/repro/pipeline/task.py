"""Tasks and schedules for the hybrid-pipeline simulator.

A :class:`Schedule` is an explicit DAG of :class:`Task` objects, each
bound to a named resource (a GPU's compute stream, the PCIe link, the
CPU solve pool).  Submission order doubles as the FIFO order on each
resource, exactly like CUDA streams or an offload queue.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from repro.errors import ScheduleError


class TaskKind(enum.Enum):
    """The three operations of the paper's pipeline (Figures 3-4)."""

    ASSEMBLE = "assemble"
    TRANSFER = "transfer"
    SOLVE = "solve"


@dataclasses.dataclass(frozen=True)
class Task:
    """One unit of work bound to a resource.

    Attributes
    ----------
    task_id:
        Unique, dense id; dependencies must reference *earlier* ids
        (schedules are built in execution order).
    kind, resource, duration:
        What runs, where, and for how long (simulated seconds).
    dependencies:
        Ids of tasks that must finish before this one starts.
    slice_index:
        Which batch slice the task processes (-1 when not sliced).
    batch:
        Number of candidate systems the task covers.
    label:
        Short display string for traces.
    """

    task_id: int
    kind: TaskKind
    resource: str
    duration: float
    dependencies: Tuple[int, ...] = ()
    slice_index: int = -1
    batch: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0.0:
            raise ScheduleError(f"task {self.task_id} has negative duration")
        for dep in self.dependencies:
            if dep >= self.task_id:
                raise ScheduleError(
                    f"task {self.task_id} depends on {dep}, which is not earlier"
                )


@dataclasses.dataclass
class Schedule:
    """An ordered task list plus resource-role annotations.

    ``cpu_resource`` names the host solve pool and
    ``primary_accelerator`` the accelerator whose assembly time the
    paper's tables report in their ``A`` column.
    """

    name: str
    tasks: List[Task] = dataclasses.field(default_factory=list)
    cpu_resource: str = "cpu"
    primary_accelerator: Optional[str] = None

    def add(self, kind: TaskKind, resource: str, duration: float, *,
            dependencies: Tuple[int, ...] = (), slice_index: int = -1,
            batch: int = 0, label: str = "") -> Task:
        """Append a task (ids are assigned densely) and return it."""
        task = Task(
            task_id=len(self.tasks),
            kind=kind,
            resource=resource,
            duration=duration,
            dependencies=tuple(dependencies),
            slice_index=slice_index,
            batch=batch,
            label=label or f"{kind.value}[{slice_index}]",
        )
        self.tasks.append(task)
        return task

    @property
    def resources(self) -> List[str]:
        """Resource names in first-use order."""
        seen: Dict[str, None] = {}
        for task in self.tasks:
            seen.setdefault(task.resource, None)
        return list(seen)

    def validate(self) -> None:
        """Check id density and dependency sanity."""
        for index, task in enumerate(self.tasks):
            if task.task_id != index:
                raise ScheduleError(
                    f"task ids must be dense: position {index} holds id {task.task_id}"
                )
        if not self.tasks:
            raise ScheduleError(f"schedule {self.name!r} is empty")

    def total_duration(self, kind: TaskKind, resource: str = None) -> float:
        """Summed duration of tasks of *kind* (optionally one resource)."""
        return sum(
            task.duration
            for task in self.tasks
            if task.kind is kind and (resource is None or task.resource == resource)
        )
