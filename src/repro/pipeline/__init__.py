"""The hybrid accelerator pipeline — the paper's primary contribution.

Build a schedule (:mod:`repro.pipeline.schedules`), simulate it
(:func:`simulate`), extract the paper's W/A/L/O metrics
(:func:`evaluate`), trace it as a Gantt chart (:mod:`repro.pipeline.trace`),
or tune its parameters (:mod:`repro.pipeline.autotune`).
"""

from repro.pipeline.autotune import (
    DEFAULT_DISTRIBUTION_GRID,
    DEFAULT_SLICE_GRID,
    TuneResult,
    predicted_optimum_distribution,
    tune_distribution,
    tune_slices,
)
from repro.pipeline.bounds import SpeedupBounds, speedup_bounds
from repro.pipeline.engine import TaskRecord, Timeline, simulate
from repro.pipeline.executor import FunctionalHybridResult, execute_hybrid
from repro.pipeline.heterogeneous import (
    balanced_fractions,
    heterogeneous_schedule,
    split_batch,
)
from repro.pipeline.metrics import HybridMetrics, evaluate, lower_bound_gap
from repro.pipeline.schedules import (
    DEFAULT_CPU_SOLVE_FRACTION,
    cpu_only,
    default_stages,
    dual_accelerator,
    hybrid,
    sequential_offload,
)
from repro.pipeline.task import Schedule, Task, TaskKind
from repro.pipeline.theory import (
    StageTimes,
    optimal_slice_count,
    predict_hybrid,
    predict_wall_time,
    stage_times,
)
from repro.pipeline.trace import (
    GanttRow,
    GanttSegment,
    GanttTrace,
    build_trace,
    render_ascii,
)
from repro.pipeline.workload import Workload, slice_sizes

__all__ = [
    "DEFAULT_CPU_SOLVE_FRACTION",
    "DEFAULT_DISTRIBUTION_GRID",
    "DEFAULT_SLICE_GRID",
    "FunctionalHybridResult",
    "GanttRow",
    "GanttSegment",
    "GanttTrace",
    "HybridMetrics",
    "Schedule",
    "SpeedupBounds",
    "StageTimes",
    "Task",
    "TaskKind",
    "TaskRecord",
    "Timeline",
    "TuneResult",
    "Workload",
    "balanced_fractions",
    "build_trace",
    "cpu_only",
    "default_stages",
    "dual_accelerator",
    "evaluate",
    "execute_hybrid",
    "heterogeneous_schedule",
    "hybrid",
    "lower_bound_gap",
    "optimal_slice_count",
    "predict_hybrid",
    "predict_wall_time",
    "stage_times",
    "predicted_optimum_distribution",
    "render_ascii",
    "sequential_offload",
    "simulate",
    "slice_sizes",
    "speedup_bounds",
    "split_batch",
    "tune_distribution",
    "tune_slices",
]
