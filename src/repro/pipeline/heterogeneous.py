"""Heterogeneous pipelines: several different accelerators at once.

The paper evaluates one accelerator at a time (plus the two identical
K80 halves in Section 6) and leaves combining them implicit.  This
module generalizes the hybrid schedule to *any* set of accelerators
feeding the shared host solve pool: each device assembles its share of
the batch and ships slices over its own link; the CPU drains all the
solve queues.  The discrete-event engine handles contention for the
shared pool naturally.

Load balancing: with the host solve as the common bottleneck, the
assembly shares only need to keep every device busy for roughly the
same span, so the closed-form split is proportional to each device's
assembly throughput (:func:`balanced_fractions`); the autotuner can
refine it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.hardware.host import Workstation
from repro.pipeline.schedules import _add_hybrid_chain, default_stages
from repro.pipeline.task import Schedule
from repro.pipeline.workload import Workload


def balanced_fractions(workstation: Workstation, workload: Workload) -> List[float]:
    """Assembly-throughput-proportional batch shares per accelerator."""
    if not workstation.accelerators:
        raise ScheduleError("no accelerators to balance over")
    rates = np.array([
        1.0 / device.assembly_seconds(workload.batch, workload.n)
        for device in workstation.accelerators
    ])
    return list(rates / rates.sum())


def split_batch(batch: int, fractions: Sequence[float]) -> List[int]:
    """Integer batch shares matching *fractions* (largest-remainder)."""
    fractions = np.asarray(fractions, dtype=np.float64)
    if len(fractions) == 0:
        raise ScheduleError("need at least one fraction")
    if np.any(fractions < 0.0) or fractions.sum() <= 0.0:
        raise ScheduleError("fractions must be non-negative with positive sum")
    fractions = fractions / fractions.sum()
    raw = fractions * batch
    shares = np.floor(raw).astype(int)
    remainder = batch - int(shares.sum())
    order = np.argsort(raw - shares)[::-1]
    for index in order[:remainder]:
        shares[index] += 1
    return shares.tolist()


def heterogeneous_schedule(workload: Workload, workstation: Workstation,
                           n_slices: int, *,
                           fractions: Optional[Sequence[float]] = None) -> Schedule:
    """Build the multi-accelerator interleave.

    Parameters
    ----------
    workload, workstation:
        The batch and the host with >= 1 accelerators.
    n_slices:
        Slice count *per accelerator chain* (each chain interleaves its
        own share like the single-accelerator hybrid).
    fractions:
        Batch share per accelerator; defaults to
        :func:`balanced_fractions`.  Devices with a zero share are
        skipped.
    """
    if not workstation.has_accelerator:
        raise ScheduleError("heterogeneous schedule needs at least one accelerator")
    if fractions is None:
        fractions = balanced_fractions(workstation, workload)
    if len(fractions) != len(workstation.accelerators):
        raise ScheduleError(
            f"{len(fractions)} fractions for "
            f"{len(workstation.accelerators)} accelerators"
        )
    shares = split_batch(workload.batch, fractions)
    names = "+".join(device.name for device in workstation.accelerators)
    schedule = Schedule(
        name=f"{names}+{workstation.cpu.name} (hetero, {n_slices} slices)",
        cpu_resource="cpu",
        primary_accelerator="accel0",
    )
    for index, (device, share) in enumerate(
            zip(workstation.accelerators, shares)):
        if share == 0:
            continue
        chain_slices = min(n_slices, share)
        _add_hybrid_chain(
            schedule, workload.with_batch(share), device, workstation.cpu,
            chain_slices, stages=default_stages(device),
            accel_resource=f"accel{index}", link_resource=f"link{index}",
        )
    if not schedule.tasks:
        raise ScheduleError("every accelerator received a zero share")
    return schedule


def tune_fractions(workload: Workload, workstation: Workstation,
                   n_slices: int = 10, *, grid_points: int = 21):
    """Grid-search the two-accelerator split minimizing wall time.

    Returns ``(best_fraction_of_first, best_metrics, sweep)`` where the
    sweep lists ``(fraction, metrics)`` pairs.  Only defined for exactly
    two accelerators (the K80-half + Phi combination); for more devices
    start from :func:`balanced_fractions`.
    """
    from repro.pipeline.engine import simulate
    from repro.pipeline.metrics import evaluate

    if len(workstation.accelerators) != 2:
        raise ScheduleError("tune_fractions handles exactly two accelerators")
    sweep = []
    for fraction in np.linspace(0.0, 1.0, grid_points):
        schedule = heterogeneous_schedule(
            workload, workstation, n_slices,
            fractions=(float(fraction), float(1.0 - fraction)),
        )
        sweep.append((float(fraction), evaluate(simulate(schedule))))
    best_fraction, best_metrics = min(sweep, key=lambda item: item[1].wall_time)
    return best_fraction, best_metrics, sweep
