"""The W/A/L/O accounting of the paper's tables.

Conventions (documented in DESIGN.md Section 5):

* ``W``  — simulated wall time (timeline makespan).
* ``L``  — host busy time in solve tasks, including per-call setup.
* ``O``  — ``W - L``; the paper's tables satisfy this identity exactly.
* ``A``  — two flavours: the *busy* assembly time on the primary
  accelerator (Table 3's constant column) and the *exposed* assembly
  (the pipeline fill until the first host solve can start), which is
  what shrinks with the slice count in Table 4.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.errors import ScheduleError
from repro.pipeline.engine import Timeline
from repro.pipeline.task import TaskKind


@dataclasses.dataclass(frozen=True)
class HybridMetrics:
    """The paper's per-row numbers for one simulated schedule."""

    name: str
    wall_time: float  # W
    assembly_busy: float  # A (busy flavour)
    assembly_exposed: float  # A (exposed flavour)
    solve_busy: float  # L
    overhead: float  # O = W - L
    baseline_wall_time: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        """``W_baseline / W`` when a baseline was supplied."""
        if self.baseline_wall_time is None:
            return None
        if self.wall_time <= 0.0:
            raise ScheduleError(
                f"cannot compute speedup of {self.name!r}: "
                f"degenerate wall time {self.wall_time!r}"
            )
        return self.baseline_wall_time / self.wall_time

    def with_baseline(self, baseline_wall_time: float) -> "HybridMetrics":
        """A copy carrying the CPU-only reference wall time."""
        return dataclasses.replace(self, baseline_wall_time=baseline_wall_time)


def evaluate(timeline: Timeline, *,
             baseline_wall_time: Optional[float] = None) -> HybridMetrics:
    """Extract the table metrics from a simulated timeline."""
    schedule = timeline.schedule
    wall = timeline.makespan
    solve_busy = timeline.busy_seconds(schedule.cpu_resource, TaskKind.SOLVE)

    accel = schedule.primary_accelerator
    if accel is not None:
        assembly_busy = timeline.busy_seconds(accel, TaskKind.ASSEMBLE)
        first_solve = timeline.first_start(TaskKind.SOLVE, schedule.cpu_resource)
        assembly_exposed = first_solve if math.isfinite(first_solve) else wall
    else:
        # CPU-only schedules: assembly runs on the host itself.
        assembly_busy = timeline.busy_seconds(schedule.cpu_resource, TaskKind.ASSEMBLE)
        assembly_exposed = assembly_busy

    return HybridMetrics(
        name=schedule.name,
        wall_time=wall,
        assembly_busy=assembly_busy,
        assembly_exposed=assembly_exposed,
        solve_busy=solve_busy,
        overhead=wall - solve_busy,
        baseline_wall_time=baseline_wall_time,
    )


def lower_bound_gap(metrics: HybridMetrics) -> float:
    """Fractional distance of ``W`` from the solve-time lower bound.

    The paper: "Assuming instantaneous data transfer the optimal run
    time of our hybrid implementation is equal to the time for the
    linear solver. Our implementation is within 10 to 20 % of that
    value."
    """
    if metrics.solve_busy <= 0.0:
        raise ScheduleError(
            f"cannot compute lower-bound gap of {metrics.name!r}: "
            f"degenerate solve busy time {metrics.solve_busy!r}"
        )
    return metrics.wall_time / metrics.solve_busy - 1.0
