"""Closed-form performance model of the hybrid pipelines.

The discrete-event engine computes exact schedules; this module derives
the same quantities analytically for uniform slices, which serves two
purposes:

1. **Verification** — for batch sizes divisible by the slice count the
   closed form must match the event engine to rounding error (the test
   suite asserts this), so each implementation checks the other.
2. **Insight** — the formulas expose the paper's trade-off directly:

   With per-slice assembly ``a``, transfer ``t``, host-side offload
   management ``g`` and solve ``l``, a 2-stage chain (GPU scheme, copy
   serialized after assembly on the device queue) completes in

       W = (a + t) + (s - 1) max(a + t, g + l) + (g + l)

   and the 3-stage chain (Phi scheme, copy on its own link) in

       W = a + t + (s - 1) max(a, t, g + l) + (g + l).

   Writing the totals ``A = s a'' + s setup`` etc. shows the familiar
   U-shape in ``s`` and yields the optimal slice count in closed form.
"""

from __future__ import annotations

import dataclasses
import math

from typing import Optional

from repro.errors import ScheduleError
from repro.hardware.host import Workstation
from repro.pipeline.schedules import default_stages
from repro.pipeline.workload import Workload


@dataclasses.dataclass(frozen=True)
class StageTimes:
    """Per-slice stage durations of a uniform hybrid pipeline."""

    assembly: float  # a: accelerator compute per slice
    transfer: float  # t: link time per slice
    management: float  # g: host-side offload bookkeeping per slice
    solve: float  # l: host solve per slice (incl. per-call setup)
    n_slices: int

    @property
    def host(self) -> float:
        """Per-slice host occupancy (management + solve)."""
        return self.management + self.solve


def stage_times(workload: Workload, workstation: Workstation,
                n_slices: int) -> StageTimes:
    """Per-slice durations for a uniform slicing of *workload*.

    Requires the batch to divide evenly (the closed form assumes
    identical slices).
    """
    if workload.batch % n_slices:
        raise ScheduleError(
            f"closed form needs uniform slices: {workload.batch} % {n_slices} != 0"
        )
    accelerator = workstation.accelerator
    per_slice = workload.batch // n_slices
    return StageTimes(
        assembly=accelerator.assembly_seconds(per_slice, workload.n),
        transfer=accelerator.transfer_seconds(per_slice, workload.n),
        management=accelerator.spec.host_overhead_per_call,
        solve=workstation.cpu.solve_seconds(per_slice, workload.n),
        n_slices=n_slices,
    )


def predict_wall_time(times: StageTimes, *, stages: int) -> float:
    """Closed-form makespan of a uniform hybrid pipeline."""
    if stages == 2:
        first = times.assembly + times.transfer
        bottleneck = max(first, times.host)
    elif stages == 3:
        first = times.assembly + times.transfer
        bottleneck = max(times.assembly, times.transfer, times.host)
    else:
        raise ScheduleError(f"stages must be 2 or 3, got {stages}")
    return first + (times.n_slices - 1) * bottleneck + times.host


def predict_hybrid(workload: Workload, workstation: Workstation,
                   n_slices: int, *, stages: Optional[int] = None) -> float:
    """Closed-form wall time for a workstation's hybrid configuration."""
    if stages is None:
        stages = default_stages(workstation.accelerator)
    return predict_wall_time(
        stage_times(workload, workstation, n_slices), stages=stages
    )


def optimal_slice_count(workload: Workload, workstation: Workstation) -> int:
    """Closed-form estimate of the wall-time-minimizing slice count.

    In the solve-bound regime the wall time decomposes as

        W(s) ~ (A_work + T_work)/s + s * c + const

    where ``c`` collects the per-slice fixed costs that land on the
    critical path (solve-call setup, offload management, kernel and
    transfer setup amortized through the fill).  Minimizing gives
    ``s* = sqrt((A_work + T_work) / c)``.  The estimate lands within a
    factor of ~2 of the autotuner's exhaustive answer, which is enough
    to seed the search.
    """
    accelerator = workstation.accelerator
    spec = accelerator.spec
    assembly_work = (
        accelerator.assembly_seconds(workload.batch, workload.n)
        - spec.kernel_setup
    )
    transfer_work = (
        accelerator.transfer_seconds(workload.batch, workload.n)
        - spec.link.latency
    )
    per_slice_cost = (
        spec.host_overhead_per_call
        + workstation.cpu.spec.solve_call_setup
    )
    if per_slice_cost <= 0.0:
        return workload.batch  # no penalty: slice as finely as possible
    estimate = math.sqrt((assembly_work + transfer_work) / per_slice_cost)
    return max(1, min(workload.batch, round(estimate)))
