"""The discrete-event engine that executes a schedule on a virtual clock.

Semantics: every resource runs its tasks in submission order (FIFO,
like a CUDA stream or an OpenMP offload queue); a task starts at the
later of its resource becoming free and its dependencies completing.
Because schedules are built in execution order (dependencies always
point backwards), a single forward pass computes the exact event times.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.errors import ScheduleError
from repro.pipeline.task import Schedule, Task, TaskKind


@dataclasses.dataclass(frozen=True)
class TaskRecord:
    """A task together with its simulated start and end times."""

    task: Task
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Simulated seconds the task occupied its resource."""
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class Timeline:
    """The fully simulated execution of one schedule."""

    schedule: Schedule
    records: List[TaskRecord]

    @property
    def makespan(self) -> float:
        """Wall time of the whole schedule (the paper's ``W``)."""
        return max(record.end for record in self.records)

    def busy_seconds(self, resource: str, kind: Optional[TaskKind] = None) -> float:
        """Total occupied time of a resource (optionally one task kind)."""
        return sum(
            record.duration
            for record in self.records
            if record.task.resource == resource
            and (kind is None or record.task.kind is kind)
        )

    def first_start(self, kind: TaskKind, resource: Optional[str] = None) -> float:
        """Earliest start among tasks of *kind* (``inf`` when absent)."""
        starts = [
            record.start
            for record in self.records
            if record.task.kind is kind
            and (resource is None or record.task.resource == resource)
        ]
        return min(starts) if starts else float("inf")

    def utilization(self, resource: str) -> float:
        """Busy fraction of a resource over the makespan."""
        span = self.makespan
        if span <= 0.0:
            return 0.0
        return self.busy_seconds(resource) / span

    def records_for(self, resource: str) -> List[TaskRecord]:
        """Records on one resource, in execution (submission) order."""
        return [record for record in self.records if record.task.resource == resource]

    def record_of(self, task_id: int) -> TaskRecord:
        """The record of a specific task."""
        return self.records[task_id]


def simulate(schedule: Schedule, *, jitter: float = 0.0,
             rng=None) -> Timeline:
    """Run a schedule on the virtual clock and return its timeline.

    With ``jitter > 0`` every task duration is multiplied by an
    independent lognormal factor with that sigma (mean-one), modelling
    the run-to-run noise of real measurements; the default is exact and
    deterministic.  Raises :class:`ScheduleError` on malformed
    schedules (non-dense ids, forward dependencies, empty schedule).
    """
    schedule.validate()
    if jitter < 0.0:
        raise ScheduleError(f"jitter must be non-negative, got {jitter}")
    if jitter > 0.0:
        import numpy as np

        rng = rng or np.random.default_rng()
        # Mean-one lognormal: exp(N(-sigma^2/2, sigma)).
        factors = np.exp(rng.normal(-0.5 * jitter**2, jitter,
                                    size=len(schedule.tasks)))
    else:
        factors = None
    resource_free: Dict[str, float] = {}
    end_times: List[float] = []
    records: List[TaskRecord] = []
    for task in schedule.tasks:
        ready = 0.0
        for dep in task.dependencies:
            if dep >= len(end_times):
                raise ScheduleError(
                    f"task {task.task_id} depends on unscheduled task {dep}"
                )
            ready = max(ready, end_times[dep])
        start = max(ready, resource_free.get(task.resource, 0.0))
        duration = task.duration
        if factors is not None:
            duration *= float(factors[task.task_id])
        end = start + duration
        resource_free[task.resource] = end
        end_times.append(end)
        records.append(TaskRecord(task=task, start=start, end=end))
    return Timeline(schedule=schedule, records=records)
