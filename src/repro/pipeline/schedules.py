"""Builders for the paper's pipeline schedules.

Four schemes are modelled:

* :func:`cpu_only` — the baseline: assemble then solve on the host.
* :func:`sequential_offload` — accelerator assembly, transfer, and host
  solve strictly in order (the "naive implementation" of Section 4).
* :func:`hybrid` — the communication-hiding interleave.  With
  ``stages=2`` assembly and copy share the accelerator's queue and only
  overlap with the host solve (Figure 3, the GPU scheme); with
  ``stages=3`` the copy runs on a separate link resource so all three
  operations overlap (Figure 4, the Xeon Phi scheme).
* :func:`dual_accelerator` — Section 6: a fraction of the candidates
  takes the hybrid path on the first GPU while the rest is assembled
  *and solved* on the second GPU, with the host solve pool down one
  thread to babysit the device-side solve.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ScheduleError
from repro.hardware.device import SimulatedDevice
from repro.hardware.host import Workstation
from repro.hardware.specs import DeviceKind
from repro.pipeline.task import Schedule, TaskKind
from repro.pipeline.workload import Workload, slice_sizes

#: Host solve throughput while one thread drives the second GPU's
#: library calls (the paper uses 15 of 16 OpenMP threads).
DEFAULT_CPU_SOLVE_FRACTION = 15.0 / 16.0

#: Slowdown of the *device-side* batched solve relative to its Table 2
#: anchor.  Table 2 measured MAGMA with the full host at its disposal;
#: in the dual-GPU scheme the solve runs behind a single babysitting
#: pthread and pays stream-synchronization overhead.  Fitted to the
#: paper's Table 5 single-precision rows, where the second GPU's chain
#: is the binding path.
DEVICE_SOLVE_DERATE = 1.18


def default_stages(accelerator: SimulatedDevice) -> int:
    """The interleave depth the paper uses for each accelerator family.

    GPUs assemble so fast that serializing assembly and copy on the
    device queue suffices (2 stages); the Xeon Phi needs the copy
    overlapped as well (3 stages).
    """
    return 3 if accelerator.spec.kind is DeviceKind.MANYCORE else 2


def cpu_only(workload: Workload, cpu: SimulatedDevice) -> Schedule:
    """The paper's baseline: one assembly and one solve on the host."""
    schedule = Schedule(name=f"{cpu.name} (cpu only)", cpu_resource="cpu")
    assemble = schedule.add(
        TaskKind.ASSEMBLE, "cpu", cpu.assembly_seconds(workload.batch, workload.n),
        batch=workload.batch, label="assemble",
    )
    schedule.add(
        TaskKind.SOLVE, "cpu", cpu.solve_seconds(workload.batch, workload.n),
        dependencies=(assemble.task_id,), batch=workload.batch, label="solve",
    )
    return schedule


def sequential_offload(workload: Workload, workstation: Workstation) -> Schedule:
    """Offload without interleaving: assemble, copy, solve in sequence.

    Equivalent to :func:`hybrid` with one slice but kept separate so the
    ablation bench can name it.
    """
    return hybrid(workload, workstation, n_slices=1)


def hybrid(workload: Workload, workstation: Workstation, n_slices: int, *,
           stages: Optional[int] = None,
           cpu_solve_fraction: float = 1.0) -> Schedule:
    """The communication-hiding interleave of Figures 3 and 4.

    Parameters
    ----------
    workload:
        The batch of systems to process.
    workstation:
        Host plus (at least) one accelerator.
    n_slices:
        How many slices the batch is cut into.
    stages:
        2 = assembly and copy serialized on the accelerator queue
        (GPU scheme), 3 = copy overlapped on a dedicated link resource
        (Xeon Phi scheme).  Defaults per accelerator family.
    cpu_solve_fraction:
        Host solve throughput fraction (used by the dual-GPU scheme).
    """
    if not workstation.has_accelerator:
        raise ScheduleError("hybrid schedule needs an accelerator")
    accelerator = workstation.accelerator
    if stages is None:
        stages = default_stages(accelerator)
    if stages not in (2, 3):
        raise ScheduleError(f"stages must be 2 or 3, got {stages}")
    schedule = Schedule(
        name=f"{accelerator.name}+{workstation.cpu.name} ({n_slices} slices)",
        cpu_resource="cpu",
        primary_accelerator="accel",
    )
    _add_hybrid_chain(
        schedule, workload, accelerator, workstation.cpu, n_slices,
        stages=stages, accel_resource="accel", link_resource="link",
        cpu_solve_fraction=cpu_solve_fraction,
    )
    return schedule


def _add_hybrid_chain(schedule: Schedule, workload: Workload,
                      accelerator: SimulatedDevice, cpu: SimulatedDevice,
                      n_slices: int, *, stages: int, accel_resource: str,
                      link_resource: str, cpu_solve_fraction: float = 1.0) -> None:
    """Append one assemble/copy/solve pipeline to *schedule*."""
    copy_resource = accel_resource if stages == 2 else link_resource
    host_overhead = accelerator.spec.host_overhead_per_call
    for index, size in enumerate(slice_sizes(workload.batch, n_slices)):
        assemble = schedule.add(
            TaskKind.ASSEMBLE, accel_resource,
            accelerator.assembly_seconds(size, workload.n),
            slice_index=index, batch=size,
        )
        copy = schedule.add(
            TaskKind.TRANSFER, copy_resource,
            accelerator.transfer_seconds(size, workload.n),
            dependencies=(assemble.task_id,), slice_index=index, batch=size,
        )
        solve_after = copy.task_id
        if host_overhead > 0.0:
            # Offload bookkeeping burns host time that is neither solve
            # work nor hideable: it lands in the paper's O column.
            management = schedule.add(
                TaskKind.TRANSFER, schedule.cpu_resource, host_overhead,
                dependencies=(copy.task_id,), slice_index=index, batch=size,
                label=f"offload mgmt[{index}]",
            )
            solve_after = management.task_id
        schedule.add(
            TaskKind.SOLVE, schedule.cpu_resource,
            cpu.solve_seconds(size, workload.n,
                              throughput_fraction=cpu_solve_fraction),
            dependencies=(solve_after,), slice_index=index, batch=size,
        )


def dual_accelerator(workload: Workload, workstation: Workstation,
                     distribution: float, n_slices: int, *,
                     cpu_solve_fraction: float = DEFAULT_CPU_SOLVE_FRACTION) -> Schedule:
    """Section 6: use both GPUs of the K80.

    ``distribution`` is the fraction of candidates taking the hybrid
    path (assembled on the first GPU, solved on the host); the rest is
    assembled and solved entirely on the second GPU.  ``distribution``
    of 1.0 degenerates to the single-GPU hybrid but keeps the reduced
    host solve pool, matching how the paper reports its reference rows.
    """
    if len(workstation.accelerators) < 2:
        raise ScheduleError("dual_accelerator needs two accelerators")
    if not 0.0 < distribution <= 1.0:
        raise ScheduleError(f"distribution must be in (0, 1], got {distribution}")
    first, second = workstation.accelerators[0], workstation.accelerators[1]
    first_batch, second_batch = workload.split_sizes(distribution)
    hybrid_part = workload.with_batch(first_batch)
    schedule = Schedule(
        name=(f"2x{first.name}+{workstation.cpu.name} "
              f"(distr {distribution:.2f}, {n_slices} slices)"),
        cpu_resource="cpu",
        primary_accelerator="accel0",
    )
    _add_hybrid_chain(
        schedule, hybrid_part, first, workstation.cpu, n_slices,
        stages=2, accel_resource="accel0", link_resource="link0",
        cpu_solve_fraction=cpu_solve_fraction,
    )
    if second_batch > 0:
        assemble = schedule.add(
            TaskKind.ASSEMBLE, "accel1",
            second.assembly_seconds(second_batch, workload.n),
            batch=second_batch, label="assemble (gpu2)",
        )
        schedule.add(
            TaskKind.SOLVE, "accel1",
            second.solve_seconds(second_batch, workload.n,
                                 throughput_fraction=1.0 / DEVICE_SOLVE_DERATE),
            dependencies=(assemble.task_id,), batch=second_batch,
            label="solve (gpu2)",
        )
    return schedule
