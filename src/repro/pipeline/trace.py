"""Gantt traces of simulated pipelines (Figures 3 and 4).

Turns a :class:`~repro.pipeline.engine.Timeline` into per-resource rows
of labelled segments, plus an ASCII renderer so the figures can be
regenerated in a terminal (no plotting stack is assumed; an SVG writer
lives in :mod:`repro.viz.svg`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional

from repro.pipeline.engine import Timeline
from repro.pipeline.task import TaskKind

#: Characters used to fill Gantt bars per task kind (ASCII rendering).
KIND_GLYPHS: Dict[TaskKind, str] = {
    TaskKind.ASSEMBLE: "a",
    TaskKind.TRANSFER: "c",
    TaskKind.SOLVE: "s",
}

#: Row titles matching the paper's figure legends.
KIND_TITLES: Dict[TaskKind, str] = {
    TaskKind.ASSEMBLE: "assembly",
    TaskKind.TRANSFER: "copy",
    TaskKind.SOLVE: "solve",
}


@dataclasses.dataclass(frozen=True)
class GanttSegment:
    """One bar on a Gantt row.

    ``kind`` is a :class:`TaskKind` for simulated timelines, but any
    hashable (e.g. a live serving stage name) renders too — the ASCII
    renderer accepts a custom glyph table for non-simulated traces.
    """

    start: float
    end: float
    kind: Hashable
    label: str

    @property
    def duration(self) -> float:
        """Simulated seconds the segment covers."""
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class GanttRow:
    """All bars of one resource."""

    resource: str
    segments: List[GanttSegment]

    def busy(self) -> float:
        """Total busy seconds on the row."""
        return sum(segment.duration for segment in self.segments)


@dataclasses.dataclass(frozen=True)
class GanttTrace:
    """A complete per-resource execution trace."""

    name: str
    rows: List[GanttRow]
    makespan: float

    def row(self, resource: str) -> GanttRow:
        """The row of a named resource."""
        for candidate in self.rows:
            if candidate.resource == resource:
                return candidate
        raise KeyError(f"no resource {resource!r} in trace")


def build_trace(timeline: Timeline) -> GanttTrace:
    """Convert a timeline into a Gantt trace (resources in first-use order)."""
    rows = []
    for resource in timeline.schedule.resources:
        segments = [
            GanttSegment(
                start=record.start,
                end=record.end,
                kind=record.task.kind,
                label=record.task.label,
            )
            for record in timeline.records_for(resource)
        ]
        rows.append(GanttRow(resource=resource, segments=segments))
    return GanttTrace(
        name=timeline.schedule.name, rows=rows, makespan=timeline.makespan
    )


def render_ascii(trace: GanttTrace, *, width: int = 78,
                 glyphs: Optional[Dict] = None,
                 titles: Optional[Dict] = None) -> str:
    """Render a trace as fixed-width ASCII art.

    Each resource becomes one line; segment kinds map to *glyphs*
    (default :data:`KIND_GLYPHS`: ``a`` assembly, ``c`` copy, ``s``
    solve), idle time to ``.``.  A scale line with the makespan closes
    the plot.  Live traces (see :mod:`repro.serve.tracing`) pass their
    own stage-name → glyph table; a kind missing from the table falls
    back to its first character, so the renderer never KeyErrors on an
    unknown stage.
    """
    glyphs = KIND_GLYPHS if glyphs is None else glyphs
    titles = KIND_TITLES if titles is None else titles
    if trace.makespan <= 0.0 or not trace.rows:
        return f"{trace.name}: empty trace"
    label_width = max(len(row.resource) for row in trace.rows) + 1
    scale = width / trace.makespan
    lines = [f"{trace.name}  (W = {trace.makespan:.3f} s)"]
    for row in trace.rows:
        canvas = ["."] * width
        for segment in row.segments:
            begin = int(segment.start * scale)
            finish = max(begin + 1, int(round(segment.end * scale)))
            glyph = glyphs.get(segment.kind) or (str(segment.kind)[:1] or "?")
            for position in range(begin, min(finish, width)):
                canvas[position] = glyph
        lines.append(f"{row.resource:<{label_width}}|{''.join(canvas)}|")
    ruler = " " * label_width + "0" + " " * (width - len(f"{trace.makespan:.2f}s")) \
        + f"{trace.makespan:.2f}s"
    lines.append(ruler)
    lines.append(
        " " * label_width
        + "legend: " + ", ".join(
            f"{glyph} = {titles.get(kind, str(kind))}"
            for kind, glyph in glyphs.items()
        )
    )
    return "\n".join(lines)
