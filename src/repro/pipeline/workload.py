"""Workload definition and batch slicing.

The paper's reference workload is "4000 candidate solutions ...
optimized using a genetic algorithm with 10 generations. Each geometry
is discretized using 200 points."  For the pipeline, what matters is
the stream of ``batch`` systems of dimension ``n`` at a given
precision, and how that stream is cut into slices.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.errors import ScheduleError
from repro.precision import Precision, PrecisionLike


@dataclasses.dataclass(frozen=True)
class Workload:
    """A batch of identical-size panel systems to assemble and solve."""

    batch: int = 4000
    n: int = 200
    precision: Precision = Precision.DOUBLE
    generations: int = 10  # informational: how the GA produced the batch

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ScheduleError(f"workload batch must be >= 1, got {self.batch}")
        if self.n < 2:
            raise ScheduleError(f"workload n must be >= 2, got {self.n}")
        object.__setattr__(self, "precision", Precision.parse(self.precision))

    @classmethod
    def paper_reference(cls, precision: PrecisionLike = Precision.DOUBLE) -> "Workload":
        """The Table 2-5 workload (4000 candidates, n = 200)."""
        return cls(batch=4000, n=200, precision=Precision.parse(precision))

    @property
    def matrix_bytes(self) -> int:
        """Bytes of one assembled system plus right-hand side."""
        return (self.n * self.n + self.n) * self.precision.itemsize

    @property
    def total_bytes(self) -> int:
        """Bytes of the whole batch of assembled systems."""
        return self.batch * self.matrix_bytes

    def with_batch(self, batch: int) -> "Workload":
        """A copy covering a different number of candidates."""
        return dataclasses.replace(self, batch=batch)

    def split_sizes(self, fraction: float) -> tuple:
        """Cut the batch into ``(first, second)`` candidate counts.

        Used by the dual-GPU scheme (Section 6): ``fraction`` of the
        candidates take the hybrid path, the rest go to the second GPU.
        ``second`` is zero when ``fraction`` is 1 (single-GPU reference).
        """
        if not 0.0 < fraction <= 1.0:
            raise ScheduleError(f"split fraction must be in (0, 1], got {fraction}")
        first = max(1, round(self.batch * fraction))
        first = min(first, self.batch)
        return first, self.batch - first


def slice_sizes(batch: int, n_slices: int) -> List[int]:
    """Cut *batch* candidates into *n_slices* near-equal positive parts.

    The first ``batch % n_slices`` slices get one extra candidate, so
    sizes differ by at most one and always sum to *batch*.
    """
    if n_slices < 1:
        raise ScheduleError(f"need at least one slice, got {n_slices}")
    if n_slices > batch:
        raise ScheduleError(
            f"cannot cut {batch} candidates into {n_slices} non-empty slices"
        )
    base, extra = divmod(batch, n_slices)
    return [base + (1 if index < extra else 0) for index in range(n_slices)]
