"""Autotuning of the pipeline's free parameters.

The paper tunes two knobs by hand: the slice count ("between 10 and 20
slices seems to yield near optimal performance") and, for the dual-GPU
scheme, the work distribution ("optimal load balancing dictates that
about one quarter of the original problem is parceled out to the second
GPU").  These searches make both choices automatic.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Tuple

from repro.errors import ScheduleError
from repro.hardware.host import Workstation
from repro.pipeline.engine import simulate
from repro.pipeline.metrics import HybridMetrics, evaluate
from repro.pipeline.schedules import dual_accelerator, hybrid
from repro.pipeline.workload import Workload

#: Default slice-count grid: the paper's values plus a finer sweep.
DEFAULT_SLICE_GRID = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64)

#: Default dual-GPU distribution grid around the paper's 0.70-0.80 range.
DEFAULT_DISTRIBUTION_GRID = tuple(round(0.50 + 0.05 * i, 2) for i in range(11))


@dataclasses.dataclass(frozen=True)
class TuneResult:
    """Outcome of a parameter sweep."""

    best_parameter: float
    best_metrics: HybridMetrics
    sweep: List[Tuple[float, HybridMetrics]]

    @property
    def best_wall_time(self) -> float:
        """Wall time at the optimum."""
        return self.best_metrics.wall_time


def _validated_slice_grid(candidates: Iterable[int], batch: int) -> List[int]:
    """Dedupe, sort, and range-check a slice-count grid.

    An automated tuner feeds grids straight from config; a silent skip
    of every candidate used to surface as an unrelated empty-sweep
    error, so every rejection names the offending grid.
    """
    grid = list(candidates)
    if not grid:
        raise ScheduleError("no feasible slice counts to tune over: empty grid")
    for value in grid:
        if value != int(value) or int(value) <= 0:
            raise ScheduleError(
                f"invalid slice count {value!r} in grid {tuple(grid)}: "
                "slice counts must be positive integers"
            )
    unique = sorted({int(value) for value in grid})
    feasible = [value for value in unique if value <= batch]
    if not feasible:
        raise ScheduleError(
            f"every slice count in grid {tuple(unique)} exceeds the "
            f"workload batch {batch}; nothing to tune over"
        )
    return feasible


def _validated_distribution_grid(candidates: Iterable[float]) -> List[float]:
    """Dedupe, sort, and range-check a work-distribution grid."""
    grid = list(candidates)
    if not grid:
        raise ScheduleError("no feasible distributions to tune over: empty grid")
    for value in grid:
        if not (0.0 < float(value) <= 1.0):
            raise ScheduleError(
                f"invalid distribution {value!r} in grid {tuple(grid)}: "
                "distributions must lie in (0, 1]"
            )
    return sorted({float(value) for value in grid})


def tune_slices(workload: Workload, workstation: Workstation, *,
                candidates: Iterable[int] = DEFAULT_SLICE_GRID,
                stages: Optional[int] = None) -> TuneResult:
    """Find the slice count minimizing the hybrid wall time."""
    sweep: List[Tuple[float, HybridMetrics]] = []
    for n_slices in _validated_slice_grid(candidates, workload.batch):
        timeline = simulate(hybrid(workload, workstation, n_slices, stages=stages))
        sweep.append((float(n_slices), evaluate(timeline)))
    return _pick_best(sweep, "slice counts")


def tune_distribution(workload: Workload, workstation: Workstation, *,
                      n_slices: int = 10,
                      candidates: Iterable[float] = DEFAULT_DISTRIBUTION_GRID) -> TuneResult:
    """Find the dual-GPU work distribution minimizing wall time."""
    sweep: List[Tuple[float, HybridMetrics]] = []
    for distribution in _validated_distribution_grid(candidates):
        timeline = simulate(
            dual_accelerator(workload, workstation, distribution, n_slices)
        )
        sweep.append((float(distribution), evaluate(timeline)))
    return _pick_best(sweep, "distributions")


def _pick_best(sweep: List[Tuple[float, HybridMetrics]], what: str) -> TuneResult:
    if not sweep:
        raise ScheduleError(f"no feasible {what} to tune over")
    best_parameter, best_metrics = min(sweep, key=lambda item: item[1].wall_time)
    return TuneResult(
        best_parameter=best_parameter, best_metrics=best_metrics, sweep=sweep
    )


def predicted_optimum_distribution(hybrid_unit_time: float,
                                   device_unit_time: float) -> Optional[float]:
    """Closed-form load balance between the two paths.

    If processing one candidate costs ``hybrid_unit_time`` on the hybrid
    path and ``device_unit_time`` on the second GPU, the makespan of the
    split is minimized when both chains finish together:
    ``distr = device_unit_time / (hybrid_unit_time + device_unit_time)``.
    The paper's "about one quarter to the second GPU" corresponds to
    ``distr ~ 0.75`` for its timings.
    """
    total = hybrid_unit_time + device_unit_time
    if total <= 0.0:
        return None
    return device_unit_time / total
