"""Device memory capacity model.

The hybrid scheme buffers assembled matrices on the accelerator until
they are shipped to the host; on real hardware the device memory caps
how much of the batch can be in flight.  This module checks a workload
against a device's capacity and derives the minimum slice count that
keeps the resident footprint within budget — a constraint the paper's
4000 x 200^2 workload satisfies easily on a 12 GB K80 half but which
binds for larger sweeps (n = 400+, bigger populations).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import HardwareModelError
from repro.hardware.specs import DeviceSpec
from repro.pipeline.workload import Workload

#: Device memory per accelerator (bytes).  The K80 card carries 24 GB
#: split between its two GPUs; the Phi 7120 has 16 GB of GDDR5.
DEVICE_MEMORY_BYTES = {
    "Phi 7120": 16 * 1024**3,
    "0.5x K80": 12 * 1024**3,
    "1x K80": 24 * 1024**3,
}

#: Fraction of device memory usable for workload buffers (the rest is
#: reserved for the runtime, ECC overhead, and scratch space).
USABLE_FRACTION = 0.85


@dataclasses.dataclass(frozen=True)
class MemoryPlan:
    """How a workload fits (or doesn't) on one device."""

    device: DeviceSpec
    workload: Workload
    capacity_bytes: int
    resident_bytes: int  # whole-batch footprint
    fits_whole_batch: bool
    min_slices: int  # smallest slice count whose slices fit

    @property
    def utilization(self) -> float:
        """Whole-batch footprint as a fraction of usable capacity."""
        return self.resident_bytes / self.capacity_bytes


def device_capacity_bytes(device: DeviceSpec) -> int:
    """Usable buffer capacity of an accelerator."""
    try:
        total = DEVICE_MEMORY_BYTES[device.name]
    except KeyError:
        raise HardwareModelError(
            f"no memory size recorded for device {device.name!r}"
        )
    return int(total * USABLE_FRACTION)


def plan_memory(device: DeviceSpec, workload: Workload) -> MemoryPlan:
    """Check a workload's buffer footprint against a device.

    With double buffering (one slice being assembled while the previous
    one transfers), two slices are resident at once; the minimum slice
    count therefore keeps ``2 * slice_bytes`` within capacity.
    """
    capacity = device_capacity_bytes(device)
    resident = workload.total_bytes
    if 2 * workload.matrix_bytes > capacity:
        raise HardwareModelError(
            f"a single {workload.n}x{workload.n} system pair does not fit on "
            f"{device.name} ({workload.matrix_bytes} B each, {capacity} B usable)"
        )
    min_slices = max(1, math.ceil(2 * resident / capacity))
    return MemoryPlan(
        device=device,
        workload=workload,
        capacity_bytes=capacity,
        resident_bytes=resident,
        fits_whole_batch=resident <= capacity,
        min_slices=min_slices,
    )


def enforce_slice_floor(device: DeviceSpec, workload: Workload,
                        n_slices: int) -> int:
    """Raise a requested slice count to the memory-imposed minimum."""
    return max(n_slices, plan_memory(device, workload).min_slices)
