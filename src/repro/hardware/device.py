"""Simulated devices: calibrated timing plus functional execution.

A :class:`SimulatedDevice` predicts how long a kernel takes (via the
calibrated :class:`~repro.hardware.kernels.KernelModel`) and can also
*functionally execute* the kernel with the library's real NumPy
implementations.  The pipeline simulator advances a virtual clock with
the predicted times while — in functional mode — producing bit-real
vortex strengths, so end-to-end integration tests exercise the same
code path the paper's hybrid implementation does.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.airfoil import Airfoil
from repro.hardware.kernels import KernelCost, KernelModel
from repro.hardware.specs import DeviceSpec
from repro.linalg.batched import batched_lu_factor, batched_lu_solve
from repro.panel.assembly import Closure, assemble_batch
from repro.panel.freestream import Freestream
from repro.panel.solution import PanelSolution
from repro.precision import Precision


@dataclasses.dataclass(frozen=True)
class AssemblyOutput:
    """Result of a (possibly functional) assembly kernel."""

    cost: KernelCost
    matrices: Optional[np.ndarray] = None
    rhs: Optional[np.ndarray] = None
    systems: Optional[list] = None


@dataclasses.dataclass(frozen=True)
class SolveOutput:
    """Result of a (possibly functional) batched solve kernel."""

    cost: KernelCost
    solutions: Optional[List[PanelSolution]] = None


@dataclasses.dataclass(frozen=True)
class SimulatedDevice:
    """One device of the paper's workstation, ready to run kernels."""

    spec: DeviceSpec
    precision: Precision
    model: KernelModel

    @classmethod
    def create(cls, spec: DeviceSpec, precision) -> "SimulatedDevice":
        """Build a device with its calibrated kernel model."""
        precision = Precision.parse(precision)
        return cls(spec=spec, precision=precision,
                   model=KernelModel.for_device(spec, precision))

    @property
    def name(self) -> str:
        """Device display name."""
        return self.spec.name

    # ------------------------------------------------------------------
    # Timing-only interface (what the pipeline schedules use)
    # ------------------------------------------------------------------

    def assembly_seconds(self, batch: int, n: int) -> float:
        """Predicted seconds for one assembly call."""
        return self.model.assembly(batch, n).seconds

    def solve_seconds(self, batch: int, n: int, *,
                      throughput_fraction: float = 1.0) -> float:
        """Predicted seconds for one batched solve call."""
        return self.model.solve(
            batch, n, throughput_fraction=throughput_fraction
        ).seconds

    def transfer_seconds(self, batch: int, n: int) -> float:
        """Predicted seconds to ship a batch of systems to the host."""
        return self.model.transfer(batch, n).seconds

    # ------------------------------------------------------------------
    # Functional interface (timing + real numerics)
    # ------------------------------------------------------------------

    def run_assembly(self, airfoils: Sequence[Airfoil], freestream: Freestream,
                     *, closure=Closure.KUTTA) -> AssemblyOutput:
        """Assemble real systems and report the simulated cost."""
        matrices, rhs, systems = assemble_batch(
            airfoils, freestream, closure=closure, dtype=self.precision.dtype
        )
        n = matrices.shape[1]
        cost = self.model.assembly(len(airfoils), n)
        return AssemblyOutput(cost=cost, matrices=matrices, rhs=rhs, systems=systems)

    def run_solve(self, assembly: AssemblyOutput) -> SolveOutput:
        """Solve previously assembled systems; report the simulated cost."""
        matrices, rhs = assembly.matrices, assembly.rhs
        if matrices is None or rhs is None or assembly.systems is None:
            raise ValueError("run_solve needs a functional AssemblyOutput")
        unknowns = batched_lu_solve(batched_lu_factor(matrices), rhs)
        solutions = []
        for system, row in zip(assembly.systems, unknowns):
            gamma, constant = system.expand_solution(row)
            solutions.append(PanelSolution(
                airfoil=system.airfoil,
                freestream=system.freestream,
                closure=system.closure,
                gamma=np.asarray(gamma, dtype=np.float64),
                constant=constant,
            ))
        n = matrices.shape[1]
        cost = self.model.solve(len(solutions), n)
        return SolveOutput(cost=cost, solutions=solutions)
