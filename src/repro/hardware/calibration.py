"""Kernel calibration from the paper's Table 2 measurements.

The simulator's kernel timings are anchored to the paper's own
measurements: Table 2 gives the seconds each device needs to assemble
and solve the reference workload (4000 candidate geometries, 200 panels
each).  From those anchors the cost model scales to other problem sizes
with the kernels' arithmetic complexity (``n^2`` per matrix for
assembly, ``2/3 n^3`` for the LU solve).

This module also reports the *implied efficiency* of each kernel
(achieved fraction of the device's peak flops), which documents why the
paper's hybrid scheme works: batched small-matrix LU reaches a few
percent of peak on the accelerators but ~2-4x more on the CPU, while
assembly is the mirror image.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.errors import CalibrationError
from repro.hardware.specs import (
    DUAL_E5_2630_V3,
    E5_2630_V3,
    HALF_K80,
    XEON_PHI_7120,
    DeviceSpec,
)
from repro.linalg.lu import factor_flops, solve_flops
from repro.panel.influence import ASSEMBLY_FLOPS_PER_ENTRY
from repro.precision import Precision

#: The reference workload behind Table 2.
REFERENCE_BATCH = 4000
REFERENCE_N = 200


@dataclasses.dataclass(frozen=True)
class KernelAnchor:
    """Measured seconds for the reference workload on one device."""

    assembly_seconds: float
    solve_seconds: float

    def __post_init__(self) -> None:
        if self.assembly_seconds <= 0.0 or self.solve_seconds <= 0.0:
            raise CalibrationError("anchor times must be positive")


# Paper Table 2 verbatim: {(device name, precision): (assembly, solve)}.
PAPER_TABLE2: Dict[Tuple[str, Precision], KernelAnchor] = {
    (E5_2630_V3.name, Precision.SINGLE): KernelAnchor(4.97, 1.75),
    (E5_2630_V3.name, Precision.DOUBLE): KernelAnchor(9.40, 2.85),
    (DUAL_E5_2630_V3.name, Precision.SINGLE): KernelAnchor(2.76, 1.07),
    (DUAL_E5_2630_V3.name, Precision.DOUBLE): KernelAnchor(5.19, 2.05),
    (XEON_PHI_7120.name, Precision.SINGLE): KernelAnchor(1.35, 3.60),
    (XEON_PHI_7120.name, Precision.DOUBLE): KernelAnchor(2.69, 4.72),
    (HALF_K80.name, Precision.SINGLE): KernelAnchor(0.46, 3.70),
    (HALF_K80.name, Precision.DOUBLE): KernelAnchor(0.79, 4.42),
}


@dataclasses.dataclass(frozen=True)
class KernelCalibration:
    """Per-matrix kernel times for one (device, precision) pair.

    ``assembly_per_matrix`` and ``solve_per_matrix`` are seconds for one
    ``REFERENCE_N``-panel candidate; :mod:`repro.hardware.kernels`
    rescales them by the kernel complexity for other sizes.
    """

    device: DeviceSpec
    precision: Precision
    assembly_per_matrix: float
    solve_per_matrix: float

    @property
    def assembly_efficiency(self) -> float:
        """Achieved fraction of peak flops during assembly."""
        flops = REFERENCE_N**2 * ASSEMBLY_FLOPS_PER_ENTRY
        return flops / (self.assembly_per_matrix * self.device.peak_flops(self.precision))

    @property
    def solve_efficiency(self) -> float:
        """Achieved fraction of peak flops during the batched LU solve."""
        flops = factor_flops(REFERENCE_N) + solve_flops(REFERENCE_N)
        return flops / (self.solve_per_matrix * self.device.peak_flops(self.precision))


def calibrate(device: DeviceSpec, precision: Precision) -> KernelCalibration:
    """Look up the Table 2 anchor for a device and derive per-matrix times.

    Raises :class:`CalibrationError` for devices without a Table 2 row
    (the full K80 is never measured alone in the paper; its halves are).
    """
    precision = Precision.parse(precision)
    anchor = PAPER_TABLE2.get((device.name, precision))
    if anchor is None:
        raise CalibrationError(
            f"no Table 2 anchor for device {device.name!r} at {precision}"
        )
    return KernelCalibration(
        device=device,
        precision=precision,
        assembly_per_matrix=anchor.assembly_seconds / REFERENCE_BATCH,
        solve_per_matrix=anchor.solve_seconds / REFERENCE_BATCH,
    )


def calibrate_from_measurement(device: DeviceSpec, precision, *,
                               assembly_seconds: float, solve_seconds: float,
                               batch: int, n: int) -> KernelCalibration:
    """Back out Table-2-style anchors from a *live* measurement.

    The online autotuner measures how long this machine actually spends
    assembling and solving ``batch`` systems of size ``n``; rescaling by
    the kernels' arithmetic complexity (``n^2`` for assembly, the LU
    flop ratio for solve) converts that measurement into the same
    per-matrix-at-``REFERENCE_N`` anchors Table 2 provides, so the whole
    simulator — schedules, theory, ``tune_slices`` — runs unchanged on
    fitted production throughputs.
    """
    precision = Precision.parse(precision)
    if int(batch) < 1 or int(n) < 3:
        raise CalibrationError(
            f"measurement needs batch >= 1 and n >= 3, got batch={batch} n={n}"
        )
    if assembly_seconds <= 0.0 or solve_seconds <= 0.0:
        raise CalibrationError(
            f"measured kernel times must be positive, got "
            f"assembly={assembly_seconds!r} solve={solve_seconds!r}"
        )
    assembly_scale = (n / REFERENCE_N) ** 2
    solve_scale = ((factor_flops(n) + solve_flops(n))
                   / (factor_flops(REFERENCE_N) + solve_flops(REFERENCE_N)))
    return KernelCalibration(
        device=device,
        precision=precision,
        assembly_per_matrix=assembly_seconds / batch / assembly_scale,
        solve_per_matrix=solve_seconds / batch / solve_scale,
    )


def implied_efficiencies() -> Dict[Tuple[str, str], Tuple[float, float]]:
    """(assembly, solve) efficiency for every calibrated device.

    Documents the paper's Section 3 observation: accelerators are
    efficient at assembly and poor at batched small-matrix LU, CPUs the
    reverse.
    """
    table: Dict[Tuple[str, str], Tuple[float, float]] = {}
    devices = {spec.name: spec for spec in
               (E5_2630_V3, DUAL_E5_2630_V3, XEON_PHI_7120, HALF_K80)}
    for (name, precision), _ in PAPER_TABLE2.items():
        calibration = calibrate(devices[name], precision)
        table[(name, precision.short_name)] = (
            calibration.assembly_efficiency,
            calibration.solve_efficiency,
        )
    return table
