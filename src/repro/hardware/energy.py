"""Energy-to-solution model (an extension beyond the paper).

The paper evaluates time-to-solution only; for accelerators the equally
standard question is energy.  This module prices a simulated timeline
with a two-level power model: every device draws its idle power for the
whole run plus the difference to its TDP while busy,

    E = sum_dev [ P_idle * W + (P_tdp - P_idle) * busy(dev) ].

TDPs are the published board/package powers of the paper's hardware;
idle fractions are conventional estimates (documented constants, easy
to override).  The headline result: the K80's time advantage narrows
substantially in energy terms because the whole 300 W board draws power
for the full wall time while its compute is only busy for the short
assembly bursts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.errors import HardwareModelError
from repro.pipeline.engine import Timeline
from repro.pipeline.task import Schedule

#: Published thermal design power per device, watts.
DEVICE_TDP_W = {
    "E5-2630 v3": 85.0,
    "2x E5-2630 v3": 170.0,
    "Phi 7120": 300.0,
    "0.5x K80": 150.0,  # half of the 300 W board
    "1x K80": 300.0,
}

#: Idle draw as a fraction of TDP (conventional estimates).
IDLE_FRACTION = {
    "E5-2630 v3": 0.25,
    "2x E5-2630 v3": 0.25,
    "Phi 7120": 0.35,  # the 7120's idle draw is famously high
    "0.5x K80": 0.20,
    "1x K80": 0.20,
}


@dataclasses.dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown of one simulated run."""

    wall_time: float
    per_device_joules: Dict[str, float]

    @property
    def total_joules(self) -> float:
        """Total energy to solution."""
        return sum(self.per_device_joules.values())

    @property
    def average_watts(self) -> float:
        """Mean power over the run."""
        return self.total_joules / self.wall_time if self.wall_time else 0.0


def device_power(name: str) -> Tuple[float, float]:
    """``(tdp, idle)`` watts for a device display name."""
    try:
        tdp = DEVICE_TDP_W[name]
    except KeyError:
        raise HardwareModelError(f"no TDP recorded for device {name!r}")
    return tdp, tdp * IDLE_FRACTION[name]


def _resource_devices(schedule: Schedule, cpu_name: str,
                      accelerator_names) -> Dict[str, str]:
    """Map each schedule resource to the device whose power it draws.

    Host-side resources (the cpu solve pool) belong to the CPU; each
    ``accelN``/``linkN`` pair belongs to accelerator N (the link's DMA
    engines live on the board).
    """
    mapping: Dict[str, str] = {}
    for resource in schedule.resources:
        if resource == schedule.cpu_resource:
            mapping[resource] = cpu_name
        elif resource.startswith("accel") or resource.startswith("link"):
            digits = "".join(ch for ch in resource if ch.isdigit())
            index = int(digits) if digits else 0
            mapping[resource] = accelerator_names[min(
                index, len(accelerator_names) - 1
            )]
        else:
            raise HardwareModelError(f"cannot attribute resource {resource!r}")
    return mapping


def estimate_energy(timeline: Timeline, *, cpu_name: str,
                    accelerator_names=()) -> EnergyEstimate:
    """Price a simulated timeline in joules.

    ``accelerator_names`` lists the device names backing ``accel0``,
    ``accel1``, ... (and their links); duplicates are physical twins
    (the two K80 halves) and are labelled ``#0``, ``#1`` in the
    breakdown.  Listed devices idle for the whole run even if the
    schedule never touches them.
    """
    wall = timeline.makespan
    schedule = timeline.schedule
    accelerator_names = list(accelerator_names)
    labels = [
        name if accelerator_names.count(name) == 1 else f"{name} #{index}"
        for index, name in enumerate(accelerator_names)
    ]
    mapping = _resource_devices(schedule, cpu_name, labels)

    busy: Dict[str, float] = {}
    for resource, label in mapping.items():
        busy[label] = busy.get(label, 0.0) + timeline.busy_seconds(resource)

    name_of = dict(zip(labels, accelerator_names))
    name_of[cpu_name] = cpu_name
    per_device = {}
    for label in (cpu_name, *labels):
        tdp, idle = device_power(name_of[label])
        active = min(busy.get(label, 0.0), wall)
        per_device[label] = idle * wall + (tdp - idle) * active
    return EnergyEstimate(wall_time=wall, per_device_joules=per_device)


def configuration_energy(*, accelerator: str = "none", sockets: int = 2,
                         precision="double", n_slices: int = 10,
                         batch: int = 4000, n: int = 200) -> EnergyEstimate:
    """Energy to solution for one of the paper's configurations."""
    from repro.hardware.host import paper_workstation
    from repro.pipeline.engine import simulate
    from repro.pipeline.schedules import cpu_only, dual_accelerator, hybrid
    from repro.pipeline.workload import Workload

    workstation = paper_workstation(sockets=sockets, accelerator=accelerator,
                                    precision=precision)
    workload = Workload(batch=batch, n=n, precision=precision)
    if accelerator == "none":
        schedule = cpu_only(workload, workstation.cpu)
    elif len(workstation.accelerators) >= 2 and accelerator == "k80-dual":
        schedule = dual_accelerator(workload, workstation, 0.75, n_slices)
    else:
        schedule = hybrid(workload, workstation, n_slices)
    timeline = simulate(schedule)
    return estimate_energy(
        timeline,
        cpu_name=workstation.cpu.name,
        accelerator_names=[device.name for device in workstation.accelerators],
    )
