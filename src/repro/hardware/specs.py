"""Device specifications (the paper's Table 1).

A :class:`DeviceSpec` is a *description* of hardware: peak arithmetic
throughput per precision, memory bandwidth, and — for accelerators —
the host link.  Execution behaviour (how long a kernel takes) lives in
:mod:`repro.hardware.kernels` and is calibrated separately.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.errors import HardwareModelError
from repro.precision import Precision


class DeviceKind(enum.Enum):
    """Architectural family of a device."""

    CPU = "cpu"
    MANYCORE = "manycore"  # Xeon Phi
    GPU = "gpu"


@dataclasses.dataclass(frozen=True)
class PCIeLinkSpec:
    """Host link of an accelerator.

    ``effective_bandwidth`` is the *achieved* transfer rate (bytes/s),
    not the bus peak; the paper's slice-1 overhead rows imply roughly
    1 GB/s for both accelerators (unpinned host buffers).  ``latency``
    is the fixed per-transfer setup cost.
    """

    effective_bandwidth: float
    latency: float = 1e-3

    def __post_init__(self) -> None:
        if self.effective_bandwidth <= 0.0:
            raise HardwareModelError("link bandwidth must be positive")
        if self.latency < 0.0:
            raise HardwareModelError("link latency cannot be negative")

    def transfer_time(self, n_bytes: float) -> float:
        """Seconds to move *n_bytes* across the link (one transfer)."""
        if n_bytes < 0.0:
            raise HardwareModelError(f"cannot transfer negative bytes: {n_bytes}")
        return self.latency + n_bytes / self.effective_bandwidth


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Peak characteristics of one device (paper Table 1).

    Parameters
    ----------
    name:
        Display name used in tables (e.g. ``"0.5x K80"``).
    kind:
        Architectural family.
    peak_tflops_single / peak_tflops_double:
        Peak arithmetic throughput in TFlops/s.
    memory_bandwidth_gbs:
        Theoretical attainable memory bandwidth in GB/s.
    link:
        Host link for accelerators; ``None`` for host CPUs.
    kernel_setup:
        Fixed cost of launching one compute kernel / offload region on
        this device (seconds).  Large for Xeon Phi offload regions,
        small for CUDA kernel launches, tiny for host calls.
    solve_call_setup:
        Fixed cost per batched-solve library call (seconds); this is
        what makes over-slicing the linear solves expensive (the
        paper's ~10 % penalty at 20 slices).
    host_overhead_per_call:
        Host CPU time consumed *per offloaded slice* to manage the
        accelerator (driver calls, offload bookkeeping, asynchronous
        transfer progress).  This time is spent on the host but is not
        solve work, so it surfaces in the paper's ``O`` column — it is
        why the Xeon Phi's overhead stops shrinking with more slices.
    """

    name: str
    kind: DeviceKind
    peak_tflops_single: float
    peak_tflops_double: float
    memory_bandwidth_gbs: float
    link: Optional[PCIeLinkSpec] = None
    kernel_setup: float = 0.0
    solve_call_setup: float = 0.0
    host_overhead_per_call: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_tflops_single <= 0.0 or self.peak_tflops_double <= 0.0:
            raise HardwareModelError(f"{self.name}: peak throughput must be positive")
        if self.memory_bandwidth_gbs <= 0.0:
            raise HardwareModelError(f"{self.name}: memory bandwidth must be positive")
        if min(self.kernel_setup, self.solve_call_setup,
               self.host_overhead_per_call) < 0.0:
            raise HardwareModelError(f"{self.name}: setup costs cannot be negative")

    @property
    def is_accelerator(self) -> bool:
        """True for devices that sit across a host link."""
        return self.link is not None

    def peak_flops(self, precision: Precision) -> float:
        """Peak arithmetic rate in flops/s for *precision*."""
        precision = Precision.parse(precision)
        tflops = (
            self.peak_tflops_single
            if precision is Precision.SINGLE
            else self.peak_tflops_double
        )
        return tflops * 1e12


# ----------------------------------------------------------------------
# The paper's Table 1, plus the setup costs used by the pipeline model.
# Setup costs are not in Table 1; they are chosen so the slice sweeps of
# Tables 3-4 reproduce (see repro/hardware/calibration.py for the fit
# rationale and EXPERIMENTS.md for the comparison).
# ----------------------------------------------------------------------

E5_2630_V3 = DeviceSpec(
    name="E5-2630 v3",
    kind=DeviceKind.CPU,
    peak_tflops_single=0.6,
    peak_tflops_double=0.3,
    memory_bandwidth_gbs=59.0,
    kernel_setup=1e-4,
    solve_call_setup=7e-3,
)

DUAL_E5_2630_V3 = DeviceSpec(
    name="2x E5-2630 v3",
    kind=DeviceKind.CPU,
    peak_tflops_single=1.2,
    peak_tflops_double=0.6,
    memory_bandwidth_gbs=59.0,
    kernel_setup=1e-4,
    solve_call_setup=7e-3,
)

XEON_PHI_7120 = DeviceSpec(
    name="Phi 7120",
    kind=DeviceKind.MANYCORE,
    peak_tflops_single=2.4,
    peak_tflops_double=1.2,
    memory_bandwidth_gbs=352.0,
    link=PCIeLinkSpec(effective_bandwidth=1.02e9, latency=2e-3),
    kernel_setup=12e-3,  # offload-region spin-up dominates small slices
    solve_call_setup=10e-3,
    host_overhead_per_call=14e-3,  # offload runtime burns host time
)

HALF_K80 = DeviceSpec(
    name="0.5x K80",
    kind=DeviceKind.GPU,
    peak_tflops_single=4.4,
    peak_tflops_double=1.5,
    memory_bandwidth_gbs=240.0,
    link=PCIeLinkSpec(effective_bandwidth=1.12e9, latency=1e-3),
    kernel_setup=1e-3,
    solve_call_setup=10e-3,
    host_overhead_per_call=2e-3,  # CUDA driver work per slice
)

FULL_K80 = DeviceSpec(
    name="1x K80",
    kind=DeviceKind.GPU,
    peak_tflops_single=8.7,
    peak_tflops_double=2.9,
    memory_bandwidth_gbs=480.0,
    link=PCIeLinkSpec(effective_bandwidth=1.12e9, latency=1e-3),
    kernel_setup=1e-3,
    solve_call_setup=10e-3,
    host_overhead_per_call=2e-3,  # CUDA driver work per slice
)

#: Every Table 1 row, in the paper's order.
TABLE1_DEVICES = (E5_2630_V3, DUAL_E5_2630_V3, XEON_PHI_7120, HALF_K80, FULL_K80)
