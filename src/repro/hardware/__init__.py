"""Simulated hardware substrate.

The paper's accelerators are a hardware dependency this reproduction
cannot run on; per the substitution strategy in DESIGN.md they are
replaced by calibrated device models.  Table 1 provides the peak
characteristics; Table 2 anchors each device's assembly and batched-LU
throughput; the PCIe link model is back-solved from the paper's slice-1
overhead rows.
"""

from repro.hardware.calibration import (
    PAPER_TABLE2,
    REFERENCE_BATCH,
    REFERENCE_N,
    KernelAnchor,
    KernelCalibration,
    calibrate,
    implied_efficiencies,
)
from repro.hardware.device import AssemblyOutput, SimulatedDevice, SolveOutput
from repro.hardware.host import (
    ACCELERATOR_CHOICES,
    Workstation,
    cpu_spec,
    custom_workstation,
    paper_workstation,
)
from repro.hardware.energy import (
    DEVICE_TDP_W,
    EnergyEstimate,
    configuration_energy,
    device_power,
    estimate_energy,
)
from repro.hardware.kernels import KernelCost, KernelModel
from repro.hardware.memory import (
    DEVICE_MEMORY_BYTES,
    MemoryPlan,
    device_capacity_bytes,
    enforce_slice_floor,
    plan_memory,
)
from repro.hardware.roofline import (
    Regime,
    RooflinePoint,
    assembly_intensity,
    roofline_point,
    solve_intensity,
)
from repro.hardware.specs import (
    DUAL_E5_2630_V3,
    E5_2630_V3,
    FULL_K80,
    HALF_K80,
    TABLE1_DEVICES,
    XEON_PHI_7120,
    DeviceKind,
    DeviceSpec,
    PCIeLinkSpec,
)

__all__ = [
    "ACCELERATOR_CHOICES",
    "AssemblyOutput",
    "DEVICE_MEMORY_BYTES",
    "DEVICE_TDP_W",
    "EnergyEstimate",
    "configuration_energy",
    "device_power",
    "estimate_energy",
    "MemoryPlan",
    "Regime",
    "RooflinePoint",
    "assembly_intensity",
    "device_capacity_bytes",
    "enforce_slice_floor",
    "plan_memory",
    "roofline_point",
    "solve_intensity",
    "DUAL_E5_2630_V3",
    "DeviceKind",
    "DeviceSpec",
    "E5_2630_V3",
    "FULL_K80",
    "HALF_K80",
    "KernelAnchor",
    "KernelCalibration",
    "KernelCost",
    "KernelModel",
    "PAPER_TABLE2",
    "PCIeLinkSpec",
    "REFERENCE_BATCH",
    "REFERENCE_N",
    "SimulatedDevice",
    "SolveOutput",
    "TABLE1_DEVICES",
    "Workstation",
    "XEON_PHI_7120",
    "calibrate",
    "cpu_spec",
    "custom_workstation",
    "implied_efficiencies",
    "paper_workstation",
]
