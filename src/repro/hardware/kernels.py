"""Kernel cost models: seconds for assembly, solve, and transfer.

Each model anchors at the Table 2 calibration point (batch 4000,
n = 200) and scales with the kernel's arithmetic complexity:

* assembly: ``n^2`` influence entries per matrix,
* LU solve: ``2/3 n^3 + 2 n^2`` flops per matrix,
* transfer: matrix bytes over the link's effective bandwidth.

Each kernel *invocation* additionally pays the device's fixed setup
cost, which is what penalizes over-slicing in the pipeline experiments.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import HardwareModelError
from repro.hardware.calibration import REFERENCE_N, KernelCalibration, calibrate
from repro.hardware.specs import DeviceSpec
from repro.linalg.lu import factor_flops, solve_flops
from repro.panel.influence import ASSEMBLY_FLOPS_PER_ENTRY
from repro.precision import Precision


@dataclasses.dataclass(frozen=True)
class KernelCost:
    """Predicted cost of one kernel invocation."""

    seconds: float
    flops: float
    bytes_moved: float

    def __post_init__(self) -> None:
        if self.seconds < 0.0:
            raise HardwareModelError("kernel cost cannot be negative")


@dataclasses.dataclass(frozen=True)
class KernelModel:
    """Calibrated cost model for one device at one precision."""

    device: DeviceSpec
    precision: Precision
    calibration: KernelCalibration

    @classmethod
    def for_device(cls, device: DeviceSpec, precision) -> "KernelModel":
        """Build a model from the device's Table 2 anchor."""
        precision = Precision.parse(precision)
        return cls(device=device, precision=precision,
                   calibration=calibrate(device, precision))

    # ------------------------------------------------------------------
    # Problem-size helpers
    # ------------------------------------------------------------------

    def matrix_bytes(self, n: int) -> int:
        """Bytes of one assembled ``n x n`` system plus its RHS vector."""
        return (n * n + n) * self.precision.itemsize

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def assembly(self, batch: int, n: int) -> KernelCost:
        """Cost of assembling *batch* systems of size *n* in one call."""
        _check_workload(batch, n)
        scale = (n / REFERENCE_N) ** 2
        seconds = (
            self.device.kernel_setup
            + batch * self.calibration.assembly_per_matrix * scale
        )
        flops = batch * n * n * ASSEMBLY_FLOPS_PER_ENTRY
        return KernelCost(seconds=seconds, flops=flops, bytes_moved=0.0)

    def solve(self, batch: int, n: int, *, throughput_fraction: float = 1.0) -> KernelCost:
        """Cost of one batched LU factor+solve call.

        ``throughput_fraction`` models partial use of the device (e.g.
        the paper's 15-of-16 OpenMP threads while one thread babysits
        the MAGMA call).
        """
        _check_workload(batch, n)
        if not 0.0 < throughput_fraction <= 1.0:
            raise HardwareModelError(
                f"throughput fraction must be in (0, 1], got {throughput_fraction}"
            )
        per_matrix_flops = factor_flops(n) + solve_flops(n)
        reference_flops = factor_flops(REFERENCE_N) + solve_flops(REFERENCE_N)
        scale = per_matrix_flops / reference_flops
        seconds = (
            self.device.solve_call_setup
            + batch * self.calibration.solve_per_matrix * scale / throughput_fraction
        )
        return KernelCost(
            seconds=seconds,
            flops=batch * per_matrix_flops,
            bytes_moved=0.0,
        )

    def transfer(self, batch: int, n: int) -> KernelCost:
        """Cost of shipping *batch* assembled systems to the host."""
        _check_workload(batch, n)
        if self.device.link is None:
            raise HardwareModelError(
                f"device {self.device.name!r} has no host link to transfer over"
            )
        n_bytes = batch * self.matrix_bytes(n)
        return KernelCost(
            seconds=self.device.link.transfer_time(n_bytes),
            flops=0.0,
            bytes_moved=float(n_bytes),
        )

    # ------------------------------------------------------------------
    # Aggregates used by the sequential baselines
    # ------------------------------------------------------------------

    def assemble_and_solve(self, batch: int, n: int) -> float:
        """Seconds for the unsliced assemble-then-solve sequence."""
        return self.assembly(batch, n).seconds + self.solve(batch, n).seconds


def _check_workload(batch: int, n: int) -> None:
    if batch < 1:
        raise HardwareModelError(f"batch must be >= 1, got {batch}")
    if n < 2:
        raise HardwareModelError(f"matrix dimension must be >= 2, got {n}")
    if not math.isfinite(batch * n * n):
        raise HardwareModelError("workload size overflow")
