"""The workstation: host CPUs plus attached accelerators.

The paper evaluates one dual-socket machine in several configurations:
CPU-only (one or two sockets), plus a Xeon Phi 7120, plus one half of a
K80, or plus both K80 GPUs.  :func:`paper_workstation` builds any of
them.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.errors import HardwareModelError
from repro.hardware.device import SimulatedDevice
from repro.hardware.specs import (
    DUAL_E5_2630_V3,
    E5_2630_V3,
    HALF_K80,
    XEON_PHI_7120,
    DeviceSpec,
)
from repro.precision import Precision, PrecisionLike

#: Accelerator configuration names accepted by :func:`paper_workstation`.
#: ``"k80-half+phi"`` is the heterogeneous combination the paper leaves
#: as future work (one K80 GPU and the Xeon Phi together).
ACCELERATOR_CHOICES = ("none", "phi", "k80-half", "k80-dual", "k80-half+phi")


@dataclasses.dataclass(frozen=True)
class Workstation:
    """A host CPU with zero or more accelerators, at one precision."""

    cpu: SimulatedDevice
    accelerators: Tuple[SimulatedDevice, ...]
    precision: Precision

    @property
    def has_accelerator(self) -> bool:
        """True when at least one accelerator is attached."""
        return bool(self.accelerators)

    @property
    def accelerator(self) -> SimulatedDevice:
        """The primary (first) accelerator."""
        if not self.accelerators:
            raise HardwareModelError("workstation has no accelerator")
        return self.accelerators[0]

    def describe(self) -> str:
        """Human-readable configuration summary."""
        parts = [self.cpu.name]
        parts.extend(device.name for device in self.accelerators)
        return " + ".join(parts)

    def with_cpu_calibration(self, calibration) -> "Workstation":
        """A copy whose host runs at a *fitted* kernel calibration.

        The online autotuner measures the serving host's real assembly
        and solve throughputs and re-anchors the simulated CPU with
        them (see
        :func:`repro.hardware.calibration.calibrate_from_measurement`),
        so the paper's schedules and tuners predict for the machine
        actually serving traffic instead of the paper's.
        """
        from repro.hardware.kernels import KernelModel

        model = KernelModel(device=self.cpu.spec,
                            precision=calibration.precision,
                            calibration=calibration)
        cpu = dataclasses.replace(self.cpu, precision=calibration.precision,
                                  model=model)
        return dataclasses.replace(self, cpu=cpu)


def cpu_spec(sockets: int) -> DeviceSpec:
    """The host CPU spec for one or two sockets."""
    if sockets == 1:
        return E5_2630_V3
    if sockets == 2:
        return DUAL_E5_2630_V3
    raise HardwareModelError(f"the paper's workstation has 1 or 2 sockets, not {sockets}")


def paper_workstation(*, sockets: int = 2, accelerator: str = "none",
                      precision: PrecisionLike = Precision.DOUBLE) -> Workstation:
    """Build one of the paper's workstation configurations.

    Parameters
    ----------
    sockets:
        1 or 2 CPU sockets.
    accelerator:
        ``"none"``, ``"phi"``, ``"k80-half"`` (one GPU of the K80), or
        ``"k80-dual"`` (both GPUs of the K80, as in Section 6).
    precision:
        Arithmetic precision for every device's calibration.
    """
    precision = Precision.parse(precision)
    cpu = SimulatedDevice.create(cpu_spec(sockets), precision)
    accelerator = accelerator.lower()
    specs: List[DeviceSpec]
    if accelerator == "none":
        specs = []
    elif accelerator == "phi":
        specs = [XEON_PHI_7120]
    elif accelerator == "k80-half":
        specs = [HALF_K80]
    elif accelerator == "k80-dual":
        # The K80 holds two identical GPUs with separate memories; model
        # each as an independent half-K80 device.
        specs = [HALF_K80, HALF_K80]
    elif accelerator == "k80-half+phi":
        specs = [HALF_K80, XEON_PHI_7120]
    else:
        raise HardwareModelError(
            f"unknown accelerator {accelerator!r}; choose from {ACCELERATOR_CHOICES}"
        )
    devices = tuple(SimulatedDevice.create(spec, precision) for spec in specs)
    return Workstation(cpu=cpu, accelerators=devices, precision=precision)


def custom_workstation(accelerator_specs, *, sockets: int = 2,
                       precision: PrecisionLike = Precision.DOUBLE) -> Workstation:
    """Build a workstation from an explicit list of device specs.

    Supports arbitrary heterogeneous combinations beyond the paper's
    configurations, e.g. two Phis or a Phi plus both K80 GPUs.
    """
    precision = Precision.parse(precision)
    cpu = SimulatedDevice.create(cpu_spec(sockets), precision)
    devices = tuple(
        SimulatedDevice.create(spec, precision) for spec in accelerator_specs
    )
    return Workstation(cpu=cpu, accelerators=devices, precision=precision)
