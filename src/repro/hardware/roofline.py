"""Roofline analysis of the paper's two kernels on each device.

The roofline model bounds a kernel's attainable throughput by
``min(peak_flops, intensity * bandwidth)`` where the arithmetic
intensity is flops per byte of memory traffic.  Applying it to the
paper's kernels explains its Section 3 observations quantitatively:

* matrix **assembly** touches each output entry once and computes
  ~130 effective flops for it — strongly compute-bound everywhere, so
  the device with more peak flops wins (Phi 2x, GPU ~5-10x over CPUs);
* the batched **LU solve** of one 200 x 200 matrix has intensity
  ``(2/3) n / itemsize`` flops/byte, nominally compute-bound too — the
  far-below-roofline measured efficiency (a few percent, see
  :func:`repro.hardware.calibration.implied_efficiencies`) is therefore
  a *kernel* limitation (small-matrix latency, not bandwidth), which is
  exactly the gap references [4] and [14] of the paper chase.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import HardwareModelError
from repro.hardware.calibration import calibrate
from repro.hardware.specs import DeviceSpec
from repro.linalg.lu import factor_flops, solve_flops
from repro.panel.influence import ASSEMBLY_FLOPS_PER_ENTRY
from repro.precision import Precision, PrecisionLike


class Regime(enum.Enum):
    """Which roof binds the kernel."""

    COMPUTE_BOUND = "compute-bound"
    MEMORY_BOUND = "memory-bound"


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on one device's roofline."""

    device: DeviceSpec
    precision: Precision
    kernel: str
    intensity: float  # flops per byte
    attainable_flops: float  # roofline bound, flops/s
    achieved_flops: float  # from the Table 2 calibration
    regime: Regime

    @property
    def roofline_fraction(self) -> float:
        """Achieved fraction of the roofline bound (not of raw peak)."""
        return self.achieved_flops / self.attainable_flops

    @property
    def ridge_intensity(self) -> float:
        """Intensity where the two roofs meet for this device."""
        return (self.device.peak_flops(self.precision)
                / (self.device.memory_bandwidth_gbs * 1e9))


def assembly_intensity(precision: Precision) -> float:
    """Flops per byte of the influence-matrix assembly.

    Each matrix entry costs ~130 effective flops and stores
    ``itemsize`` bytes (inputs are tiny: 2n panel coordinates).
    """
    return ASSEMBLY_FLOPS_PER_ENTRY / precision.itemsize


def solve_intensity(n: int, precision: Precision) -> float:
    """Flops per byte of one LU factor+solve, counting matrix traffic.

    The factorization performs ``2/3 n^3`` flops over ``n^2`` matrix
    entries; assuming each entry is read and written once per sweep of
    the blocked kernel, traffic ~ ``2 n^2 * itemsize``.
    """
    flops = factor_flops(n) + solve_flops(n)
    bytes_moved = 2 * n * n * precision.itemsize
    return flops / bytes_moved


def roofline_point(device: DeviceSpec, kernel: str, *, n: int = 200,
                   precision: PrecisionLike = Precision.DOUBLE) -> RooflinePoint:
    """Place one calibrated kernel on a device's roofline."""
    precision = Precision.parse(precision)
    if kernel == "assembly":
        intensity = assembly_intensity(precision)
        per_matrix_flops = n * n * ASSEMBLY_FLOPS_PER_ENTRY
        seconds = calibrate(device, precision).assembly_per_matrix
        seconds *= (n / 200) ** 2
    elif kernel == "solve":
        intensity = solve_intensity(n, precision)
        per_matrix_flops = factor_flops(n) + solve_flops(n)
        reference_flops = factor_flops(200) + solve_flops(200)
        seconds = calibrate(device, precision).solve_per_matrix
        seconds *= per_matrix_flops / reference_flops
    else:
        raise HardwareModelError(f"unknown kernel {kernel!r}; use assembly|solve")

    peak = device.peak_flops(precision)
    bandwidth_bound = intensity * device.memory_bandwidth_gbs * 1e9
    attainable = min(peak, bandwidth_bound)
    regime = (Regime.COMPUTE_BOUND if peak <= bandwidth_bound
              else Regime.MEMORY_BOUND)
    return RooflinePoint(
        device=device,
        precision=precision,
        kernel=kernel,
        intensity=intensity,
        attainable_flops=attainable,
        achieved_flops=per_matrix_flops / seconds,
        regime=regime,
    )
