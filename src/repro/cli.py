"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1`` .. ``table5``, ``figure1`` .. ``figure4``, ``headline`` —
  regenerate one experiment (optionally saving SVG artifacts).
* ``all`` — regenerate everything.
* ``analyze`` — run the inner solver on a NACA section.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.api import analyze
from repro.errors import ReproError
from repro.experiments.runner import experiment_names, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Evaluation of the Intel Xeon Phi and "
                     "NVIDIA K80 as accelerators for two-dimensional panel "
                     "codes' (Einkemmer)."),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in experiment_names():
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        sub.add_argument("--artifacts", metavar="DIR", default=None,
                         help="directory for SVG artifacts")

    sub_all = subparsers.add_parser("all", help="regenerate every experiment")
    sub_all.add_argument("--artifacts", metavar="DIR", default=None,
                         help="directory for SVG artifacts")

    subparsers.add_parser(
        "report", help="render the full EXPERIMENTS.md content to stdout"
    )

    sub_analyze = subparsers.add_parser(
        "analyze", help="analyze a NACA section with the panel method"
    )
    sub_analyze.add_argument("designation", help="e.g. 2412 or 23012")
    sub_analyze.add_argument("--alpha", type=float, default=0.0,
                             help="angle of attack in degrees")
    sub_analyze.add_argument("--reynolds", type=float, default=1e6,
                             help="chord Reynolds number (0 = inviscid only)")
    sub_analyze.add_argument("--panels", type=int, default=200,
                             help="number of panels")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "analyze":
            reynolds = arguments.reynolds if arguments.reynolds > 0 else None
            result = analyze(arguments.designation, arguments.alpha,
                             reynolds=reynolds, n_panels=arguments.panels)
            print(result.summary())
            return 0
        if arguments.command == "report":
            from repro.experiments.markdown import generate_experiments_markdown

            print(generate_experiments_markdown(), end="")
            return 0
        if arguments.command == "all":
            for result in run_all():
                print(result.text)
                print()
                if arguments.artifacts:
                    for path in result.save_artifacts(arguments.artifacts):
                        print(f"  wrote {path}")
            return 0
        result = run_experiment(arguments.command)
        print(result.text)
        if arguments.artifacts:
            for path in result.save_artifacts(arguments.artifacts):
                print(f"  wrote {path}")
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module execution hook
    sys.exit(main())
