"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1`` .. ``table5``, ``figure1`` .. ``figure4``, ``headline`` —
  regenerate one experiment (optionally saving SVG artifacts).
* ``all`` — regenerate everything.
* ``analyze`` — run the inner solver on a NACA section.
* ``serve`` — run the batched analysis HTTP service.
* ``jobs`` — submit and track optimization jobs on a running server.
* ``cluster`` — route the serve API across multiple replicas.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.api import AnalyzeRequest, canonical_json, serialize_analysis
from repro.errors import ReproError
from repro.experiments.runner import experiment_names, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Evaluation of the Intel Xeon Phi and "
                     "NVIDIA K80 as accelerators for two-dimensional panel "
                     "codes' (Einkemmer)."),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in experiment_names():
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        sub.add_argument("--artifacts", metavar="DIR", default=None,
                         help="directory for SVG artifacts")

    sub_all = subparsers.add_parser("all", help="regenerate every experiment")
    sub_all.add_argument("--artifacts", metavar="DIR", default=None,
                         help="directory for SVG artifacts")

    subparsers.add_parser(
        "report", help="render the full EXPERIMENTS.md content to stdout"
    )

    sub_analyze = subparsers.add_parser(
        "analyze", help="analyze a NACA section with the panel method"
    )
    sub_analyze.add_argument("designation", help="e.g. 2412 or 23012")
    sub_analyze.add_argument("--alpha", type=float, default=0.0,
                             help="angle of attack in degrees")
    sub_analyze.add_argument("--reynolds", type=float, default=1e6,
                             help="chord Reynolds number (0 = inviscid only)")
    sub_analyze.add_argument("--panels", type=int, default=200,
                             help="number of panels")
    sub_analyze.add_argument("--json", action="store_true",
                             help="emit the canonical JSON record (same bytes "
                                  "as the serving API's /analyze response)")
    sub_analyze.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="abort the analysis if it does not finish "
                                  "within this many seconds (exit code 1)")
    sub_analyze.add_argument("--trace", action="store_true",
                             help="print a W/A/L/O stage breakdown of the "
                                  "evaluation to stderr (stdout stays "
                                  "byte-identical, so it composes with --json)")
    sub_analyze.add_argument("--assembly-kernel",
                             choices=["reference", "fused", "native"],
                             default=None,
                             help="influence-matrix kernel (default: the "
                                  "REPRO_ASSEMBLY_KERNEL env var, else fused; "
                                  "see docs/kernels.md)")

    sub_serve = subparsers.add_parser(
        "serve", help="run the batched analysis HTTP service"
    )
    sub_serve.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    sub_serve.add_argument("--port", type=int, default=8000,
                           help="bind port (0 picks a free port)")
    sub_serve.add_argument("--max-batch", type=int, default=None,
                           help="micro-batch size cap (default: derived from "
                                "the pipeline slicing heuristics)")
    sub_serve.add_argument("--max-wait-ms", type=float, default=None,
                           help="micro-batch flush deadline in milliseconds "
                                "(default: derived)")
    sub_serve.add_argument("--cache-size", type=int, default=1024,
                           help="LRU result-cache capacity (0 disables)")
    sub_serve.add_argument("--workers", type=int, default=2,
                           help="worker threads")
    sub_serve.add_argument("--queue-limit", type=int, default=256,
                           help="admission bound before load shedding")
    sub_serve.add_argument("--default-deadline-ms", type=float, default=None,
                           metavar="MS",
                           help="deadline applied to requests that do not "
                                "carry their own X-Repro-Deadline-Ms header "
                                "or deadline_ms field; expired requests are "
                                "dropped before solving and answered 504 "
                                "(default: no deadline)")
    sub_serve.add_argument("--trace-sample", type=float, default=1.0,
                           metavar="RATE",
                           help="fraction of requests to trace, 0..1 "
                                "(deterministic stride sampling; default 1.0)")
    sub_serve.add_argument("--trace-ring", type=int, default=256,
                           metavar="N",
                           help="completed traces retained for /debug/trace "
                                "(default 256)")
    sub_serve.add_argument("--log-format", choices=["json", "text", "off"],
                           default="json",
                           help="structured request log on stderr: one line "
                                "per completion/failure/shed (default json)")
    sub_serve.add_argument("--slo-latency-ms", type=float, default=250.0,
                           metavar="MS",
                           help="latency objective per request; slower "
                                "successes count against the latency SLO "
                                "burn rate in /metrics (default 250)")
    sub_serve.add_argument("--slo-target", type=float, default=0.99,
                           metavar="FRACTION",
                           help="availability/latency objective in (0, 1); "
                                "burn rate 1.0 = burning exactly the error "
                                "budget (default 0.99)")
    sub_serve.add_argument("--exec-backend", choices=["inline", "process"],
                           default=None,
                           help="where micro-batches are assembled and "
                                "solved: inline in the worker thread, or "
                                "sharded across worker processes (default: "
                                "the REPRO_EXEC_BACKEND env var, else inline)")
    sub_serve.add_argument("--exec-procs", type=int, default=None,
                           metavar="N",
                           help="worker-process count for --exec-backend "
                                "process (default: REPRO_EXEC_PROCS, else "
                                "2..4 from the core count)")
    sub_serve.add_argument("--exec-solve", choices=["worker", "parent"],
                           default=None,
                           help="process backend only: run the batched LU in "
                                "each worker (default) or assemble in workers "
                                "and solve one batched LU in the parent")
    sub_serve.add_argument("--assembly-kernel",
                           choices=["reference", "fused", "native"],
                           default=None,
                           help="influence-matrix kernel pinned for every "
                                "evaluation (default: REPRO_ASSEMBLY_KERNEL, "
                                "else fused; native compiles a C kernel at "
                                "startup and falls back to fused if no "
                                "compiler is available — see docs/kernels.md)")
    sub_serve.add_argument("--jobs-dir", metavar="DIR", default=None,
                           help="enable the durable jobs subsystem, storing "
                                "journal and checkpoints under DIR; jobs "
                                "interrupted by a crash resume on restart "
                                "(default: jobs disabled)")
    sub_serve.add_argument("--job-slots", type=int, default=1, metavar="N",
                           help="optimization jobs run concurrently "
                                "(default 1)")
    sub_serve.add_argument("--autotune", choices=["off", "advise", "apply"],
                           default=None,
                           help="online autotuning of the batching policy: "
                                "advise journals recommendations, apply also "
                                "swaps the live policy (default: the "
                                "REPRO_AUTOTUNE env var, else off; see "
                                "docs/autotune.md)")
    sub_serve.add_argument("--autotune-interval", type=float, default=30.0,
                           metavar="SECONDS",
                           help="autotune control-loop period (default 30)")
    sub_serve.add_argument("--autotune-min-improvement", type=float,
                           default=0.10, metavar="FRACTION",
                           help="hysteresis: minimum predicted fractional "
                                "improvement before the autotuner acts "
                                "(default 0.10)")

    connection = argparse.ArgumentParser(add_help=False)
    connection.add_argument("--host", default="127.0.0.1",
                            help="server address (default 127.0.0.1)")
    connection.add_argument("--port", type=int, default=8000,
                            help="server port (default 8000)")
    connection.add_argument("--timeout", type=float, default=60.0,
                            help="socket timeout per HTTP call, seconds")

    sub_jobs = subparsers.add_parser(
        "jobs", help="submit and track optimization jobs on a running server"
    )
    jobs_sub = sub_jobs.add_subparsers(dest="jobs_command", required=True)
    jobs_submit = jobs_sub.add_parser(
        "submit", parents=[connection],
        help="POST a job spec and print the created record",
    )
    jobs_submit.add_argument("--spec", default=None, metavar="JSON",
                             help="full job spec as inline JSON, or @FILE "
                                  "to read it from a file; the flags below "
                                  "override individual fields")
    jobs_submit.add_argument("--seed", type=int, default=None,
                             help="RNG seed (default 0)")
    jobs_submit.add_argument("--generations", type=int, default=None,
                             help="GA generations")
    jobs_submit.add_argument("--population", type=int, default=None,
                             help="GA population size")
    jobs_submit.add_argument("--checkpoint-every", type=int, default=None,
                             metavar="K", help="checkpoint every K generations")
    jobs_submit.add_argument("--watch", action="store_true",
                             help="stream progress until the job finishes")
    jobs_status = jobs_sub.add_parser(
        "status", parents=[connection], help="print one job record as JSON"
    )
    jobs_status.add_argument("job_id")
    jobs_watch = jobs_sub.add_parser(
        "watch", parents=[connection],
        help="stream per-generation progress until the job finishes",
    )
    jobs_watch.add_argument("job_id")
    jobs_watch.add_argument("--poll", type=float, default=0.2, metavar="S",
                            help="poll interval in seconds (default 0.2)")
    jobs_cancel = jobs_sub.add_parser(
        "cancel", parents=[connection], help="request cooperative cancellation"
    )
    jobs_cancel.add_argument("job_id")
    jobs_sub.add_parser("list", parents=[connection],
                        help="list every job the server knows about")

    sub_cluster = subparsers.add_parser(
        "cluster", help="route the serve API across multiple replicas"
    )
    cluster_sub = sub_cluster.add_subparsers(dest="cluster_command",
                                             required=True)
    cluster_route = cluster_sub.add_parser(
        "route", help="run the consistent-hash cluster router"
    )
    cluster_route.add_argument("--replica", action="append", dest="replicas",
                               metavar="URL[=JOBS_DIR]", default=None,
                               help="one backend serve replica, e.g. "
                                    "http://127.0.0.1:8001 — repeat per "
                                    "replica; append =JOBS_DIR to enable "
                                    "checkpoint staging when migrating that "
                                    "replica's jobs")
    cluster_route.add_argument("--host", default="127.0.0.1",
                               help="router bind address (default 127.0.0.1)")
    cluster_route.add_argument("--port", type=int, default=8100,
                               help="router bind port (0 picks a free port)")
    cluster_route.add_argument("--vnodes", type=int, default=None,
                               help="virtual nodes per replica on the hash "
                                    "ring (default 64)")
    cluster_route.add_argument("--health-interval-ms", type=float,
                               default=500.0, metavar="MS",
                               help="mean /healthz probe interval per replica "
                                    "(default 500)")
    cluster_route.add_argument("--down-after", type=int, default=3,
                               metavar="N",
                               help="consecutive probe failures before a "
                                    "replica is DOWN (default 3)")
    cluster_route.add_argument("--up-after", type=int, default=1, metavar="N",
                               help="consecutive probe successes before a "
                                    "DOWN replica returns (default 1)")
    cluster_route.add_argument("--state-dir", metavar="DIR", default=None,
                               help="directory for the placement journal; "
                                    "placements then survive a router "
                                    "restart (default: in-memory only)")
    cluster_route.add_argument("--timeout", type=float, default=60.0,
                               help="proxy timeout per replica attempt, "
                                    "seconds (default 60)")
    cluster_route.add_argument("--trace-sample", type=float, default=1.0,
                               metavar="RATE",
                               help="fraction of routed requests to trace "
                                    "cluster-wide; the router's decision "
                                    "propagates to every hop via the "
                                    "X-Repro-Trace header (default 1.0)")
    cluster_route.add_argument("--trace-ring", type=int, default=256,
                               metavar="N",
                               help="completed router traces retained for "
                                    "/debug/trace stitching (default 256)")
    cluster_route.add_argument("--log-format",
                               choices=["json", "text", "off"],
                               default="json",
                               help="structured cluster event log on stderr: "
                                    "health transitions, failovers, "
                                    "migrations (default json)")
    cluster_route.add_argument("--slo-latency-ms", type=float, default=250.0,
                               metavar="MS",
                               help="cluster latency objective measured at "
                                    "the router, routing and failover "
                                    "included (default 250)")
    cluster_route.add_argument("--slo-target", type=float, default=0.99,
                               metavar="FRACTION",
                               help="cluster availability/latency objective "
                                    "in (0, 1) (default 0.99)")
    cluster_route.add_argument("--autotune",
                               choices=["off", "advise", "apply"],
                               default=None,
                               help="per-replica routing-weight tuning: "
                                    "advise journals recommendations, apply "
                                    "also reweights the hash ring (default: "
                                    "REPRO_AUTOTUNE, else off)")
    cluster_route.add_argument("--autotune-interval", type=float,
                               default=30.0, metavar="SECONDS",
                               help="weight-tuning loop period (default 30)")
    cluster_route.add_argument("--autotune-min-improvement", type=float,
                               default=0.10, metavar="FRACTION",
                               help="minimum fraction of traffic a reweight "
                                    "must move before acting (default 0.10)")
    cluster_sub.add_parser(
        "status", parents=[connection],
        help="print a running router's /cluster/status document",
    )
    return parser


def run_serve(arguments) -> int:
    """The ``serve`` command: start the service and block until SIGINT."""
    from repro.obs.logging import make_logger
    from repro.serve import AnalysisService, start_server

    max_wait = (None if arguments.max_wait_ms is None
                else arguments.max_wait_ms / 1e3)
    exec_backend = arguments.exec_backend
    if exec_backend == "process" and arguments.exec_solve is not None:
        from repro.parallel import make_backend

        # --exec-solve needs the explicit constructor; the service
        # still owns nothing here, so close it ourselves below.
        exec_backend = make_backend(
            "process", n_procs=arguments.exec_procs,
            solve_in_worker=arguments.exec_solve != "parent",
        )
    service = AnalysisService(
        max_batch=arguments.max_batch, max_wait=max_wait,
        cache_size=arguments.cache_size, n_workers=arguments.workers,
        queue_limit=arguments.queue_limit,
        default_deadline_ms=arguments.default_deadline_ms,
        trace_sample=arguments.trace_sample,
        trace_ring=arguments.trace_ring,
        logger=make_logger(arguments.log_format),
        slo_latency_ms=arguments.slo_latency_ms,
        slo_target=arguments.slo_target,
        exec_backend=exec_backend, exec_procs=arguments.exec_procs,
        assembly_kernel=arguments.assembly_kernel,
        jobs_dir=arguments.jobs_dir, job_slots=arguments.job_slots,
        autotune=arguments.autotune,
        autotune_interval=arguments.autotune_interval,
        autotune_min_improvement=arguments.autotune_min_improvement,
    )
    server = start_server(service, host=arguments.host, port=arguments.port)
    policy = service.policy
    deadline = ("none" if service.default_deadline_ms is None
                else f"{service.default_deadline_ms:g} ms")
    exec_stats = service.metrics_snapshot()["exec_backend"]
    exec_info = exec_stats["name"]
    if exec_stats.get("procs"):
        exec_info += f"x{exec_stats['procs']}"
    jobs_info = ("off" if service.jobs is None
                 else f"{arguments.jobs_dir} x{arguments.job_slots}")
    print(f"repro serve listening on http://{arguments.host}:{server.port}  "
          f"(max_batch={policy.max_batch}, "
          f"max_wait={1e3 * policy.max_wait:.1f} ms, "
          f"cache={service.cache.capacity}, workers={arguments.workers}, "
          f"queue_limit={arguments.queue_limit}, "
          f"default_deadline={deadline}, "
          f"exec_backend={exec_info}, "
          f"assembly_kernel={service.assembly_kernel}, "
          f"jobs={jobs_info}, "
          f"autotune={'off' if service.autotuner is None else service.autotuner.config.mode}, "
          f"trace_sample={arguments.trace_sample:g}, "
          f"log_format={arguments.log_format})", flush=True)
    try:
        while not server.wait(3600.0):
            pass
    except KeyboardInterrupt:
        print("\ndraining...", flush=True)
    finally:
        server.stop()
        drained = service.close()
        if not isinstance(exec_backend, (str, type(None))):
            exec_backend.close()  # constructed above for --exec-solve
        print("drained and stopped" if drained else "stopped (drain timed out)",
              flush=True)
    return 0


def run_jobs(arguments) -> int:
    """The ``jobs`` command group: talk to a running server's jobs API."""
    import json

    from repro.serve.client import ServeClient

    client = ServeClient(arguments.host, arguments.port,
                         timeout=arguments.timeout)
    action = arguments.jobs_command
    if action == "submit":
        spec = _build_job_spec(arguments)
        record = client.submit_job(spec)
        if arguments.watch:
            print(f"submitted {record['id']}", flush=True)
            return _watch_job(client, record["id"], poll=0.2)
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    if action == "status":
        print(json.dumps(client.job(arguments.job_id), indent=2,
                         sort_keys=True))
        return 0
    if action == "watch":
        return _watch_job(client, arguments.job_id, poll=arguments.poll)
    if action == "cancel":
        record = client.cancel_job(arguments.job_id)
        print(f"{record['id']} {record['state']} "
              f"(cancel_requested={record['cancel_requested']})")
        return 0
    # list
    jobs = client.jobs()
    if not jobs:
        print("no jobs")
        return 0
    for record in jobs:
        print(f"{record['id']}  {record['state']:<9} "
              f"gen {record['generations_done']}/{record['total_generations']}"
              f"  resumes={record['resumes']}"
              + (f"  error={record['error']}" if record.get("error") else ""))
    return 0


def run_cluster(arguments) -> int:
    """The ``cluster`` command group: run or inspect the router."""
    import json

    if arguments.cluster_command == "status":
        from repro.serve.client import ServeClient

        client = ServeClient(arguments.host, arguments.port,
                             timeout=arguments.timeout)
        print(json.dumps(client.cluster_status(), indent=2, sort_keys=True))
        return 0

    # route
    from repro.cluster import DEFAULT_VNODES, ClusterRouter, start_cluster_server
    from repro.errors import ClusterError
    from repro.obs.logging import make_logger

    replicas = arguments.replicas or []
    if not replicas:
        raise ClusterError(
            "cluster route needs at least one --replica URL"
        )
    if not arguments.health_interval_ms > 0.0:
        raise ClusterError(
            f"--health-interval-ms must be positive, "
            f"got {arguments.health_interval_ms}"
        )
    vnodes = DEFAULT_VNODES if arguments.vnodes is None else arguments.vnodes
    # Topology validation happens here, before anything binds or
    # probes: a malformed or duplicate --replica is a startup error.
    router = ClusterRouter(
        replicas, vnodes=vnodes, state_dir=arguments.state_dir,
        health_interval=arguments.health_interval_ms / 1e3,
        down_after=arguments.down_after, up_after=arguments.up_after,
        timeout=arguments.timeout,
        trace_sample=arguments.trace_sample,
        trace_ring=arguments.trace_ring,
        logger=make_logger(arguments.log_format),
        slo_latency_ms=arguments.slo_latency_ms,
        slo_target=arguments.slo_target,
        autotune=arguments.autotune,
        autotune_interval=arguments.autotune_interval,
        autotune_min_improvement=arguments.autotune_min_improvement,
    )
    router.start()
    server = start_cluster_server(router, host=arguments.host,
                                  port=arguments.port)
    names = ",".join(sorted(router.replicas))
    print(f"repro cluster router listening on "
          f"http://{arguments.host}:{server.port}  "
          f"(replicas=[{names}], vnodes={vnodes}, "
          f"health_interval={arguments.health_interval_ms:g} ms, "
          f"down_after={arguments.down_after}, "
          f"state_dir={arguments.state_dir or 'none'}, "
          f"trace_sample={arguments.trace_sample:g}, "
          f"slo={arguments.slo_latency_ms:g}ms@{arguments.slo_target:g}, "
          f"autotune={'off' if router.autotuner is None else router.autotuner.config.mode}, "
          f"log_format={arguments.log_format})", flush=True)
    try:
        while not server.wait(3600.0):
            pass
    except KeyboardInterrupt:
        print("\nstopping router...", flush=True)
    finally:
        server.stop()
        router.close()
        print("router stopped", flush=True)
    return 0


def _build_job_spec(arguments) -> dict:
    """Merge ``jobs submit`` flags over an optional ``--spec`` document."""
    import json

    from repro.errors import ServeError

    spec: dict = {}
    if arguments.spec is not None:
        text = arguments.spec
        if text.startswith("@"):
            with open(text[1:], "r", encoding="utf-8") as handle:
                text = handle.read()
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as error:
            raise ServeError(f"--spec is not valid JSON: {error}")
        if not isinstance(spec, dict):
            raise ServeError("--spec must be a JSON object")
    ga = dict(spec.get("ga", {}))
    if arguments.seed is not None:
        spec["seed"] = arguments.seed
    if arguments.generations is not None:
        ga["generations"] = arguments.generations
    if arguments.population is not None:
        ga["population_size"] = arguments.population
    if arguments.checkpoint_every is not None:
        spec["checkpoint_every"] = arguments.checkpoint_every
    spec.setdefault("seed", 0)
    if ga:
        spec["ga"] = ga
    return spec


def _watch_job(client, job_id: str, *, poll: float) -> int:
    """Stream progress events until *job_id* reaches a terminal state."""
    import time

    from repro.jobs import JobState

    since = 0
    while True:
        page = client.job_events(job_id, since=since)
        for event in page["events"]:
            best = event.get("best_fitness")
            mean = event.get("mean_fitness")
            best_text = "n/a" if best is None else f"{float(best):.6g}"
            mean_text = "n/a" if mean is None else f"{float(mean):.6g}"
            print(f"gen {event['generation'] + 1}: "
                  f"best={best_text} mean={mean_text}", flush=True)
        since = page["next_since"]
        if page["state"] in JobState.TERMINAL:
            record = client.job(job_id)
            line = f"{job_id} {record['state']}"
            if record["state"] == JobState.DONE:
                champion = record["result"]["champion"]
                line += (f": best fitness {champion['fitness']} "
                         f"after {record['generations_done']} generations")
            elif record.get("error"):
                line += f": {record['error']}"
            print(line, flush=True)
            return 0 if record["state"] == JobState.DONE else 1
        time.sleep(poll)


def _analyze_with_timeout(run, timeout: float):
    """Evaluate ``run()`` with a client-side wall-clock budget.

    The evaluation runs in a daemon thread behind a
    :class:`~repro.serve.workers.PendingResult`; if the budget expires
    first the waiter cancels (detaches) and raises
    :class:`~repro.errors.DeadlineExceededError` rather than blocking
    indefinitely on a pathological input.
    """
    import threading

    from repro.errors import DeadlineExceededError, ServeError
    from repro.serve.workers import PendingResult

    if not timeout > 0.0:
        raise ServeError(f"--timeout must be positive, got {timeout}")
    pending = PendingResult()

    def work() -> None:
        try:
            pending.resolve(run())
        except BaseException as error:
            pending.fail(error)

    threading.Thread(target=work, name="repro-analyze", daemon=True).start()
    try:
        return pending.result(timeout=timeout)
    except ServeError:
        if pending.cancel():
            raise DeadlineExceededError(
                f"analysis did not finish within --timeout={timeout:g}s"
            )
        # Finished in the race window: surface the real outcome.
        return pending.result(timeout=None)


def _traced_run(request: AnalyzeRequest, stamps: List,
                kernel=None) -> "object":
    """Evaluate *request* while collecting stage stamps into *stamps*.

    Each entry is ``(stage, start, end, count)`` straight from the
    :func:`~repro.core.api.evaluate_requests` stage hook.
    """
    from repro.core.api import evaluate_requests

    result = evaluate_requests(
        [request],
        stage_hook=lambda stage, start, end, count:
            stamps.append((stage, start, end, count)),
        kernel=kernel,
    )[0]
    if isinstance(result, Exception):
        raise result
    return result


def _print_stage_breakdown(stamps: List, wall_seconds: float) -> None:
    """Print the paper-vocabulary W/A/L/O breakdown to stderr.

    W is the measured wall time of the whole evaluation, A and L sum
    the assembly and solve stamps, and O = W - L is everything that is
    not the batched LU — the identity the serving tracer also reports.
    """
    totals: dict = {}
    for stage, start, end, _count in stamps:
        totals[stage] = totals.get(stage, 0.0) + max(0.0, end - start)
    assembly = totals.get("assembly", 0.0)
    solve = totals.get("solve", 0.0)
    print("trace: stage breakdown (seconds)", file=sys.stderr)
    for stage in ("assembly", "solve", "postprocess"):
        if stage in totals:
            print(f"trace:   {stage:<12} {totals[stage]:.6f}", file=sys.stderr)
    print(f"trace:   W (wall)     {wall_seconds:.6f}", file=sys.stderr)
    print(f"trace:   A (assembly) {assembly:.6f}", file=sys.stderr)
    print(f"trace:   L (solve)    {solve:.6f}", file=sys.stderr)
    print(f"trace:   O (overhead) {wall_seconds - solve:.6f}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "analyze":
            reynolds = arguments.reynolds if arguments.reynolds > 0 else None
            request = AnalyzeRequest(
                airfoil=arguments.designation, alpha_degrees=arguments.alpha,
                reynolds=reynolds, n_panels=arguments.panels,
            )
            stamps: List = []
            kernel = arguments.assembly_kernel
            if arguments.trace:
                import time as time_module

                runner = lambda: _traced_run(request, stamps, kernel)  # noqa: E731
                run_started = time_module.monotonic()
            else:
                runner = lambda: request.run(kernel=kernel)  # noqa: E731
            if arguments.timeout is not None:
                result = _analyze_with_timeout(runner, arguments.timeout)
            else:
                result = runner()
            if arguments.trace:
                _print_stage_breakdown(
                    stamps, time_module.monotonic() - run_started
                )
            if arguments.json:
                print(canonical_json(serialize_analysis(request, result)))
            else:
                print(result.summary())
            return 0
        if arguments.command == "serve":
            return run_serve(arguments)
        if arguments.command == "jobs":
            return run_jobs(arguments)
        if arguments.command == "cluster":
            return run_cluster(arguments)
        if arguments.command == "report":
            from repro.experiments.markdown import generate_experiments_markdown

            print(generate_experiments_markdown(), end="")
            return 0
        if arguments.command == "all":
            for result in run_all():
                print(result.text)
                print()
                if arguments.artifacts:
                    for path in result.save_artifacts(arguments.artifacts):
                        print(f"  wrote {path}")
            return 0
        result = run_experiment(arguments.command)
        print(result.text)
        if arguments.artifacts:
            for path in result.save_artifacts(arguments.artifacts):
                print(f"  wrote {path}")
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module execution hook
    sys.exit(main())
