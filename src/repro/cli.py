"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1`` .. ``table5``, ``figure1`` .. ``figure4``, ``headline`` —
  regenerate one experiment (optionally saving SVG artifacts).
* ``all`` — regenerate everything.
* ``analyze`` — run the inner solver on a NACA section.
* ``serve`` — run the batched analysis HTTP service.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.api import AnalyzeRequest, canonical_json, serialize_analysis
from repro.errors import ReproError
from repro.experiments.runner import experiment_names, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Evaluation of the Intel Xeon Phi and "
                     "NVIDIA K80 as accelerators for two-dimensional panel "
                     "codes' (Einkemmer)."),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in experiment_names():
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        sub.add_argument("--artifacts", metavar="DIR", default=None,
                         help="directory for SVG artifacts")

    sub_all = subparsers.add_parser("all", help="regenerate every experiment")
    sub_all.add_argument("--artifacts", metavar="DIR", default=None,
                         help="directory for SVG artifacts")

    subparsers.add_parser(
        "report", help="render the full EXPERIMENTS.md content to stdout"
    )

    sub_analyze = subparsers.add_parser(
        "analyze", help="analyze a NACA section with the panel method"
    )
    sub_analyze.add_argument("designation", help="e.g. 2412 or 23012")
    sub_analyze.add_argument("--alpha", type=float, default=0.0,
                             help="angle of attack in degrees")
    sub_analyze.add_argument("--reynolds", type=float, default=1e6,
                             help="chord Reynolds number (0 = inviscid only)")
    sub_analyze.add_argument("--panels", type=int, default=200,
                             help="number of panels")
    sub_analyze.add_argument("--json", action="store_true",
                             help="emit the canonical JSON record (same bytes "
                                  "as the serving API's /analyze response)")
    sub_analyze.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="abort the analysis if it does not finish "
                                  "within this many seconds (exit code 1)")
    sub_analyze.add_argument("--trace", action="store_true",
                             help="print a W/A/L/O stage breakdown of the "
                                  "evaluation to stderr (stdout stays "
                                  "byte-identical, so it composes with --json)")

    sub_serve = subparsers.add_parser(
        "serve", help="run the batched analysis HTTP service"
    )
    sub_serve.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    sub_serve.add_argument("--port", type=int, default=8000,
                           help="bind port (0 picks a free port)")
    sub_serve.add_argument("--max-batch", type=int, default=None,
                           help="micro-batch size cap (default: derived from "
                                "the pipeline slicing heuristics)")
    sub_serve.add_argument("--max-wait-ms", type=float, default=None,
                           help="micro-batch flush deadline in milliseconds "
                                "(default: derived)")
    sub_serve.add_argument("--cache-size", type=int, default=1024,
                           help="LRU result-cache capacity (0 disables)")
    sub_serve.add_argument("--workers", type=int, default=2,
                           help="worker threads")
    sub_serve.add_argument("--queue-limit", type=int, default=256,
                           help="admission bound before load shedding")
    sub_serve.add_argument("--default-deadline-ms", type=float, default=None,
                           metavar="MS",
                           help="deadline applied to requests that do not "
                                "carry their own X-Repro-Deadline-Ms header "
                                "or deadline_ms field; expired requests are "
                                "dropped before solving and answered 504 "
                                "(default: no deadline)")
    sub_serve.add_argument("--trace-sample", type=float, default=1.0,
                           metavar="RATE",
                           help="fraction of requests to trace, 0..1 "
                                "(deterministic stride sampling; default 1.0)")
    sub_serve.add_argument("--trace-ring", type=int, default=256,
                           metavar="N",
                           help="completed traces retained for /debug/trace "
                                "(default 256)")
    sub_serve.add_argument("--log-format", choices=["json", "text", "off"],
                           default="json",
                           help="structured request log on stderr: one line "
                                "per completion/failure/shed (default json)")
    sub_serve.add_argument("--exec-backend", choices=["inline", "process"],
                           default=None,
                           help="where micro-batches are assembled and "
                                "solved: inline in the worker thread, or "
                                "sharded across worker processes (default: "
                                "the REPRO_EXEC_BACKEND env var, else inline)")
    sub_serve.add_argument("--exec-procs", type=int, default=None,
                           metavar="N",
                           help="worker-process count for --exec-backend "
                                "process (default: REPRO_EXEC_PROCS, else "
                                "2..4 from the core count)")
    sub_serve.add_argument("--exec-solve", choices=["worker", "parent"],
                           default=None,
                           help="process backend only: run the batched LU in "
                                "each worker (default) or assemble in workers "
                                "and solve one batched LU in the parent")
    return parser


def run_serve(arguments) -> int:
    """The ``serve`` command: start the service and block until SIGINT."""
    from repro.obs.logging import make_logger
    from repro.serve import AnalysisService, start_server

    max_wait = (None if arguments.max_wait_ms is None
                else arguments.max_wait_ms / 1e3)
    exec_backend = arguments.exec_backend
    if exec_backend == "process" and arguments.exec_solve is not None:
        from repro.parallel import make_backend

        # --exec-solve needs the explicit constructor; the service
        # still owns nothing here, so close it ourselves below.
        exec_backend = make_backend(
            "process", n_procs=arguments.exec_procs,
            solve_in_worker=arguments.exec_solve != "parent",
        )
    service = AnalysisService(
        max_batch=arguments.max_batch, max_wait=max_wait,
        cache_size=arguments.cache_size, n_workers=arguments.workers,
        queue_limit=arguments.queue_limit,
        default_deadline_ms=arguments.default_deadline_ms,
        trace_sample=arguments.trace_sample,
        trace_ring=arguments.trace_ring,
        logger=make_logger(arguments.log_format),
        exec_backend=exec_backend, exec_procs=arguments.exec_procs,
    )
    server = start_server(service, host=arguments.host, port=arguments.port)
    policy = service.policy
    deadline = ("none" if service.default_deadline_ms is None
                else f"{service.default_deadline_ms:g} ms")
    exec_stats = service.metrics_snapshot()["exec_backend"]
    exec_info = exec_stats["name"]
    if exec_stats.get("procs"):
        exec_info += f"x{exec_stats['procs']}"
    print(f"repro serve listening on http://{arguments.host}:{server.port}  "
          f"(max_batch={policy.max_batch}, "
          f"max_wait={1e3 * policy.max_wait:.1f} ms, "
          f"cache={service.cache.capacity}, workers={arguments.workers}, "
          f"queue_limit={arguments.queue_limit}, "
          f"default_deadline={deadline}, "
          f"exec_backend={exec_info}, "
          f"trace_sample={arguments.trace_sample:g}, "
          f"log_format={arguments.log_format})", flush=True)
    try:
        while not server.wait(3600.0):
            pass
    except KeyboardInterrupt:
        print("\ndraining...", flush=True)
    finally:
        server.stop()
        drained = service.close()
        if not isinstance(exec_backend, (str, type(None))):
            exec_backend.close()  # constructed above for --exec-solve
        print("drained and stopped" if drained else "stopped (drain timed out)",
              flush=True)
    return 0


def _analyze_with_timeout(run, timeout: float):
    """Evaluate ``run()`` with a client-side wall-clock budget.

    The evaluation runs in a daemon thread behind a
    :class:`~repro.serve.workers.PendingResult`; if the budget expires
    first the waiter cancels (detaches) and raises
    :class:`~repro.errors.DeadlineExceededError` rather than blocking
    indefinitely on a pathological input.
    """
    import threading

    from repro.errors import DeadlineExceededError, ServeError
    from repro.serve.workers import PendingResult

    if not timeout > 0.0:
        raise ServeError(f"--timeout must be positive, got {timeout}")
    pending = PendingResult()

    def work() -> None:
        try:
            pending.resolve(run())
        except BaseException as error:
            pending.fail(error)

    threading.Thread(target=work, name="repro-analyze", daemon=True).start()
    try:
        return pending.result(timeout=timeout)
    except ServeError:
        if pending.cancel():
            raise DeadlineExceededError(
                f"analysis did not finish within --timeout={timeout:g}s"
            )
        # Finished in the race window: surface the real outcome.
        return pending.result(timeout=None)


def _traced_run(request: AnalyzeRequest, stamps: List) -> "object":
    """Evaluate *request* while collecting stage stamps into *stamps*.

    Each entry is ``(stage, start, end, count)`` straight from the
    :func:`~repro.core.api.evaluate_requests` stage hook.
    """
    from repro.core.api import evaluate_requests

    result = evaluate_requests(
        [request],
        stage_hook=lambda stage, start, end, count:
            stamps.append((stage, start, end, count)),
    )[0]
    if isinstance(result, Exception):
        raise result
    return result


def _print_stage_breakdown(stamps: List, wall_seconds: float) -> None:
    """Print the paper-vocabulary W/A/L/O breakdown to stderr.

    W is the measured wall time of the whole evaluation, A and L sum
    the assembly and solve stamps, and O = W - L is everything that is
    not the batched LU — the identity the serving tracer also reports.
    """
    totals: dict = {}
    for stage, start, end, _count in stamps:
        totals[stage] = totals.get(stage, 0.0) + max(0.0, end - start)
    assembly = totals.get("assembly", 0.0)
    solve = totals.get("solve", 0.0)
    print("trace: stage breakdown (seconds)", file=sys.stderr)
    for stage in ("assembly", "solve", "postprocess"):
        if stage in totals:
            print(f"trace:   {stage:<12} {totals[stage]:.6f}", file=sys.stderr)
    print(f"trace:   W (wall)     {wall_seconds:.6f}", file=sys.stderr)
    print(f"trace:   A (assembly) {assembly:.6f}", file=sys.stderr)
    print(f"trace:   L (solve)    {solve:.6f}", file=sys.stderr)
    print(f"trace:   O (overhead) {wall_seconds - solve:.6f}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "analyze":
            reynolds = arguments.reynolds if arguments.reynolds > 0 else None
            request = AnalyzeRequest(
                airfoil=arguments.designation, alpha_degrees=arguments.alpha,
                reynolds=reynolds, n_panels=arguments.panels,
            )
            stamps: List = []
            if arguments.trace:
                import time as time_module

                runner = lambda: _traced_run(request, stamps)  # noqa: E731
                run_started = time_module.monotonic()
            else:
                runner = request.run
            if arguments.timeout is not None:
                result = _analyze_with_timeout(runner, arguments.timeout)
            else:
                result = runner()
            if arguments.trace:
                _print_stage_breakdown(
                    stamps, time_module.monotonic() - run_started
                )
            if arguments.json:
                print(canonical_json(serialize_analysis(request, result)))
            else:
                print(result.summary())
            return 0
        if arguments.command == "serve":
            return run_serve(arguments)
        if arguments.command == "report":
            from repro.experiments.markdown import generate_experiments_markdown

            print(generate_experiments_markdown(), end="")
            return 0
        if arguments.command == "all":
            for result in run_all():
                print(result.text)
                print()
                if arguments.artifacts:
                    for path in result.save_artifacts(arguments.artifacts):
                        print(f"  wrote {path}")
            return 0
        result = run_experiment(arguments.command)
        print(result.text)
        if arguments.artifacts:
            for path in result.save_artifacts(arguments.artifacts):
                print(f"  wrote {path}")
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module execution hook
    sys.exit(main())
