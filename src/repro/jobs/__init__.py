"""Durable asynchronous GA-optimization jobs with checkpoint/resume.

The jobs subsystem turns the paper's real workload — a genetic
optimization run of thousands of candidate evaluations — into the
long-running-work shape every production serving stack has: submit a
job over HTTP, stream its per-generation progress, cancel it, survive
a server restart, and fetch the result later.

Layers (see ``docs/jobs.md``):

* :mod:`repro.jobs.model` — specs, records, state machine, exact
  serialization of populations / RNG state / optimization history;
* :mod:`repro.jobs.store` — append-only JSONL journal (torn-tail
  tolerant) plus atomic per-job checkpoint files;
* :mod:`repro.jobs.evaluator` — whole-generation evaluation through
  the shared batched backend path, bit-identical to the serial loop;
* :mod:`repro.jobs.runner` — bounded job slots driving the GA one
  generation at a time with checkpointing, cooperative cancellation,
  and crash resume;
* :mod:`repro.jobs.metrics` — the counters behind the ``jobs`` section
  of ``/metrics``.
"""

from repro.jobs.evaluator import BatchedGenerationEvaluator
from repro.jobs.metrics import JobMetrics
from repro.jobs.model import (
    JobRecord,
    JobSpec,
    JobState,
    derive_job_id,
    history_from_dict,
    history_to_dict,
    json_safe,
    rng_from_dict,
    rng_state_to_dict,
    validate_job_key,
)
from repro.jobs.runner import STAGE_GENERATION, JobRunner
from repro.jobs.store import JobStore

__all__ = [
    "BatchedGenerationEvaluator",
    "JobMetrics",
    "JobRecord",
    "JobRunner",
    "JobSpec",
    "JobState",
    "JobStore",
    "STAGE_GENERATION",
    "derive_job_id",
    "history_from_dict",
    "history_to_dict",
    "json_safe",
    "rng_from_dict",
    "rng_state_to_dict",
    "validate_job_key",
]
