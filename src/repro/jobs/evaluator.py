"""Batched generation evaluation through the shared serving path.

The serial GA loop scores a generation one
:meth:`~repro.optimize.fitness.FitnessEvaluator.evaluate` call at a
time.  :class:`BatchedGenerationEvaluator` is the drop-in replacement
(:attr:`repro.optimize.ga.GeneticOptimizer.evaluate_all`) that stacks
every feasible genome of a generation into one batch and routes it
through the shared backend path in :mod:`repro.core.api` — the same
stacked-assembly + batched-LU code the HTTP ``/analyze`` traffic uses,
including the ``REPRO_EXEC_BACKEND=process`` shared-memory pool.

**Bit-for-bit parity.**  The batched LU kernels are elementwise across
the stack, and the serial path evaluates through
:meth:`PanelSolver.solve_batch` as a stack of one, so a genome scored
here produces *exactly* the bytes it would produce serially:

* pre-solve feasibility/geometry failures come from the shared
  :meth:`FitnessEvaluator.build_airfoil`;
* the solve itself is ``assemble`` + batched LU in both paths, and a
  matrix's factorization does not depend on its stackmates;
* post-solve classification (lift sign, viscous drag, ratios) is the
  shared :meth:`FitnessEvaluator.classify_solution`.

The one divergence the backend can introduce is *failure blast
radius*: a singular matrix fails its whole (size, dtype) group, and a
killed worker process fails its whole shard.  Genomes whose batch
outcome is a :class:`~repro.errors.LinalgError` or
:class:`~repro.errors.ExecutionBackendError` are therefore re-evaluated
serially — the serial path is a stack of one, so the retried record is
the one the serial loop would have produced.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.core.api import AnalyzeRequest
from repro.errors import ExecutionBackendError, LinalgError
from repro.optimize.fitness import EvaluationRecord, FitnessEvaluator
from repro.panel.assembly import Closure
from repro.panel.solution import PanelSolution
from repro.precision import Precision


class BatchedGenerationEvaluator:
    """Evaluate whole GA generations through the batched backend path.

    Parameters
    ----------
    evaluator:
        The fitness evaluator whose semantics are reproduced.
    backend:
        Execution backend routing (same contract as
        :func:`repro.core.api.evaluate_requests`): ``None`` for the
        process-wide default, a backend instance to share one pool with
        the serving path.
    stage_hook:
        Optional ``(stage, start, end, count)`` callback receiving the
        backend's assembly/solve stamps (fed into per-generation trace
        spans by the runner).
    """

    def __init__(self, evaluator: FitnessEvaluator, *, backend=None,
                 stage_hook: Optional[Callable] = None,
                 kernel: Optional[str] = None) -> None:
        self.evaluator = evaluator
        self.backend = backend
        self.stage_hook = stage_hook
        #: Assembly-kernel selection forwarded to the backend (``None``
        #: defers to ``REPRO_ASSEMBLY_KERNEL``; see ``docs/kernels.md``).
        self.kernel = kernel
        # The shared backend path assembles with the Kutta closure in
        # the request's precision; an evaluator configured differently
        # must keep the (equally correct) serial stack-of-one path.
        solver = evaluator.solver
        self.batchable = (solver.closure == Closure.KUTTA
                          and solver.precision == Precision.DOUBLE)

    def __call__(self, population) -> List[EvaluationRecord]:
        """One :class:`EvaluationRecord` per genome, in order."""
        if not self.batchable:
            return [self.evaluator.evaluate(genome) for genome in population]
        records: List[Optional[EvaluationRecord]] = [None] * len(population)
        pending = []  # (index, genome, request) for solvable candidates
        for index, genome in enumerate(population):
            airfoil, failed = self.evaluator.build_airfoil(genome)
            if failed is not None:
                records[index] = failed
                continue
            pending.append((index, genome, AnalyzeRequest(
                airfoil=airfoil,
                alpha_degrees=self.evaluator.alpha_degrees,
                reynolds=None,
                n_panels=airfoil.n_panels,
            )))
        if pending:
            from repro.parallel import resolve_backend

            solved = resolve_backend(self.backend).solve(
                [request for _, _, request in pending],
                stage_hook=self.stage_hook, kernel=self.kernel,
            )
            for (index, genome, _request), entry in zip(pending, solved):
                records[index] = self._classify(genome, entry)
        return records

    def _classify(self, genome: np.ndarray, entry) -> EvaluationRecord:
        if isinstance(entry, (LinalgError, ExecutionBackendError)):
            # Group/shard-level failure: the error may belong to a
            # stackmate, not this genome.  Retry serially — a stack of
            # one — which yields exactly the serial loop's record
            # (including a genuine per-genome solve failure).
            return self.evaluator.evaluate(genome)
        if isinstance(entry, BaseException):
            # Anything else (assembly/geometry faults past the
            # feasibility gate) would propagate out of the serial loop
            # too: keep that contract.
            raise entry
        solution = PanelSolution(
            airfoil=entry.airfoil,
            freestream=entry.freestream,
            closure=entry.closure,
            gamma=np.asarray(entry.gamma, dtype=np.float64),
            constant=entry.constant,
        )
        return self.evaluator.classify_solution(solution)
