"""Process-lifetime counters for the jobs subsystem.

Mirrors :class:`repro.serve.metrics.ServiceMetrics`: a lock around
plain integers, snapshotted into the ``jobs`` section of the
``/metrics`` document.  Counters reflect *this process's* activity
(journal replay does not count — a restarted server starts its
counters at zero, the Prometheus convention for counter resets).
"""

from __future__ import annotations

import threading

#: Counter names, in snapshot order.
COUNTERS = (
    "submitted", "started", "done", "failed", "cancelled", "resumed",
    "checkpoints", "generations_completed", "duplicate_submits",
)


class JobMetrics:
    """Thread-safe counters for job lifecycle events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in COUNTERS}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (must be a known counter)."""
        with self._lock:
            self._counts[name] += amount

    def snapshot(self) -> dict:
        """One coherent copy of every counter."""
        with self._lock:
            return dict(self._counts)
