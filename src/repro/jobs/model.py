"""Job model: specs, records, the state machine, and serialization.

A *job* is one durable GA optimization run.  Its :class:`JobSpec` is
the wire-format description (seed, GA hyper-parameters, fitness
configuration, checkpoint cadence); its :class:`JobRecord` is the
mutable server-side state that the :class:`~repro.jobs.store.JobStore`
journals and the :class:`~repro.jobs.runner.JobRunner` drives through
the state machine::

    PENDING -> RUNNING -> {DONE, FAILED, CANCELLED}

This module also owns the serialization helpers shared by the journal,
the checkpoint files, and the HTTP layer: exact round-tripping of
genomes (``repr`` of a float64 survives JSON), of
:class:`~repro.optimize.history.OptimizationHistory`, and of
``np.random.Generator`` bit-generator state — the three ingredients of
byte-identical checkpoint/resume.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import string
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import JobError, OptimizationError
from repro.optimize.fitness import FitnessEvaluator
from repro.optimize.ga import GAConfig
from repro.optimize.genome import GenomeLayout
from repro.optimize.history import (
    GenerationRecord,
    Individual,
    OptimizationHistory,
)


class JobState:
    """The job state machine's vocabulary."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    #: Terminal states: no further transitions are legal.
    TERMINAL = frozenset({DONE, FAILED, CANCELLED})

    #: Every legal state name.
    ALL = frozenset({PENDING, RUNNING, DONE, FAILED, CANCELLED})


#: Top-level wire-format fields accepted by :meth:`JobSpec.from_dict`.
SPEC_FIELDS = ("seed", "checkpoint_every", "ga", "fitness")

#: Longest accepted client-supplied job key.
MAX_JOB_KEY_LENGTH = 128

#: Characters allowed in a job key (same family as request IDs:
#: UUIDs, ULIDs, and dotted formats pass; header/log injection does not).
_JOB_KEY_ALLOWED = frozenset(string.ascii_letters + string.digits + "-_.:/")


def validate_job_key(value) -> str:
    """A validated client-supplied idempotency key.

    Job keys make ``POST /jobs`` idempotent: resubmitting the same key
    returns the existing job instead of double-running it, which is
    what lets the cluster router's failover re-place a job without
    risking two live copies.
    """
    if not isinstance(value, str):
        raise JobError(f"job_key must be a string, got {type(value).__name__}")
    if not value or len(value) > MAX_JOB_KEY_LENGTH:
        raise JobError(
            f"job_key must be 1..{MAX_JOB_KEY_LENGTH} characters, "
            f"got {len(value)}"
        )
    if not set(value) <= _JOB_KEY_ALLOWED:
        bad = sorted(set(value) - _JOB_KEY_ALLOWED)
        raise JobError(f"job_key contains forbidden characters: {bad}")
    return value


def derive_job_id(job_key: str) -> str:
    """The deterministic job ID a keyed submission creates.

    Keyed jobs get an ID derived from the key (not a random UUID) so
    every store that sees the same key materializes the same ID.  The
    cluster router leans on this during migration: it can stage the
    dead replica's checkpoint file under the survivor's checkpoint
    directory *before* resubmitting, because it knows what ID the
    resubmission will get.
    """
    digest = hashlib.sha256(f"job-key:{job_key}".encode("utf-8")).hexdigest()
    return f"job-k{digest[:12]}"

#: GA hyper-parameter overrides accepted in the spec's ``ga`` object
#: (each maps straight onto a :class:`~repro.optimize.ga.GAConfig`
#: field, which performs the real validation).
GA_FIELDS = (
    "population_size", "generations", "tournament_size",
    "crossover_probability", "mutation_probability", "mutation_scale",
    "elitism", "keep_best", "selection",
)

#: Fitness-evaluator overrides accepted in the spec's ``fitness``
#: object.
FITNESS_FIELDS = (
    "n_panels", "reynolds", "alpha_degrees", "min_thickness", "use_head",
)


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One durable optimization job, as described on the wire.

    Parameters
    ----------
    seed:
        PRNG seed; with the same seed a job is fully deterministic,
        which is what makes checkpoint/resume verifiable.
    ga:
        :class:`~repro.optimize.ga.GAConfig` overrides (validated by
        constructing the config).
    fitness:
        :class:`~repro.optimize.fitness.FitnessEvaluator` overrides
        (``n_panels``, ``reynolds``, ``alpha_degrees``,
        ``min_thickness``, ``use_head``).
    checkpoint_every:
        Checkpoint cadence in generations (1 = after every generation).
    """

    seed: int
    ga: Dict[str, Any] = dataclasses.field(default_factory=dict)
    fitness: Dict[str, Any] = dataclasses.field(default_factory=dict)
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise JobError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise JobError(f"seed cannot be negative, got {self.seed}")
        try:
            cadence = int(self.checkpoint_every)
        except (TypeError, ValueError):
            raise JobError(
                f"checkpoint_every must be an integer, got {self.checkpoint_every!r}"
            )
        if cadence < 1:
            raise JobError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every!r}"
            )
        object.__setattr__(self, "checkpoint_every", cadence)
        for label, overrides, allowed in (
                ("ga", self.ga, GA_FIELDS), ("fitness", self.fitness, FITNESS_FIELDS)):
            if not isinstance(overrides, dict):
                raise JobError(f"'{label}' must be a JSON object")
            unknown = sorted(set(overrides) - set(allowed))
            if unknown:
                raise JobError(
                    f"unknown {label} fields: {', '.join(unknown)}"
                )
            object.__setattr__(self, label, dict(overrides))
        # Construct both eagerly so a bad spec fails at submission
        # (HTTP 400), never inside a runner thread.
        self.ga_config()
        self.fitness_evaluator()

    @classmethod
    def from_dict(cls, payload) -> "JobSpec":
        """Parse a wire-format job spec, rejecting unknown fields."""
        if not isinstance(payload, dict):
            raise JobError(
                f"job spec must be a JSON object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - set(SPEC_FIELDS))
        if unknown:
            raise JobError(f"unknown job spec fields: {', '.join(unknown)}")
        if "seed" not in payload:
            raise JobError("job spec is missing the 'seed' field")
        return cls(
            seed=payload["seed"],
            ga=payload.get("ga") or {},
            fitness=payload.get("fitness") or {},
            checkpoint_every=payload.get("checkpoint_every", 1),
        )

    def to_dict(self) -> dict:
        """The wire-format rendering of this spec."""
        return {
            "seed": self.seed,
            "ga": dict(self.ga),
            "fitness": dict(self.fitness),
            "checkpoint_every": self.checkpoint_every,
        }

    def ga_config(self) -> GAConfig:
        """The validated GA configuration this spec describes."""
        try:
            return GAConfig(**self.ga)
        except OptimizationError as error:
            raise JobError(f"invalid ga config: {error}")
        except TypeError as error:
            raise JobError(f"invalid ga config: {error}")

    def fitness_evaluator(self) -> FitnessEvaluator:
        """The validated fitness evaluator this spec describes."""
        overrides = dict(self.fitness)
        if "n_panels" in overrides:
            try:
                n_panels = int(overrides["n_panels"])
            except (TypeError, ValueError):
                raise JobError(
                    f"n_panels must be an integer, got {overrides['n_panels']!r}"
                )
            if n_panels < 3:
                raise JobError(f"n_panels must be at least 3, got {n_panels}")
            overrides["n_panels"] = n_panels
        if "reynolds" in overrides:
            try:
                reynolds = float(overrides["reynolds"])
            except (TypeError, ValueError):
                raise JobError(
                    f"reynolds must be a number, got {overrides['reynolds']!r}"
                )
            if not math.isfinite(reynolds) or reynolds <= 0.0:
                raise JobError(
                    f"reynolds must be positive and finite, got {reynolds}"
                )
            overrides["reynolds"] = reynolds
        try:
            return FitnessEvaluator(layout=GenomeLayout(), **overrides)
        except OptimizationError as error:
            raise JobError(f"invalid fitness config: {error}")
        except TypeError as error:
            raise JobError(f"invalid fitness config: {error}")


@dataclasses.dataclass
class JobRecord:
    """The mutable server-side state of one job."""

    id: str
    spec: JobSpec
    state: str = JobState.PENDING
    job_key: Optional[str] = None
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    generations_done: int = 0
    cancel_requested: bool = False
    resumes: int = 0
    error: Optional[str] = None
    result: Optional[dict] = None

    @property
    def terminal(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in JobState.TERMINAL

    @property
    def total_generations(self) -> int:
        """How many generations the spec asks for."""
        return int(self.spec.ga.get("generations", GAConfig().generations))

    def to_dict(self, *, include_result: bool = True) -> dict:
        """The wire-format rendering (pass through :func:`json_safe`
        before HTTP serialization — results may hold non-finite
        floats)."""
        payload = {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "job_key": self.job_key,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "generations_done": self.generations_done,
            "total_generations": self.total_generations,
            "cancel_requested": self.cancel_requested,
            "resumes": self.resumes,
            "error": self.error,
        }
        if include_result:
            payload["result"] = self.result
        return payload


# ----------------------------------------------------------------------
# Serialization helpers
# ----------------------------------------------------------------------


def rng_state_to_dict(rng: np.random.Generator) -> dict:
    """The full bit-generator state of *rng*, JSON-serializable.

    NumPy exposes the state as plain ints and strings (PCG64 carries
    128-bit integers, which Python JSON handles natively), so storing
    and restoring it is exact — the foundation of resume determinism.
    """
    return dict(rng.bit_generator.state)


def rng_from_dict(state: dict) -> np.random.Generator:
    """Reconstruct a generator from :func:`rng_state_to_dict` output."""
    name = state.get("bit_generator")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None:
        raise JobError(f"unknown bit generator {name!r} in checkpoint")
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def history_to_dict(history: OptimizationHistory) -> dict:
    """Serialize an optimization history exactly (floats via ``repr``)."""
    return {
        "generations": [
            {
                "index": record.index,
                "best": [
                    {
                        "genome": individual.genome.tolist(),
                        "fitness": individual.fitness,
                        "cl": individual.cl,
                        "cd": individual.cd,
                    }
                    for individual in record.best
                ],
                "best_fitness": record.best_fitness,
                "mean_fitness": record.mean_fitness,
                "feasible_fraction": record.feasible_fraction,
            }
            for record in history.generations
        ],
    }


def history_from_dict(payload: dict) -> OptimizationHistory:
    """Reconstruct a history from :func:`history_to_dict` output."""
    generations: List[GenerationRecord] = []
    for entry in payload.get("generations", []):
        best = [
            Individual(
                genome=np.asarray(item["genome"], dtype=np.float64),
                fitness=float(item["fitness"]),
                cl=float(item["cl"]),
                cd=float(item["cd"]),
            )
            for item in entry["best"]
        ]
        generations.append(GenerationRecord(
            index=int(entry["index"]),
            best=best,
            best_fitness=float(entry["best_fitness"]),
            mean_fitness=float(entry["mean_fitness"]),
            feasible_fraction=float(entry["feasible_fraction"]),
        ))
    return OptimizationHistory(generations=generations)


def json_safe(value):
    """Map non-finite floats to strings for strict-JSON transports.

    The journal and checkpoint files keep Python's ``Infinity`` /
    ``NaN`` tokens (they round-trip through :func:`json.loads`), but
    HTTP responses go through the strict
    :func:`repro.core.api.canonical_json` (``allow_nan=False``), so
    anything reaching the wire is sanitized here first: ``-inf``
    fitnesses become the string ``"-Infinity"`` etc.
    """
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    return value
