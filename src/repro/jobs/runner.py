"""The job runner: a bounded pool of slots driving GA jobs.

Each slot is one daemon thread that pulls job IDs off a queue and
drives :meth:`~repro.optimize.ga.GeneticOptimizer.run_from` *one
generation at a time* (a one-generation config per step), so every
generation boundary is a clean point to:

* record a progress event (the ``/jobs/<id>/events`` stream);
* honour cooperative cancellation;
* checkpoint (population after the evolve, exact RNG state, history);
* stop gracefully on shutdown — the job stays ``RUNNING`` on disk and
  resumes from its checkpoint on the next boot.

Stepping one generation at a time is *identical* to one multi-
generation run: ``run_from`` evaluates, records, and evolves each
generation with no state outside the (population, rng, history) triple
that the checkpoint captures exactly.  That, plus the stable ranking
sort in :mod:`repro.optimize.history`, is why a resumed run's history
is byte-identical to an uninterrupted one.

A raising progress callback (or any per-job failure) marks that job
``FAILED`` and leaves the runner thread alive for the next job.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Callable, List, Optional

import numpy as np

from repro.errors import JobError
from repro.jobs.evaluator import BatchedGenerationEvaluator
from repro.jobs.metrics import JobMetrics
from repro.jobs.model import (
    JobRecord,
    JobSpec,
    JobState,
    history_from_dict,
    history_to_dict,
    rng_from_dict,
    rng_state_to_dict,
)
from repro.jobs.store import JobStore
from repro.optimize.ga import GeneticOptimizer
from repro.optimize.history import OptimizationHistory

#: Trace-span name for one GA generation (folded into the tracer's
#: ``stages`` aggregate as ``generation_seconds``).
STAGE_GENERATION = "generation"


class JobRunner:
    """Executes jobs from a :class:`~repro.jobs.store.JobStore`.

    Parameters
    ----------
    store:
        The durable store holding specs, states, and checkpoints.
    slots:
        Concurrent job slots (worker threads); default 1 — GA jobs are
        batch-parallel *inside* a generation already.
    exec_backend:
        Execution backend for generation batches (shared with the
        serving path when embedded in an
        :class:`~repro.serve.service.AnalysisService`).
    tracer:
        Optional :class:`~repro.serve.tracing.Tracer`; each generation
        of each job becomes one sampled trace with a ``generation``
        span.
    metrics:
        Shared :class:`~repro.jobs.metrics.JobMetrics` (defaults to the
        store's).
    on_generation:
        Optional callback ``(record, generation_summary)`` after every
        completed generation.  A raising callback fails *that job* —
        never the runner thread.
    """

    def __init__(self, store: JobStore, *, slots: int = 1,
                 exec_backend=None, tracer=None,
                 metrics: Optional[JobMetrics] = None,
                 on_generation: Optional[Callable] = None) -> None:
        if int(slots) < 1:
            raise JobError(f"job slots must be >= 1, got {slots}")
        self.store = store
        self.slots = int(slots)
        self.exec_backend = exec_backend
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else store.metrics
        self.on_generation = on_generation
        self._queue: "queue.Queue" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "JobRunner":
        """Start the slot threads and requeue unfinished jobs.

        Jobs found ``RUNNING`` (the previous process crashed mid-run)
        are counted as resumed and continue from their last checkpoint;
        ``PENDING`` jobs simply start.
        """
        if self._started:
            raise JobError("runner is already started")
        self._started = True
        for record in self.store.resumable():
            if record.state == JobState.RUNNING:
                self.store.mark_resumed(record.id)
            self._queue.put(record.id)
        for index in range(self.slots):
            thread = threading.Thread(target=self._worker,
                                      name=f"repro-job-slot-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def close(self, timeout: float = 10.0) -> bool:
        """Stop gracefully: running jobs checkpoint and stay RUNNING.

        Returns True when every slot thread exited within *timeout*.
        Safe to call before :meth:`start` and idempotent.
        """
        self._stopping.set()
        for _ in self._threads:
            self._queue.put(None)
        deadline = time.monotonic() + timeout
        alive = False
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
            alive = alive or thread.is_alive()
        return not alive

    @property
    def queue_depth(self) -> int:
        """Approximate number of jobs waiting for a slot."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # Submission / cancellation
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec, *,
               job_key: Optional[str] = None) -> JobRecord:
        """Register a job and queue it for the next free slot.

        With *job_key* set submission is idempotent: a duplicate key
        returns the existing record and does **not** enqueue a second
        run (the store's ``submit_idempotent`` decides atomically, so
        two racing duplicates still produce exactly one queued job).
        """
        if job_key is not None:
            record, created = self.store.submit_idempotent(spec, job_key)
            if not created:
                return record
        else:
            record = self.store.submit(spec)
        self._queue.put(record.id)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Request cooperative cancellation (see ``JobStore.request_cancel``)."""
        return self.store.request_cancel(job_id)

    def metrics_snapshot(self) -> dict:
        """The ``jobs`` section of the ``/metrics`` document."""
        snapshot = dict(self.metrics.snapshot())
        snapshot["slots"] = self.slots
        snapshot["queue_depth"] = self.queue_depth
        snapshot["states"] = self.store.state_counts()
        snapshot["torn_journal_lines"] = self.store.torn_lines
        return snapshot

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            if self._stopping.is_set():
                # Leave the job PENDING/RUNNING on disk; the next boot
                # requeues it via resumable().
                continue
            try:
                record = self.store.get(job_id)
            except JobError:
                continue
            if record.terminal:
                continue
            if record.cancel_requested:
                self.store.mark_cancelled(job_id)
                continue
            try:
                self._drive(record)
            except Exception as error:  # fail the job, not the thread
                try:
                    self.store.mark_failed(
                        job_id, f"{type(error).__name__}: {error}"
                    )
                except JobError:
                    pass  # lost a race with a terminal transition

    def _drive(self, record: JobRecord) -> None:
        spec = record.spec
        evaluator = spec.fitness_evaluator()
        config = spec.ga_config()
        checkpoint = self.store.load_checkpoint(record.id)
        if checkpoint is not None:
            population = [np.asarray(genome, dtype=np.float64)
                          for genome in checkpoint["population"]]
            rng = rng_from_dict(checkpoint["rng_state"])
            history = history_from_dict(checkpoint["history"])
            start_generation = int(checkpoint["generation_offset"])
        else:
            rng = np.random.default_rng(spec.seed)
            population = [evaluator.layout.random_genome(rng)
                          for _ in range(config.population_size)]
            history = OptimizationHistory()
            start_generation = 0
        self.store.mark_running(record.id)
        step_config = dataclasses.replace(config, generations=1)
        total = config.generations
        for generation in range(start_generation, total):
            if record.cancel_requested:
                self.store.mark_cancelled(record.id)
                return
            if self._stopping.is_set():
                # Graceful shutdown between generations: persist and
                # leave the job RUNNING so the next boot resumes it.
                self._write_checkpoint(record, population, rng, history,
                                       generation)
                return
            trace = (self.tracer.start(f"{record.id}:g{generation}")
                     if self.tracer is not None else None)
            stage_hook = None
            if trace is not None:
                def stage_hook(stage, start, end, count, _trace=trace):
                    _trace.add_stage(stage, start, end)
            batched = BatchedGenerationEvaluator(
                evaluator, backend=self.exec_backend, stage_hook=stage_hook
            )
            optimizer = GeneticOptimizer(evaluator=evaluator,
                                         config=step_config,
                                         evaluate_all=batched)
            started = time.monotonic()
            population = optimizer.run_from(
                population, rng, history=history,
                generation_offset=generation,
            )
            ended = time.monotonic()
            summary = history.generations[-1]
            if trace is not None:
                trace.add_stage(STAGE_GENERATION, started, ended)
                trace.annotate(job_id=record.id, generation=generation,
                               batch_size=config.population_size)
                self.tracer.finish(trace, "completed")
            self.store.record_progress(record.id, generation, {
                "best_fitness": summary.best_fitness,
                "mean_fitness": summary.mean_fitness,
                "feasible_fraction": summary.feasible_fraction,
            })
            self.metrics.increment("generations_completed")
            if self.on_generation is not None:
                self.on_generation(record, summary)
            if generation + 1 < total and (generation + 1) % spec.checkpoint_every == 0:
                # Cadence anchored at the absolute generation index, so
                # a resumed run checkpoints at the same boundaries.
                self._write_checkpoint(record, population, rng, history,
                                       generation + 1)
        self.store.mark_done(record.id, self._result(config, history))

    def _write_checkpoint(self, record: JobRecord, population, rng, history,
                          generation_offset: int) -> None:
        self.store.write_checkpoint(record.id, {
            "job_id": record.id,
            "generation_offset": int(generation_offset),
            "population": [genome.tolist() for genome in population],
            "rng_state": rng_state_to_dict(rng),
            "history": history_to_dict(history),
        })

    @staticmethod
    def _result(config, history: OptimizationHistory) -> dict:
        champion = history.champion
        return {
            "champion": {
                "genome": champion.genome.tolist(),
                "fitness": champion.fitness,
                "cl": champion.cl,
                "cd": champion.cd,
            },
            "best_fitness_trace": history.best_fitness_trace().tolist(),
            "generations": config.generations,
            "evaluations": config.total_evaluations,
            "history": history_to_dict(history),
        }
