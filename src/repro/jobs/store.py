"""Durable job state: append-only journal plus atomic checkpoints.

One :class:`JobStore` owns one jobs directory::

    <jobs_dir>/journal.jsonl            # append-only event log
    <jobs_dir>/checkpoints/<id>.json    # latest checkpoint per job

**Journal.**  Every state change is one JSON line, appended and
flushed (state transitions are also fsynced — they are the durability
promise; per-generation progress lines ride on the OS cache).  On
open, the store replays the journal to rebuild every
:class:`~repro.jobs.model.JobRecord`: a torn *final* line — the
signature of a crash mid-append — is tolerated and counted in
:attr:`JobStore.torn_lines`; a corrupt line anywhere else raises
:class:`~repro.errors.JobError`, because silently skipping interior
history would fabricate job states.  Jobs that were ``RUNNING`` when
the process died stay ``RUNNING`` after replay and are reported by
:meth:`resumable` for the runner to pick up.

**Checkpoints.**  :meth:`write_checkpoint` writes the whole payload to
a temp file, fsyncs, and :func:`os.replace`-renames it over the live
checkpoint — a reader never observes a half-written file.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Dict, List, Optional, Tuple

from repro.errors import JobError, JobNotFoundError
from repro.jobs.metrics import JobMetrics
from repro.jobs.model import (
    JobRecord,
    JobSpec,
    JobState,
    derive_job_id,
    validate_job_key,
)
from repro.obs.logging import StructuredLogger

#: Journal filename inside a jobs directory.
JOURNAL_NAME = "journal.jsonl"

#: Checkpoint subdirectory inside a jobs directory.
CHECKPOINT_DIR = "checkpoints"

#: Legal state transitions (from -> allowed targets).
_TRANSITIONS = {
    JobState.PENDING: {JobState.RUNNING, JobState.CANCELLED, JobState.FAILED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED, JobState.CANCELLED},
}


def _dumps(payload: dict) -> str:
    # Internal files keep Python's Infinity/NaN tokens (json.loads
    # reads them back); only the HTTP layer needs strict JSON.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class JobStore:
    """Journal-backed registry of jobs in one directory."""

    def __init__(self, jobs_dir: str, *,
                 logger: Optional[StructuredLogger] = None,
                 metrics: Optional[JobMetrics] = None) -> None:
        self.jobs_dir = str(jobs_dir)
        self.logger = logger if logger is not None else StructuredLogger("off")
        self.metrics = metrics if metrics is not None else JobMetrics()
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(os.path.join(self.jobs_dir, CHECKPOINT_DIR), exist_ok=True)
        self._journal_path = os.path.join(self.jobs_dir, JOURNAL_NAME)
        self._lock = threading.RLock()
        self._records: "Dict[str, JobRecord]" = {}
        self._events: "Dict[str, List[dict]]" = {}
        self._keys: "Dict[str, str]" = {}  # job_key -> job_id
        #: Torn final journal lines dropped during replay (0 or 1 per
        #: boot; counted so /metrics can surface crash recoveries).
        self.torn_lines = 0
        self._replay()
        self._journal = open(self._journal_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Journal replay
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        if not os.path.exists(self._journal_path):
            return
        with open(self._journal_path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()  # trailing newline of a clean append
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    # Crash mid-append: the journal's contract is that
                    # only its final line can be torn.  Truncate the
                    # tail so the next append starts a fresh line
                    # instead of merging with the partial one.
                    self.torn_lines += 1
                    self._truncate_tail(len(line.encode("utf-8")))
                    continue
                raise JobError(
                    f"corrupt journal line {number + 1} in "
                    f"{self._journal_path} (only the final line may be torn)"
                )
            self._apply(entry)

    def _truncate_tail(self, tail_bytes: int) -> None:
        """Drop the torn final line (the bytes after the last newline)."""
        with open(self._journal_path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.truncate(max(0, handle.tell() - tail_bytes))

    def _apply(self, entry: dict) -> None:
        """Fold one replayed journal entry into the in-memory state."""
        kind = entry.get("type")
        job_id = entry.get("id")
        if kind == "submitted":
            job_key = entry.get("job_key")
            self._records[job_id] = JobRecord(
                id=job_id,
                spec=JobSpec.from_dict(entry["spec"]),
                job_key=job_key,
                created_at=float(entry.get("at", 0.0)),
            )
            self._events[job_id] = []
            if job_key is not None:
                self._keys[job_key] = job_id
            return
        record = self._records.get(job_id)
        if record is None:
            return  # an entry for an unknown job: ignore, not fatal
        if kind == "state":
            record.state = entry["state"]
            at = float(entry.get("at", 0.0))
            if record.state == JobState.RUNNING and record.started_at is None:
                record.started_at = at
            if record.state in JobState.TERMINAL:
                record.finished_at = at
            record.error = entry.get("error", record.error)
            if "result" in entry:
                record.result = entry["result"]
        elif kind == "progress":
            event = {key: value for key, value in entry.items()
                     if key not in ("type", "id")}
            self._events[job_id].append(event)
            record.generations_done = max(
                record.generations_done, int(entry.get("generation", -1)) + 1
            )
        elif kind == "cancel":
            record.cancel_requested = True
        elif kind == "resume":
            record.resumes += 1
        # Unknown entry types are skipped (forward compatibility).

    # ------------------------------------------------------------------
    # Journal writing
    # ------------------------------------------------------------------

    def _append(self, entry: dict, *, durable: bool = False) -> None:
        self._journal.write(_dumps(entry) + "\n")
        self._journal.flush()
        if durable:
            os.fsync(self._journal.fileno())

    def _log_state(self, record: JobRecord, **extra) -> None:
        if self.logger.enabled:
            self.logger.event("job", id=record.id, state=record.state,
                              generations_done=record.generations_done,
                              **extra)

    # ------------------------------------------------------------------
    # Submission and lookup
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec, *, job_id: Optional[str] = None,
               job_key: Optional[str] = None) -> JobRecord:
        """Register a new PENDING job and journal it durably.

        With *job_key* set the job gets the deterministic derived ID
        (see :func:`~repro.jobs.model.derive_job_id`); resubmitting an
        existing key raises — use :meth:`submit_idempotent` for the
        duplicate-tolerant path.
        """
        with self._lock:
            if job_key is not None:
                job_key = validate_job_key(job_key)
                if job_key in self._keys:
                    raise JobError(f"job_key {job_key!r} already exists "
                                   f"as job {self._keys[job_key]}")
                job_id = job_id or derive_job_id(job_key)
            job_id = job_id or f"job-{uuid.uuid4().hex[:12]}"
            if job_id in self._records:
                raise JobError(f"job id {job_id!r} already exists")
            record = JobRecord(id=job_id, spec=spec, job_key=job_key,
                               created_at=time.time())
            self._records[job_id] = record
            self._events[job_id] = []
            if job_key is not None:
                self._keys[job_key] = job_id
            entry = {"type": "submitted", "id": job_id,
                     "spec": spec.to_dict(), "at": record.created_at}
            if job_key is not None:
                entry["job_key"] = job_key
            self._append(entry, durable=True)
            self.metrics.increment("submitted")
            self._log_state(record)
            return record

    def submit_idempotent(self, spec: JobSpec, job_key: str) -> "Tuple[JobRecord, bool]":
        """Keyed submission: ``(record, created)``.

        The first submission with *job_key* registers the job exactly
        like :meth:`submit`; every later one returns the existing
        record with ``created=False`` and never double-runs the job.
        The key — not the spec — is the identity: a duplicate key with
        a different spec still returns the original job (counted in
        ``duplicate_submits``), because two racing submitters of "the
        same" job must converge on one record.
        """
        job_key = validate_job_key(job_key)
        with self._lock:
            existing = self._keys.get(job_key)
            if existing is not None:
                self.metrics.increment("duplicate_submits")
                return self.get(existing), False
            return self.submit(spec, job_key=job_key), True

    def find_by_key(self, job_key: str) -> Optional[JobRecord]:
        """The record submitted under *job_key*, or ``None``."""
        with self._lock:
            job_id = self._keys.get(job_key)
            return None if job_id is None else self.get(job_id)

    def get(self, job_id: str) -> JobRecord:
        """The record for *job_id*; raises :class:`JobNotFoundError`."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFoundError(f"no such job: {job_id}")
            return record

    def list(self) -> List[JobRecord]:
        """Every record, oldest submission first."""
        with self._lock:
            return sorted(self._records.values(),
                          key=lambda record: (record.created_at, record.id))

    def state_counts(self) -> dict:
        """How many jobs are in each state (every state always present)."""
        counts = {state: 0 for state in sorted(JobState.ALL)}
        with self._lock:
            for record in self._records.values():
                counts[record.state] += 1
        return counts

    def resumable(self) -> List[JobRecord]:
        """Jobs a fresh runner should pick up, oldest first.

        ``RUNNING`` records are jobs that were mid-run when the
        previous process died (their last checkpoint resumes them);
        ``PENDING`` records never started.
        """
        return [record for record in self.list()
                if record.state in (JobState.PENDING, JobState.RUNNING)]

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def _transition(self, job_id: str, state: str, *,
                    error: Optional[str] = None,
                    result: Optional[dict] = None) -> JobRecord:
        with self._lock:
            record = self.get(job_id)
            allowed = _TRANSITIONS.get(record.state, frozenset())
            if state not in allowed:
                raise JobError(
                    f"job {job_id} cannot move {record.state} -> {state}"
                )
            record.state = state
            at = time.time()
            if state == JobState.RUNNING and record.started_at is None:
                record.started_at = at
            if state in JobState.TERMINAL:
                record.finished_at = at
            if error is not None:
                record.error = error
            if result is not None:
                record.result = result
            entry = {"type": "state", "id": job_id, "state": state, "at": at}
            if error is not None:
                entry["error"] = error
            if result is not None:
                entry["result"] = result
            self._append(entry, durable=True)
            self._log_state(record, error=error)
            return record

    def mark_running(self, job_id: str) -> JobRecord:
        """PENDING -> RUNNING (no-op when already RUNNING — a resume)."""
        with self._lock:
            record = self.get(job_id)
            if record.state == JobState.RUNNING:
                return record
            record = self._transition(job_id, JobState.RUNNING)
            self.metrics.increment("started")
            return record

    def mark_done(self, job_id: str, result: dict) -> JobRecord:
        """RUNNING -> DONE with the terminal result payload."""
        record = self._transition(job_id, JobState.DONE, result=result)
        self.metrics.increment("done")
        return record

    def mark_failed(self, job_id: str, error: str) -> JobRecord:
        """Any live state -> FAILED with the error description."""
        record = self._transition(job_id, JobState.FAILED, error=error)
        self.metrics.increment("failed")
        return record

    def mark_cancelled(self, job_id: str) -> JobRecord:
        """Any live state -> CANCELLED."""
        record = self._transition(job_id, JobState.CANCELLED)
        self.metrics.increment("cancelled")
        return record

    def mark_resumed(self, job_id: str) -> JobRecord:
        """Count one crash-resume for *job_id* (journaled)."""
        with self._lock:
            record = self.get(job_id)
            record.resumes += 1
            self._append({"type": "resume", "id": job_id, "at": time.time()})
            self.metrics.increment("resumed")
            self._log_state(record, resumed=True)
            return record

    def request_cancel(self, job_id: str) -> JobRecord:
        """Ask a job to stop at its next generation boundary.

        Idempotent; a no-op for terminal jobs.  The runner honours the
        flag cooperatively — a PENDING job is cancelled when a worker
        dequeues it, a RUNNING one between generations.
        """
        with self._lock:
            record = self.get(job_id)
            if record.terminal or record.cancel_requested:
                return record
            record.cancel_requested = True
            self._append({"type": "cancel", "id": job_id, "at": time.time()},
                         durable=True)
            self._log_state(record, cancel_requested=True)
            return record

    # ------------------------------------------------------------------
    # Progress events
    # ------------------------------------------------------------------

    def record_progress(self, job_id: str, generation: int,
                        summary: dict) -> dict:
        """Append one per-generation progress event (journaled)."""
        with self._lock:
            record = self.get(job_id)
            event = dict(summary)
            event["generation"] = int(generation)
            event["seq"] = len(self._events[job_id]) + 1
            event["at"] = time.time()
            self._events[job_id].append(event)
            record.generations_done = max(record.generations_done,
                                          int(generation) + 1)
            self._append(dict(event, type="progress", id=job_id))
            return event

    def events(self, job_id: str, since: int = 0) -> List[dict]:
        """Progress events with ``seq > since``, oldest first."""
        with self._lock:
            self.get(job_id)  # raise JobNotFoundError for unknown ids
            return [event for event in self._events[job_id]
                    if event["seq"] > since]

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def _checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, CHECKPOINT_DIR, f"{job_id}.json")

    def write_checkpoint(self, job_id: str, payload: dict) -> str:
        """Atomically persist *payload* as the job's latest checkpoint."""
        path = self._checkpoint_path(job_id)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(_dumps(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        self.metrics.increment("checkpoints")
        if self.logger.enabled:
            self.logger.event("job_checkpoint", id=job_id,
                              generation_offset=payload.get("generation_offset"))
        return path

    def load_checkpoint(self, job_id: str) -> Optional[dict]:
        """The job's latest checkpoint payload, or ``None``."""
        path = self._checkpoint_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as error:
            # os.replace is atomic, so a checkpoint is either absent or
            # whole; a parse failure means outside interference.
            raise JobError(f"corrupt checkpoint {path}: {error}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the journal handle (idempotent)."""
        with self._lock:
            if not self._journal.closed:
                self._journal.flush()
                self._journal.close()
