"""Exception hierarchy for the :mod:`repro` library.

Every error raised on purpose by the library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Raised when an airfoil or curve geometry is invalid.

    Examples include open contours where a closed one is required,
    self-intersecting outlines, or degenerate (zero-length) panels.
    """


class LinalgError(ReproError):
    """Raised when a linear-algebra routine cannot complete.

    The most common cause is a (numerically) singular matrix encountered
    during LU factorization.
    """


class PanelMethodError(ReproError):
    """Raised when the panel-method solver is configured inconsistently."""


class ViscousError(ReproError):
    """Raised when a boundary-layer computation fails.

    Laminar separation ahead of any usable transition point, or inputs
    that are not physically meaningful (non-positive Reynolds number),
    raise this error.
    """


class OptimizationError(ReproError):
    """Raised when the genetic optimizer is misconfigured."""


class HardwareModelError(ReproError):
    """Raised for invalid device specifications or kernel requests."""


class ScheduleError(ReproError):
    """Raised when a pipeline schedule is inconsistent.

    Examples: cyclic task dependencies, tasks referencing unknown
    resources, or a slice plan that does not cover the full batch.
    """


class CalibrationError(ReproError):
    """Raised when calibration data is missing or self-inconsistent."""


class TuneError(ReproError):
    """Raised by the online autotuner for unusable inputs.

    Examples: a metrics window with too little traffic to fit stage
    throughputs, a malformed candidate grid, or an autotune mode string
    that is neither ``off``, ``advise``, nor ``apply``.
    """


class ServeError(ReproError):
    """Raised by the serving subsystem for invalid requests or misuse.

    Examples: a malformed analyze payload, submitting to a service that
    is shutting down, or a client-side transport failure.
    """


class OverloadedError(ServeError):
    """Raised when the service sheds load (admission queue is full).

    Clients should back off and retry; the HTTP front end maps this to
    a ``503 Service Unavailable`` response.
    """


class ExecutionBackendError(ServeError):
    """Raised when a process-pool execution backend loses a shard.

    A crashed (or killed) worker process, or a shard that exceeds the
    backend's shard timeout, fails *only the requests of that shard*
    with this error — batchmates handled by sibling workers are
    unaffected, and the pool re-forms for the next micro-batch.
    """


class DeadlineExceededError(ServeError):
    """Raised when a request's deadline expires before it is evaluated.

    Expired work is shed at batch-collection time so it never occupies
    a solve slot; the HTTP front end maps this to a ``504 Gateway
    Timeout`` response.  Retrying is pointless unless the caller also
    extends the deadline.
    """


class ClusterError(ServeError):
    """Raised by the cluster router for invalid topology or misuse.

    Examples: a malformed or duplicate replica URL, routing with no
    healthy replica left, or placing a job when no replica has the
    jobs subsystem enabled.  The router CLI surfaces this as a clean
    one-line error instead of a raw socket traceback.
    """


class JobError(ServeError):
    """Raised by the jobs subsystem for invalid specs or misuse.

    Examples: a malformed job spec, submitting to a server without a
    jobs directory, or a corrupt (non-final) journal line.
    """


class JobNotFoundError(JobError):
    """Raised when a job ID does not exist in the jobs store.

    The HTTP front end maps this to a ``404 Not Found`` response.
    """


class ExperimentError(ReproError):
    """Raised when an experiment harness receives an unknown target."""
