"""Extraction of boundary-layer edge velocities from a panel solution.

The boundary-layer equations integrate along each surface from the
stagnation point to the trailing edge.  This module locates the
stagnation point (the sign change of the vortex-sheet strength near the
leading edge), splits the outline there, and hands back per-surface
arc-length / edge-velocity distributions.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ViscousError
from repro.panel.solution import PanelSolution


@dataclasses.dataclass(frozen=True)
class SurfaceDistribution:
    """Edge conditions along one surface, stagnation point to trailing edge.

    Attributes
    ----------
    name:
        ``"upper"`` or ``"lower"``.
    s:
        Arc length from the stagnation point at each station
        (monotonically increasing, starts near zero).
    velocity:
        Edge velocity ``U(s)`` (positive, in the flow direction).
    panel_indices:
        The original panel index of each station, for mapping results
        back onto the airfoil.
    """

    name: str
    s: np.ndarray
    velocity: np.ndarray
    panel_indices: np.ndarray

    def __post_init__(self) -> None:
        if len(self.s) != len(self.velocity) or len(self.s) != len(self.panel_indices):
            raise ViscousError("surface arrays must have equal length")
        if len(self.s) < 3:
            raise ViscousError(f"surface {self.name!r} has too few stations")
        if np.any(np.diff(self.s) <= 0.0):
            raise ViscousError(f"arc length on {self.name!r} must increase strictly")

    @property
    def trailing_edge_velocity(self) -> float:
        """Edge velocity at the last (trailing-edge) station."""
        return float(self.velocity[-1])

    @property
    def length(self) -> float:
        """Arc length of the surface run."""
        return float(self.s[-1])


def stagnation_panel_index(solution: PanelSolution) -> int:
    """Index of the last panel before the stagnation point.

    The vortex-sheet strength changes sign exactly once on a simply
    attached lifting solution; the crossing nearest the leading edge is
    the stagnation point.  Raises :class:`ViscousError` when no crossing
    exists (e.g. a zero-circulation cylinder at 90 degrees symmetry).
    """
    gamma = np.asarray(solution.gamma, dtype=np.float64)
    sign = np.sign(gamma)
    crossings = np.nonzero(np.diff(sign) != 0)[0]
    if len(crossings) == 0:
        raise ViscousError("no stagnation point found: gamma never changes sign")
    le = solution.airfoil.leading_edge_index
    return int(crossings[np.argmin(np.abs(crossings - le))])


def surface_distributions(solution: PanelSolution) -> tuple:
    """Split a solution into (upper, lower) edge-velocity distributions.

    Station values live at the panel control points; the arc length is
    measured from the stagnation point along the surface.  Stations
    where the edge velocity is not strictly positive (inside the
    stagnation region) are dropped.
    """
    airfoil = solution.airfoil
    speeds = np.abs(np.asarray(solution.gamma, dtype=np.float64))
    lengths = airfoil.panel_lengths
    k = stagnation_panel_index(solution)

    # Upper surface: traversal runs TE -> LE, flow runs LE -> TE, so the
    # flow direction walks panel indices k, k-1, ..., 0.
    upper_idx = np.arange(k, -1, -1)
    upper = _build_surface("upper", upper_idx, speeds, lengths)

    # Lower surface: flow direction and traversal agree: k+1 .. n-1.
    lower_idx = np.arange(k + 1, airfoil.n_panels)
    lower = _build_surface("lower", lower_idx, speeds, lengths)
    return upper, lower


def _build_surface(name: str, indices: np.ndarray, speeds: np.ndarray,
                   lengths: np.ndarray) -> SurfaceDistribution:
    if len(indices) < 3:
        raise ViscousError(f"too few panels on the {name} surface")
    # Arc length to each control point: half the first panel, then full
    # panel steps between consecutive midpoints.
    step = 0.5 * (lengths[indices[:-1]] + lengths[indices[1:]])
    s = np.empty(len(indices))
    s[0] = 0.5 * lengths[indices[0]]
    s[1:] = s[0] + np.cumsum(step)
    velocity = speeds[indices]
    keep = velocity > 1e-12
    if np.count_nonzero(keep) < 3:
        raise ViscousError(f"edge velocity vanished along the {name} surface")
    return SurfaceDistribution(
        name=name,
        s=s[keep],
        velocity=velocity[keep],
        panel_indices=np.asarray(indices)[keep],
    )
