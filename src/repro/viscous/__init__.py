"""Viscous (boundary-layer) correction of the inviscid panel solution.

The paper's drag prediction: Thwaites' laminar method with Michel
transition and the Squire–Young drag formula, plus Head's turbulent
entrainment method as the documented extension.
"""

from repro.viscous.correlations import (
    LAMBDA_SEPARATION,
    head_entrainment,
    head_h1,
    head_h_from_h1,
    ludwieg_tillmann_cf,
    michel_transition_re_theta,
    thwaites_h,
    thwaites_l,
)
from repro.viscous.drag import (
    SurfaceAnalysis,
    ViscousAnalysis,
    analyze_viscous,
    squire_young_drag,
)
from repro.viscous.falkner_skan import (
    BLASIUS_WALL_SHEAR,
    SEPARATION_M,
    FalknerSkanSolution,
    blasius,
    solve_falkner_skan,
    stagnation,
)
from repro.viscous.edge_velocity import (
    SurfaceDistribution,
    stagnation_panel_index,
    surface_distributions,
)
from repro.viscous.head import TurbulentResult, solve_head
from repro.viscous.polar import Polar, PolarPoint, compute_polar
from repro.viscous.polar_io import polar_to_string, read_polar, write_polar
from repro.viscous.thwaites import LaminarResult, solve_thwaites

__all__ = [
    "BLASIUS_WALL_SHEAR",
    "FalknerSkanSolution",
    "LAMBDA_SEPARATION",
    "LaminarResult",
    "SEPARATION_M",
    "blasius",
    "solve_falkner_skan",
    "stagnation",
    "Polar",
    "PolarPoint",
    "SurfaceAnalysis",
    "SurfaceDistribution",
    "TurbulentResult",
    "ViscousAnalysis",
    "analyze_viscous",
    "compute_polar",
    "head_entrainment",
    "head_h1",
    "head_h_from_h1",
    "ludwieg_tillmann_cf",
    "michel_transition_re_theta",
    "polar_to_string",
    "read_polar",
    "solve_head",
    "solve_thwaites",
    "squire_young_drag",
    "stagnation_panel_index",
    "surface_distributions",
    "thwaites_h",
    "thwaites_l",
    "write_polar",
]
