"""Head's entrainment method for the turbulent boundary layer.

Downstream of transition the laminar correlations no longer hold; the
paper notes that "more sophisticated schemes have been developed" — this
module implements the classic one (Head 1958, in the Cebeci–Bradshaw
formulation) as the library's optional turbulent extension:

    d theta / ds          = cf/2 - (H + 2) (theta / U) dU/ds
    d (U theta H1) / ds   = U F(H1)

with ``H1(H)`` and the entrainment function ``F`` from
:mod:`repro.viscous.correlations` and Ludwieg–Tillmann skin friction.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import ViscousError
from repro.viscous.correlations import (
    head_entrainment,
    head_h1,
    head_h_from_h1,
    ludwieg_tillmann_cf,
)
from repro.viscous.edge_velocity import SurfaceDistribution

#: Shape factor beyond which the turbulent layer is considered separated.
H_SEPARATION = 2.4


@dataclasses.dataclass(frozen=True)
class TurbulentResult:
    """Turbulent boundary-layer state from transition to the trailing edge."""

    surface: SurfaceDistribution
    start_index: int  # station where the turbulent integration began
    theta: np.ndarray  # momentum thickness on stations start_index..end
    shape_factor: np.ndarray
    cf: np.ndarray
    separation_index: Optional[int]  # station index (absolute) where H > 2.4

    @property
    def separated(self) -> bool:
        """True when the turbulent layer separated before the trailing edge."""
        return self.separation_index is not None

    @property
    def trailing_theta(self) -> float:
        """Momentum thickness at the trailing edge."""
        return float(self.theta[-1])

    @property
    def trailing_shape_factor(self) -> float:
        """Shape factor at the trailing edge."""
        return float(self.shape_factor[-1])


def solve_head(surface: SurfaceDistribution, nu: float, *, start_index: int,
               theta_start: float, h_start: float = 1.4) -> TurbulentResult:
    """Integrate Head's method from a station to the trailing edge.

    Parameters
    ----------
    surface:
        Edge conditions along the surface.
    nu:
        Kinematic viscosity.
    start_index:
        Station at which the turbulent layer starts (transition point).
    theta_start:
        Momentum thickness handed over from the laminar solution
        (momentum thickness is continuous across transition).
    h_start:
        Initial turbulent shape factor (a freshly transitioned layer is
        close to 1.4).
    """
    if nu <= 0.0:
        raise ViscousError(f"kinematic viscosity must be positive, got {nu}")
    if theta_start <= 0.0:
        raise ViscousError(f"theta at transition must be positive, got {theta_start}")
    if not 0 <= start_index < len(surface.s) - 1:
        raise ViscousError(
            f"start_index {start_index} out of range for {len(surface.s)} stations"
        )
    s = surface.s
    u = surface.velocity
    du_ds = np.gradient(u, s)

    n_stations = len(s) - start_index
    theta = np.empty(n_stations)
    shape = np.empty(n_stations)
    cf_arr = np.empty(n_stations)
    theta[0] = theta_start
    shape[0] = h_start
    separation_index: Optional[int] = None

    def rates(si: float, th: float, h: float) -> tuple:
        """Right-hand sides d(theta)/ds and d(U theta H1)/ds at arclength si."""
        ui = np.interp(si, s, u)
        dui = np.interp(si, s, du_ds)
        re_theta = max(ui * th / nu, 1.0)
        cf = float(ludwieg_tillmann_cf(h, re_theta))
        h1 = float(head_h1(h))
        d_theta = 0.5 * cf - (h + 2.0) * th / ui * dui
        d_uth1 = ui * float(head_entrainment(h1))
        return d_theta, d_uth1, cf, h1

    for j in range(n_stations - 1):
        i = start_index + j
        ds = s[i + 1] - s[i]
        th, h = theta[j], shape[j]
        d_theta1, d_uth1_1, cf_here, h1 = rates(s[i], th, h)
        cf_arr[j] = cf_here
        uth1 = u[i] * th * h1
        # Heun (RK2) step on (theta, U theta H1).
        th_pred = max(th + ds * d_theta1, 1e-12)
        uth1_pred = max(uth1 + ds * d_uth1_1, 1e-12)
        h1_pred = uth1_pred / (u[i + 1] * th_pred)
        h_pred = float(head_h_from_h1(h1_pred))
        d_theta2, d_uth1_2, _, _ = rates(s[i + 1], th_pred, h_pred)
        th_new = max(th + 0.5 * ds * (d_theta1 + d_theta2), 1e-12)
        uth1_new = max(uth1 + 0.5 * ds * (d_uth1_1 + d_uth1_2), 1e-12)
        h1_new = uth1_new / (u[i + 1] * th_new)
        h_new = float(head_h_from_h1(h1_new))
        theta[j + 1] = th_new
        shape[j + 1] = h_new
        if separation_index is None and h_new > H_SEPARATION:
            separation_index = i + 1
    re_theta_end = max(u[-1] * theta[-1] / nu, 1.0)
    cf_arr[-1] = float(ludwieg_tillmann_cf(shape[-1], re_theta_end))

    return TurbulentResult(
        surface=surface,
        start_index=start_index,
        theta=theta,
        shape_factor=shape,
        cf=cf_arr,
        separation_index=separation_index,
    )
