"""Exact Falkner–Skan similarity solutions of the laminar boundary layer.

For wedge flows with edge velocity ``U(x) = C x^m`` the boundary-layer
equations collapse to the ordinary differential equation

    f''' + (m + 1)/2 * f f'' + m (1 - f'^2) = 0,
    f(0) = f'(0) = 0,  f'(inf) = 1,

whose solutions are exact.  Thwaites' method is a one-parameter *fit*
to exactly this family, so integrating the ODE (RK4 + shooting on
``f''(0)``) gives the library an independent, from-first-principles
check of the whole laminar stack: momentum thickness, shape factor, and
skin friction for any pressure-gradient parameter, including the
separation profile at ``m ~ -0.0904``.
"""

from __future__ import annotations

import dataclasses
import functools
import math

import numpy as np

from repro.errors import ViscousError

#: The classical Blasius wall shear, f''(0) at m = 0.
BLASIUS_WALL_SHEAR = 0.33206

#: Wedge parameter at incipient separation (f''(0) = 0).
SEPARATION_M = -0.0904


def _integrate(m: float, wall_shear: float, *, eta_max: float,
               n_steps: int) -> np.ndarray:
    """RK4-integrate the Falkner–Skan ODE for a trial ``f''(0)``.

    State vector ``(f, f', f'')``; returns the trajectory with shape
    ``(n_steps + 1, 3)``.
    """
    def rhs(state: np.ndarray) -> np.ndarray:
        f, fp, fpp = state
        return np.array([
            fp,
            fpp,
            -(0.5 * (m + 1.0)) * f * fpp - m * (1.0 - fp * fp),
        ])

    h = eta_max / n_steps
    trajectory = np.empty((n_steps + 1, 3))
    state = np.array([0.0, 0.0, wall_shear])
    trajectory[0] = state
    for index in range(n_steps):
        k1 = rhs(state)
        k2 = rhs(state + 0.5 * h * k1)
        k3 = rhs(state + 0.5 * h * k2)
        k4 = rhs(state + h * k3)
        state = state + h / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
        if not np.all(np.isfinite(state)) or abs(state[1]) > 1e3:
            # Diverging trial: freeze the remaining trajectory at a large
            # velocity of the divergence's sign so the shooting sees a
            # clean signed overshoot (too-small wall shear diverges
            # negative, too-large positive).
            sign = np.sign(state[1]) if np.isfinite(state[1]) else 1.0
            trajectory[index + 1:] = [0.0, sign * 1e3 or 1e3, 0.0]
            return trajectory
        trajectory[index + 1] = state
    return trajectory


@dataclasses.dataclass(frozen=True)
class FalknerSkanSolution:
    """One similarity profile and its integral parameters.

    The similarity variable is ``eta = y sqrt(U / (nu x))``; integral
    quantities convert to physical ones as

        theta  = theta_hat  * sqrt(nu x / U)
        delta* = dstar_hat  * sqrt(nu x / U)
        cf     = 2 f''(0) / sqrt(Re_x)
        lambda = theta_hat^2 * m      (Thwaites' parameter)
    """

    m: float
    wall_shear: float  # f''(0)
    eta: np.ndarray
    f_prime: np.ndarray  # velocity profile u/U

    @property
    def displacement_thickness(self) -> float:
        """``delta*_hat = int (1 - f') d eta``."""
        return float(np.trapezoid(1.0 - self.f_prime, self.eta))

    @property
    def momentum_thickness(self) -> float:
        """``theta_hat = int f'(1 - f') d eta``."""
        return float(np.trapezoid(self.f_prime * (1.0 - self.f_prime), self.eta))

    @property
    def shape_factor(self) -> float:
        """``H = delta* / theta``."""
        return self.displacement_thickness / self.momentum_thickness

    @property
    def thwaites_lambda(self) -> float:
        """Thwaites' pressure-gradient parameter of this profile."""
        return self.momentum_thickness**2 * self.m

    @property
    def thwaites_l(self) -> float:
        """The exact shear correlate ``l = theta_hat * f''(0)``."""
        return self.momentum_thickness * self.wall_shear

    def cf(self, re_x: float) -> float:
        """Skin-friction coefficient at streamwise Reynolds ``Re_x``."""
        if re_x <= 0.0:
            raise ViscousError(f"Re_x must be positive, got {re_x}")
        return 2.0 * self.wall_shear / math.sqrt(re_x)


def _bisect_wall_shear(m: float, eta_max: float, n_steps: int,
                       tolerance: float) -> float:
    """Bracket-and-bisect shooting (robust for m <= ~0.05)."""
    def overshoot(wall_shear: float) -> float:
        return _integrate(m, wall_shear, eta_max=eta_max,
                          n_steps=n_steps)[-1, 1] - 1.0

    low, high = 0.0, 2.5
    f_low = overshoot(low)
    if f_low * overshoot(high) > 0.0:
        raise ViscousError(f"shooting bracket failed for m = {m}")
    for _ in range(200):
        mid = 0.5 * (low + high)
        f_mid = overshoot(mid)
        if abs(f_mid) < tolerance or high - low < tolerance:
            break
        if f_low * f_mid <= 0.0:
            high = mid
        else:
            low, f_low = mid, f_mid
    return 0.5 * (low + high)


def _secant_wall_shear(m: float, guess: float, eta_max: float, n_steps: int,
                       tolerance: float) -> float:
    """Local secant refinement of ``f''(0)`` from a continuation guess.

    Favourable-gradient profiles (m > 0) have an exponentially unstable
    far field, so global bracketing fails; near the root the shooting
    residual is smooth and a secant iteration converges in a few steps.
    """
    def residual(wall_shear: float) -> float:
        return _integrate(m, wall_shear, eta_max=eta_max,
                          n_steps=n_steps)[-1, 1] - 1.0

    ws0, ws1 = guess, guess * 1.02 + 1e-4
    r0, r1 = residual(ws0), residual(ws1)
    for _ in range(80):
        if abs(r1) < tolerance:
            return ws1
        denominator = r1 - r0
        if denominator == 0.0:
            break
        step = r1 * (ws1 - ws0) / denominator
        step = max(min(step, 0.2), -0.2)  # damp wild secant jumps
        ws0, r0 = ws1, r1
        ws1 = ws1 - step
        r1 = residual(ws1)
    if abs(r1) > 1e-6:
        raise ViscousError(f"secant shooting failed to converge for m = {m}")
    return ws1


@functools.lru_cache(maxsize=64)
def solve_falkner_skan(m: float, *, n_steps: int = 1600,
                       tolerance: float = 1e-9) -> FalknerSkanSolution:
    """Solve the Falkner–Skan equation for wedge parameter *m*.

    Shooting on ``f''(0)`` to satisfy ``f'(inf) = 1``: bisection for
    adverse/flat gradients, continuation-plus-secant for accelerated
    flows whose far field is too unstable to bracket globally.  Valid
    for attached flows, ``m > SEPARATION_M`` (raises otherwise: past
    separation the similarity solution is not unique).

    Results are memoized (the solution is deterministic and immutable).
    """
    if m <= SEPARATION_M:
        raise ViscousError(
            f"no attached similarity solution for m = {m} <= {SEPARATION_M}"
        )
    if m <= 0.05:
        eta_max = 12.0
        wall_shear = _bisect_wall_shear(m, eta_max, n_steps, tolerance)
    else:
        # Continuation from the flat plate in steps of <= 0.1 in m; the
        # boundary layer thins as m grows, so eta_max = 6 suffices and
        # keeps the unstable mode under control.
        eta_max = 6.0
        wall_shear = _bisect_wall_shear(0.0, 12.0, n_steps, tolerance)
        steps = max(1, int(math.ceil(m / 0.1)))
        for index in range(1, steps + 1):
            m_here = m * index / steps
            wall_shear = _secant_wall_shear(m_here, wall_shear, eta_max,
                                            n_steps, tolerance)
    trajectory = _integrate(m, wall_shear, eta_max=eta_max, n_steps=n_steps)
    eta = np.linspace(0.0, eta_max, n_steps + 1)
    return FalknerSkanSolution(
        m=m,
        wall_shear=wall_shear,
        eta=eta,
        f_prime=np.minimum(trajectory[:, 1], 1.0),
    )


def blasius() -> FalknerSkanSolution:
    """The flat-plate (m = 0) profile."""
    return solve_falkner_skan(0.0)


def stagnation() -> FalknerSkanSolution:
    """The plane stagnation-point (m = 1, Hiemenz) profile."""
    return solve_falkner_skan(1.0)
