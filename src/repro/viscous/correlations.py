"""Boundary-layer closure correlations.

Thwaites' single-parameter laminar correlations (in the Cebeci–
Bradshaw curve-fit form), the Ludwieg–Tillmann turbulent skin-friction
law, and the shape-factor relations used by Head's entrainment method.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ViscousError

#: Thwaites' pressure-gradient parameter at laminar separation.
LAMBDA_SEPARATION = -0.09

#: Validity range of the Thwaites correlations.
LAMBDA_MAX = 0.25


def thwaites_l(lam):
    """Thwaites' shear correlation ``l(lambda)``.

    ``cf = 2 nu l / (U theta)``; Cebeci–Bradshaw two-branch fit.
    """
    lam = np.asarray(lam, dtype=np.float64)
    clipped = np.clip(lam, LAMBDA_SEPARATION, LAMBDA_MAX)
    positive = 0.22 + 1.57 * clipped - 1.8 * clipped**2
    negative = 0.22 + 1.402 * clipped + 0.018 * clipped / (0.107 + clipped)
    return np.where(clipped >= 0.0, positive, negative)


def thwaites_h(lam):
    """Thwaites' shape factor ``H(lambda)`` (Cebeci–Bradshaw fit)."""
    lam = np.asarray(lam, dtype=np.float64)
    clipped = np.clip(lam, LAMBDA_SEPARATION, LAMBDA_MAX)
    positive = 2.61 - 3.75 * clipped + 5.24 * clipped**2
    negative = 2.088 + 0.0731 / (0.14 + clipped)
    return np.where(clipped >= 0.0, positive, negative)


def ludwieg_tillmann_cf(h, re_theta):
    """Turbulent skin-friction coefficient (Ludwieg–Tillmann).

    ``cf = 0.246 * 10^(-0.678 H) * Re_theta^(-0.268)``
    """
    h = np.asarray(h, dtype=np.float64)
    re_theta = np.asarray(re_theta, dtype=np.float64)
    if np.any(re_theta <= 0.0):
        raise ViscousError("Re_theta must be positive for Ludwieg-Tillmann")
    return 0.246 * 10.0 ** (-0.678 * h) * re_theta ** (-0.268)


def head_h1(h):
    """Head's mass-flow shape factor ``H1(H)`` (Cebeci–Bradshaw fit)."""
    h = np.asarray(h, dtype=np.float64)
    low = 3.3 + 0.8234 * np.maximum(h - 1.1, 1e-6) ** (-1.287)
    high = 3.3 + 1.5501 * np.maximum(h - 0.6778, 1e-6) ** (-3.064)
    return np.where(h <= 1.6, low, high)


def head_h_from_h1(h1):
    """Invert :func:`head_h1` (the fit's own closed-form inverse)."""
    h1 = np.asarray(h1, dtype=np.float64)
    floor = 3.32  # below this the fit has no laminar-plausible inverse
    h1 = np.maximum(h1, floor)
    low = 1.1 + (0.8234 / (h1 - 3.3)) ** (1.0 / 1.287)  # branch H <= 1.6
    high = 0.6778 + (1.5501 / (h1 - 3.3)) ** (1.0 / 3.064)  # branch H > 1.6
    # The branches meet at H = 1.6 <-> H1 ~ 3.3 + 0.8234*0.5^-1.287;
    # pick by which branch's H lands in its own validity region.
    h1_at_16 = 3.3 + 0.8234 * 0.5 ** (-1.287)
    return np.where(h1 >= h1_at_16, low, high)


def head_entrainment(h1):
    """Head's entrainment function ``F(H1) = 0.0306 (H1 - 3)^-0.6169``."""
    h1 = np.asarray(h1, dtype=np.float64)
    return 0.0306 * np.maximum(h1 - 3.0, 1e-3) ** (-0.6169)


def michel_transition_re_theta(re_s):
    """Michel's criterion: critical ``Re_theta`` at surface Reynolds ``Re_s``.

    Transition is predicted where the running ``Re_theta`` first exceeds
    ``1.174 (1 + 22400 / Re_s) Re_s^0.46``.
    """
    re_s = np.asarray(re_s, dtype=np.float64)
    safe = np.maximum(re_s, 1.0)
    return 1.174 * (1.0 + 22400.0 / safe) * safe**0.46
