"""Drag polars: lift/drag/moment swept over angle of attack.

A convenience driver combining the panel solver and the viscous
correction; used by the examples and by Figure-2-style reporting.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ViscousError
from repro.geometry.airfoil import Airfoil
from repro.panel.freestream import Freestream
from repro.panel.solver import PanelSolver
from repro.viscous.drag import ViscousAnalysis, analyze_viscous


@dataclasses.dataclass(frozen=True)
class PolarPoint:
    """One row of a drag polar."""

    alpha_degrees: float
    cl: float
    cd: Optional[float]
    cm: float
    separated: bool

    @property
    def lift_to_drag(self) -> Optional[float]:
        """``cl / cd`` or ``None`` when drag is unavailable."""
        if self.cd is None or self.cd <= 0.0:
            return None
        return self.cl / self.cd


@dataclasses.dataclass(frozen=True)
class Polar:
    """A computed drag polar for one airfoil and Reynolds number."""

    airfoil_name: str
    reynolds: float
    points: List[PolarPoint]

    def alphas(self) -> np.ndarray:
        """Angles of attack of the rows, in degrees."""
        return np.array([point.alpha_degrees for point in self.points])

    def lift_coefficients(self) -> np.ndarray:
        """Lift coefficients of the rows."""
        return np.array([point.cl for point in self.points])

    def drag_coefficients(self) -> np.ndarray:
        """Drag coefficients (NaN where unavailable)."""
        return np.array([
            point.cd if point.cd is not None else np.nan for point in self.points
        ])

    def best_lift_to_drag(self) -> PolarPoint:
        """The row with the highest ``cl / cd``."""
        usable = [point for point in self.points if point.lift_to_drag is not None]
        if not usable:
            raise ViscousError("polar has no rows with a valid drag value")
        return max(usable, key=lambda point: point.lift_to_drag)

    def lift_slope_per_radian(self) -> float:
        """Least-squares ``d cl / d alpha`` in 1/radian (thin airfoil: 2 pi)."""
        alphas = np.radians(self.alphas())
        cls = self.lift_coefficients()
        slope, _ = np.polyfit(alphas, cls, 1)
        return float(slope)


def compute_polar(airfoil: Airfoil, alphas_degrees: Sequence[float], *,
                  reynolds: float = 1e6, solver: PanelSolver = None,
                  use_head: bool = True) -> Polar:
    """Sweep angle of attack and assemble a polar.

    Rows where the viscous correction fails (e.g. massive separation)
    keep their inviscid lift with ``cd = None`` rather than aborting the
    sweep.
    """
    solver = solver or PanelSolver()
    points: List[PolarPoint] = []
    for alpha in alphas_degrees:
        solution = solver.solve(airfoil, Freestream.from_degrees(alpha))
        cl = solution.lift_coefficient
        cm = solution.moment_coefficient()
        cd: Optional[float] = None
        separated = False
        try:
            viscous: ViscousAnalysis = analyze_viscous(
                solution, reynolds, use_head=use_head
            )
            cd = viscous.drag_coefficient
            separated = viscous.separated
        except ViscousError:
            separated = True
        points.append(PolarPoint(
            alpha_degrees=float(alpha), cl=cl, cd=cd, cm=cm, separated=separated,
        ))
    return Polar(airfoil_name=airfoil.name, reynolds=reynolds, points=points)
