"""Drag prediction from boundary-layer solutions (Squire–Young) and the
full viscous post-processing driver.

The inviscid panel solution predicts zero drag (d'Alembert); the paper
corrects it with Thwaites' method.  The driver here runs, per surface:

1. Thwaites' laminar integration from the stagnation point,
2. Michel's transition check (optionally Head's turbulent method past
   transition — the library's extension beyond the paper),
3. the Squire–Young formula at the trailing edge,

and sums the two surfaces into a profile-drag coefficient.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import ViscousError
from repro.panel.solution import PanelSolution
from repro.viscous.edge_velocity import SurfaceDistribution, surface_distributions
from repro.viscous.head import TurbulentResult, solve_head
from repro.viscous.thwaites import LaminarResult, solve_thwaites


def squire_young_drag(theta_te: float, u_te: float, h_te: float, *,
                      v_inf: float = 1.0, chord: float = 1.0) -> float:
    """Squire–Young drag of one surface.

    ``cd = 2 theta_TE / c * (U_TE / V_inf) ** ((H_TE + 5) / 2)``

    Extrapolates the trailing-edge momentum thickness to the far wake.
    """
    if theta_te < 0.0:
        raise ViscousError(f"momentum thickness cannot be negative: {theta_te}")
    if u_te <= 0.0 or v_inf <= 0.0 or chord <= 0.0:
        raise ViscousError("velocities and chord must be positive")
    return 2.0 * theta_te / chord * (u_te / v_inf) ** (0.5 * (h_te + 5.0))


@dataclasses.dataclass(frozen=True)
class SurfaceAnalysis:
    """Boundary-layer outcome for one surface."""

    laminar: LaminarResult
    turbulent: Optional[TurbulentResult]
    drag_coefficient: float
    separated: bool

    @property
    def surface(self) -> SurfaceDistribution:
        """The surface the analysis ran along."""
        return self.laminar.surface

    @property
    def transition_s(self) -> Optional[float]:
        """Arc length of the transition point, if transition occurred."""
        index = self.laminar.transition_index
        if index is None or self.turbulent is None:
            return None
        return float(self.laminar.surface.s[index])


@dataclasses.dataclass(frozen=True)
class ViscousAnalysis:
    """Viscous correction of one panel solution."""

    solution: PanelSolution
    reynolds: float
    upper: SurfaceAnalysis
    lower: SurfaceAnalysis

    @property
    def drag_coefficient(self) -> float:
        """Total profile-drag coefficient (both surfaces)."""
        return self.upper.drag_coefficient + self.lower.drag_coefficient

    @property
    def lift_coefficient(self) -> float:
        """Inviscid lift (the viscous correction leaves lift unchanged)."""
        return self.solution.lift_coefficient

    @property
    def lift_to_drag(self) -> float:
        """The paper's fitness quantity, ``cl / cd``."""
        cd = self.drag_coefficient
        if cd <= 0.0:
            raise ViscousError(f"non-positive drag coefficient: {cd}")
        return self.lift_coefficient / cd

    @property
    def separated(self) -> bool:
        """True when either surface separated before the trailing edge."""
        return self.upper.separated or self.lower.separated


def _analyze_surface(surface: SurfaceDistribution, nu: float, *, v_inf: float,
                     chord: float, use_head: bool) -> SurfaceAnalysis:
    laminar = solve_thwaites(surface, nu)
    turbulent: Optional[TurbulentResult] = None
    last = len(surface.s) - 1

    transition = laminar.transition_index
    if laminar.separated or (transition is None and laminar.separation_index is not None):
        # Laminar separation without transition: treat as separated and
        # charge the surface with its state at the separation point.
        index = laminar.separation_index
        _, u_sep, theta_sep, h_sep = laminar.state_at(index)
        drag = squire_young_drag(theta_sep, u_sep, h_sep, v_inf=v_inf, chord=chord)
        return SurfaceAnalysis(laminar=laminar, turbulent=None,
                               drag_coefficient=drag, separated=True)

    if transition is not None and use_head and transition < last:
        _, _, theta_tr, _ = laminar.state_at(transition)
        turbulent = solve_head(surface, nu, start_index=transition,
                               theta_start=theta_tr)
        theta_te = turbulent.trailing_theta
        h_te = turbulent.trailing_shape_factor
        drag = squire_young_drag(theta_te, surface.trailing_edge_velocity, h_te,
                                 v_inf=v_inf, chord=chord)
        return SurfaceAnalysis(laminar=laminar, turbulent=turbulent,
                               drag_coefficient=drag,
                               separated=turbulent.separated)

    # Fully laminar to the trailing edge (the paper's plain Thwaites path).
    _, u_te, theta_te, h_te = laminar.state_at(last)
    drag = squire_young_drag(theta_te, u_te, h_te, v_inf=v_inf, chord=chord)
    return SurfaceAnalysis(laminar=laminar, turbulent=None,
                           drag_coefficient=drag, separated=False)


def analyze_viscous(solution: PanelSolution, reynolds: float, *,
                    use_head: bool = True) -> ViscousAnalysis:
    """Run the viscous correction on a panel solution.

    Parameters
    ----------
    solution:
        A solved (lifting) panel problem.
    reynolds:
        Chord Reynolds number ``V_inf c / nu``.
    use_head:
        Continue with Head's turbulent method past Michel transition.
        With ``False`` the prediction is the paper's plain Thwaites
        correction (laminar to the trailing edge unless separated).
    """
    if reynolds <= 0.0:
        raise ViscousError(f"Reynolds number must be positive, got {reynolds}")
    chord = solution.airfoil.chord
    v_inf = solution.freestream.speed
    nu = v_inf * chord / reynolds
    upper_surface, lower_surface = surface_distributions(solution)
    upper = _analyze_surface(upper_surface, nu, v_inf=v_inf, chord=chord,
                             use_head=use_head)
    lower = _analyze_surface(lower_surface, nu, v_inf=v_inf, chord=chord,
                             use_head=use_head)
    return ViscousAnalysis(solution=solution, reynolds=reynolds,
                           upper=upper, lower=lower)
