"""Thwaites' integral method for the laminar boundary layer.

Thwaites' observation is that the momentum-integral equation is well
approximated by the quadrature

    theta^2(s) = 0.45 nu / U^6(s) * integral_0^s U^5(s') ds'

after which the local pressure-gradient parameter
``lambda = theta^2 / nu * dU/ds`` determines the shape factor and skin
friction through single-parameter correlations.  This is the paper's
viscosity correction (its Section 2 cites Thwaites explicitly).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import ViscousError
from repro.viscous.correlations import (
    LAMBDA_SEPARATION,
    michel_transition_re_theta,
    thwaites_h,
    thwaites_l,
)
from repro.viscous.edge_velocity import SurfaceDistribution


@dataclasses.dataclass(frozen=True)
class LaminarResult:
    """Laminar boundary-layer state along one surface.

    All arrays are stations co-located with the input distribution.
    """

    surface: SurfaceDistribution
    theta: np.ndarray  # momentum thickness
    lam: np.ndarray  # Thwaites pressure-gradient parameter
    shape_factor: np.ndarray  # H
    cf: np.ndarray  # skin-friction coefficient
    re_theta: np.ndarray  # momentum-thickness Reynolds number
    separation_index: Optional[int]  # first station with lambda < -0.09
    transition_index: Optional[int]  # first station past Michel's criterion

    @property
    def separated(self) -> bool:
        """True when laminar separation occurred before any transition."""
        if self.separation_index is None:
            return False
        if self.transition_index is None:
            return True
        return self.separation_index < self.transition_index

    def state_at(self, index: int) -> tuple:
        """``(s, U, theta, H)`` at a station, for handoff to Head's method."""
        return (
            float(self.surface.s[index]),
            float(self.surface.velocity[index]),
            float(self.theta[index]),
            float(self.shape_factor[index]),
        )


def solve_thwaites(surface: SurfaceDistribution, nu: float) -> LaminarResult:
    """Integrate Thwaites' method along one surface.

    Parameters
    ----------
    surface:
        Edge conditions from the stagnation point to the trailing edge.
    nu:
        Kinematic viscosity (in units consistent with the edge
        velocities and arc length, i.e. ``1 / Re`` for unit chord and
        unit free stream).
    """
    if nu <= 0.0:
        raise ViscousError(f"kinematic viscosity must be positive, got {nu}")
    s = surface.s
    u = surface.velocity

    # Trapezoidal running integral of U^5.
    u5 = u**5
    integral = np.empty_like(u5)
    integral[0] = 0.5 * u5[0] * s[0]  # from the stagnation point, U ~ linear
    integral[1:] = integral[0] + np.cumsum(
        0.5 * (u5[1:] + u5[:-1]) * np.diff(s)
    )
    theta_sq = 0.45 * nu * integral / np.maximum(u, 1e-300) ** 6
    theta = np.sqrt(theta_sq)

    du_ds = np.gradient(u, s)
    lam = theta_sq * du_ds / nu
    shape_factor = thwaites_h(lam)
    shear = thwaites_l(lam)
    cf = 2.0 * nu * shear / np.maximum(u * theta, 1e-300)
    re_theta = u * theta / nu

    separation = np.nonzero(lam < LAMBDA_SEPARATION)[0]
    separation_index = int(separation[0]) if len(separation) else None

    re_s = u * s / nu
    critical = michel_transition_re_theta(re_s)
    past = np.nonzero(re_theta > critical)[0]
    transition_index = int(past[0]) if len(past) else None

    return LaminarResult(
        surface=surface,
        theta=theta,
        lam=lam,
        shape_factor=shape_factor,
        cf=cf,
        re_theta=re_theta,
        separation_index=separation_index,
        transition_index=transition_index,
    )
