"""High-level facade over the whole library.

Three entry points mirror the three things the paper does:

* :func:`analyze` — one airfoil, one flow condition, full aerodynamic
  report (the inner solver).
* :func:`optimize` — the genetic optimization of an airfoil shape
  (the outer loop).
* :func:`simulate_hybrid` — the hybrid accelerator pipeline for a
  workload on a chosen workstation configuration (the contribution).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

import numpy as np

from repro.geometry.airfoil import Airfoil
from repro.geometry.naca import naca
from repro.hardware.host import paper_workstation
from repro.optimize.fitness import FitnessEvaluator
from repro.optimize.ga import GAConfig, GeneticOptimizer
from repro.optimize.genome import GenomeLayout
from repro.optimize.history import OptimizationHistory
from repro.panel.freestream import Freestream
from repro.panel.solution import PanelSolution
from repro.panel.solver import PanelSolver
from repro.pipeline.engine import Timeline, simulate
from repro.pipeline.metrics import HybridMetrics, evaluate
from repro.pipeline.schedules import cpu_only, dual_accelerator, hybrid
from repro.pipeline.workload import Workload
from repro.precision import Precision, PrecisionLike
from repro.viscous.drag import ViscousAnalysis, analyze_viscous

AirfoilLike = Union[Airfoil, str]


def _as_airfoil(airfoil: AirfoilLike, n_panels: int) -> Airfoil:
    if isinstance(airfoil, Airfoil):
        return airfoil
    return naca(str(airfoil).replace("NACA", "").strip(), n_panels)


@dataclasses.dataclass(frozen=True)
class AirfoilAnalysis:
    """Complete aerodynamic characterization of one configuration."""

    solution: PanelSolution
    viscous: Optional[ViscousAnalysis]

    @property
    def cl(self) -> float:
        """Lift coefficient (inviscid, Kutta–Joukowski)."""
        return self.solution.lift_coefficient

    @property
    def cd(self) -> Optional[float]:
        """Profile-drag coefficient (``None`` without a viscous pass)."""
        return self.viscous.drag_coefficient if self.viscous else None

    @property
    def cm(self) -> float:
        """Quarter-chord moment coefficient."""
        return self.solution.moment_coefficient()

    @property
    def lift_to_drag(self) -> Optional[float]:
        """``cl / cd`` (``None`` without a viscous pass)."""
        if self.viscous is None:
            return None
        return self.viscous.lift_to_drag

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        foil = self.solution.airfoil
        lines = [
            f"{foil.name}: alpha = {self.solution.freestream.alpha_degrees:.2f} deg,"
            f" {foil.n_panels} panels",
            f"  cl = {self.cl:+.4f}   cm(c/4) = {self.cm:+.4f}",
        ]
        if self.viscous is not None:
            lines.append(
                f"  cd = {self.cd:.5f}   L/D = {self.lift_to_drag:.1f}"
                f"   Re = {self.viscous.reynolds:.2e}"
                + ("   (separated)" if self.viscous.separated else "")
            )
        return "\n".join(lines)


def analyze(airfoil: AirfoilLike, alpha_degrees: float = 0.0, *,
            reynolds: Optional[float] = 1e6, n_panels: int = 200,
            precision: PrecisionLike = Precision.DOUBLE,
            use_head: bool = True) -> AirfoilAnalysis:
    """Analyze an airfoil (by object or NACA designation string).

    ``reynolds=None`` skips the viscous pass (inviscid only).
    """
    foil = _as_airfoil(airfoil, n_panels)
    solver = PanelSolver(precision=Precision.parse(precision))
    solution = solver.solve(foil, Freestream.from_degrees(alpha_degrees))
    viscous = None
    if reynolds is not None:
        viscous = analyze_viscous(solution, reynolds, use_head=use_head)
    return AirfoilAnalysis(solution=solution, viscous=viscous)


def optimize(*, population_size: int = 60, generations: int = 8,
             n_panels: int = 120, reynolds: float = 5e5,
             seed: Optional[int] = None,
             layout: GenomeLayout = None) -> OptimizationHistory:
    """Run the paper's genetic airfoil optimization."""
    layout = layout or GenomeLayout()
    evaluator = FitnessEvaluator(layout=layout, n_panels=n_panels,
                                 reynolds=reynolds)
    config = GAConfig(population_size=population_size, generations=generations)
    optimizer = GeneticOptimizer(evaluator=evaluator, config=config)
    return optimizer.run(np.random.default_rng(seed))


@dataclasses.dataclass(frozen=True)
class HybridExperiment:
    """A simulated hybrid run with its baseline comparison."""

    metrics: HybridMetrics
    baseline: HybridMetrics
    timeline: Timeline

    @property
    def speedup(self) -> float:
        """Speedup over the CPU-only configuration."""
        return self.baseline.wall_time / self.metrics.wall_time


def simulate_hybrid(*, accelerator: str = "k80-half", sockets: int = 2,
                    precision: PrecisionLike = Precision.DOUBLE,
                    n_slices: int = 10, batch: int = 4000, n: int = 200,
                    distribution: float = 0.75) -> HybridExperiment:
    """Simulate one hybrid configuration against its CPU baseline.

    ``accelerator`` is one of ``"phi"``, ``"k80-half"``, ``"k80-dual"``.
    ``distribution`` only applies to the dual-GPU scheme.
    """
    precision = Precision.parse(precision)
    workload = Workload(batch=batch, n=n, precision=precision)
    workstation = paper_workstation(
        sockets=sockets, accelerator=accelerator, precision=precision
    )
    baseline_timeline = simulate(cpu_only(workload, workstation.cpu))
    baseline = evaluate(baseline_timeline)
    if accelerator == "k80-dual":
        schedule = dual_accelerator(workload, workstation, distribution, n_slices)
    else:
        schedule = hybrid(workload, workstation, n_slices)
    timeline = simulate(schedule)
    metrics = evaluate(timeline).with_baseline(baseline.wall_time)
    return HybridExperiment(metrics=metrics, baseline=baseline, timeline=timeline)
