"""High-level facade over the whole library.

Three entry points mirror the three things the paper does:

* :func:`analyze` — one airfoil, one flow condition, full aerodynamic
  report (the inner solver).
* :func:`optimize` — the genetic optimization of an airfoil shape
  (the outer loop).
* :func:`simulate_hybrid` — the hybrid accelerator pipeline for a
  workload on a chosen workstation configuration (the contribution).

The serving wire format also lives here: :class:`AnalyzeRequest`
describes one evaluation, :func:`evaluate_requests` runs a stack of
them through the batched assembly/LU path, and
:func:`serialize_analysis` / :func:`canonical_json` render the result.
The CLI's ``--json`` output and the :mod:`repro.serve` HTTP responses
share all three, so both produce byte-identical records for identical
inputs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import time
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ReproError, ServeError
from repro.geometry.airfoil import Airfoil
from repro.geometry.naca import naca
from repro.hardware.host import paper_workstation
from repro.optimize.fitness import FitnessEvaluator
from repro.optimize.ga import GAConfig, GeneticOptimizer
from repro.optimize.genome import GenomeLayout
from repro.optimize.history import OptimizationHistory
from repro.linalg import batched_lu_factor, batched_lu_solve
from repro.panel.assembly import assemble
from repro.panel.freestream import Freestream
from repro.panel.solution import PanelSolution
from repro.panel.solver import PanelSolver
from repro.pipeline.engine import Timeline, simulate
from repro.pipeline.metrics import HybridMetrics, evaluate
from repro.pipeline.schedules import cpu_only, dual_accelerator, hybrid
from repro.pipeline.workload import Workload
from repro.precision import Precision, PrecisionLike
from repro.viscous.drag import ViscousAnalysis, analyze_viscous

AirfoilLike = Union[Airfoil, str]


def _as_airfoil(airfoil: AirfoilLike, n_panels: int) -> Airfoil:
    if isinstance(airfoil, Airfoil):
        return airfoil
    return naca(str(airfoil).replace("NACA", "").strip(), n_panels)


@dataclasses.dataclass(frozen=True)
class AirfoilAnalysis:
    """Complete aerodynamic characterization of one configuration."""

    solution: PanelSolution
    viscous: Optional[ViscousAnalysis]

    @property
    def cl(self) -> float:
        """Lift coefficient (inviscid, Kutta–Joukowski)."""
        return self.solution.lift_coefficient

    @property
    def cd(self) -> Optional[float]:
        """Profile-drag coefficient (``None`` without a viscous pass)."""
        return self.viscous.drag_coefficient if self.viscous else None

    @property
    def cm(self) -> float:
        """Quarter-chord moment coefficient."""
        return self.solution.moment_coefficient()

    @property
    def lift_to_drag(self) -> Optional[float]:
        """``cl / cd`` (``None`` without a viscous pass)."""
        if self.viscous is None:
            return None
        return self.viscous.lift_to_drag

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        foil = self.solution.airfoil
        lines = [
            f"{foil.name}: alpha = {self.solution.freestream.alpha_degrees:.2f} deg,"
            f" {foil.n_panels} panels",
            f"  cl = {self.cl:+.4f}   cm(c/4) = {self.cm:+.4f}",
        ]
        if self.viscous is not None:
            lines.append(
                f"  cd = {self.cd:.5f}   L/D = {self.lift_to_drag:.1f}"
                f"   Re = {self.viscous.reynolds:.2e}"
                + ("   (separated)" if self.viscous.separated else "")
            )
        return "\n".join(lines)


def analyze(airfoil: AirfoilLike, alpha_degrees: float = 0.0, *,
            reynolds: Optional[float] = 1e6, n_panels: int = 200,
            precision: PrecisionLike = Precision.DOUBLE,
            use_head: bool = True) -> AirfoilAnalysis:
    """Analyze an airfoil (by object or NACA designation string).

    ``reynolds=None`` skips the viscous pass (inviscid only).
    """
    foil = _as_airfoil(airfoil, n_panels)
    solver = PanelSolver(precision=Precision.parse(precision))
    solution = solver.solve(foil, Freestream.from_degrees(alpha_degrees))
    viscous = None
    if reynolds is not None:
        viscous = analyze_viscous(solution, reynolds, use_head=use_head)
    return AirfoilAnalysis(solution=solution, viscous=viscous)


def optimize(*, population_size: int = 60, generations: int = 8,
             n_panels: int = 120, reynolds: float = 5e5,
             seed: Optional[int] = None,
             layout: GenomeLayout = None) -> OptimizationHistory:
    """Run the paper's genetic airfoil optimization."""
    layout = layout or GenomeLayout()
    evaluator = FitnessEvaluator(layout=layout, n_panels=n_panels,
                                 reynolds=reynolds)
    config = GAConfig(population_size=population_size, generations=generations)
    optimizer = GeneticOptimizer(evaluator=evaluator, config=config)
    return optimizer.run(np.random.default_rng(seed))


@dataclasses.dataclass(frozen=True)
class HybridExperiment:
    """A simulated hybrid run with its baseline comparison."""

    metrics: HybridMetrics
    baseline: HybridMetrics
    timeline: Timeline

    @property
    def speedup(self) -> float:
        """Speedup over the CPU-only configuration."""
        return self.baseline.wall_time / self.metrics.wall_time


def simulate_hybrid(*, accelerator: str = "k80-half", sockets: int = 2,
                    precision: PrecisionLike = Precision.DOUBLE,
                    n_slices: int = 10, batch: int = 4000, n: int = 200,
                    distribution: float = 0.75) -> HybridExperiment:
    """Simulate one hybrid configuration against its CPU baseline.

    ``accelerator`` is one of ``"phi"``, ``"k80-half"``, ``"k80-dual"``.
    ``distribution`` only applies to the dual-GPU scheme.
    """
    precision = Precision.parse(precision)
    workload = Workload(batch=batch, n=n, precision=precision)
    workstation = paper_workstation(
        sockets=sockets, accelerator=accelerator, precision=precision
    )
    baseline_timeline = simulate(cpu_only(workload, workstation.cpu))
    baseline = evaluate(baseline_timeline)
    if accelerator == "k80-dual":
        schedule = dual_accelerator(workload, workstation, distribution, n_slices)
    else:
        schedule = hybrid(workload, workstation, n_slices)
    timeline = simulate(schedule)
    metrics = evaluate(timeline).with_baseline(baseline.wall_time)
    return HybridExperiment(metrics=metrics, baseline=baseline, timeline=timeline)


# ----------------------------------------------------------------------
# Serving wire format (shared by the CLI and repro.serve)
# ----------------------------------------------------------------------

#: Wire-format field names accepted by :meth:`AnalyzeRequest.from_dict`.
REQUEST_FIELDS = (
    "airfoil", "alpha_degrees", "reynolds", "n_panels", "precision", "use_head",
)

#: Transport-level deadline field accepted alongside a request payload.
#: It is *not* part of :class:`AnalyzeRequest`: the deadline describes
#: how long the caller is willing to wait, never what is computed, so
#: it must not perturb cache keys or response records.
DEADLINE_FIELD = "deadline_ms"


def validate_deadline_ms(value) -> float:
    """Validate a relative deadline budget in milliseconds.

    Returns the budget as a float; raises :class:`ServeError` for
    non-numeric, non-finite, or non-positive values.
    """
    try:
        deadline = float(value)
    except (TypeError, ValueError):
        raise ServeError(f"deadline_ms must be a number, got {value!r}")
    if not math.isfinite(deadline) or deadline <= 0.0:
        raise ServeError(
            f"deadline_ms must be positive and finite, got {value!r}"
        )
    return deadline


def extract_deadline_ms(payload):
    """Split the transport-level deadline out of a wire payload.

    Returns ``(payload, deadline_ms)`` where *payload* no longer
    contains :data:`DEADLINE_FIELD` (the original dict is not mutated)
    and *deadline_ms* is a validated float or ``None``.  Non-dict
    payloads pass through untouched so :meth:`AnalyzeRequest.from_dict`
    can produce its usual error.
    """
    if not isinstance(payload, dict) or DEADLINE_FIELD not in payload:
        return payload, None
    payload = dict(payload)
    raw = payload.pop(DEADLINE_FIELD)
    if raw is None:
        return payload, None
    return payload, validate_deadline_ms(raw)


@dataclasses.dataclass(frozen=True)
class AnalyzeRequest:
    """One airfoil-evaluation request (the serving wire format).

    Parameters mirror :func:`analyze`; ``airfoil`` is a NACA
    designation string on the wire (an :class:`Airfoil` object is also
    accepted for in-process use).  ``reynolds=None`` skips the viscous
    pass.

    :meth:`run` evaluates through the *batched* assembly/LU path (a
    stack of one), so an offline CLI evaluation and a served one
    compute bit-identical numbers — the batched kernels are
    elementwise across the stack, making each result independent of
    what else shares its micro-batch.
    """

    airfoil: Union[str, Airfoil]
    alpha_degrees: float = 0.0
    reynolds: Optional[float] = 1e6
    n_panels: int = 200
    precision: Precision = Precision.DOUBLE
    use_head: bool = True

    def __post_init__(self) -> None:
        if isinstance(self.airfoil, str):
            if not self.airfoil.strip():
                raise ServeError("airfoil designation must be a non-empty string")
        elif not isinstance(self.airfoil, Airfoil):
            raise ServeError(
                f"airfoil must be a designation string or Airfoil, "
                f"got {type(self.airfoil).__name__}"
            )
        alpha = float(self.alpha_degrees)
        if not math.isfinite(alpha):
            raise ServeError(f"alpha_degrees must be finite, got {self.alpha_degrees}")
        object.__setattr__(self, "alpha_degrees", alpha)
        if self.reynolds is not None:
            reynolds = float(self.reynolds)
            if not math.isfinite(reynolds) or reynolds <= 0.0:
                raise ServeError(
                    f"reynolds must be positive and finite (or null), got {self.reynolds}"
                )
            object.__setattr__(self, "reynolds", reynolds)
        n_panels = int(self.n_panels)
        if n_panels < 3:
            raise ServeError(f"n_panels must be at least 3, got {self.n_panels}")
        object.__setattr__(self, "n_panels", n_panels)
        try:
            object.__setattr__(self, "precision", Precision.parse(self.precision))
        except (ValueError, TypeError) as error:
            raise ServeError(str(error))
        object.__setattr__(self, "use_head", bool(self.use_head))

    @classmethod
    def from_dict(cls, payload) -> "AnalyzeRequest":
        """Parse a wire-format request, rejecting unknown fields.

        ``alpha`` is accepted as an alias for ``alpha_degrees``, and a
        Reynolds number of 0 means "inviscid only" (like the CLI's
        ``--reynolds 0``).
        """
        if not isinstance(payload, dict):
            raise ServeError(
                f"request payload must be a JSON object, got {type(payload).__name__}"
            )
        payload = dict(payload)
        if "alpha" in payload:
            if "alpha_degrees" in payload:
                raise ServeError("give either 'alpha' or 'alpha_degrees', not both")
            payload["alpha_degrees"] = payload.pop("alpha")
        unknown = sorted(set(payload) - set(REQUEST_FIELDS))
        if unknown:
            raise ServeError(f"unknown request fields: {', '.join(unknown)}")
        if "airfoil" not in payload:
            raise ServeError("request is missing the 'airfoil' field")
        if not isinstance(payload["airfoil"], str):
            raise ServeError("'airfoil' must be a designation string")
        if payload.get("reynolds") in (0, 0.0):
            payload["reynolds"] = None
        try:
            return cls(**payload)
        except (TypeError, ValueError) as error:
            raise ServeError(f"invalid request payload: {error}")

    def to_dict(self) -> dict:
        """The wire-format rendering of this request."""
        if not isinstance(self.airfoil, str):
            raise ServeError(
                "only designation-string requests are JSON-serializable; "
                f"got an Airfoil object ({self.airfoil.name!r})"
            )
        return {
            "airfoil": self.airfoil,
            "alpha_degrees": self.alpha_degrees,
            "reynolds": self.reynolds,
            "n_panels": self.n_panels,
            "precision": self.precision.value,
            "use_head": self.use_head,
        }

    def build_airfoil(self) -> Airfoil:
        """The discretized geometry this request evaluates."""
        return _as_airfoil(self.airfoil, self.n_panels)

    def freestream(self) -> Freestream:
        """The onset flow this request evaluates under."""
        return Freestream.from_degrees(self.alpha_degrees)

    def cache_key(self) -> str:
        """Genome-keyed digest: hashed geometry + flow + solver config.

        Hashing the discretized outline (rather than the designation
        string) makes equivalent geometries share cache entries however
        they were spelled, and distinguishes panel counts for free.
        """
        foil = self.build_airfoil()
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(foil.points, dtype=np.float64).tobytes())
        digest.update(repr((
            self.alpha_degrees,
            self.reynolds,
            self.precision.value,
            self.use_head,
        )).encode("ascii"))
        return digest.hexdigest()

    def run(self, *, kernel=None) -> "AirfoilAnalysis":
        """Evaluate this request (batched path, stack of one).

        ``kernel`` selects the assembly kernel for this evaluation
        (``None`` defers to ``REPRO_ASSEMBLY_KERNEL``).
        """
        result = evaluate_requests([self], kernel=kernel)[0]
        if isinstance(result, Exception):
            raise result
        return result


@dataclasses.dataclass(frozen=True)
class SolvedSystem:
    """A solved panel system, ready for post-processing.

    This is the unit of work an execution backend returns: the
    assembled-and-solved state of one request *before* the viscous pass
    and response shaping.  ``gamma`` is the expanded circulation row in
    the system's native precision (the post-process step widens it to
    ``float64``, exactly); ``constant`` is the boundary-condition
    constant from the closure row.
    """

    airfoil: Airfoil
    freestream: Freestream
    closure: object
    gamma: np.ndarray
    constant: float


def solve_request_systems(requests: Sequence[AnalyzeRequest], *,
                          stage_hook=None, kernel=None) -> List:
    """Assemble and LU-solve many requests (the backend work unit).

    Requests are grouped by system size and dtype; each group is
    assembled into one ``(batch, m, m)`` stack and solved with
    :func:`repro.linalg.batched_lu_factor` — the code path the paper's
    hardware timings describe.  This function is the contract an
    :class:`repro.parallel.ExecutionBackend` implements: the inline
    backend calls it directly, and the process backend runs it (or its
    assembly half) inside worker processes, shard by shard.  The
    batched kernels are elementwise across the stack, which is why
    shard-wise solving produces bit-identical numbers.

    ``stage_hook`` receives ``(stage, start, end, count)`` stamps:
    ``"assembly"`` once for the whole assemble loop and ``"solve"`` per
    batched LU call.  ``kernel`` selects the influence-matrix
    implementation (``reference`` / ``fused`` / ``native``; ``None``
    defers to ``REPRO_ASSEMBLY_KERNEL`` — see ``docs/kernels.md``).

    Returns one entry per request, in order: a :class:`SolvedSystem` on
    success, or the :class:`ReproError` that request raised.
    """
    def _stage(name: str, start: float, end: float, count: int) -> None:
        if stage_hook is not None:
            stage_hook(name, start, end, count)

    requests = list(requests)
    results: List = [None] * len(requests)
    groups: dict = {}
    assembly_started = time.monotonic()
    for index, request in enumerate(requests):
        try:
            system = assemble(request.build_airfoil(), request.freestream(),
                              dtype=request.precision.dtype, kernel=kernel)
        except ReproError as error:
            results[index] = error
            continue
        key = (system.n_unknowns, system.matrix.dtype)
        groups.setdefault(key, []).append((index, request, system))
    _stage("assembly", assembly_started, time.monotonic(), len(requests))
    for members in groups.values():
        matrices = np.stack([system.matrix for _, _, system in members])
        rhs = np.stack([system.rhs for _, _, system in members])
        solve_started = time.monotonic()
        try:
            unknowns = batched_lu_solve(batched_lu_factor(matrices, overwrite=True), rhs)
        except ReproError as error:
            for index, _, _ in members:
                results[index] = error
            continue
        finally:
            _stage("solve", solve_started, time.monotonic(), len(members))
        for (index, request, system), row in zip(members, unknowns):
            try:
                gamma, constant = system.expand_solution(row)
            except ReproError as error:
                results[index] = error
                continue
            results[index] = SolvedSystem(
                airfoil=system.airfoil, freestream=system.freestream,
                closure=system.closure, gamma=gamma, constant=constant,
            )
    return results


def evaluate_requests(requests: Sequence[AnalyzeRequest], *,
                      stage_hook=None, backend=None, kernel=None) -> List:
    """Evaluate many requests through the batched assembly/LU path.

    The assembly + batched LU runs on an execution backend (see
    :mod:`repro.parallel`): ``backend=None`` uses the process-wide
    default — inline unless ``REPRO_EXEC_BACKEND=process`` — and an
    :class:`~repro.parallel.ExecutionBackend` instance is used as
    given.  Responses are byte-identical across backends: the batched
    kernels are elementwise across the stack, so sharding a batch over
    worker processes changes where the arithmetic happens, never its
    result.  The viscous pass and response shaping always run in the
    calling thread.

    ``stage_hook``, when given, is called as ``stage_hook(stage, start,
    end, count)`` with monotonic stamps around each internal stage —
    ``"assembly"`` and ``"solve"`` from the backend (plus per-shard
    ``"assembly_shard"`` / ``"solve_shard"`` spans under the process
    backend), ``"postprocess"`` once for the expand+viscous loop — so
    the serving tracer and ``analyze --trace`` can report the paper's
    W/A/L/O decomposition for live work without this module knowing
    anything about spans.

    Returns one entry per request, in order: an
    :class:`AirfoilAnalysis` on success, or the :class:`ReproError`
    that request raised (so one bad geometry cannot poison its
    batchmates).
    """
    from repro.parallel import resolve_backend

    requests = list(requests)
    solved = resolve_backend(backend).solve(requests, stage_hook=stage_hook,
                                            kernel=kernel)
    results: List = [None] * len(requests)
    post_started = time.monotonic()
    for index, (request, entry) in enumerate(zip(requests, solved)):
        if isinstance(entry, BaseException):
            results[index] = entry
            continue
        try:
            solution = PanelSolution(
                airfoil=entry.airfoil,
                freestream=entry.freestream,
                closure=entry.closure,
                gamma=np.asarray(entry.gamma, dtype=np.float64),
                constant=entry.constant,
            )
            viscous = None
            if request.reynolds is not None:
                viscous = analyze_viscous(solution, request.reynolds,
                                          use_head=request.use_head)
            results[index] = AirfoilAnalysis(solution=solution, viscous=viscous)
        except ReproError as error:
            results[index] = error
    if stage_hook is not None:
        stage_hook("postprocess", post_started, time.monotonic(),
                   len(requests))
    return results


def serialize_analysis(request: AnalyzeRequest, analysis: AirfoilAnalysis) -> dict:
    """The wire-format response record for one evaluated request."""
    solution = analysis.solution
    return {
        "airfoil": solution.airfoil.name,
        "alpha_degrees": float(request.alpha_degrees),
        "n_panels": int(solution.airfoil.n_panels),
        "precision": request.precision.value,
        "reynolds": None if request.reynolds is None else float(request.reynolds),
        "use_head": bool(request.use_head),
        "cl": float(analysis.cl),
        "cm": float(analysis.cm),
        "cd": None if analysis.cd is None else float(analysis.cd),
        "lift_to_drag": (None if analysis.lift_to_drag is None
                         else float(analysis.lift_to_drag)),
        "separated": (None if analysis.viscous is None
                      else bool(analysis.viscous.separated)),
    }


def canonical_json(payload) -> str:
    """Canonical JSON rendering: sorted keys, compact separators.

    Every producer of wire-format records (the CLI's ``--json`` and the
    serve HTTP responses) goes through this one function, which is what
    makes equal payloads byte-identical.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
