"""High-level public API: analyze, optimize, simulate_hybrid."""

from repro.core.api import (
    AirfoilAnalysis,
    HybridExperiment,
    analyze,
    optimize,
    simulate_hybrid,
)

__all__ = [
    "AirfoilAnalysis",
    "HybridExperiment",
    "analyze",
    "optimize",
    "simulate_hybrid",
]
