"""Span trees over the monotonic clock, and their W/A/L/O reduction.

A :class:`Trace` records where one request's wall time went: it opens a
root ``request`` span at construction and accumulates child spans for
each stage the request passes through (queue wait, batch collect,
assembly, solve, ...).  Stages can be recorded two ways:

* :meth:`Trace.span` — a context manager for code that brackets the
  work itself (nesting is tracked automatically);
* :meth:`Trace.add_stage` — explicit start/end stamps for stages whose
  boundaries were measured elsewhere (a worker stamping queue exit, a
  batch-level solve shared by every member of the stack).

:func:`walo_summary` reduces a finished trace to the paper's stage
vocabulary (DESIGN.md Section 5, ``docs/hardware_model.md``):

* ``W`` (wall) — the root span's duration;
* ``A`` (assembly) — total time in ``assembly`` spans;
* ``L`` (solve busy) — total time in ``solve`` spans;
* ``O`` (overhead) — ``W - L``, *by construction*, so the live service
  reports the same identity the simulator's tables satisfy.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError

#: Span name of the assembly stage in the W/A/L/O reduction.
ASSEMBLY_STAGE = "assembly"

#: Span name of the solve stage in the W/A/L/O reduction.
SOLVE_STAGE = "solve"

#: Span name of the root request span every trace opens with.
ROOT_SPAN = "request"


@dataclasses.dataclass
class Span:
    """One timed stage: a name, monotonic start/end, and its parent.

    ``parent`` is the index of the enclosing span within the owning
    trace's span list (``None`` for the root).  ``end`` is ``None``
    while the span is still open.
    """

    name: str
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None

    @property
    def duration(self) -> float:
        """Seconds covered so far (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready rendering (used by ``/debug/trace?format=json``)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "parent": self.parent,
        }


class _SpanHandle:
    """Context manager returned by :meth:`Trace.span`."""

    __slots__ = ("_trace", "_index")

    def __init__(self, trace: "Trace", index: int) -> None:
        self._trace = trace
        self._index = index

    @property
    def index(self) -> int:
        """The span's position in the trace's span list."""
        return self._index

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._trace.end_span(self._index)


class Trace:
    """The span tree of one request, plus free-form annotations.

    A trace is written by one thread at a time (the submitter during
    admission, then the worker that owns the batch), so it carries no
    lock; cross-thread hand-off happens through the queue, which is a
    synchronization point.

    Parameters
    ----------
    trace_id:
        The request ID this trace describes.
    clock:
        Monotonic time source (injectable for tests).
    """

    __slots__ = ("trace_id", "spans", "annotations", "outcome",
                 "_clock", "_stack")

    def __init__(self, trace_id: str, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.trace_id = str(trace_id)
        self._clock = clock
        self.spans: List[Span] = [Span(name=ROOT_SPAN, start=clock())]
        self.annotations: Dict[str, object] = {}
        self.outcome: Optional[str] = None
        self._stack: List[int] = [0]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @property
    def root(self) -> Span:
        """The all-enclosing ``request`` span."""
        return self.spans[0]

    def span(self, name: str) -> _SpanHandle:
        """Open a child span under the innermost open span.

        Use as a context manager::

            with trace.span("solve"):
                ...
        """
        index = len(self.spans)
        self.spans.append(Span(name=str(name), start=self._clock(),
                               parent=self._stack[-1]))
        self._stack.append(index)
        return _SpanHandle(self, index)

    def end_span(self, index: int) -> None:
        """Close the span at *index* (and anything nested inside it)."""
        now = self._clock()
        while len(self._stack) > 1:
            top = self._stack.pop()
            if self.spans[top].end is None:
                self.spans[top].end = now
            if top == index:
                return
        raise ReproError(f"span {index} is not open in trace {self.trace_id}")

    def add_stage(self, name: str, start: float, end: float, *,
                  parent: int = 0) -> Span:
        """Record an externally-timed stage as a closed child span."""
        span = Span(name=str(name), start=float(start), end=float(end),
                    parent=parent)
        self.spans.append(span)
        return span

    def annotate(self, **fields) -> None:
        """Attach free-form metadata (batch size, cache hit, ...)."""
        self.annotations.update(fields)

    def close(self, outcome: str = "completed") -> "Trace":
        """Close every open span (root last) and stamp the outcome."""
        now = self._clock()
        for index in reversed(self._stack):
            if self.spans[index].end is None:
                self.spans[index].end = now
        del self._stack[1:]
        self.outcome = str(outcome)
        return self

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has stamped the root span."""
        return self.root.end is not None

    def children(self, index: int = 0) -> List[Span]:
        """The direct child spans of the span at *index*."""
        return [span for span in self.spans if span.parent == index]

    def stage_seconds(self) -> Dict[str, float]:
        """Total closed-span seconds per stage name (root excluded)."""
        totals: Dict[str, float] = {}
        for span in self.spans[1:]:
            if span.end is not None:
                totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def to_dict(self) -> dict:
        """JSON-ready rendering of the whole trace."""
        return {
            "trace_id": self.trace_id,
            "outcome": self.outcome,
            "wall_seconds": self.root.duration,
            "spans": [span.to_dict() for span in self.spans],
            "annotations": dict(self.annotations),
            "walo": walo_summary(self),
        }


def walo_summary(trace: Trace) -> Dict[str, float]:
    """Reduce one trace to the paper's W/A/L/O stage numbers.

    ``overhead_seconds`` is computed as ``wall - solve`` so the identity
    ``O = W - L`` holds exactly, mirroring
    :func:`repro.pipeline.metrics.evaluate` for simulated timelines.
    """
    stages = trace.stage_seconds()
    wall = trace.root.duration
    solve = stages.get(SOLVE_STAGE, 0.0)
    return {
        "wall_seconds": wall,
        "assembly_seconds": stages.get(ASSEMBLY_STAGE, 0.0),
        "solve_seconds": solve,
        "overhead_seconds": wall - solve,
    }
