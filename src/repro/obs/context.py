"""Cross-process trace context: the ``X-Repro-Trace`` currency.

A request ID (:mod:`repro.obs.ids`) names a request; a *trace context*
carries the tracing decision with it across process boundaries.  The
header value is three ``;``-separated fields::

    X-Repro-Trace: <trace_id>;<parent_span_id>;<sampled>

* ``trace_id`` — the tree identity, validated with the same rules as a
  request ID (the ``;`` separator is outside the request-ID alphabet,
  so a validated ID can never be confused with a field boundary);
* ``parent_span_id`` — the caller's span this hop nests under, a short
  hex token minted by :func:`new_span_id`;
* ``sampled`` — ``1`` or ``0``: the *head-based* sampling decision.
  Whoever opens the trace (client or router) decides once; every
  downstream hop obeys, so a trace is either recorded on every hop or
  on none, and the stitched tree is never missing a floor.

The other half of cross-process tracing is clock stitching:
:func:`anchor_remote_spans` maps a remote hop's span tree (recorded on
*its* monotonic clock) into the caller's clock using the caller's
send/receive bounds around the exchange — the same estimate
:func:`repro.parallel.protocol.anchor_stamps` uses for worker
processes, generalized to whole span trees and hardened against clock
skew: stitched spans always land inside the caller's bounds and stay
monotonic.
"""

from __future__ import annotations

import dataclasses
import uuid
from typing import List, Optional, Sequence

from repro.errors import ServeError
from repro.obs.ids import new_request_id, validate_request_id
from repro.obs.trace import Span

#: Header carrying the trace context on proxied/forwarded requests.
TRACE_HEADER = "X-Repro-Trace"

#: Characters allowed in a span ID (hex, as minted by uuid4).
_SPAN_ID_ALPHABET = frozenset("0123456789abcdef")

#: Longest accepted span ID (a full uuid4 hex is 32 characters).
MAX_SPAN_ID_LENGTH = 32


def new_span_id() -> str:
    """A fresh 16-character hex span ID."""
    return uuid.uuid4().hex[:16]


def validate_span_id(value) -> str:
    """Validate a span ID (lowercase hex, 1..32 chars); returns it."""
    if not isinstance(value, str):
        raise ServeError(
            f"span id must be a string, got {type(value).__name__}"
        )
    if not value or len(value) > MAX_SPAN_ID_LENGTH:
        raise ServeError(
            f"span id must be 1..{MAX_SPAN_ID_LENGTH} characters"
        )
    if not set(value) <= _SPAN_ID_ALPHABET:
        raise ServeError("span id must be lowercase hex")
    return value


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """One hop's view of a distributed trace.

    Immutable: forwarding to the next hop goes through :meth:`child`,
    which keeps the trace identity and sampling decision but re-parents
    under a fresh span ID.
    """

    trace_id: str
    parent_span_id: str
    sampled: bool

    def header_value(self) -> str:
        """The ``X-Repro-Trace`` wire encoding of this context."""
        return (f"{self.trace_id};{self.parent_span_id};"
                f"{1 if self.sampled else 0}")

    def child(self, span_id: Optional[str] = None) -> "TraceContext":
        """The context the *next* hop should receive: same trace, same
        sampling decision, parented under *span_id* (fresh if None)."""
        return TraceContext(
            trace_id=self.trace_id,
            parent_span_id=(new_span_id() if span_id is None
                            else validate_span_id(span_id)),
            sampled=self.sampled,
        )

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id,
                "sampled": self.sampled}


def new_trace_context(trace_id: Optional[str] = None, *,
                      sampled: bool = True) -> TraceContext:
    """Mint a root context (the hop that *decides* to sample)."""
    return TraceContext(
        trace_id=new_request_id() if trace_id is None
        else validate_request_id(trace_id),
        parent_span_id=new_span_id(),
        sampled=bool(sampled),
    )


def parse_trace_header(value) -> TraceContext:
    """Parse and validate an ``X-Repro-Trace`` header value.

    Raises :class:`ServeError` for anything other than exactly
    ``trace_id;span_id;flag`` with each field valid — a hostile header
    must never smuggle content into logs, responses, or downstream
    headers.
    """
    if not isinstance(value, str):
        raise ServeError(
            f"trace header must be a string, got {type(value).__name__}"
        )
    fields = value.split(";")
    if len(fields) != 3:
        raise ServeError(
            f"trace header must be 'trace_id;span_id;flag', "
            f"got {len(fields)} field(s)"
        )
    trace_id, span_id, flag = fields
    if flag not in ("0", "1"):
        raise ServeError(
            f"trace header sampled flag must be '0' or '1', got {flag!r}"
        )
    return TraceContext(
        trace_id=validate_request_id(trace_id),
        parent_span_id=validate_span_id(span_id),
        sampled=flag == "1",
    )


def maybe_parse_trace_header(value) -> Optional[TraceContext]:
    """:func:`parse_trace_header`, or ``None`` for an absent header."""
    if value is None:
        return None
    return parse_trace_header(value)


# ----------------------------------------------------------------------
# Clock stitching
# ----------------------------------------------------------------------

def anchor_remote_spans(spans: Sequence[Span], send_start: float,
                        recv_end: float) -> List[Span]:
    """Map a remote hop's span tree into the caller's monotonic clock.

    *spans* is the remote trace's span list (root first) on the remote
    clock; ``send_start``/``recv_end`` bound the exchange on the
    *caller's* clock (the caller's proxy span).  Like
    :func:`repro.parallel.protocol.anchor_stamps`, the remote timeline
    is pinned by estimating its start as ``recv_end - elapsed`` — exact
    up to the one-way network latency.  Two guarantees on top:

    * **containment** — when the remote's measured elapsed exceeds the
      caller's window (clock skew, or a caller clock that ticked
      slower), the remote timeline is *compressed* linearly into the
      window instead of spilling out of it, so a stitched Gantt row
      never escapes its parent hop's bar;
    * **monotonicity** — the mapping is affine with a positive scale,
      so span ordering and nesting survive exactly.

    Open spans (``end is None``) are closed at the remote root's end
    before mapping.  Returns new :class:`Span` objects; parents are
    preserved by index.
    """
    spans = list(spans)
    if not spans:
        return []
    send_start = float(send_start)
    recv_end = float(recv_end)
    if recv_end < send_start:
        raise ServeError(
            f"proxy bounds are inverted: send={send_start} recv={recv_end}"
        )
    root = spans[0]
    remote_start = root.start
    remote_end = root.end if root.end is not None else max(
        [remote_start] + [span.end for span in spans if span.end is not None]
    )
    elapsed = max(0.0, remote_end - remote_start)
    window = recv_end - send_start
    if elapsed > window and elapsed > 0.0:
        scale = window / elapsed
        base = send_start
    else:
        scale = 1.0
        base = recv_end - elapsed

    def remap(instant: float) -> float:
        mapped = base + (instant - remote_start) * scale
        # Containment is exact by construction; the clamp only guards
        # against child spans recorded outside their own root.
        return min(recv_end, max(send_start, mapped))

    anchored = []
    for span in spans:
        end = span.end if span.end is not None else remote_end
        anchored.append(Span(name=span.name, start=remap(span.start),
                             end=remap(end), parent=span.parent))
    return anchored
