"""Structured one-line-per-event logging.

The serving path emits exactly one line per request outcome
(completion, failure, shed, expiry, cancellation) with the request ID,
stage breakdown, batch size, and cache-hit flag — replacing the HTTP
handler's silenced per-request ``log_message`` with something a log
pipeline can actually aggregate.

Two formats share one call site:

* ``json`` — one compact JSON object per line, sorted keys, so ``jq``
  and log indexers need no parsing rules;
* ``text`` — ``ts event key=value ...`` for humans tailing a terminal;
* ``off`` — a no-op logger (the in-process default, so tests and
  benchmarks stay quiet without plumbing).

Logging must never take the service down: serialization falls back to
``repr`` for non-JSON values and write errors are swallowed.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Callable, Optional, TextIO

from repro.errors import ServeError

#: Accepted values for the ``fmt`` parameter / ``--log-format`` flag.
LOG_FORMATS = ("json", "text", "off")


class StructuredLogger:
    """Thread-safe structured event logger.

    Parameters
    ----------
    fmt:
        ``"json"``, ``"text"``, or ``"off"`` (no output at all).
    stream:
        Destination; defaults to ``sys.stderr`` so stdout stays
        reserved for payload output (the CLI's ``--json`` contract).
    clock:
        Wall-clock source for the ``ts`` field (injectable for tests).
    """

    def __init__(self, fmt: str = "json", stream: Optional[TextIO] = None,
                 *, clock: Callable[[], float] = time.time) -> None:
        if fmt not in LOG_FORMATS:
            raise ServeError(
                f"log format must be one of {', '.join(LOG_FORMATS)}, got {fmt!r}"
            )
        self.fmt = fmt
        self._stream = stream
        self._clock = clock
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """True unless the logger was constructed with ``fmt="off"``."""
        return self.fmt != "off"

    def event(self, event: str, **fields) -> None:
        """Emit one event line; a no-op when the logger is off.

        ``None``-valued fields are dropped so log lines only carry what
        actually happened.
        """
        if self.fmt == "off":
            return
        record = {"ts": round(self._clock(), 6), "event": str(event)}
        record.update((key, value) for key, value in fields.items()
                      if value is not None)
        line = (self._render_json(record) if self.fmt == "json"
                else self._render_text(record))
        stream = self._stream if self._stream is not None else sys.stderr
        try:
            with self._lock:
                stream.write(line + "\n")
                stream.flush()
        except (OSError, ValueError):  # closed stream: never take the service down
            pass

    @staticmethod
    def _render_json(record: dict) -> str:
        return json.dumps(record, sort_keys=True, separators=(",", ":"),
                          default=repr)

    @staticmethod
    def _render_text(record: dict) -> str:
        ts = record.pop("ts")
        event = record.pop("event")
        parts = [f"{ts:.3f}", event]
        for key in sorted(record):
            value = record[key]
            if isinstance(value, float):
                value = f"{value:.6g}"
            elif not isinstance(value, (str, int, bool)):
                value = json.dumps(value, sort_keys=True,
                                   separators=(",", ":"), default=repr)
            parts.append(f"{key}={value}")
        return " ".join(parts)


def make_logger(fmt: Optional[str], stream: Optional[TextIO] = None) -> StructuredLogger:
    """A :class:`StructuredLogger` for a CLI flag value (``None`` = off)."""
    return StructuredLogger(fmt or "off", stream)
