"""repro.obs: shared observability primitives.

The serving path (:mod:`repro.serve`) and the CLI both need the same
small toolkit to explain where a request's time went:

* :mod:`repro.obs.trace` — span trees with monotonic start/end times
  and the reduction to the paper's W/A/L/O stage vocabulary;
* :mod:`repro.obs.ids` — request-ID generation and validation
  (the ``X-Repro-Request-Id`` currency);
* :mod:`repro.obs.context` — cross-process trace context
  (the ``X-Repro-Trace`` currency) and remote-span clock stitching;
* :mod:`repro.obs.histogram` — log-bucketed latency histograms with
  per-bucket exemplar trace ids;
* :mod:`repro.obs.slo` — availability/latency objectives with
  multi-window burn-rate tracking;
* :mod:`repro.obs.logging` — structured one-line-per-event logging
  (JSON or key=value text);
* :mod:`repro.obs.prometheus` — text-format exposition of the nested
  ``/metrics`` snapshot for Prometheus scrapers.

Everything here is stdlib-only and free of serving imports, so the
pipeline simulator, the CLI, and the service can all share it without
cycles.
"""

from repro.obs.context import (
    TRACE_HEADER,
    TraceContext,
    anchor_remote_spans,
    maybe_parse_trace_header,
    new_span_id,
    new_trace_context,
    parse_trace_header,
    validate_span_id,
)
from repro.obs.histogram import LatencyHistogram, StageHistograms
from repro.obs.ids import REQUEST_ID_HEADER, new_request_id, validate_request_id
from repro.obs.logging import StructuredLogger
from repro.obs.prometheus import render_prometheus
from repro.obs.slo import SLOTracker
from repro.obs.trace import Span, Trace, walo_summary

__all__ = [
    "LatencyHistogram",
    "REQUEST_ID_HEADER",
    "SLOTracker",
    "Span",
    "StageHistograms",
    "StructuredLogger",
    "TRACE_HEADER",
    "Trace",
    "TraceContext",
    "anchor_remote_spans",
    "maybe_parse_trace_header",
    "new_request_id",
    "new_span_id",
    "new_trace_context",
    "parse_trace_header",
    "render_prometheus",
    "validate_request_id",
    "validate_span_id",
    "walo_summary",
]
