"""repro.obs: shared observability primitives.

The serving path (:mod:`repro.serve`) and the CLI both need the same
small toolkit to explain where a request's time went:

* :mod:`repro.obs.trace` — span trees with monotonic start/end times
  and the reduction to the paper's W/A/L/O stage vocabulary;
* :mod:`repro.obs.ids` — request-ID generation and validation
  (the ``X-Repro-Request-Id`` currency);
* :mod:`repro.obs.logging` — structured one-line-per-event logging
  (JSON or key=value text);
* :mod:`repro.obs.prometheus` — text-format exposition of the nested
  ``/metrics`` snapshot for Prometheus scrapers.

Everything here is stdlib-only and free of serving imports, so the
pipeline simulator, the CLI, and the service can all share it without
cycles.
"""

from repro.obs.ids import REQUEST_ID_HEADER, new_request_id, validate_request_id
from repro.obs.logging import StructuredLogger
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import Span, Trace, walo_summary

__all__ = [
    "REQUEST_ID_HEADER",
    "Span",
    "StructuredLogger",
    "Trace",
    "new_request_id",
    "render_prometheus",
    "validate_request_id",
    "walo_summary",
]
