"""Prometheus text-format exposition of the ``/metrics`` snapshot.

:func:`render_prometheus` flattens the service's nested JSON snapshot
into the `Prometheus exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# HELP`` / ``# TYPE`` comments followed by ``name{labels} value``
samples — with three structural rules:

* nested dict paths join with ``_`` (``requests.admitted`` becomes
  ``repro_requests_admitted``);
* keys ending in ``_histogram`` (size → count maps) become one labeled
  family: ``repro_batching_batch_size{bucket="8"} 3``;
* the ``latency_ms`` quantile block becomes a summary-style family
  with ``quantile`` labels plus ``_count``/``_mean``/``_max`` samples.

Strings and ``None`` values are skipped (Prometheus samples are
numbers), booleans render as 0/1, and emitting the same (name, labels)
sample twice is an error rather than a silently corrupt scrape.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import ServeError

#: Snapshot leaf keys that are monotonically increasing counters; every
#: other numeric leaf is exposed as a gauge.
COUNTER_KEYS = frozenset({
    "admitted", "completed", "failed", "shed", "expired", "cancelled",
    "accounting_drift", "flushes", "batched_solves", "solved_systems",
    "hits", "misses", "evictions", "snapshot_seq", "traced", "evicted",
    "shards", "sharded_requests", "worker_crashes", "worker_restarts",
    "inline_fallbacks", "start_failures",
    # jobs subsystem (the "jobs" snapshot section)
    "submitted", "started", "done", "resumed", "checkpoints",
    "generations_completed", "duplicate_submits",
    # cluster router (the "router" section of the cluster document)
    "routed", "routed_batch", "fanout_requests", "failovers", "exhausted",
    "proxy_errors", "jobs_placed", "jobs_migrated", "migration_failures",
    "checkpoints_staged", "health_transitions", "probes", "probe_failures",
})

#: Quantile-label spellings for the latency block's ``pXX`` keys.
_QUANTILES = {"p50": "0.5", "p90": "0.9", "p99": "0.99"}

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


class _Family:
    """One metric family: a type plus its labeled samples."""

    __slots__ = ("mtype", "help", "samples")

    def __init__(self, mtype: str, help_text: str) -> None:
        self.mtype = mtype
        self.help = help_text
        self.samples: List[Tuple[Tuple[Tuple[str, str], ...], float]] = []


def metric_name(*parts: str) -> str:
    """Join path components into a legal Prometheus metric name."""
    name = _NAME_SANITIZER.sub("_", "_".join(str(part) for part in parts))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def render_prometheus(snapshot: dict, *, prefix: str = "repro") -> str:
    """Render a nested metrics snapshot as Prometheus exposition text."""
    families: "OrderedDict[str, _Family]" = OrderedDict()
    seen: set = set()

    def add(name: str, value, *, labels: Optional[Dict[str, str]] = None,
            mtype: Optional[str] = None, help_text: str = "") -> None:
        family = families.get(name)
        if family is None:
            family = families[name] = _Family(
                mtype or "gauge", help_text or f"repro metric {name}"
            )
        label_items = tuple(sorted((labels or {}).items()))
        if (name, label_items) in seen:
            raise ServeError(f"duplicate Prometheus sample: {name}{dict(label_items)}")
        seen.add((name, label_items))
        family.samples.append((label_items, float(value)))

    _walk(snapshot, [prefix], add)

    lines: List[str] = []
    for name, family in families.items():
        lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.mtype}")
        for label_items, value in family.samples:
            rendered = "".join((
                name,
                _render_labels(label_items),
                " ",
                _format_value(value),
            ))
            lines.append(rendered)
    return "\n".join(lines) + "\n" if lines else ""


def _walk(node: dict, path: List[str], add) -> None:
    for key, value in node.items():
        if isinstance(value, dict):
            if str(key).endswith("_histogram"):
                base = metric_name(*path, str(key)[: -len("_histogram")])
                for bucket, count in sorted(value.items(),
                                            key=lambda item: _bucket_order(item[0])):
                    add(base, count, labels={"bucket": str(bucket)},
                        mtype="counter",
                        help_text=f"histogram {'.'.join(path[1:] + [str(key)])}")
            elif key == "latency_ms":
                _latency_family(value, path, add)
            else:
                _walk(value, path + [str(key)], add)
        elif isinstance(value, bool):
            add(metric_name(*path, str(key)), int(value))
        elif isinstance(value, (int, float)) and value is not None:
            mtype = "counter" if key in COUNTER_KEYS else "gauge"
            add(metric_name(*path, str(key)), value, mtype=mtype)
        # strings and None carry no numeric sample: skipped by design.


def _latency_family(block: dict, path: List[str], add) -> None:
    base = metric_name(*path, "latency_ms")
    for stat, value in block.items():
        if value is None:
            continue
        if stat in _QUANTILES:
            add(base, value, labels={"quantile": _QUANTILES[stat]},
                mtype="summary", help_text="request latency quantiles (ms)")
        else:
            mtype = "counter" if stat == "count" else "gauge"
            add(f"{base}_{metric_name(stat)}", value, mtype=mtype)


def _bucket_order(bucket) -> Tuple[int, str]:
    try:
        return (0, f"{float(bucket):024.6f}")
    except (TypeError, ValueError):
        return (1, str(bucket))


def _render_labels(label_items: Tuple[Tuple[str, str], ...]) -> str:
    if not label_items:
        return ""
    rendered = ",".join(
        f'{metric_name(key)}="{str(value).translate(_LABEL_ESCAPES)}"'
        for key, value in label_items
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g")
