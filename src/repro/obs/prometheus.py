"""Prometheus text-format exposition of the ``/metrics`` snapshot.

:func:`render_prometheus` flattens the service's nested JSON snapshot
into the `Prometheus exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# HELP`` / ``# TYPE`` comments followed by ``name{labels} value``
samples — with four structural rules:

* nested dict paths join with ``_`` (``requests.admitted`` becomes
  ``repro_requests_admitted``);
* keys ending in ``_histogram`` (size → count maps) become one labeled
  family: ``repro_batching_batch_size{bucket="8"} 3``;
* the ``latency_ms`` quantile block becomes a summary-style family
  with ``quantile`` labels plus ``_count``/``_mean``/``_max`` samples,
  mapping any ``pXX``/``pXXX`` key data-driven (``p50`` → ``0.5``,
  ``p999`` → ``0.999``) — a malformed quantile key raises instead of
  silently vanishing from the scrape;
* :class:`repro.obs.histogram.LatencyHistogram` snapshots become real
  histogram families — cumulative ``_bucket{le="..."}`` samples with
  OpenMetrics exemplars (``# {trace_id="..."} value`` appended to the
  bucket line) plus ``_sum`` and ``_count``.

Strings and ``None`` values are skipped (Prometheus samples are
numbers), booleans render as 0/1, and emitting the same (name, labels)
sample twice is an error rather than a silently corrupt scrape.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import ServeError
from repro.obs.histogram import is_histogram_snapshot

#: Snapshot leaf keys that are monotonically increasing counters; every
#: other numeric leaf is exposed as a gauge.
COUNTER_KEYS = frozenset({
    "admitted", "completed", "failed", "shed", "expired", "cancelled",
    "accounting_drift", "flushes", "batched_solves", "solved_systems",
    "hits", "misses", "evictions", "snapshot_seq", "traced", "evicted",
    "shards", "sharded_requests", "worker_crashes", "worker_restarts",
    "inline_fallbacks", "start_failures",
    # jobs subsystem (the "jobs" snapshot section)
    "submitted", "started", "done", "resumed", "checkpoints",
    "generations_completed", "duplicate_submits",
    # cluster router (the "router" section of the cluster document)
    "routed", "routed_batch", "fanout_requests", "failovers", "exhausted",
    "proxy_errors", "jobs_placed", "jobs_migrated", "migration_failures",
    "checkpoints_staged", "health_transitions", "probes", "probe_failures",
    # SLO lifetime totals (the "slo" snapshot section)
    "availability_good", "availability_bad", "latency_good", "latency_bad",
    # distributed tracing
    "traces_stitched", "trace_pulls", "trace_pull_failures",
    # online autotuning (the "autotune" snapshot section; "decisions"
    # stays a gauge — the journal is a bounded ring)
    "cycles", "applies", "advises", "holds", "cycle_errors",
    "ring_reweights",
})

#: ``pXX`` quantile keys: two or more digits read as decimal fraction
#: digits, so ``p50`` → 0.5, ``p99`` → 0.99, ``p999`` → 0.999.  One
#: digit is rejected as ambiguous (is ``p5`` the 5th or 50th
#: percentile?).
_QUANTILE_KEY = re.compile(r"^p(\d{2,4})$")

#: Latency-block stats that are legitimately not quantiles.
_LATENCY_STATS = frozenset({"count", "mean", "max", "min", "sum"})

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


class _Family:
    """One metric family: a type plus its labeled samples."""

    __slots__ = ("mtype", "help", "samples")

    def __init__(self, mtype: str, help_text: str) -> None:
        self.mtype = mtype
        self.help = help_text
        self.samples: List[Tuple[Tuple[Tuple[str, str], ...], float,
                                 Optional[str]]] = []


def metric_name(*parts: str) -> str:
    """Join path components into a legal Prometheus metric name."""
    name = _NAME_SANITIZER.sub("_", "_".join(str(part) for part in parts))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def quantile_label(stat: str) -> Optional[str]:
    """``p50`` → ``"0.5"``, ``p999`` → ``"0.999"``; None for non-p keys.

    Raises :class:`ServeError` for a key that *looks* like a quantile
    but cannot be mapped (``p5``, ``p12345``) — dropping it silently
    would make the scrape lie by omission.
    """
    if not stat.startswith("p"):
        return None
    match = _QUANTILE_KEY.match(stat)
    if match is None:
        raise ServeError(f"unmappable quantile key in latency block: {stat!r}")
    digits = match.group(1)
    label = ("0." + digits).rstrip("0")
    return label + "0" if label.endswith(".") else label


def render_prometheus(snapshot: dict, *, prefix: str = "repro") -> str:
    """Render a nested metrics snapshot as Prometheus exposition text."""
    families: "OrderedDict[str, _Family]" = OrderedDict()
    seen: set = set()

    def add(name: str, value, *, labels: Optional[Dict[str, str]] = None,
            mtype: Optional[str] = None, help_text: str = "",
            exemplar: Optional[dict] = None) -> None:
        family = families.get(name)
        if family is None:
            family = families[name] = _Family(
                mtype or "gauge", help_text or f"repro metric {name}"
            )
        label_items = tuple(sorted((labels or {}).items()))
        if (name, label_items) in seen:
            raise ServeError(f"duplicate Prometheus sample: {name}{dict(label_items)}")
        seen.add((name, label_items))
        family.samples.append((label_items, float(value),
                               _render_exemplar(exemplar)))

    _walk(snapshot, [prefix], add)

    lines: List[str] = []
    for name, family in families.items():
        lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.mtype}")
        for label_items, value, exemplar in family.samples:
            rendered = "".join((
                name,
                _render_labels(label_items),
                " ",
                _format_value(value),
                exemplar or "",
            ))
            lines.append(rendered)
    return "\n".join(lines) + "\n" if lines else ""


def _walk(node: dict, path: List[str], add) -> None:
    for key, value in node.items():
        if isinstance(value, dict):
            if is_histogram_snapshot(value):
                _bucket_family(value, path + [str(key)], add)
            elif str(key).endswith("_histogram"):
                base = metric_name(*path, str(key)[: -len("_histogram")])
                for bucket, count in sorted(value.items(),
                                            key=lambda item: _bucket_order(item[0])):
                    add(base, count, labels={"bucket": str(bucket)},
                        mtype="counter",
                        help_text=f"histogram {'.'.join(path[1:] + [str(key)])}")
            elif key == "latency_ms":
                _latency_family(value, path, add)
            else:
                _walk(value, path + [str(key)], add)
        elif isinstance(value, bool):
            add(metric_name(*path, str(key)), int(value))
        elif isinstance(value, (int, float)) and value is not None:
            mtype = "counter" if key in COUNTER_KEYS else "gauge"
            add(metric_name(*path, str(key)), value, mtype=mtype)
        # strings and None carry no numeric sample: skipped by design.


def _latency_family(block: dict, path: List[str], add) -> None:
    base = metric_name(*path, "latency_ms")
    for stat, value in block.items():
        if value is None:
            continue
        quantile = quantile_label(str(stat))
        if quantile is not None:
            add(base, value, labels={"quantile": quantile},
                mtype="summary", help_text="request latency quantiles (ms)")
        else:
            mtype = "counter" if stat == "count" else "gauge"
            add(f"{base}_{metric_name(stat)}", value, mtype=mtype)


def _bucket_family(block: dict, path: List[str], add) -> None:
    """A :class:`LatencyHistogram` snapshot as a ``_bucket`` family."""
    base = metric_name(*path)
    dotted = ".".join(path[1:])
    for bucket in block.get("buckets", []):
        add(f"{base}_bucket", bucket.get("count", 0),
            labels={"le": str(bucket.get("le"))}, mtype="histogram",
            help_text=f"latency histogram {dotted} (ms)",
            exemplar=bucket.get("exemplar"))
    add(f"{base}_sum", block.get("sum_ms", 0.0), mtype="counter",
        help_text=f"latency histogram {dotted} total (ms)")
    add(f"{base}_count", block.get("count", 0), mtype="counter",
        help_text=f"latency histogram {dotted} observation count")


def _render_exemplar(exemplar: Optional[dict]) -> Optional[str]:
    """OpenMetrics exemplar suffix: `` # {trace_id="..."} value``."""
    if not exemplar or "trace_id" not in exemplar:
        return None
    trace_id = str(exemplar["trace_id"]).translate(_LABEL_ESCAPES)
    value = _format_value(float(exemplar.get("value_ms", 0.0)))
    return f' # {{trace_id="{trace_id}"}} {value}'


def _bucket_order(bucket) -> Tuple[int, str]:
    try:
        return (0, f"{float(bucket):024.6f}")
    except (TypeError, ValueError):
        return (1, str(bucket))


def _render_labels(label_items: Tuple[Tuple[str, str], ...]) -> str:
    if not label_items:
        return ""
    rendered = ",".join(
        f'{metric_name(key)}="{str(value).translate(_LABEL_ESCAPES)}"'
        for key, value in label_items
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g")
