"""Request-ID generation and validation.

One request ID follows a request across every boundary the serving
path has: client → ``X-Repro-Request-Id`` header → service → span
trace → structured log line → response header.  IDs are opaque tokens;
the service never parses them, only validates that a caller-supplied
value is safe to echo into a response header and a log line.
"""

from __future__ import annotations

import string
import uuid

from repro.errors import ServeError

#: Header carrying the request ID on both requests and responses.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Longest accepted caller-supplied ID (a full UUID is 36 characters;
#: anything much longer is probably an attack on the log pipeline).
MAX_REQUEST_ID_LENGTH = 128

#: Characters allowed in a request ID: enough for UUIDs, ULIDs, and
#: dotted trace formats, while excluding header/log injection vectors.
_ALLOWED = frozenset(string.ascii_letters + string.digits + "-_.:/")


def new_request_id() -> str:
    """A fresh 32-character hex request ID."""
    return uuid.uuid4().hex


def validate_request_id(value) -> str:
    """Validate a caller-supplied request ID; returns it unchanged.

    Raises :class:`ServeError` for non-string, empty, oversized, or
    unsafe values (anything outside ``[A-Za-z0-9._:/-]``), so a hostile
    header can never smuggle newlines into responses or logs.
    """
    if not isinstance(value, str):
        raise ServeError(
            f"request id must be a string, got {type(value).__name__}"
        )
    if not value:
        raise ServeError("request id must not be empty")
    if len(value) > MAX_REQUEST_ID_LENGTH:
        raise ServeError(
            f"request id exceeds {MAX_REQUEST_ID_LENGTH} characters"
        )
    if not set(value) <= _ALLOWED:
        raise ServeError(
            "request id may only contain letters, digits, and '-_.:/'"
        )
    return value


def coerce_request_id(value) -> str:
    """A validated caller ID, or a fresh one when *value* is ``None``."""
    if value is None:
        return new_request_id()
    return validate_request_id(value)
