"""Log-bucketed latency histograms with per-bucket exemplars.

The point sketch in :mod:`repro.serve.metrics` (p50/p90/p99 over a
sliding window) answers "how slow is it right now"; it cannot answer
"how is the *tail shaped*" or "show me one request from the bad
bucket".  This module adds both:

* :class:`LatencyHistogram` — fixed log-spaced bucket bounds (each
  bound 2x the previous, so 14 buckets span 0.25 ms to 2 s), counting
  every observation forever (Prometheus-counter semantics, so scrape
  deltas work) plus a running sum;
* **exemplars** — each bucket remembers the most recent observation
  that landed in it *with its trace ID*, so a scrape of a bad tail
  bucket links straight to a renderable trace (``/debug/trace/<id>``).

Snapshots use cumulative ``le`` bucket counts — exactly the
Prometheus ``_bucket`` convention — and are rendered to text
exposition by :mod:`repro.obs.prometheus` (exemplars in OpenMetrics
``# {trace_id="..."} value`` syntax).  ``merge_histogram_snapshots``
gives the cluster aggregator an exact cross-replica sum when bounds
match (they do by default — the bounds are part of the module, not
per-process configuration).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ServeError

#: Default bucket upper bounds in milliseconds: a log ladder (x2 per
#: rung) from sub-millisecond cache hits to multi-second stragglers.
#: ``+Inf`` is implicit, as in Prometheus.
DEFAULT_BUCKET_BOUNDS_MS = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
    64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0,
)

#: Snapshot spelling of the overflow bucket's bound.
INF_LE = "+Inf"


def format_le(bound: float) -> str:
    """Canonical string form of a bucket bound (``0.25``, ``16``, ...)."""
    if math.isinf(bound):
        return INF_LE
    if bound == int(bound):
        return str(int(bound))
    return format(bound, "g")


class LatencyHistogram:
    """Thread-safe log-bucketed histogram with per-bucket exemplars.

    Parameters
    ----------
    bounds_ms:
        Ascending finite bucket upper bounds in milliseconds
        (``+Inf`` is appended implicitly).
    clock:
        Wall-clock source stamped on exemplars (injectable for tests).
    """

    def __init__(self, bounds_ms: Sequence[float] = DEFAULT_BUCKET_BOUNDS_MS,
                 *, clock: Callable[[], float] = time.time) -> None:
        bounds = [float(bound) for bound in bounds_ms]
        if not bounds:
            raise ServeError("histogram needs at least one bucket bound")
        if any(not math.isfinite(bound) for bound in bounds):
            raise ServeError("histogram bounds must be finite (+Inf is implicit)")
        if any(later <= earlier for earlier, later in zip(bounds, bounds[1:])):
            raise ServeError("histogram bounds must be strictly ascending")
        self.bounds_ms = tuple(bounds)
        self._clock = clock
        self._lock = threading.Lock()
        # One slot per finite bound plus the overflow bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._exemplars: List[Optional[dict]] = [None] * (len(bounds) + 1)
        self._sum_ms = 0.0
        self._count = 0

    def _bucket_index(self, value_ms: float) -> int:
        # Linear scan: the ladder is ~14 rungs and observations cluster
        # in the first few; a bisect would not buy anything measurable.
        for index, bound in enumerate(self.bounds_ms):
            if value_ms <= bound:
                return index
        return len(self.bounds_ms)

    def observe(self, value_ms: float,
                trace_id: Optional[str] = None) -> None:
        """Count one observation; *trace_id* becomes the bucket's exemplar."""
        value_ms = float(value_ms)
        if value_ms < 0.0 or not math.isfinite(value_ms):
            value_ms = 0.0
        index = self._bucket_index(value_ms)
        with self._lock:
            self._counts[index] += 1
            self._sum_ms += value_ms
            self._count += 1
            if trace_id is not None:
                self._exemplars[index] = {
                    "trace_id": str(trace_id),
                    "value_ms": value_ms,
                    "timestamp": self._clock(),
                }

    def snapshot(self) -> dict:
        """JSON-ready cumulative-``le`` rendering (Prometheus shape).

        ``buckets`` is a list of ``{"le", "count", "exemplar"}`` with
        *cumulative* counts (each bucket includes everything below it,
        the ``_bucket`` convention); ``exemplar`` is the most recent
        observation that landed in that bucket's raw range, or absent.
        """
        with self._lock:
            counts = list(self._counts)
            exemplars = list(self._exemplars)
            total, sum_ms = self._count, self._sum_ms
        buckets = []
        running = 0
        for index, bound in enumerate(self.bounds_ms):
            running += counts[index]
            bucket = {"le": format_le(bound), "count": running}
            if exemplars[index] is not None:
                bucket["exemplar"] = dict(exemplars[index])
            buckets.append(bucket)
        overflow = {"le": INF_LE, "count": running + counts[-1]}
        if exemplars[-1] is not None:
            overflow["exemplar"] = dict(exemplars[-1])
        buckets.append(overflow)
        return {"buckets": buckets, "count": total,
                "sum_ms": round(sum_ms, 6)}


def is_histogram_snapshot(value) -> bool:
    """True when *value* looks like a :meth:`LatencyHistogram.snapshot`."""
    return (isinstance(value, dict)
            and isinstance(value.get("buckets"), list)
            and all(isinstance(bucket, dict) and "le" in bucket
                    for bucket in value["buckets"]))


def merge_histogram_snapshots(target: dict, source: dict) -> dict:
    """Merge *source* into *target* in place (cumulative counts sum).

    Buckets pair up by their ``le`` bound; mismatched ladders raise
    (every process in this codebase shares
    :data:`DEFAULT_BUCKET_BOUNDS_MS`, so a mismatch is a version skew
    worth surfacing, not papering over).  Exemplars keep whichever
    observation is newer.
    """
    if not target:
        target.update({"buckets": [dict(bucket)
                                   for bucket in source.get("buckets", [])],
                       "count": source.get("count", 0),
                       "sum_ms": source.get("sum_ms", 0.0)})
        return target
    ours = target.get("buckets", [])
    theirs = source.get("buckets", [])
    if [bucket.get("le") for bucket in ours] != \
            [bucket.get("le") for bucket in theirs]:
        raise ServeError("cannot merge histograms with different bucket bounds")
    for mine, other in zip(ours, theirs):
        mine["count"] = mine.get("count", 0) + other.get("count", 0)
        other_exemplar = other.get("exemplar")
        if other_exemplar is not None:
            mine_exemplar = mine.get("exemplar")
            if (mine_exemplar is None
                    or other_exemplar.get("timestamp", 0.0)
                    >= mine_exemplar.get("timestamp", 0.0)):
                mine["exemplar"] = dict(other_exemplar)
    target["count"] = target.get("count", 0) + source.get("count", 0)
    target["sum_ms"] = round(
        target.get("sum_ms", 0.0) + source.get("sum_ms", 0.0), 6
    )
    return target


class StageHistograms:
    """A named family of :class:`LatencyHistogram`, one per stage.

    Thread-safe lazy creation so the serving tracer can fold any span
    vocabulary (including backend-specific stages like
    ``assembly_shard``) without pre-registration.
    """

    def __init__(self, bounds_ms: Sequence[float] = DEFAULT_BUCKET_BOUNDS_MS,
                 *, clock: Callable[[], float] = time.time) -> None:
        self._bounds = tuple(bounds_ms)
        self._clock = clock
        self._lock = threading.Lock()
        self._histograms: Dict[str, LatencyHistogram] = {}

    def observe(self, stage: str, value_ms: float,
                trace_id: Optional[str] = None) -> None:
        with self._lock:
            histogram = self._histograms.get(stage)
            if histogram is None:
                histogram = self._histograms[stage] = LatencyHistogram(
                    self._bounds, clock=self._clock
                )
        histogram.observe(value_ms, trace_id)

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            histograms = dict(self._histograms)
        return {stage: histogram.snapshot()
                for stage, histogram in sorted(histograms.items())}
