"""Service-level objectives with multi-window burn-rate tracking.

An SLO turns raw counters into a judgment: "99% of requests complete,
and complete within 250 ms".  The *burn rate* is how fast the error
budget is being spent — ``error_rate / (1 - target)`` — so a burn
rate of 1.0 exactly exhausts the budget over the objective period,
and a burn rate of 14 means a page-worthy incident.  Tracking the
rate over *multiple* windows (5 m / 30 m / 1 h / 6 h by default) is
the standard multi-window multi-burn-rate alerting setup: the short
window catches a sudden outage fast, the long window catches a slow
bleed, and requiring both to fire suppresses flappy alerts.

Two dimensions are tracked per request outcome:

* **availability** — did the request complete successfully at all;
* **latency** — did it complete *within* the latency objective
  (a failed request also misses the latency objective).

The tracker buckets events into coarse time cells (~10 s) on an
injectable clock, so memory is O(windows) and tests can drive time
by hand.  Snapshots are JSON-ready and flow into both the ``/metrics``
JSON document and the Prometheus exposition (as ``slo_*`` gauges and
counters) on replica and router alike.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import ServeError

#: Default burn-rate windows in seconds: 5 m, 30 m, 1 h, 6 h.
DEFAULT_WINDOWS = (300, 1800, 3600, 21600)

#: Width of one accounting cell in seconds.  Coarse on purpose: burn
#: rates are alerting signals, not billing records.
BUCKET_SECONDS = 10.0

#: The two tracked objective dimensions.
DIMENSIONS = ("availability", "latency")


def _window_label(seconds: int) -> str:
    """``300 -> "5m"``, ``3600 -> "1h"`` — human labels for snapshots."""
    if seconds % 3600 == 0:
        return f"{seconds // 3600}h"
    if seconds % 60 == 0:
        return f"{seconds // 60}m"
    return f"{seconds}s"


class SLOTracker:
    """Multi-window burn-rate accounting for one service.

    Parameters
    ----------
    latency_ms:
        The latency objective: a request is "good" on the latency
        dimension when it completes within this many milliseconds.
    target:
        The objective target in (0, 1), e.g. ``0.99`` — shared by both
        dimensions (separate targets have never earned their keep).
    windows:
        Burn-rate window lengths in seconds, ascending.
    clock:
        Monotonic-enough time source; injectable for tests.
    """

    def __init__(self, latency_ms: float = 250.0, target: float = 0.99,
                 windows: Sequence[int] = DEFAULT_WINDOWS, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        latency_ms = float(latency_ms)
        if latency_ms <= 0.0:
            raise ServeError("SLO latency objective must be positive")
        target = float(target)
        if not 0.0 < target < 1.0:
            raise ServeError("SLO target must be strictly between 0 and 1")
        windows = tuple(int(window) for window in windows)
        if not windows or any(window <= 0 for window in windows):
            raise ServeError("SLO windows must be positive")
        if list(windows) != sorted(set(windows)):
            raise ServeError("SLO windows must be ascending and unique")
        self.latency_ms = latency_ms
        self.target = target
        self.windows = windows
        self._clock = clock
        self._lock = threading.Lock()
        # cell index -> {dimension: [good, bad]}.  Cells older than the
        # longest window are pruned on write.
        self._cells: Dict[int, Dict[str, list]] = {}
        self._totals = {dimension: [0, 0] for dimension in DIMENSIONS}

    def record(self, ok: bool, latency_ms: Optional[float] = None) -> None:
        """Fold one finished request into the accounting.

        *ok* is the availability verdict; *latency_ms* the end-to-end
        latency (``None`` when unknown, which counts as a latency miss
        unless the request failed anyway — an unmeasured success is a
        measurement bug worth surfacing in the burn rate, not hiding).
        """
        latency_good = bool(ok) and latency_ms is not None \
            and float(latency_ms) <= self.latency_ms
        now = self._clock()
        cell = int(now // BUCKET_SECONDS)
        horizon = cell - int(self.windows[-1] // BUCKET_SECONDS) - 1
        with self._lock:
            slot = self._cells.get(cell)
            if slot is None:
                slot = self._cells[cell] = {
                    dimension: [0, 0] for dimension in DIMENSIONS
                }
                for stale in [key for key in self._cells if key < horizon]:
                    del self._cells[stale]
            for dimension, good in (("availability", bool(ok)),
                                    ("latency", latency_good)):
                index = 0 if good else 1
                slot[dimension][index] += 1
                self._totals[dimension][index] += 1

    def _window_counts(self, window_seconds: int,
                       now: float) -> Dict[str, Tuple[int, int]]:
        oldest = int(now // BUCKET_SECONDS) \
            - int(window_seconds // BUCKET_SECONDS)
        counts = {dimension: [0, 0] for dimension in DIMENSIONS}
        for cell, slot in self._cells.items():
            if cell < oldest:
                continue
            for dimension in DIMENSIONS:
                counts[dimension][0] += slot[dimension][0]
                counts[dimension][1] += slot[dimension][1]
        return {dimension: (good, bad)
                for dimension, (good, bad) in counts.items()}

    def burn_rate(self, error_rate: float) -> float:
        """``error_rate`` scaled by the error budget ``1 - target``."""
        return error_rate / (1.0 - self.target)

    def snapshot(self) -> dict:
        """JSON-ready objectives + lifetime totals + per-window rates."""
        now = self._clock()
        with self._lock:
            totals = {dimension: tuple(self._totals[dimension])
                      for dimension in DIMENSIONS}
            per_window = {window: self._window_counts(window, now)
                          for window in self.windows}
        document = {
            "objectives": {
                "latency_ms": self.latency_ms,
                "target": self.target,
            },
            "windows": {},
        }
        for dimension in DIMENSIONS:
            good, bad = totals[dimension]
            document[f"{dimension}_good"] = good
            document[f"{dimension}_bad"] = bad
        for window in self.windows:
            label = _window_label(window)
            entry = {}
            for dimension in DIMENSIONS:
                good, bad = per_window[window][dimension]
                total = good + bad
                error_rate = (bad / total) if total else 0.0
                entry[dimension] = {
                    "good": good,
                    "bad": bad,
                    "error_rate": round(error_rate, 6),
                    "burn_rate": round(self.burn_rate(error_rate), 6),
                }
            document["windows"][label] = entry
        return document


def is_slo_snapshot(value) -> bool:
    """True when *value* looks like an :meth:`SLOTracker.snapshot`."""
    return (isinstance(value, dict)
            and isinstance(value.get("objectives"), dict)
            and isinstance(value.get("windows"), dict))


def merge_slo_snapshots(target: dict, source: dict) -> dict:
    """Merge *source* into *target* in place for cluster aggregation.

    Good/bad counts sum exactly; per-window ``error_rate`` and
    ``burn_rate`` are *recomputed from the merged counts* (summing
    rates would be meaningless).  Objectives keep the stricter value —
    the cluster meets an SLO only if configured at least as tight
    everywhere.
    """
    if not target:
        target.update(_copy_slo(source))
        return target
    ours, theirs = target["objectives"], source.get("objectives", {})
    if "latency_ms" in theirs:
        ours["latency_ms"] = min(ours["latency_ms"], theirs["latency_ms"])
    if "target" in theirs:
        ours["target"] = max(ours["target"], theirs["target"])
    for dimension in DIMENSIONS:
        for suffix in ("good", "bad"):
            key = f"{dimension}_{suffix}"
            target[key] = target.get(key, 0) + source.get(key, 0)
    budget = 1.0 - ours["target"]
    for label, entry in source.get("windows", {}).items():
        mine = target["windows"].setdefault(label, {})
        for dimension, counts in entry.items():
            slot = mine.setdefault(dimension, {"good": 0, "bad": 0})
            slot["good"] = slot.get("good", 0) + counts.get("good", 0)
            slot["bad"] = slot.get("bad", 0) + counts.get("bad", 0)
    for entry in target["windows"].values():
        for slot in entry.values():
            total = slot.get("good", 0) + slot.get("bad", 0)
            error_rate = (slot.get("bad", 0) / total) if total else 0.0
            slot["error_rate"] = round(error_rate, 6)
            slot["burn_rate"] = round(
                error_rate / budget if budget > 0.0 else 0.0, 6
            )
    return target


def _copy_slo(snapshot: dict) -> dict:
    copied = {key: value for key, value in snapshot.items()
              if key not in ("objectives", "windows")}
    copied["objectives"] = dict(snapshot.get("objectives", {}))
    copied["windows"] = {
        label: {dimension: dict(slot) for dimension, slot in entry.items()}
        for label, entry in snapshot.get("windows", {}).items()
    }
    return copied
