"""Matrix diagnostics: norms, condition estimates, residuals.

Used by the test suite and by the experiment harness to report the
numerical quality of assembled panel matrices (which are dense and
moderately conditioned, so single precision remains usable — one of the
premises behind the paper's single-precision results).
"""

from __future__ import annotations

import numpy as np

from repro.errors import LinalgError
from repro.linalg.lu import LUFactorization, lu_factor, lu_solve


def one_norm(matrix: np.ndarray) -> float:
    """Induced 1-norm (maximum absolute column sum)."""
    return float(np.max(np.sum(np.abs(matrix), axis=0)))


def infinity_norm(matrix: np.ndarray) -> float:
    """Induced infinity-norm (maximum absolute row sum)."""
    return float(np.max(np.sum(np.abs(matrix), axis=1)))


def frobenius_norm(matrix: np.ndarray) -> float:
    """Frobenius norm."""
    return float(np.sqrt(np.sum(np.abs(matrix) ** 2)))


def condition_estimate_1norm(matrix: np.ndarray, *, factorization: LUFactorization = None) -> float:
    """Estimate the 1-norm condition number via Hager's algorithm.

    Runs a few power-like iterations on ``A^{-1}`` (using the LU
    factors, never forming the inverse), the same approach LAPACK's
    ``gecon`` uses.  Returns ``inf`` for singular input.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise LinalgError(f"expected a square matrix, got shape {a.shape}")
    try:
        factors = factorization or lu_factor(a)
    except LinalgError:
        return float("inf")
    n = a.shape[0]
    x = np.full(n, 1.0 / n)
    estimate = 0.0
    for _ in range(5):
        y = lu_solve(factors, x)
        estimate = float(np.sum(np.abs(y)))
        sign = np.sign(y)
        sign[sign == 0.0] = 1.0
        z = lu_solve(factors, sign)  # A is not symmetric, but the estimate
        j = int(np.argmax(np.abs(z)))  # remains a valid lower bound
        if np.abs(z[j]) <= z @ x:
            break
        x = np.zeros(n)
        x[j] = 1.0
    return one_norm(a) * estimate


def relative_residual(matrix: np.ndarray, solution: np.ndarray, rhs: np.ndarray) -> float:
    """``||A x - b|| / (||A|| ||x|| + ||b||)`` in the infinity norm.

    A backward-error style measure: values near machine epsilon mean the
    solve is as accurate as the data deserves.
    """
    a = np.asarray(matrix, dtype=np.float64)
    x = np.asarray(solution, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    residual = np.max(np.abs(a @ x - b))
    scale = infinity_norm(a) * np.max(np.abs(x)) + np.max(np.abs(b))
    if scale == 0.0:
        return 0.0
    return float(residual / scale)
